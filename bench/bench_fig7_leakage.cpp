// Reproduces Fig. 7: information leakage from the obfuscated model —
// random-init vs HPNN-init fine-tuning across thief fractions, on all three
// dataset stand-ins. Expected shape: the two curves track each other
// closely at every alpha (the locked weights leak nothing useful), and both
// rise with alpha while staying below the owner's accuracy.
#include <cstdio>
#include <vector>

#include "attack/finetune.hpp"
#include "common.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

void run_family(data::SyntheticFamily family, models::Architecture arch,
                const Scale& scale, CsvSink& csv) {
  Setting setting = make_setting(family, arch, scale);
  Owner owner = run_owner(setting, scale);
  std::printf("\n%s / %s — owner accuracy %s\n", setting.dataset_label.c_str(),
              models::arch_name(arch).c_str(),
              pct(owner.report.test_accuracy).c_str());
  std::printf("  %-8s | %-14s | %-14s | %-10s\n", "alpha", "random ft",
              "HPNN ft", "|gap|");

  attack::FineTuneOptions fopt;
  fopt.epochs = scale.ft_epochs;
  fopt.sgd = owner_options(arch, scale).sgd;

  double max_gap = 0.0;
  double gap_at_10 = 0.0;
  for (const double alpha : {0.0, 0.01, 0.02, 0.03, 0.05, 0.10}) {
    Rng thief_rng(scale.data_seed ^ 0x1EAC);
    const data::Dataset thief =
        data::thief_subset(setting.split.train, alpha, thief_rng);
    const auto rand_rep =
        attack::finetune_attack(owner.artifact, thief, setting.split.test,
                                attack::InitStrategy::kRandomSmall, fopt);
    const auto hpnn_rep =
        attack::finetune_attack(owner.artifact, thief, setting.split.test,
                                attack::InitStrategy::kStolenWeights, fopt);
    const double gap =
        std::abs(rand_rep.final_accuracy - hpnn_rep.final_accuracy);
    max_gap = std::max(max_gap, gap);
    if (alpha == 0.10) {
      gap_at_10 = gap;
    }
    std::printf("  %-8s | %-14s | %-14s | %.2f pts\n", pct(alpha).c_str(),
                pct(rand_rep.final_accuracy).c_str(),
                pct(hpnn_rep.final_accuracy).c_str(), gap * 100.0);
    csv.row({alpha, rand_rep.final_accuracy, hpnn_rep.final_accuracy},
            data::family_name(family));
    std::fflush(stdout);
  }
  std::printf(
      "  |random - HPNN| gap: %.2f pts at alpha=10%% (the paper's operating "
      "point), %.2f pts max over all alphas\n",
      gap_at_10 * 100.0, max_gap * 100.0);
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "FIG. 7 — Impact of thief dataset size: random vs HPNN fine-tuning",
      "If HPNN-initialized fine-tuning matched random-initialized "
      "fine-tuning at every alpha, the obfuscated weights leak no useful "
      "information about the owner's model (Sec. IV-C).\nalpha = 0% means "
      "the attacker has no data at all.");

  CsvSink csv("fig7_leakage", "alpha,random_ft,hpnn_ft");
  run_family(data::SyntheticFamily::kFashionSynth,
             models::Architecture::kCnn1, scale, csv);
  run_family(data::SyntheticFamily::kColorShapes,
             models::Architecture::kCnn2, scale, csv);
  run_family(data::SyntheticFamily::kDigitSynth,
             models::Architecture::kCnn3, scale, csv);
  return 0;
}
