// Shared harness for the paper-reproduction benches.
//
// Every bench is sized to finish on a single CPU core in seconds-to-minutes
// by default; export the HPNN_BENCH_* variables (see EXPERIMENTS.md) to
// scale toward the paper's full settings. All benches print paper-reported
// values next to the measured ones — absolute numbers differ (synthetic
// data, scaled-down networks), the shape is what must match.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"

namespace hpnn::bench {

/// Experiment sizing, overridable through the environment.
struct Scale {
  std::int64_t train_per_class = 150;   // HPNN_BENCH_TPC (paper: 5000-7000)
  std::int64_t test_per_class = 30;     // HPNN_BENCH_TESTPC
  std::int64_t image_size = 20;         // HPNN_BENCH_IMG (paper: 28/32)
  std::int64_t resnet_image_size = 16;  // HPNN_BENCH_RESNET_IMG
  std::int64_t owner_epochs = 8;        // HPNN_BENCH_EPOCHS
  std::int64_t resnet_epochs = 4;       // HPNN_BENCH_RESNET_EPOCHS
  std::int64_t ft_epochs = 80;          // HPNN_BENCH_FT_EPOCHS (thief sets
                                        // are tiny, so epochs are cheap; the
                                        // attacker trains to convergence)
  double width_mult = 1.0;              // HPNN_BENCH_WIDTH (global scaler)
  std::uint64_t data_seed = 42;         // HPNN_BENCH_DATA_SEED
  std::uint64_t key_seed = 2020;        // HPNN_BENCH_KEY_SEED
  std::uint64_t schedule_seed = 0xDAC;  // HPNN_BENCH_SCHED_SEED
  std::uint64_t init_seed = 7;          // HPNN_BENCH_INIT_SEED
};

/// Reads the default Scale with environment overrides applied.
Scale read_scale();

/// One (dataset family, architecture) evaluation setting.
struct Setting {
  data::SyntheticFamily family;
  models::Architecture arch;
  data::SplitDataset split;
  models::ModelConfig model_config;
  std::string dataset_label;  // e.g. "FashionSynth (for Fashion-MNIST)"
};

/// Builds the dataset + model config for a setting. Architecture widths are
/// pre-scaled so the default benches fit a single core: CNN2 x0.25,
/// CNN3 x0.5, ResNet18 x0.125 (times Scale::width_mult).
Setting make_setting(data::SyntheticFamily family, models::Architecture arch,
                     const Scale& scale);

/// Owner-side pipeline output: trained locked model + published artifact.
struct Owner {
  obf::HpnnKey key;
  std::unique_ptr<obf::Scheduler> scheduler;
  std::unique_ptr<obf::LockedModel> model;
  obf::OwnerTrainReport report;
  obf::PublishedModel artifact;
};

/// Key-dependent training + publication for a setting.
Owner run_owner(const Setting& setting, const Scale& scale);

/// Owner hyperparameters used across benches (also the attacker's defaults,
/// per Sec. IV-B1 "same hyperparameter configuration").
obf::OwnerTrainOptions owner_options(models::Architecture arch,
                                     const Scale& scale);

/// Prints a centered header block for a bench.
void print_header(const std::string& title, const std::string& paper_ref);

/// "12.3%" style formatting.
std::string pct(double fraction);

/// Optional machine-readable output: when HPNN_BENCH_CSV_DIR is set, each
/// bench appends its series to <dir>/<name>.csv for replotting. No-op
/// otherwise.
class CsvSink {
 public:
  /// `name` is the file stem; `header` the comma-separated column names.
  CsvSink(const std::string& name, const std::string& header);

  /// On destruction (bench end) also drops a metrics snapshot
  /// `<dir>/<name>.metrics.json` next to the CSV, when metrics are on.
  ~CsvSink();

  bool enabled() const { return enabled_; }

  /// Appends one row (values are formatted with %.6g).
  void row(const std::vector<double>& values,
           const std::string& label = "");

 private:
  bool enabled_ = false;
  std::string path_;
};

}  // namespace hpnn::bench
