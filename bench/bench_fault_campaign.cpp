// Fault-injection campaign on the trusted device (beyond the paper).
//
// Trains CNN1 on FashionSynth, publishes it, then measures on-device
// accuracy under the fault model of hw/fault.hpp:
//   1. persistent key-store SEUs — the accuracy-vs-flipped-key-bits curve,
//      doubling as the paper's key-sensitivity ablation (Sec. III-B claims
//      even tiny key differences corrupt the function);
//   2. transient accumulator bit flips at several per-output rates;
//   3. quantization-scale register corruption.
// Every key-SEU trial also reports whether the key store's integrity
// digest detected the corruption (it always must).
//
// The final stdout line is a single JSON object for machine consumption.
#include <cstdio>
#include <sstream>

#include <vector>

#include "common.hpp"
#include "core/config.hpp"
#include "core/threadpool.hpp"
#include "hw/fault.hpp"

using namespace hpnn;

int main() {
  const bench::Scale scale = bench::read_scale();
  const int trials =
      static_cast<int>(env_int("HPNN_BENCH_FAULT_TRIALS", 3));

  bench::print_header(
      "Fault-injection campaign — trusted device under SEUs",
      "(beyond the paper; stresses the Sec. III-B key-sensitivity claim)");

  bench::Setting setting = bench::make_setting(
      data::SyntheticFamily::kFashionSynth, models::Architecture::kCnn1,
      scale);
  std::printf("dataset: %s, arch: CNN1, %d trial(s) per point\n",
              setting.dataset_label.c_str(), trials);
  const bench::Owner owner = bench::run_owner(setting, scale);
  std::printf("owner test accuracy (float, with key): %s\n",
              bench::pct(owner.report.test_accuracy).c_str());

  const Tensor& images = setting.split.test.images;
  const auto& labels = setting.split.test.labels;

  // ---- healthy device baseline ---------------------------------------
  const auto baseline = hw::run_fault_trial(
      owner.key, owner.scheduler->seed(), owner.artifact, images, labels,
      hw::FaultPlan{});
  std::printf("trusted-device baseline accuracy:      %s\n\n",
              bench::pct(baseline.accuracy).c_str());

  // ---- 1. key-store SEU campaign --------------------------------------
  const std::vector<std::size_t> bit_counts{0, 1, 2, 4, 8};
  const auto points = hw::run_key_flip_campaign(
      owner.key, owner.scheduler->seed(), owner.artifact, images, labels,
      bit_counts, trials, /*campaign_seed=*/scale.key_seed + 1);

  std::printf("key-store SEUs (raw = datapath kept serving; served = device\n"
              "fails closed once the integrity digest detects the flip)\n");
  std::printf("%-14s %-10s %-10s %-11s %-10s\n", "flipped bits", "raw mean",
              "raw min", "served acc", "detected");
  bench::CsvSink csv("fault_campaign",
                     "bits_flipped,mean_accuracy,min_accuracy,"
                     "served_accuracy,detection_rate");
  for (const auto& p : points) {
    std::printf("%-14zu %-10s %-10s %-11s %.0f%%\n", p.bits_flipped,
                bench::pct(p.mean_accuracy).c_str(),
                bench::pct(p.min_accuracy).c_str(),
                bench::pct(p.mean_served_accuracy).c_str(),
                p.detection_rate * 100.0);
    csv.row({static_cast<double>(p.bits_flipped), p.mean_accuracy,
             p.min_accuracy, p.mean_served_accuracy, p.detection_rate},
            "key_seu");
  }

  // ---- 2. transient accumulator faults --------------------------------
  // Each trial builds its own device + injector, so the independent rate /
  // error points fan out across the thread pool into result slots and are
  // printed afterwards in the original order.
  const std::vector<double> flip_rates{1e-5, 1e-4, 1e-3};
  std::vector<hw::FaultTrialResult> acc_trials(flip_rates.size());
  core::parallel_for(
      0, static_cast<std::int64_t>(flip_rates.size()), 1,
      [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
          hw::FaultPlan plan;
          plan.accumulator_flip_rate = flip_rates[static_cast<std::size_t>(r)];
          plan.seed = scale.key_seed + 7;
          acc_trials[static_cast<std::size_t>(r)] = hw::run_fault_trial(
              owner.key, owner.scheduler->seed(), owner.artifact, images,
              labels, plan);
        }
      });
  std::printf("\ntransient accumulator bit flips (bit 30 of the partial "
              "sum)\n");
  std::printf("%-14s %-10s %s\n", "flip rate", "accuracy", "faults injected");
  for (std::size_t r = 0; r < flip_rates.size(); ++r) {
    const auto& trial = acc_trials[r];
    std::printf("%-14g %-10s %llu\n", flip_rates[r],
                bench::pct(trial.accuracy).c_str(),
                static_cast<unsigned long long>(
                    trial.stats.accumulator_faults));
    csv.row({flip_rates[r], trial.accuracy,
             static_cast<double>(trial.stats.accumulator_faults)},
            "accumulator");
  }

  // ---- 3. quantization-scale corruption -------------------------------
  const std::vector<double> scale_errors{0.25, 1.0};
  std::vector<hw::FaultTrialResult> scale_trials(scale_errors.size());
  core::parallel_for(
      0, static_cast<std::int64_t>(scale_errors.size()), 1,
      [&](std::int64_t e0, std::int64_t e1) {
        for (std::int64_t e = e0; e < e1; ++e) {
          hw::FaultPlan plan;
          plan.scale_relative_error = scale_errors[static_cast<std::size_t>(e)];
          scale_trials[static_cast<std::size_t>(e)] = hw::run_fault_trial(
              owner.key, owner.scheduler->seed(), owner.artifact, images,
              labels, plan);
        }
      });
  std::printf("\nquantization-scale register corruption\n");
  std::printf("%-14s %-10s\n", "rel. error", "accuracy");
  for (std::size_t e = 0; e < scale_errors.size(); ++e) {
    std::printf("%-14g %-10s\n", scale_errors[e],
                bench::pct(scale_trials[e].accuracy).c_str());
    csv.row({scale_errors[e], scale_trials[e].accuracy}, "scale");
  }

  std::printf(
      "\nShape check: raw accuracy decays gradually with the flip count\n"
      "(each key bit drives a slice of the locks), but every key SEU is\n"
      "detected by the integrity digest, so *served* accuracy collapses\n"
      "to zero at >=1 flipped bit — the fail-closed contract.\n\n");

  // ---- machine-readable summary ---------------------------------------
  std::ostringstream json;
  hw::write_campaign_json(json, "CNN1", baseline.accuracy, points);
  std::printf("%s\n", json.str().c_str());
  return 0;
}
