// Ablation / security study (beyond the paper): greedy key-recovery attack.
//
// The paper's security argument rests on (i) the 2^256 key space and
// (ii) the privacy of the hardware scheduling algorithm, and its evaluation
// covers only fine-tuning attacks. This bench mounts a stronger cheap
// attack: per-bit coordinate descent over the 256 key bits, driven by a
// cross-entropy-loss oracle on a 10% thief set, with and without schedule
// knowledge — on a small/shallow model (CNN1) and on a deep one (CNN2).
//
// Finding (see EXPERIMENTS.md): at small scale (≈7 neurons per key bit,
// 2 locked layers) the attack functionally unlocks the model with ~2k
// oracle queries EVEN WITHOUT the schedule — 256 mask bits are enough
// degrees of freedom to find some working sign pattern. At the paper's
// regime (CNN2: ≈77 neurons/bit at our width, 8 locked layers) the descent
// stalls near chance under both assumptions. HPNN's protection rests on
// locking depth and the neurons-per-key-bit ratio, not on key length.
#include <cstdio>

#include "attack/key_recovery.hpp"
#include "common.hpp"
#include "core/config.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

void run_arch(data::SyntheticFamily family, models::Architecture arch,
              std::int64_t sweeps, std::int64_t oracle_samples,
              const Scale& scale) {
  Setting setting = make_setting(family, arch, scale);
  Owner owner = run_owner(setting, scale);
  Rng thief_rng(scale.data_seed ^ 0x0DDC);
  const data::Dataset oracle =
      data::thief_subset(setting.split.train, 0.10, thief_rng);

  const double npb =
      static_cast<double>(owner.model->locked_neuron_count()) / 256.0;
  std::printf("\n%s on %s — owner %s, %.1f neurons per key bit, %zu locked "
              "layers\n",
              models::arch_name(arch).c_str(), setting.dataset_label.c_str(),
              pct(owner.report.test_accuracy).c_str(), npb,
              owner.model->activations().size());

  for (const auto knowledge :
       {attack::ScheduleKnowledge::kKnownSchedule,
        attack::ScheduleKnowledge::kUnknownSchedule}) {
    attack::KeyRecoveryOptions opt;
    opt.sweeps = sweeps;
    opt.oracle_samples = oracle_samples;
    opt.guessed_schedule_seed = 0xBAD5EED;
    const auto report = attack::recover_key(
        owner.artifact, oracle, setting.split.test, owner.key,
        scale.schedule_seed, knowledge, opt);
    std::printf(
        "  %-18s | start %-7s | test after attack %-7s | key bits "
        "matching %3zu/256 | %lld queries\n",
        knowledge == attack::ScheduleKnowledge::kKnownSchedule
            ? "known schedule"
            : "unknown schedule",
        pct(report.start_accuracy).c_str(),
        pct(report.test_accuracy).c_str(), report.bits_matching,
        static_cast<long long>(report.oracle_queries));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "ABLATION — greedy key-recovery attack (loss-oracle coordinate "
      "descent)",
      "How far does per-bit hill climbing on a thief-set loss oracle get, "
      "with and without the private schedule? Expected shape: functional "
      "unlock on the small/shallow CNN1, stall near chance on the deep "
      "CNN2 — locking depth and the neurons-per-key-bit ratio carry the "
      "security, not key length.");

  run_arch(data::SyntheticFamily::kFashionSynth, models::Architecture::kCnn1,
           env_int("HPNN_BENCH_KEYREC_SWEEPS", 8), 256, scale);
  run_arch(data::SyntheticFamily::kColorShapes, models::Architecture::kCnn2,
           env_int("HPNN_BENCH_KEYREC_SWEEPS_DEEP", 4), 64, scale);
  return 0;
}
