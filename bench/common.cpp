#include "common.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/config.hpp"
#include "core/logging.hpp"
#include "core/metrics.hpp"

namespace hpnn::bench {

Scale read_scale() {
  Scale s;
  s.train_per_class = env_int("HPNN_BENCH_TPC", s.train_per_class);
  s.test_per_class = env_int("HPNN_BENCH_TESTPC", s.test_per_class);
  s.image_size = env_int("HPNN_BENCH_IMG", s.image_size);
  s.resnet_image_size =
      env_int("HPNN_BENCH_RESNET_IMG", s.resnet_image_size);
  s.owner_epochs = env_int("HPNN_BENCH_EPOCHS", s.owner_epochs);
  s.resnet_epochs = env_int("HPNN_BENCH_RESNET_EPOCHS", s.resnet_epochs);
  s.ft_epochs = env_int("HPNN_BENCH_FT_EPOCHS", s.ft_epochs);
  s.width_mult = env_double("HPNN_BENCH_WIDTH", s.width_mult);
  s.data_seed = static_cast<std::uint64_t>(
      env_int("HPNN_BENCH_DATA_SEED", static_cast<std::int64_t>(s.data_seed)));
  s.key_seed = static_cast<std::uint64_t>(
      env_int("HPNN_BENCH_KEY_SEED", static_cast<std::int64_t>(s.key_seed)));
  s.schedule_seed = static_cast<std::uint64_t>(env_int(
      "HPNN_BENCH_SCHED_SEED", static_cast<std::int64_t>(s.schedule_seed)));
  s.init_seed = static_cast<std::uint64_t>(
      env_int("HPNN_BENCH_INIT_SEED", static_cast<std::int64_t>(s.init_seed)));
  return s;
}

namespace {

double arch_width(models::Architecture arch) {
  switch (arch) {
    case models::Architecture::kCnn1:
    case models::Architecture::kMlp:
    case models::Architecture::kLeNet5:
      return 1.0;
    case models::Architecture::kCnn2:
      return 0.25;
    case models::Architecture::kCnn3:
      return 0.5;
    case models::Architecture::kResNet18:
      return 0.125;
  }
  return 1.0;
}

}  // namespace

Setting make_setting(data::SyntheticFamily family, models::Architecture arch,
                     const Scale& scale) {
  const bool resnet = arch == models::Architecture::kResNet18;
  Setting s{family, arch, {}, {}, {}};

  data::SyntheticConfig dc;
  dc.train_per_class = scale.train_per_class;
  dc.test_per_class = scale.test_per_class;
  dc.image_size = resnet ? scale.resnet_image_size : scale.image_size;
  dc.seed = scale.data_seed;
  s.split = data::make_dataset(family, dc);

  s.model_config.in_channels = s.split.train.channels();
  s.model_config.image_size = s.split.train.height();
  s.model_config.num_classes = data::kSyntheticClasses;
  s.model_config.init_seed = scale.init_seed;
  s.model_config.width_mult = arch_width(arch) * scale.width_mult;

  s.dataset_label =
      data::family_name(family) + " (for " + family_stands_for(family) + ")";
  return s;
}

obf::OwnerTrainOptions owner_options(models::Architecture arch,
                                     const Scale& scale) {
  obf::OwnerTrainOptions opt;
  opt.sgd = {0.01, 0.9, 5e-4};
  opt.epochs = arch == models::Architecture::kResNet18 ? scale.resnet_epochs
                                                       : scale.owner_epochs;
  opt.batch_size = 32;
  return opt;
}

Owner run_owner(const Setting& setting, const Scale& scale) {
  Owner owner;
  Rng krng(scale.key_seed);
  owner.key = obf::HpnnKey::random(krng);
  owner.scheduler = std::make_unique<obf::Scheduler>(scale.schedule_seed);
  owner.model = std::make_unique<obf::LockedModel>(
      setting.arch, setting.model_config, owner.key, *owner.scheduler);
  owner.report =
      obf::train_locked_model(*owner.model, setting.split.train,
                              setting.split.test,
                              owner_options(setting.arch, scale));
  std::stringstream zoo;
  obf::publish_model(zoo, *owner.model);
  owner.artifact = obf::read_published_model(zoo);
  return owner;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

CsvSink::CsvSink(const std::string& name, const std::string& header) {
  const std::string dir = env_string("HPNN_BENCH_CSV_DIR", "");
  if (dir.empty()) {
    return;
  }
  path_ = dir + "/" + name + ".csv";
  std::ofstream os(path_, std::ios::trunc);
  if (!os) {
    HPNN_LOG(Warn) << "cannot open " << path_ << "; CSV output disabled";
    return;
  }
  os << "label," << header << '\n';
  enabled_ = true;
}

CsvSink::~CsvSink() {
  if (!enabled_ || !metrics::enabled()) {
    return;
  }
  // path_ ends in ".csv"; swap the extension for the snapshot file.
  const std::string snap_path =
      path_.substr(0, path_.size() - 4) + ".metrics.json";
  metrics::write_snapshot_file(snap_path);
}

void CsvSink::row(const std::vector<double>& values,
                  const std::string& label) {
  if (!enabled_) {
    return;
  }
  std::ofstream os(path_, std::ios::app);
  os << label;
  for (const double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << ',' << buf;
  }
  os << '\n';
}

}  // namespace hpnn::bench
