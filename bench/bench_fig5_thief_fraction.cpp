// Reproduces Fig. 5: impact of thief-dataset size and network architecture
// on the model fine-tuning attack (CNN1 and ResNet18, Fashion-MNIST
// stand-in, alpha in {1, 2, 3, 5, 10}%, owner's hyperparameters).
#include <cstdio>
#include <vector>

#include "attack/finetune.hpp"
#include "common.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

void run_arch(models::Architecture arch, const Scale& scale,
              double paper_owner, double paper_alpha10, CsvSink& csv) {
  Setting setting =
      make_setting(data::SyntheticFamily::kFashionSynth, arch, scale);
  Owner owner = run_owner(setting, scale);
  std::printf("\n%s — owner (with key) accuracy: %s (paper: %.2f%%)\n",
              models::arch_name(arch).c_str(),
              pct(owner.report.test_accuracy).c_str(), paper_owner);
  std::printf("  %-8s | %-12s | %-12s\n", "alpha", "ft accuracy",
              "gap vs owner");

  attack::FineTuneOptions fopt;
  fopt.epochs = scale.ft_epochs;
  fopt.sgd = owner_options(arch, scale).sgd;  // same hyperparameters

  double last = 0.0;
  for (const double alpha : {0.01, 0.02, 0.03, 0.05, 0.10}) {
    Rng thief_rng(scale.data_seed ^ 0xA1FA);
    const data::Dataset thief =
        data::thief_subset(setting.split.train, alpha, thief_rng);
    const auto rep =
        attack::finetune_attack(owner.artifact, thief, setting.split.test,
                                attack::InitStrategy::kStolenWeights, fopt);
    std::printf("  %-8s | %-12s | %.2f pts\n", pct(alpha).c_str(),
                pct(rep.final_accuracy).c_str(),
                (owner.report.test_accuracy - rep.final_accuracy) * 100.0);
    csv.row({alpha, rep.final_accuracy, owner.report.test_accuracy},
            models::arch_name(arch));
    last = rep.final_accuracy;
    std::fflush(stdout);
  }
  std::printf(
      "  paper at alpha=10%%: %.2f%% (gap %.2f pts); ours: %s (gap %.2f "
      "pts)\n",
      paper_alpha10, paper_owner - paper_alpha10, pct(last).c_str(),
      (owner.report.test_accuracy - last) * 100.0);
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "FIG. 5 — Impact of thief dataset size on fine-tuning attack",
      "HPNN fine-tuning at alpha in {1,2,3,5,10}% of the training data, "
      "owner's hyperparameters.\nShape: accuracy rises with alpha but stays "
      "below the owner's accuracy even at 10%.\nPaper (Fashion-MNIST): CNN1 "
      "owner 89.93% vs ft 82.45%; ResNet18 owner 93.92% vs ft 88.60%.");

  CsvSink csv("fig5_thief_fraction", "alpha,ft_accuracy,owner_accuracy");
  run_arch(models::Architecture::kCnn1, scale, 89.93, 82.45, csv);
  run_arch(models::Architecture::kResNet18, scale, 93.92, 88.60, csv);
  return 0;
}
