// Reproduces Table I: effectiveness of HPNN against model fine-tuning.
//
// For each (dataset, architecture) pair: original (with-key) accuracy,
// locked (no-key) accuracy + drop, random fine-tuning and HPNN fine-tuning
// accuracy + drops (thief fraction alpha = 10%).
#include <cstdio>
#include <vector>

#include "attack/finetune.hpp"
#include "common.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

struct PaperRow {
  const char* dataset;
  const char* network;
  std::int64_t neurons;
  double original, locked, random_ft, hpnn_ft;
};

// Paper-reported numbers (Table I).
constexpr PaperRow kPaper[] = {
    {"Fashion-MNIST", "CNN1", 4352, 89.93, 10.05, 86.35, 82.45},
    {"CIFAR-10", "CNN2", 198144, 89.54, 9.37, 78.87, 78.53},
    {"SVHN", "CNN3", 29696, 89.06, 15.84, 80.97, 82.89},
};

struct MeasuredRow {
  std::string dataset;
  std::string network;
  std::int64_t neurons = 0;
  double original = 0, locked = 0, random_ft = 0, hpnn_ft = 0;
};

MeasuredRow run_setting(data::SyntheticFamily family,
                        models::Architecture arch, const Scale& scale) {
  Setting setting = make_setting(family, arch, scale);
  Owner owner = run_owner(setting, scale);

  MeasuredRow row;
  row.dataset = setting.dataset_label;
  row.network = models::arch_name(arch);
  row.neurons = owner.model->locked_neuron_count();
  row.original = owner.report.test_accuracy;
  row.locked = obf::evaluate_without_key(*owner.model, owner.key,
                                         *owner.scheduler,
                                         setting.split.test);

  Rng thief_rng(scale.data_seed ^ 0x7157);
  const data::Dataset thief =
      data::thief_subset(setting.split.train, 0.10, thief_rng);
  attack::FineTuneOptions fopt;
  fopt.epochs = scale.ft_epochs;
  fopt.sgd = owner_options(arch, scale).sgd;  // same hyperparameters
  row.random_ft =
      attack::finetune_attack(owner.artifact, thief, setting.split.test,
                              attack::InitStrategy::kRandomSmall, fopt)
          .final_accuracy;
  row.hpnn_ft =
      attack::finetune_attack(owner.artifact, thief, setting.split.test,
                              attack::InitStrategy::kStolenWeights, fopt)
          .final_accuracy;
  return row;
}

void print_row(const char* tag, const std::string& dataset,
               const std::string& network, std::int64_t neurons,
               double original, double locked, double random_ft,
               double hpnn_ft) {
  const auto drop = [](double base, double v) { return base - v; };
  std::printf(
      "%-8s | %-34s | %-8s | %7lld | %7.2f | %7.2f (drop %6.2f) | %7.2f "
      "(drop %6.2f) | %7.2f (drop %6.2f)\n",
      tag, dataset.c_str(), network.c_str(),
      static_cast<long long>(neurons), original, locked,
      drop(original, locked), random_ft, drop(original, random_ft), hpnn_ft,
      drop(original, hpnn_ft));
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "TABLE I — Effectiveness of HPNN framework against model fine-tuning",
      "Columns: original / HPNN locked (no key) / random fine-tuning / HPNN "
      "fine-tuning; thief fraction alpha = 10%.\nAll values are test "
      "accuracies in % (drops are vs. original). 'paper' rows are the "
      "published numbers on the real datasets;\n'ours' rows use the "
      "synthetic stand-ins at reduced scale — compare shapes, not absolute "
      "values.");

  const struct {
    data::SyntheticFamily family;
    models::Architecture arch;
  } settings[] = {
      {data::SyntheticFamily::kFashionSynth, models::Architecture::kCnn1},
      {data::SyntheticFamily::kColorShapes, models::Architecture::kCnn2},
      {data::SyntheticFamily::kDigitSynth, models::Architecture::kCnn3},
  };

  std::printf(
      "%-8s | %-34s | %-8s | %7s | %7s | %22s | %22s | %22s\n", "source",
      "dataset", "network", "neurons", "orig", "locked (no key)",
      "random fine-tune", "HPNN fine-tune");

  CsvSink csv("table1", "original,locked,random_ft,hpnn_ft");
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& p = kPaper[i];
    print_row("paper", p.dataset, p.network, p.neurons, p.original, p.locked,
              p.random_ft, p.hpnn_ft);
    const MeasuredRow m =
        run_setting(settings[i].family, settings[i].arch, scale);
    print_row("ours", m.dataset, m.network, m.neurons, m.original * 100,
              m.locked * 100, m.random_ft * 100, m.hpnn_ft * 100);
    csv.row({m.original, m.locked, m.random_ft, m.hpnn_ft}, m.network);

    // Shape assertions mirrored from DESIGN.md §3.
    const double drop = (m.original - m.locked) * 100;
    std::printf(
        "         -> locked drop %.2f pts (paper: %.2f); fine-tune gap vs "
        "original: rand %.2f, hpnn %.2f pts\n\n",
        drop, p.original - p.locked, (m.original - m.random_ft) * 100,
        (m.original - m.hpnn_ft) * 100);
  }
  std::printf(
      "Shape check: locked accuracy ~ chance (10%%); both fine-tuning "
      "attacks below original; random ~ HPNN fine-tune (no leakage).\n");
  return 0;
}
