// Microbenchmarks of the computational primitives (google-benchmark):
// GEMM, conv2d, locked vs plain activation, keyed accumulator fidelities,
// MMU int8 GEMM, and key expansion. These quantify the simulator itself —
// e.g. that the lock factor costs one multiply per activation on the float
// path and nothing on the integer path.
#include <benchmark/benchmark.h>

#include <string>

#include "core/rng.hpp"
#include "core/threadpool.hpp"
#include "hpnn/locked_activation.hpp"
#include "hpnn/scheduler.hpp"
#include "hw/accumulator.hpp"
#include "hw/mmu.hpp"
#include "nn/layers.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace hpnn;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(a, ops::Trans::kNo, b, ops::Trans::kNo, c, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// All four transpose combinations at one size. The packed kernel absorbs
// the transposes into the pack-stage strides (no materialized copies), so
// the variants should cluster — the historical T-paths paid an extra
// transpose2d allocation + copy each call.
void BM_GemmTrans(benchmark::State& state) {
  const auto ta = state.range(0) != 0 ? ops::Trans::kYes : ops::Trans::kNo;
  const auto tb = state.range(1) != 0 ? ops::Trans::kYes : ops::Trans::kNo;
  const std::int64_t n = 256;
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(a, ta, b, tb, c, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(std::string(ta == ops::Trans::kYes ? "T" : "N") +
                 (tb == ops::Trans::kYes ? "T" : "N"));
}
BENCHMARK(BM_GemmTrans)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

// Same GEMM at an explicit pool size — the scaling curve of the
// deterministic thread pool (outputs are bit-identical at every size).
void BM_GemmThreads(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  core::set_thread_count(threads);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(a, ops::Trans::kNo, b, ops::Trans::kNo, c, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.SetLabel(std::to_string(threads) + " thread(s)");
  core::set_thread_count(0);  // restore the HPNN_THREADS default
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  const ops::Conv2dGeometry g{16, 28, 28, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{8, 16, 28, 28}, rng);
  const Tensor w = Tensor::normal(Shape{32, 16, 3, 3}, rng);
  const Tensor b = Tensor::normal(Shape{32}, rng);
  for (auto _ : state) {
    Tensor out = ops::conv2d_forward(x, w, b, g);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dForwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  core::set_thread_count(threads);
  Rng rng(2);
  const ops::Conv2dGeometry g{16, 28, 28, 3, 1, 1};
  const Tensor x = Tensor::normal(Shape{8, 16, 28, 28}, rng);
  const Tensor w = Tensor::normal(Shape{32, 16, 3, 3}, rng);
  const Tensor b = Tensor::normal(Shape{32}, rng);
  for (auto _ : state) {
    Tensor out = ops::conv2d_forward(x, w, b, g);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::to_string(threads) + " thread(s)");
  core::set_thread_count(0);
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PlainRelu(benchmark::State& state) {
  Rng rng(3);
  nn::ReLU relu;
  const Tensor x = Tensor::normal(Shape{32, 4096}, rng);
  for (auto _ : state) {
    Tensor y = relu.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_PlainRelu);

void BM_LockedRelu(benchmark::State& state) {
  Rng rng(4);
  Tensor mask(Shape{4096});
  for (auto& v : mask.span()) {
    v = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  obf::LockedActivation act("act", mask);
  const Tensor x = Tensor::normal(Shape{32, 4096}, rng);
  for (auto _ : state) {
    Tensor y = act.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_LockedRelu);

void BM_KeyedAccumulatorFast(benchmark::State& state) {
  hw::KeyedAccumulator acc(true, hw::Fidelity::kFast);
  std::int16_t p = 12345;
  for (auto _ : state) {
    acc.accumulate(p);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_KeyedAccumulatorFast);

void BM_KeyedAccumulatorBitLevel(benchmark::State& state) {
  hw::KeyedAccumulator acc(true, hw::Fidelity::kBitAccurate);
  std::int16_t p = 12345;
  for (auto _ : state) {
    acc.accumulate(p);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_KeyedAccumulatorBitLevel);

void BM_MmuGemmI8(benchmark::State& state) {
  const bool locked = state.range(0) != 0;
  Rng rng(5);
  const std::int64_t m = 32, k = 256, n = 256;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  for (auto& v : w) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  std::vector<std::uint8_t> negate;
  if (locked) {
    negate.assign(static_cast<std::size_t>(m * n), 0);
    for (std::size_t i = 0; i < negate.size(); i += 2) {
      negate[i] = 1;
    }
  }
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  hw::Mmu mmu;
  for (auto _ : state) {
    mmu.matmul_i8(a, m, k, w, n, negate, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(locked ? "locked" : "unlocked");
}
BENCHMARK(BM_MmuGemmI8)->Arg(0)->Arg(1);

void BM_KeyExpansion(benchmark::State& state) {
  Rng rng(6);
  const obf::HpnnKey key = obf::HpnnKey::random(rng);
  const obf::Scheduler sched(42);
  const obf::LockSpec spec{"act", 3, Shape{64, 28, 28}};
  for (auto _ : state) {
    Tensor mask = sched.lock_mask(spec, key);
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.neuron_count());
}
BENCHMARK(BM_KeyExpansion);

// Per-backend variants of the two kernels whose implementation tiers
// differ most (float GEMM microtile, MMU int8 datapath). The registry is
// populated at runtime, so these register through RegisterBenchmark in
// main() rather than the static BENCHMARK macro — one row per supported
// backend, e.g. BM_GemmBackend/avx512/256.
void gemm_backend_body(benchmark::State& state, const std::string& backend) {
  ops::set_backend(backend);
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::normal(Shape{n, n}, rng);
  const Tensor b = Tensor::normal(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    ops::gemm(a, ops::Trans::kNo, b, ops::Trans::kNo, c, 1.0f, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}

void mmu_backend_body(benchmark::State& state, const std::string& backend) {
  ops::set_backend(backend);
  Rng rng(5);
  const std::int64_t m = 32, k = 256, n = 256;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  for (auto& v : w) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  hw::Mmu mmu;
  for (auto _ : state) {
    mmu.matmul_i8(a, m, k, w, n, {}, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}

void register_backend_benchmarks() {
  for (const std::string& name : ops::backend_names()) {
    if (!ops::find_backend(name)->supported()) {
      continue;
    }
    benchmark::RegisterBenchmark(
        ("BM_GemmBackend/" + name).c_str(),
        [name](benchmark::State& state) { gemm_backend_body(state, name); })
        ->Arg(256);
    benchmark::RegisterBenchmark(
        ("BM_MmuGemmI8Backend/" + name).c_str(),
        [name](benchmark::State& state) { mmu_backend_body(state, name); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The auto-picked default stays active for the static BM_* suite above
  // (so BM_Gemm/256 remains the regression-gate baseline); the per-backend
  // rows pin their own tier, and the default is restored afterward.
  const std::string default_backend = ops::backend().name();
  register_backend_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ops::set_backend(default_backend);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
