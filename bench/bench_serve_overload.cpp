// Overload campaign against the serving daemon (beyond the paper;
// load-shedding companion to bench_serve_chaos's fault story).
//
// Drives open-loop offered load at 0.5x / 1x / 2x of the simulated service
// model's sustainable rate, with bursty arrivals and a mid-storm replica
// quarantine at 2x. The daemon must degrade *by shedding*, never by
// corruption or collapse: admitted requests finish under the latency SLO,
// shed requests carry retry_after hints, and every served batch matches an
// un-faulted reference device bit-for-class. Scale with
// HPNN_BENCH_OVERLOAD_REQUESTS.
//
// The final stdout line is a single JSON object (the 2x point) for machine
// consumption.
#include <cstdio>
#include <sstream>

#include "common.hpp"
#include "core/config.hpp"
#include "serve/daemon/load_gen.hpp"

using namespace hpnn;

int main() {
  const int requests =
      static_cast<int>(env_int("HPNN_BENCH_OVERLOAD_REQUESTS", 400));

  bench::print_header(
      "Serving daemon overload campaign — admission control and shedding",
      "(beyond the paper; graceful degradation under offered overload)");

  const serve::ChaosModelBundle bundle =
      serve::make_chaos_model(33, 16, 0.6, /*with_logit_digest=*/true);

  serve::LoadScenario scenario;
  scenario.requests = requests;
  scenario.batch = 1;
  scenario.tenants = 4;
  scenario.seed = 1;
  scenario.burst = 8;
  scenario.config.replicas = 4;
  scenario.config.verify = serve::VerifyMode::kDigest;
  scenario.daemon.batcher.max_batch_rows = 8;
  scenario.daemon.batcher.slo_p99_us = 20'000;
  scenario.daemon.batcher.max_linger_us = 2'000;
  scenario.daemon.queue.capacity = 64;
  scenario.daemon.queue.max_queue_wait_us = 20'000;
  scenario.daemon.admission.high_watermark = 48;
  scenario.daemon.admission.low_watermark = 24;
  scenario.daemon.sim_service_base_us = 400;
  scenario.daemon.sim_service_per_row_us = 100;

  const double cap = serve::sustainable_qps(scenario);
  std::printf("service model: %llu + %llu us/row, %lld-row batches -> "
              "sustainable ~%.0f qps\n\n",
              static_cast<unsigned long long>(
                  scenario.daemon.sim_service_base_us),
              static_cast<unsigned long long>(
                  scenario.daemon.sim_service_per_row_us),
              static_cast<long long>(scenario.daemon.batcher.max_batch_rows),
              cap);

  std::printf("%8s %9s %9s %6s %8s %8s %6s %12s\n", "offered", "accepted",
              "completed", "shed", "p50us", "p99us", "wrong", "hints us");

  const double factors[] = {0.5, 1.0, 2.0};
  serve::LoadReport last;
  bool ok = true;
  for (const double f : factors) {
    scenario.offered_qps = f * cap;
    // At 2x, lose a replica in the middle of the storm on top of the
    // overload (the chaos harness's "overload weather").
    scenario.quarantine_at_request = f >= 2.0 ? requests / 2 : -1;
    const serve::LoadReport report =
        serve::run_load_scenario(bundle, scenario);
    std::printf("%7.0fx %9d %9d %6d %8llu %8llu %6d [%llu, %llu]\n", f,
                report.accepted, report.completed, report.shed,
                static_cast<unsigned long long>(report.p50_latency_us),
                static_cast<unsigned long long>(report.p99_latency_us),
                report.wrong,
                static_cast<unsigned long long>(report.min_retry_after_us),
                static_cast<unsigned long long>(report.max_retry_after_us));
    ok = ok && report.wrong == 0 &&
         report.p99_latency_us <= scenario.daemon.batcher.slo_p99_us;
    if (f >= 2.0) {
      ok = ok && report.shed > 0 && report.min_retry_after_us > 0;
      last = report;
    }
  }

  std::printf("\nverdict: %s — %s\n\n", ok ? "PASS" : "FAIL",
              ok ? "overload shed with hints, admitted stayed under SLO, "
                   "zero wrong answers"
                 : "daemon collapsed, blew the SLO, or served corruption");

  scenario.offered_qps = 2.0 * cap;
  scenario.quarantine_at_request = requests / 2;
  std::ostringstream json;
  serve::write_overload_json(json, scenario, last);
  std::printf("%s\n", json.str().c_str());
  return ok ? 0 : 1;
}
