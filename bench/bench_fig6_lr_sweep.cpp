// Reproduces Fig. 6: effect of the learning rate (and epochs) on the
// fine-tuning attack, alpha = 10%. Top: Fashion-MNIST / CNN1; bottom:
// CIFAR-10 / CNN2. Expected shape: moderate lr fine-tunes best; too-large
// lr (0.05) generalizes poorly; best accuracy stays below the owner's.
#include <cstdio>
#include <vector>

#include "attack/finetune.hpp"
#include "common.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

void run_setting(data::SyntheticFamily family, models::Architecture arch,
                 const Scale& scale, double paper_owner, double paper_best) {
  Setting setting = make_setting(family, arch, scale);
  Owner owner = run_owner(setting, scale);

  Rng thief_rng(scale.data_seed ^ 0xF16);
  const data::Dataset thief =
      data::thief_subset(setting.split.train, 0.10, thief_rng);

  attack::FineTuneOptions fopt;
  fopt.epochs = scale.ft_epochs;
  fopt.sgd = owner_options(arch, scale).sgd;
  const std::vector<double> lrs{0.001, 0.005, 0.01, 0.05};
  const auto sweep =
      attack::lr_sweep(owner.artifact, thief, setting.split.test, lrs, fopt);

  std::printf("\n%s / %s — owner accuracy %s (paper: %.2f%%)\n",
              setting.dataset_label.c_str(), models::arch_name(arch).c_str(),
              pct(owner.report.test_accuracy).c_str(), paper_owner);
  std::printf("  %-7s |", "epoch");
  for (const auto& p : sweep) {
    std::printf(" lr=%-6.3f |", p.lr);
  }
  std::printf("\n");
  const std::int64_t stride = std::max<std::int64_t>(1, fopt.epochs / 16);
  for (std::int64_t e = 0; e < fopt.epochs; ++e) {
    if (e % stride != 0 && e != fopt.epochs - 1) {
      continue;  // subsample long runs; the curve shape is what matters
    }
    std::printf("  %-7lld |", static_cast<long long>(e + 1));
    for (const auto& p : sweep) {
      std::printf(" %-9s |",
                  pct(p.report.epoch_accuracy[static_cast<std::size_t>(e)])
                      .c_str());
    }
    std::printf("\n");
  }

  double best = 0.0;
  double best_lr = 0.0;
  for (const auto& p : sweep) {
    if (p.report.best_accuracy > best) {
      best = p.report.best_accuracy;
      best_lr = p.lr;
    }
  }
  std::printf(
      "  best fine-tuned accuracy: %s at lr=%.3f (paper best: %.2f%%, "
      "owner gap: ours %.2f pts, paper %.2f pts)\n",
      pct(best).c_str(), best_lr, paper_best,
      (owner.report.test_accuracy - best) * 100.0, paper_owner - paper_best);
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "FIG. 6 — Effect of learning rate on fine-tuning (alpha = 10%)",
      "Accuracy-vs-epoch curves for lr in {0.001, 0.005, 0.01, 0.05}. Paper "
      "best: 85.91% (Fashion-MNIST/CNN1, owner 89.93%) and 79.61% "
      "(CIFAR-10/CNN2, owner 89.54%); large lr hurts generalization.");

  run_setting(data::SyntheticFamily::kFashionSynth,
              models::Architecture::kCnn1, scale, 89.93, 85.91);
  run_setting(data::SyntheticFamily::kColorShapes,
              models::Architecture::kCnn2, scale, 89.54, 79.61);
  return 0;
}
