// Ablation (design-choice study beyond the paper): which layers need
// locking? The paper locks every neuron of every nonlinear layer; this
// bench trains variants of CNN3 that lock only a subset of the nonlinear
// layers and measures (a) accuracy with the key and (b) accuracy of the
// stolen model without the key. The design question: does the collapse
// require full-depth locking, or does one locked layer suffice?
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

struct Variant {
  const char* name;
  std::vector<bool> locked;  // per nonlinear layer of CNN3 (4 layers)
};

}  // namespace

int main() {
  const Scale scale = read_scale();
  print_header(
      "ABLATION — locking depth (CNN3 on DigitSynth, 4 nonlinear layers)",
      "Each variant trains with locks on a subset of the nonlinear layers; "
      "the no-key column is the attacker's accuracy with the stolen "
      "weights. The paper's design locks all layers.");

  Setting setting = make_setting(data::SyntheticFamily::kDigitSynth,
                                 models::Architecture::kCnn3, scale);
  const auto opt = owner_options(models::Architecture::kCnn3, scale);

  const Variant variants[] = {
      {"none (baseline)", {false, false, false, false}},
      {"first conv only", {true, false, false, false}},
      {"last (FC) only", {false, false, false, true}},
      {"convs only", {true, true, true, false}},
      {"all (paper)", {true, true, true, true}},
  };

  std::printf("\n  %-18s | %-10s | %-12s | %-10s\n", "locked layers",
              "with key", "no key", "drop (pts)");
  Rng key_rng(scale.key_seed);
  const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
  obf::Scheduler sched(scale.schedule_seed);

  for (const auto& variant : variants) {
    obf::LockedModel model(models::Architecture::kCnn3,
                           setting.model_config, key, sched);
    // Unlock the layers this variant leaves unprotected, then train.
    const auto& acts = model.activations();
    for (std::size_t i = 0; i < acts.size(); ++i) {
      if (!variant.locked[i]) {
        acts[i]->clear_lock();
      }
    }
    const auto report = obf::train_locked_model(model, setting.split.train,
                                                setting.split.test, opt);
    // Attacker view: every lock factor +1.
    model.remove_locks();
    const double nokey = nn::evaluate_accuracy(
        model.network(), setting.split.test.images,
        setting.split.test.labels);
    std::printf("  %-18s | %-10s | %-12s | %.2f\n", variant.name,
                pct(report.test_accuracy).c_str(), pct(nokey).c_str(),
                (report.test_accuracy - nokey) * 100.0);
    std::fflush(stdout);
  }
  std::printf(
      "\nShape check: with-key accuracy is lock-placement independent "
      "(Lemma 1); the no-key collapse deepens with locking depth and is "
      "strongest for the paper's all-layers design.\n");
  return 0;
}
