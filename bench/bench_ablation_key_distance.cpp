// Ablation (beyond the paper's figures): accuracy of a locked model as a
// function of the Hamming distance between the trial key and the true HPNN
// key. The paper evaluates only the no-key extreme (baseline architecture);
// this sweep shows the full degradation curve — how many of the 256 key
// bits an attacker would need to guess before accuracy recovers, i.e. the
// brute-force hardness profile of the 256-bit key.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/config.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

obf::HpnnKey key_at_distance(const obf::HpnnKey& key, std::size_t distance,
                             Rng& rng) {
  obf::HpnnKey out = key;
  const auto positions = rng.permutation(obf::HpnnKey::kBits);
  for (std::size_t i = 0; i < distance; ++i) {
    out.flip_bit(positions[i]);
  }
  return out;
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  const std::int64_t trials = env_int("HPNN_BENCH_KEY_TRIALS", 3);
  print_header(
      "ABLATION — accuracy vs key Hamming distance (CNN1, FashionSynth)",
      "Degradation curve of a locked model under partially-wrong keys. "
      "Expected shape: accuracy decays from the owner's level at d=0 toward "
      "chance as d grows; a random guess (d~128) is useless, so the "
      "256-bit key cannot be brute-forced bit by bit.");

  Setting setting = make_setting(data::SyntheticFamily::kFashionSynth,
                                 models::Architecture::kCnn1, scale);
  Owner owner = run_owner(setting, scale);
  std::printf("\nowner (d=0) accuracy: %s; chance: 10%%\n",
              pct(owner.report.test_accuracy).c_str());
  std::printf("  %-10s | %-12s (avg of %lld trials)\n", "distance",
              "accuracy", static_cast<long long>(trials));

  Rng rng(scale.key_seed ^ 0xD157);
  for (const std::size_t d : {0u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 192u,
                              256u}) {
    double sum = 0.0;
    for (std::int64_t t = 0; t < trials; ++t) {
      const obf::HpnnKey trial = key_at_distance(owner.key, d, rng);
      sum += obf::evaluate_with_key(*owner.model, trial, owner.key,
                                    *owner.scheduler, setting.split.test);
    }
    std::printf("  %-10zu | %s\n", d,
                pct(sum / static_cast<double>(trials)).c_str());
    std::fflush(stdout);
  }
  std::printf(
      "Shape check: monotone (noisy) decay; large distances land near or "
      "below the no-key accuracy.\n");
  return 0;
}
