// Reproduces Fig. 3: performance of DL models locked using different HPNN
// keys — the accuracy distribution over 20 random keys should be tight and
// centered on the baseline (unlocked) model's accuracy, for CNN1 and
// ResNet18 on the Fashion-MNIST stand-in.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/config.hpp"
#include "nn/trainer.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

struct Distribution {
  std::vector<double> accs;
  double baseline = 0.0;

  double mean() const {
    double s = 0.0;
    for (const auto a : accs) {
      s += a;
    }
    return accs.empty() ? 0.0 : s / static_cast<double>(accs.size());
  }
  double quantile(double q) const {
    std::vector<double> sorted = accs;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[idx];
  }
};

Distribution run_arch(models::Architecture arch, std::int64_t num_keys,
                      const Scale& scale) {
  Setting setting =
      make_setting(data::SyntheticFamily::kFashionSynth, arch, scale);
  const auto opt = owner_options(arch, scale);

  Distribution dist;
  // Baseline: conventional backpropagation on the baseline architecture.
  {
    auto cfg = setting.model_config;
    cfg.activation = models::plain_relu_factory();
    auto baseline = models::build(arch, cfg);
    nn::SoftmaxCrossEntropy loss;
    nn::Sgd sgd(nn::parameters_of(*baseline), opt.sgd);
    nn::TrainConfig tc;
    tc.epochs = opt.epochs;
    tc.batch_size = opt.batch_size;
    tc.shuffle_seed = opt.shuffle_seed;
    (void)nn::fit(*baseline, loss, sgd, setting.split.train.images,
                  setting.split.train.labels, tc);
    dist.baseline = nn::evaluate_accuracy(*baseline,
                                          setting.split.test.images,
                                          setting.split.test.labels);
  }

  obf::Scheduler sched(scale.schedule_seed);
  Rng key_rng(scale.key_seed);
  for (std::int64_t k = 0; k < num_keys; ++k) {
    const obf::HpnnKey key = obf::HpnnKey::random(key_rng);
    obf::LockedModel model(arch, setting.model_config, key, sched);
    const auto report = obf::train_locked_model(model, setting.split.train,
                                                setting.split.test, opt);
    dist.accs.push_back(report.test_accuracy);
    std::printf("  %s key %2lld/%lld: test acc %s\n",
                models::arch_name(arch).c_str(), static_cast<long long>(k + 1),
                static_cast<long long>(num_keys),
                pct(report.test_accuracy).c_str());
    std::fflush(stdout);
  }
  return dist;
}

void summarize(const char* arch, const Distribution& d, double paper_mean,
               double paper_baseline) {
  std::printf(
      "%-9s: min %s | q25 %s | median %s | q75 %s | max %s | mean %s | "
      "baseline %s\n",
      arch, pct(d.quantile(0.0)).c_str(), pct(d.quantile(0.25)).c_str(),
      pct(d.quantile(0.5)).c_str(), pct(d.quantile(0.75)).c_str(),
      pct(d.quantile(1.0)).c_str(), pct(d.mean()).c_str(),
      pct(d.baseline).c_str());
  std::printf(
      "           paper: mean %.2f%% vs baseline %.2f%% (gap %.2f pts); "
      "ours: gap %.2f pts\n",
      paper_mean, paper_baseline, paper_mean - paper_baseline,
      (d.mean() - d.baseline) * 100.0);
}

}  // namespace

int main() {
  const Scale scale = read_scale();
  const std::int64_t num_keys = env_int("HPNN_BENCH_KEYS", 20);
  print_header(
      "FIG. 3 — Performance of DL models locked using different HPNN keys",
      "20 random keys x key-dependent training; distribution should be "
      "tight with mean ~= the baseline (conventional training) accuracy.\n"
      "Paper (Fashion-MNIST): CNN1 mean 86.95% vs baseline 86.99%; ResNet18 "
      "mean 92.93% vs baseline 92.83%.");

  std::printf("\nCNN1 (%lld keys):\n", static_cast<long long>(num_keys));
  const Distribution cnn1 =
      run_arch(models::Architecture::kCnn1, num_keys, scale);
  std::printf("\nResNet18 (%lld keys):\n", static_cast<long long>(num_keys));
  const Distribution resnet =
      run_arch(models::Architecture::kResNet18, num_keys, scale);

  std::printf("\nSummary (box-plot statistics):\n");
  summarize("CNN1", cnn1, 86.95, 86.99);
  summarize("ResNet18", resnet, 92.93, 92.83);
  std::printf(
      "Shape check: per-key spread small; |mean - baseline| within a few "
      "points for both architectures.\n");
  return 0;
}
