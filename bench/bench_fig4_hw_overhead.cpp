// Reproduces Fig. 4 + Sec. III-D3: the hardware realization of the neuron
// locking mechanism — XOR gate count, gate overhead (< 0.5% vs a ~1e6-gate
// MMU), zero cycle overhead, and a functional demonstration that the keyed
// accumulator computes ±MAC with identical latency.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "hw/accumulator.hpp"
#include "hw/energy.hpp"
#include "hw/mmu.hpp"
#include "hw/overhead.hpp"
#include "hw/systolic.hpp"

namespace {

using namespace hpnn;
using namespace hpnn::bench;

double time_mmu(bool locked, std::int64_t reps) {
  Rng rng(1);
  const std::int64_t m = 64, k = 256, n = 256;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  for (auto& v : w) {
    v = static_cast<std::int8_t>(rng.uniform_index(255)) - 127;
  }
  std::vector<std::uint8_t> negate;
  if (locked) {
    negate.resize(static_cast<std::size_t>(m * n));
    for (std::size_t i = 0; i < negate.size(); ++i) {
      negate[i] = (i % 2 == 0);
    }
  }
  std::vector<std::int32_t> out(static_cast<std::size_t>(m * n));
  hw::Mmu mmu;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t r = 0; r < reps; ++r) {
    mmu.matmul_i8(a, m, k, w, n, negate, out);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(reps);
}

}  // namespace

int main() {
  print_header(
      "FIG. 4 / SEC. III-D3 — Hardware realization of neuron locking",
      "Key-dependent accumulator: 16 XOR gates per unit, 256 units; paper "
      "claims 4096 XOR gates total, < 0.5% of a ~1e6-gate MMU [16], and no "
      "clock-cycle overhead.");

  // ---- gate model -------------------------------------------------------
  const auto report = hw::mmu_overhead(256);
  std::printf("\nGate-count model (256x256 MMU, 8-bit MACs):\n  %s\n",
              report.to_string().c_str());
  std::printf("  XOR gates added:            %lld (paper: 4096)\n",
              static_cast<long long>(report.xor_gates_added));
  std::printf("  vs reference 1e6-gate MMU:  %.3f%% (paper: < 0.5%%)\n",
              report.overhead_vs_reference(1000000) * 100.0);
  std::printf("  vs full 256x256 array est.: %.5f%%\n",
              report.overhead_vs_full_array() * 100.0);
  std::printf("  cycle overhead:             %lld (combinational XORs only)\n",
              static_cast<long long>(report.cycle_overhead));

  // ---- functional demo: keyed accumulator computes ±MAC -----------------
  Rng rng(7);
  hw::KeyedAccumulator pos(false, hw::Fidelity::kBitAccurate);
  hw::KeyedAccumulator neg(true, hw::Fidelity::kBitAccurate);
  for (int i = 0; i < 64; ++i) {
    const auto p = static_cast<std::int16_t>(rng() & 0xFFFF);
    pos.accumulate(p);
    neg.accumulate(p);
  }
  std::printf(
      "\nBit-level FA-chain demo (64 random products through one unit):\n"
      "  k=0 accumulator: %d\n  k=1 accumulator: %d  (= -MAC: %s)\n",
      pos.value(), neg.value(), neg.value() == -pos.value() ? "yes" : "NO");

  // ---- cycle model: locked vs unlocked GEMM -----------------------------
  {
    Rng r2(3);
    hw::Mmu plain;
    hw::Mmu locked;
    std::vector<std::int8_t> a(64 * 256), w(256 * 256);
    for (auto& v : a) v = static_cast<std::int8_t>(r2.uniform_index(255)) - 127;
    for (auto& v : w) v = static_cast<std::int8_t>(r2.uniform_index(255)) - 127;
    std::vector<std::int32_t> out(64 * 256);
    std::vector<std::uint8_t> negate(64 * 256, 1);
    plain.matmul_i8(a, 64, 256, w, 256, {}, out);
    locked.matmul_i8(a, 64, 256, w, 256, negate, out);
    std::printf(
        "\nModeled pipeline cycles for a 64x256x256 GEMM:\n"
        "  unlocked: %llu cycles | locked (all outputs keyed): %llu cycles "
        "| overhead: %lld cycles\n",
        static_cast<unsigned long long>(plain.stats().cycles),
        static_cast<unsigned long long>(locked.stats().cycles),
        static_cast<long long>(locked.stats().cycles) -
            static_cast<long long>(plain.stats().cycles));
  }

  // ---- energy model ------------------------------------------------------
  {
    Rng r3(4);
    hw::Mmu mmu;
    std::vector<std::int8_t> a(64 * 256), w(256 * 256);
    for (auto& v : a) v = static_cast<std::int8_t>(r3.uniform_index(255)) - 127;
    for (auto& v : w) v = static_cast<std::int8_t>(r3.uniform_index(255)) - 127;
    std::vector<std::int32_t> out(64 * 256);
    std::vector<std::uint8_t> negate(64 * 256, 1);  // worst case: all locked
    mmu.matmul_i8(a, 64, 256, w, 256, negate, out);
    const auto energy = hw::estimate_energy(mmu.stats());
    std::printf(
        "\nEnergy model (Horowitz ISSCC'14 constants, worst case all "
        "outputs locked):\n"
        "  MACs %.1f nJ + weight traffic %.1f nJ + XOR key bank %.2f nJ "
        "-> locking overhead %.2f%% of inference energy\n",
        energy.mac_pj * 1e-3, energy.weight_traffic_pj * 1e-3,
        energy.locking_pj * 1e-3, energy.locking_overhead() * 100.0);
  }

  // ---- cycle-level dataflow cross-check ----------------------------------
  {
    Rng r4(5);
    const std::int64_t m = 12, k = 16, n = 16;
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> w(static_cast<std::size_t>(k * n));
    for (auto& v : a) v = static_cast<std::int8_t>(r4.uniform_index(255)) - 127;
    for (auto& v : w) v = static_cast<std::int8_t>(r4.uniform_index(255)) - 127;
    hw::SystolicArray arr(k, n);
    arr.load_weights(w, k, n);
    std::vector<std::uint8_t> keys(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < keys.size(); ++i) {
      keys[i] = (i % 2 == 0);
    }
    const auto locked_run = arr.run(a, m, keys);
    arr.load_weights(w, k, n);
    const auto plain_run = arr.run(a, m);
    std::printf(
        "\nPE-level systolic simulation (%lldx%lld tile, %lld rows):\n"
        "  stream latency locked %llu vs unlocked %llu cycles (key path "
        "adds %lld)\n",
        static_cast<long long>(k), static_cast<long long>(n),
        static_cast<long long>(m),
        static_cast<unsigned long long>(locked_run.stream_cycles),
        static_cast<unsigned long long>(plain_run.stream_cycles),
        static_cast<long long>(locked_run.stream_cycles) -
            static_cast<long long>(plain_run.stream_cycles));
  }

  // ---- host-side wall time sanity (simulator, not silicon) --------------
  const double t_plain = time_mmu(false, 5);
  const double t_locked = time_mmu(true, 5);
  std::printf(
      "\nSimulator wall time per 64x256x256 GEMM (informational):\n"
      "  unlocked %.3f ms | locked %.3f ms (ratio %.2f — the simulator's "
      "negation cost; real silicon pays a combinational XOR delay only)\n",
      t_plain * 1e3, t_locked * 1e3, t_locked / t_plain);
  return 0;
}
