// Chaos campaign against the fault-tolerant serving supervisor (beyond the
// paper; availability companion to bench_fault_campaign's accuracy story).
//
// Runs a seeded SEU-weather scenario — persistent sealed-key bit flips
// landing on healthy replicas plus a transiently flaky accumulator on one
// replica — against a 4-replica witness-verified pool, and reports the
// serving outcome: every fault must cost retries and re-provisions, never
// a wrong answer. Scale with HPNN_BENCH_CHAOS_REQUESTS / _SEU_RATE.
//
// The final stdout line is a single JSON object for machine consumption.
#include <cstdio>
#include <sstream>

#include "common.hpp"
#include "core/config.hpp"
#include "serve/chaos.hpp"

using namespace hpnn;

int main() {
  const int requests =
      static_cast<int>(env_int("HPNN_BENCH_CHAOS_REQUESTS", 120));
  const double seu_rate =
      env_int("HPNN_BENCH_CHAOS_SEU_PCT", 15) / 100.0;

  bench::print_header(
      "Serving chaos campaign — replicated pool under SEU weather",
      "(beyond the paper; availability under the Sec. III fault model)");

  const serve::ChaosModelBundle bundle = serve::make_chaos_model(33);
  serve::ChaosScenario scenario;
  scenario.requests = requests;
  scenario.batch = 2;
  scenario.seed = 1;
  scenario.key_seu_rate = seu_rate;
  scenario.config.replicas = 4;
  // Replica 1's first device ships with a flaky accumulator: bit 30 of a
  // keyed partial sum flips with 2% probability per output element.
  scenario.plans.resize(2);
  scenario.plans[1].initial = hw::FaultPlan{};
  scenario.plans[1].initial->accumulator_flip_rate = 0.02;
  scenario.plans[1].initial->seed = 1234;

  std::printf(
      "pool: %zu replicas (witness-verified), %d requests, "
      "key SEU rate %.2f, flaky accumulator on replica 1\n\n",
      scenario.config.replicas, scenario.requests, scenario.key_seu_rate);

  const serve::ChaosReport report =
      serve::run_chaos_scenario(bundle, scenario);

  std::printf("served:          %d/%d (%d wrong, %d timeouts, "
              "%d unavailable, %d retry-exhausted)\n",
              report.succeeded, report.requests, report.wrong,
              report.timeouts, report.unavailable, report.retry_exhausted);
  std::printf("faults:          %d key SEUs injected\n",
              report.seus_injected);
  std::printf("healing:         %llu quarantines, %llu re-provisions, "
              "%llu probes, %llu breaker trips\n",
              static_cast<unsigned long long>(report.pool.quarantines),
              static_cast<unsigned long long>(report.pool.reprovisions),
              static_cast<unsigned long long>(report.pool.probes),
              static_cast<unsigned long long>(report.pool.breaker_trips));
  std::printf("attempts:        %lld (%lld retries), %d degraded "
              "successes\n",
              static_cast<long long>(report.attempts),
              static_cast<long long>(report.retries), report.degraded);
  std::printf("virtual elapsed: %llu us\n\n",
              static_cast<unsigned long long>(report.virtual_elapsed_us));

  const bool ok = report.wrong == 0 && report.succeeded == report.requests;
  std::printf("verdict: %s — %s\n\n",
              ok ? "PASS" : "FAIL",
              ok ? "all answers correct despite injected faults"
                 : "supervisor served a wrong or dropped request");

  std::ostringstream json;
  serve::write_chaos_json(json, scenario, report);
  std::printf("%s\n", json.str().c_str());
  return ok ? 0 : 1;
}
