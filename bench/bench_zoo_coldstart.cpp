// Artifact-store cold-start and fleet-provisioning throughput (beyond the
// paper; the deployment-at-scale companion to the Fig. 1 sharing flow).
//
// Publishes HPNN_BENCH_ZOO_MODELS names into a content-addressed store
// (cycling a few distinct models, so dedup keeps the object count small),
// then measures what a serving node pays on a cold start for model N of
// those K: index load, the historic hash-then-reopen streamed load, and
// the mmap'd zero-copy fetch_view path. Finally provisions
// HPNN_BENCH_FLEET_DEVICES trusted devices off one master key and reports
// attested-devices/second.
//
// The final stdout line is a single JSON object for machine consumption.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/config.hpp"
#include "core/sha256.hpp"
#include "hpnn/keychain.hpp"
#include "hpnn/zoo_store.hpp"
#include "serve/fleet.hpp"

using namespace hpnn;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The pre-mmap load path this bench exists to retire: read the whole file
/// once to hash it, then reopen and parse it with the streaming reader
/// (two passes, one full float copy, and a verify/parse window).
obf::PublishedModel streamed_baseline_fetch(const std::string& path,
                                            const std::string& digest_hex) {
  std::ifstream hash_is(path, std::ios::binary);
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(hash_is)),
      std::istreambuf_iterator<char>());
  if (to_hex(Sha256::hash(bytes)) != digest_hex) {
    std::fprintf(stderr, "baseline digest mismatch\n");
    std::exit(1);
  }
  std::ifstream parse_is(path, std::ios::binary);
  return obf::read_published_model(parse_is);
}

obf::LockedModel make_model(const obf::HpnnKey& key, std::uint64_t seed,
                            std::uint64_t init_seed) {
  obf::Scheduler sched(seed);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = init_seed;
  return obf::LockedModel(models::Architecture::kCnn1, mc, key, sched);
}

}  // namespace

int main() {
  const std::int64_t num_names = env_int("HPNN_BENCH_ZOO_MODELS", 10000);
  const std::int64_t distinct = std::min<std::int64_t>(
      env_int("HPNN_BENCH_ZOO_DISTINCT", 4), num_names);
  const std::int64_t fleet_devices =
      env_int("HPNN_BENCH_FLEET_DEVICES", 64);
  const std::int64_t fetch_reps = env_int("HPNN_BENCH_ZOO_FETCH_REPS", 50);

  bench::print_header(
      "Model-zoo cold start — content-addressed store + fleet provisioning",
      "(beyond the paper; deployment cost of the Fig. 1 sharing flow)");

  const std::string dir =
      (std::filesystem::temp_directory_path() / "hpnn_bench_zoo").string();
  std::filesystem::remove_all(dir);

  Rng rng(2020);
  const obf::HpnnKey master = obf::HpnnKey::random(rng);
  const std::string model_id = "coldstart-bench";
  const obf::HpnnKey model_key = obf::derive_model_key(master, model_id);
  const std::uint64_t schedule_seed =
      obf::derive_schedule_seed(master, model_id);

  std::vector<obf::LockedModel> models_pool;
  models_pool.reserve(static_cast<std::size_t>(distinct));
  for (std::int64_t d = 0; d < distinct; ++d) {
    models_pool.push_back(make_model(model_key, schedule_seed,
                                     static_cast<std::uint64_t>(d + 1)));
  }

  // --- publish K names (cycling D distinct models: dedup at work) ---
  auto start = std::chrono::steady_clock::now();
  obf::ModelZoo zoo(dir);
  for (std::int64_t i = 0; i < num_names; ++i) {
    zoo.publish("model-" + std::to_string(i),
                models_pool[static_cast<std::size_t>(i % distinct)]);
  }
  const double publish_s = seconds_since(start);
  std::printf("published %lld name(s) -> %zu content object(s) in %.2fs "
              "(%.0f publishes/s)\n",
              static_cast<long long>(num_names), zoo.object_count(),
              publish_s, static_cast<double>(num_names) / publish_s);

  // --- cold index load ---
  start = std::chrono::steady_clock::now();
  obf::ModelZoo cold(dir);
  const double index_load_s = seconds_since(start);
  std::printf("index load: %zu entries in %.4fs\n", cold.list().size(),
              index_load_s);

  // --- cold fetch of the last-published name, both load paths ---
  const std::string target = "model-" + std::to_string(num_names - 1);
  const auto entries = cold.list();
  std::string target_file, target_digest;
  for (const auto& e : entries) {
    if (e.name == target) {
      target_file = dir + "/" + e.file;
      target_digest = e.digest_hex;
    }
  }

  start = std::chrono::steady_clock::now();
  std::size_t streamed_params = 0;
  for (std::int64_t r = 0; r < fetch_reps; ++r) {
    streamed_params =
        streamed_baseline_fetch(target_file, target_digest).parameters.size();
  }
  const double streamed_s =
      seconds_since(start) / static_cast<double>(fetch_reps);

  start = std::chrono::steady_clock::now();
  std::size_t view_params = 0;
  for (std::int64_t r = 0; r < fetch_reps; ++r) {
    view_params = cold.fetch_view(target).parameters.size();
  }
  const double view_s = seconds_since(start) / static_cast<double>(fetch_reps);

  const bool same_shape = streamed_params == view_params;
  std::printf("cold fetch '%s' (%lld reps):\n", target.c_str(),
              static_cast<long long>(fetch_reps));
  std::printf("  hash-then-reopen stream : %8.1f us\n", streamed_s * 1e6);
  std::printf("  mmap fetch_view         : %8.1f us  (%.1fx)\n",
              view_s * 1e6, view_s > 0 ? streamed_s / view_s : 0.0);

  // --- fleet provisioning off the fetched artifact ---
  const obf::ArtifactView view = cold.fetch_view(target);
  const obf::PublishedModel artifact = view.materialize();
  obf::Scheduler scheduler(schedule_seed);
  auto reference = obf::instantiate_locked(artifact, model_key, scheduler);
  Rng probe_rng(97);
  const obf::AttestationChallenge challenge =
      obf::make_challenge(*reference, 16, probe_rng);

  serve::FleetConfig config;
  config.devices = static_cast<std::size_t>(fleet_devices);
  const serve::FleetReport fleet =
      serve::provision_fleet(master, model_id, artifact, challenge, config);
  std::printf("fleet: provisioned %zu/%zu, attested %zu, %.1f devices/s\n",
              fleet.provisioned, config.devices, fleet.attested,
              fleet.devices_per_second);

  const bool ok = same_shape && fleet.all_ok(/*attest_required=*/true) &&
                  zoo.object_count() == static_cast<std::size_t>(distinct);
  std::printf("\nverdict: %s — %s\n\n", ok ? "PASS" : "FAIL",
              ok ? "both load paths agree, dedup held, fleet fully attested"
                 : "load-path mismatch, dedup failure, or fleet incomplete");

  std::ostringstream json;
  json << "{\"bench\":\"zoo_coldstart\""
       << ",\"names\":" << num_names << ",\"objects\":" << zoo.object_count()
       << ",\"publish_seconds\":" << publish_s
       << ",\"publishes_per_second\":"
       << static_cast<double>(num_names) / publish_s
       << ",\"index_load_seconds\":" << index_load_s
       << ",\"cold_fetch_stream_us\":" << streamed_s * 1e6
       << ",\"cold_fetch_view_us\":" << view_s * 1e6
       << ",\"view_speedup\":" << (view_s > 0 ? streamed_s / view_s : 0.0)
       << ",\"fleet_devices\":" << fleet_devices
       << ",\"fleet_attested\":" << fleet.attested
       << ",\"fleet_devices_per_second\":" << fleet.devices_per_second
       << ",\"pass\":" << (ok ? "true" : "false") << "}";
  std::printf("%s\n", json.str().c_str());

  std::filesystem::remove_all(dir);
  return ok ? 0 : 1;
}
