#!/usr/bin/env python3
"""Gate on google-benchmark regressions against a committed baseline.

Compares one benchmark's cpu_time between the committed baseline JSON
(BENCH_gemm.json, recorded on the reference container) and a freshly
measured JSON, and fails when the current time regresses by more than
--max-regress (fractional, e.g. 0.25 == 25% slower).

CI runners are not the reference container, so two escape hatches keep the
gate honest instead of flaky:
  - --advisory: always print the comparison, never fail (explicit opt-out).
  - --advisory-without FLAG: downgrade to advisory when /proc/cpuinfo does
    not list the CPU flag (e.g. `avx2`) — a runner without the SIMD tier
    the baseline was recorded with cannot meaningfully hit the threshold.

Exit codes: 0 ok/advisory, 1 regression beyond threshold, 2 usage error
(missing file, benchmark name not found in either JSON).
"""

import argparse
import json
import sys


def load_benchmark_time(path, name):
    """cpu_time (ns) of the named benchmark's iteration run, or None."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        return None
    for row in doc.get("benchmarks", []):
        if row.get("name") == name and row.get("run_type", "iteration") == (
            "iteration"
        ):
            return float(row["cpu_time"])
    print(f"error: benchmark '{name}' not found in {path}", file=sys.stderr)
    return None


def cpu_has_flag(flag):
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as f:
            for line in f:
                if line.startswith("flags"):
                    return flag in line.split()
    except OSError:
        pass
    return False


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed baseline JSON (BENCH_gemm.json)")
    ap.add_argument("--current", required=True,
                    help="freshly measured benchmark JSON")
    ap.add_argument("--benchmark", default="BM_Gemm/256",
                    help="benchmark name to compare (default: BM_Gemm/256)")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="max allowed fractional slowdown (default: 0.25)")
    ap.add_argument("--advisory", action="store_true",
                    help="print the comparison but never fail")
    ap.add_argument("--advisory-without", metavar="CPUFLAG",
                    help="advisory mode when /proc/cpuinfo lacks this flag")
    args = ap.parse_args()

    advisory = args.advisory
    if args.advisory_without and not cpu_has_flag(args.advisory_without):
        print(f"note: CPU lacks '{args.advisory_without}' — baseline was "
              "recorded on a SIMD-capable reference machine; reporting "
              "advisory only")
        advisory = True

    base = load_benchmark_time(args.baseline, args.benchmark)
    cur = load_benchmark_time(args.current, args.benchmark)
    if base is None or cur is None:
        return 2

    delta = (cur - base) / base
    direction = "slower" if delta >= 0 else "faster"
    print(f"{args.benchmark}: baseline {base:.0f} ns, current {cur:.0f} ns "
          f"({abs(delta) * 100:.1f}% {direction}, threshold "
          f"{args.max_regress * 100:.0f}%)")

    if delta > args.max_regress:
        if advisory:
            print("advisory mode: regression beyond threshold NOT enforced")
            return 0
        print(f"FAIL: {args.benchmark} regressed beyond the threshold",
              file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
