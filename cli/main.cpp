// hpnn — command-line front end. See commands.hpp for the command set.
#include <iostream>
#include <string>
#include <vector>

#include "commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) {
    tokens.emplace_back(argv[i]);
  }
  return hpnn::cli::run_command(tokens, std::cout);
}
