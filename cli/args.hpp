// Minimal command-line argument parsing for the hpnn CLI.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hpnn::cli {

/// Parsed command line: `hpnn <command> [--flag value]... [positional]...`.
struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  bool has(const std::string& key) const { return options.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Returns the option value or throws hpnn::Error mentioning the flag.
  std::string require(const std::string& key) const;
};

/// Parses tokens after the program name. "--key value" and "--key=value"
/// are both accepted. Throws hpnn::Error for malformed input (e.g. a
/// trailing flag without a value).
Args parse_args(const std::vector<std::string>& tokens);

}  // namespace hpnn::cli
