// The hpnn CLI command implementations, separated from main() so the test
// suite can drive them directly.
//
//   hpnn keygen   [--seed N]
//   hpnn train    --arch CNN1 --dataset fashion --key HEX --out FILE
//                 [--schedule-seed N --epochs E --lr LR --img S --tpc N
//                  --width W --model-id ID]
//   hpnn eval     --model FILE --dataset fashion
//                 [--key HEX --schedule-seed N]      (omit key = attacker)
//   hpnn attack   --model FILE --dataset fashion [--alpha 0.1]
//                 [--init stolen|random --epochs E --lr LR]
//   hpnn inspect  --model FILE
//   hpnn overhead [--dim 256]
//   hpnn fault-campaign --model FILE --dataset fashion --key HEX
//                 [--bits 0,1,2,4,8 --trials N --acc-rate F --scale-error F
//                  --json 1]
//
// Dataset names: fashion | cifar | svhn (the synthetic stand-ins).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpnn::cli {

/// Dispatches one CLI invocation. `tokens` excludes the program name.
/// Writes human-readable output to `out`; returns a process exit code.
/// User errors (bad flags, unknown commands, bad files) print a message and
/// return 1 instead of throwing.
int run_command(const std::vector<std::string>& tokens, std::ostream& out);

/// The usage text printed by `hpnn help` and on errors.
std::string usage();

}  // namespace hpnn::cli
