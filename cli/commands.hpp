// The hpnn CLI command implementations, separated from main() so the test
// suite can drive them directly.
//
//   hpnn keygen   [--seed N]
//   hpnn train    --arch CNN1 --dataset fashion --key HEX --out FILE
//                 [--schedule-seed N --epochs E --lr LR --img S --tpc N
//                  --width W --model-id ID]
//   hpnn eval     --model FILE --dataset fashion
//                 [--key HEX --schedule-seed N]      (omit key = attacker)
//   hpnn attack   --model FILE --dataset fashion [--alpha 0.1]
//                 [--init stolen|random --epochs E --lr LR]
//   hpnn defend-bench --dataset fashion
//                 [--schemes sign-lock,weight-stream
//                  --attacks finetune,key-recovery,distillation
//                  --budgets 1,4,16 --json-out BENCH_defense.json]
//   hpnn inspect  --model FILE
//   hpnn provision --zoo DIR --name N --key HEX --model-id ID
//                 [--devices N --probes N --attest 0|1 --json 1
//                  --challenge FILE | --challenge-out FILE]
//   hpnn overhead [--dim 256]
//   hpnn fault-campaign --model FILE --dataset fashion --key HEX
//                 [--bits 0,1,2,4,8 --trials N --acc-rate F --scale-error F
//                  --json 1]
//   hpnn serve-sim [--requests N --batch B --seed S --key-seu-rate F
//                  --replicas N --degradation P --verify M --json 1]
//
// Dataset names: fashion | cifar | svhn (the synthetic stand-ins).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hpnn::cli {

/// Dispatches one CLI invocation. `tokens` excludes the program name.
/// Writes human-readable output to `out`; returns a process exit code.
/// Errors print a message and return a code keyed to the error taxonomy
/// instead of throwing: 1 generic failure, 2 usage error (bad flags or
/// unknown command), 3 serialization (bad artifact/dataset file), 4 key or
/// integrity error, 5 deadline exceeded, 6 no device available, 7 retries
/// exhausted, 8 admission rejected (daemon shedding load), 9 request queue
/// full.
int run_command(const std::vector<std::string>& tokens, std::ostream& out);

/// The usage text printed by `hpnn help` and on errors.
std::string usage();

}  // namespace hpnn::cli
