#include "commands.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "args.hpp"
#include "attack/campaign.hpp"
#include "attack/finetune.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "data/synthetic.hpp"
#include "hpnn/calibration.hpp"
#include "hpnn/keychain.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "hpnn/zoo_store.hpp"
#include "hw/device.hpp"
#include "hw/fault.hpp"
#include "hw/overhead.hpp"
#include "nn/summary.hpp"
#include "nn/trainer.hpp"
#include "serve/chaos.hpp"
#include "serve/daemon/daemon.hpp"
#include "serve/fleet.hpp"
#include "serve/daemon/load_gen.hpp"
#include "serve/daemon/protocol.hpp"
#include "tensor/backend.hpp"

namespace hpnn::cli {

namespace {

data::SyntheticFamily family_from_name(const std::string& name) {
  if (name == "fashion") return data::SyntheticFamily::kFashionSynth;
  if (name == "cifar") return data::SyntheticFamily::kColorShapes;
  if (name == "svhn") return data::SyntheticFamily::kDigitSynth;
  throw Error("unknown dataset '" + name + "' (fashion | cifar | svhn)");
}

data::SplitDataset load_dataset(const Args& args) {
  if (args.has("train-file") || args.has("test-file")) {
    // Pre-exported dataset files (see the `dataset` command).
    data::SplitDataset split;
    split.train = data::load_dataset_file(args.require("train-file"));
    split.test = data::load_dataset_file(args.require("test-file"));
    return split;
  }
  data::SyntheticConfig dc;
  dc.train_per_class = args.get_int("tpc", 150);
  dc.test_per_class = args.get_int("testpc", 30);
  dc.image_size = args.get_int("img", 20);
  dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 42));
  return data::make_dataset(family_from_name(args.require("dataset")), dc);
}

obf::SchedulePolicy policy_from_args(const Args& args);

/// Resolves the artifact source: --model FILE, or --zoo DIR --name N.
obf::PublishedModel load_artifact(const Args& args) {
  if (args.has("zoo")) {
    obf::ModelZoo zoo(args.require("zoo"));
    return zoo.fetch(args.require("name"));
  }
  return obf::read_published_model_file(args.require("model"));
}

int cmd_zoo(const Args& args, std::ostream& out) {
  obf::ModelZoo zoo(args.require("zoo"));
  const auto entries = zoo.list();
  if (entries.empty()) {
    out << "zoo at " << zoo.directory() << " is empty\n";
    return 0;
  }
  for (const auto& entry : entries) {
    out << entry.name << "\t" << entry.file << "\tsha256:"
        << entry.digest_hex.substr(0, 16) << "...\n";
  }
  out << entries.size() << " name(s) -> " << zoo.object_count()
      << " content object(s)\n";
  return 0;
}

int cmd_provision(const Args& args, std::ostream& out) {
  const auto artifact = load_artifact(args);
  const obf::HpnnKey master = obf::HpnnKey::from_hex(args.require("key"));
  const std::string model_id = args.require("model-id");

  serve::FleetConfig config;
  config.devices = static_cast<std::size_t>(args.get_int("devices", 16));
  config.device.schedule_policy = policy_from_args(args);
  config.attest = args.get_int("attest", 1) != 0;

  // The challenge either comes from the owner (--challenge FILE, the real
  // deployment shape: a vendor cannot forge a passing fleet with a wrong
  // master because the expectations were fixed by the true key), or is
  // synthesized here from the supplied master when this invocation *is*
  // the owner. --challenge-out saves a synthesized challenge for vendors.
  obf::AttestationChallenge challenge;
  if (args.has("challenge")) {
    std::ifstream is(args.require("challenge"), std::ios::binary);
    if (!is) {
      throw SerializationError("cannot open challenge file " +
                               args.require("challenge"));
    }
    challenge = obf::read_challenge(is);
  } else {
    // Scheme-generic owner reference: the artifact's own LockScheme under
    // the derived per-model secrets (sign-lock or weight-stream alike).
    const obf::LockScheme& scheme =
        obf::scheme_by_tag(artifact.scheme_tag);
    const obf::SchemeSecrets secrets = obf::derive_scheme_secrets(
        master, model_id, config.device.schedule_policy);
    auto reference = scheme.make_evaluator(artifact, secrets);
    Rng probe_rng(
        static_cast<std::uint64_t>(args.get_int("probe-seed", 97)));
    challenge = obf::make_challenge(
        reference->network(), artifact.in_channels, artifact.image_size,
        args.get_int("probes", 16), probe_rng);
    if (args.has("challenge-out")) {
      const std::string path = args.require("challenge-out");
      std::ofstream os(path, std::ios::binary);
      obf::write_challenge(os, challenge);
      if (!os) {
        throw SerializationError("cannot write challenge file " + path);
      }
      out << "challenge written to " << path << "\n";
    }
  }

  out << "provisioning " << config.devices << " device(s) for model '"
      << model_id << "' (master fingerprint "
      << obf::key_fingerprint(master).substr(0, 16) << "...)\n";
  const serve::FleetReport report =
      serve::provision_fleet(master, model_id, artifact, challenge, config);
  out << "provisioned " << report.provisioned << "/" << config.devices
      << ", attested " << report.attested << "/" << config.devices
      << ", failed " << report.failed << "\n";
  out << "throughput: " << report.devices_per_second << " devices/s (wall "
      << report.wall_seconds << "s), model key fingerprint "
      << report.model_key_fingerprint.substr(0, 16) << "...\n";
  if (args.has("json")) {
    serve::write_fleet_json(out, report);
    out << "\n";
  }
  if (!report.all_ok(config.attest)) {
    for (std::size_t i = 0; i < report.devices.size(); ++i) {
      if (!report.devices[i].error.empty()) {
        out << "device " << i << ": " << report.devices[i].error << "\n";
      }
    }
    throw KeyError("fleet provisioning incomplete: " +
                   std::to_string(report.failed) + " device(s) failed");
  }
  return 0;
}

int cmd_dataset(const Args& args, std::ostream& out) {
  const auto split = load_dataset(args);
  const std::string prefix = args.require("out");
  data::save_dataset_file(prefix + ".train.hpds", split.train);
  data::save_dataset_file(prefix + ".test.hpds", split.test);
  out << "wrote " << prefix << ".train.hpds (" << split.train.size()
      << " samples) and " << prefix << ".test.hpds (" << split.test.size()
      << " samples)\n";
  return 0;
}

obf::SchedulePolicy policy_from_args(const Args& args) {
  const std::string p = args.get("policy", "interleaved");
  if (p == "interleaved") return obf::SchedulePolicy::kInterleaved;
  if (p == "blocked") return obf::SchedulePolicy::kBlocked;
  throw Error("unknown schedule policy '" + p +
              "' (interleaved | blocked)");
}

models::ModelConfig model_config_for(const Args& args,
                                     const data::Dataset& train) {
  models::ModelConfig mc;
  mc.in_channels = train.channels();
  mc.image_size = train.height();
  mc.num_classes = train.num_classes;
  mc.init_seed = static_cast<std::uint64_t>(args.get_int("init-seed", 7));
  mc.width_mult = args.get_double("width", 1.0);
  return mc;
}

int cmd_keygen(const Args& args, std::ostream& out) {
  Rng rng(static_cast<std::uint64_t>(
      args.get_int("seed", 0x48504E4E)));
  const obf::HpnnKey key = obf::HpnnKey::random(rng);
  out << "key:         " << key.to_hex() << "\n";
  out << "fingerprint: " << obf::key_fingerprint(key) << "\n";
  if (args.has("model-id")) {
    const std::string id = args.require("model-id");
    const obf::HpnnKey sub = obf::derive_model_key(key, id);
    out << "model key (" << id << "): " << sub.to_hex() << "\n";
    out << "schedule seed (" << id
        << "): " << obf::derive_schedule_seed(key, id) << "\n";
  }
  return 0;
}

int cmd_train(const Args& args, std::ostream& out) {
  const auto split = load_dataset(args);
  obf::HpnnKey key = obf::HpnnKey::from_hex(args.require("key"));
  std::uint64_t schedule_seed =
      static_cast<std::uint64_t>(args.get_int("schedule-seed", 0xDAC));
  if (args.has("model-id")) {
    // Master-key mode: diversify per model id.
    const std::string id = args.require("model-id");
    schedule_seed = obf::derive_schedule_seed(key, id);
    key = obf::derive_model_key(key, id);
    out << "derived model key for '" << id
        << "', fingerprint: " << obf::key_fingerprint(key) << "\n";
  }
  const models::Architecture arch =
      models::arch_from_name(args.get("arch", "CNN1"));

  obf::Scheduler scheduler(schedule_seed, policy_from_args(args));
  obf::LockedModel model(arch, model_config_for(args, split.train), key,
                         scheduler);
  out << "training " << models::arch_name(arch) << " ("
      << model.locked_neuron_count() << " locked neurons) on "
      << split.train.name << "...\n";

  obf::OwnerTrainOptions opt;
  opt.epochs = args.get_int("epochs", 8);
  opt.sgd.lr = args.get_double("lr", 0.01);
  opt.sgd.momentum = args.get_double("momentum", 0.9);
  opt.sgd.weight_decay = args.get_double("weight-decay", 5e-4);
  opt.batch_size = args.get_int("batch", 32);
  const auto report =
      obf::train_locked_model(model, split.train, split.test, opt);

  out << "train accuracy (with key): " << report.train_accuracy * 100
      << "%\n";
  out << "test accuracy  (with key): " << report.test_accuracy * 100
      << "%\n";
  const double nokey =
      obf::evaluate_without_key(model, key, scheduler, split.test);
  out << "test accuracy  (no key)  : " << nokey * 100 << "%\n";

  if (args.has("zoo")) {
    // Publish straight into a zoo store instead of a bare file.
    obf::ModelZoo zoo(args.require("zoo"));
    zoo.publish(args.require("name"), model);
    out << "published '" << args.require("name") << "' to zoo "
        << zoo.directory() << "\n";
    return 0;
  }
  const std::string path = args.require("out");
  if (args.has("static-quant")) {
    // Calibrate static int8 activation scales on (a slice of) the training
    // set and embed them in the artifact.
    const std::int64_t n =
        std::min<std::int64_t>(split.train.size(), 64);
    const std::int64_t sample =
        split.train.images.numel() / split.train.size();
    std::vector<std::int64_t> dims = split.train.images.shape().dims();
    dims[0] = n;
    const Tensor calib(Shape{dims},
                       std::vector<float>(split.train.images.data(),
                                          split.train.images.data() +
                                              n * sample));
    const auto scales = obf::calibrate_activation_scales(model, calib);
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      throw Error("cannot open " + path + " for writing");
    }
    obf::publish_model(os, model, scales);
    out << "calibrated " << scales.size() << " static activation scales\n";
  } else {
    obf::publish_model_file(path, model);
  }
  out << "published artifact: " << path << "\n";
  return 0;
}

int cmd_eval(const Args& args, std::ostream& out) {
  const auto artifact =
      load_artifact(args);
  const auto split = load_dataset(args);
  if (args.has("key")) {
    const obf::HpnnKey key = obf::HpnnKey::from_hex(args.require("key"));
    const std::uint64_t schedule_seed =
        static_cast<std::uint64_t>(args.get_int("schedule-seed", 0xDAC));
    if (args.has("device")) {
      // Run on the trusted-device integer datapath.
      hw::DeviceConfig dev_cfg;
      dev_cfg.schedule_policy = policy_from_args(args);
      hw::TrustedDevice device(key, schedule_seed, dev_cfg);
      device.load_model(artifact);
      std::int64_t correct = 0;
      const std::int64_t n = split.test.size();
      const std::int64_t sample = split.test.images.numel() / n;
      for (std::int64_t at = 0; at < n; at += 64) {
        const std::int64_t count = std::min<std::int64_t>(64, n - at);
        std::vector<std::int64_t> dims = split.test.images.shape().dims();
        dims[0] = count;
        Tensor batch(Shape{dims},
                     std::vector<float>(
                         split.test.images.data() + at * sample,
                         split.test.images.data() + (at + count) * sample));
        const auto pred = device.classify(batch);
        for (std::int64_t i = 0; i < count; ++i) {
          correct += (pred[static_cast<std::size_t>(i)] ==
                      split.test.labels[static_cast<std::size_t>(at + i)]);
        }
      }
      out << "trusted-device accuracy: "
          << 100.0 * static_cast<double>(correct) / static_cast<double>(n)
          << "%\n";
      const auto& stats = device.mmu_stats();
      out << "mmu: " << stats.mac_ops << " MACs, " << stats.cycles
          << " cycles, " << stats.locked_outputs << " keyed outputs\n";
    } else {
      obf::Scheduler scheduler(schedule_seed, policy_from_args(args));
      auto model = obf::instantiate_locked(artifact, key, scheduler);
      out << "accuracy (with key): "
          << nn::evaluate_accuracy(model->network(), split.test.images,
                                   split.test.labels) *
                 100
          << "%\n";
    }
  } else {
    auto baseline = obf::instantiate_baseline(artifact);
    out << "accuracy (no key, attacker view): "
        << nn::evaluate_accuracy(*baseline, split.test.images,
                                 split.test.labels) *
               100
        << "%\n";
  }
  return 0;
}

int cmd_attack(const Args& args, std::ostream& out) {
  const auto artifact =
      load_artifact(args);
  const auto split = load_dataset(args);
  const double alpha = args.get_double("alpha", 0.10);
  Rng thief_rng(static_cast<std::uint64_t>(args.get_int("thief-seed", 2)));
  const data::Dataset thief =
      data::thief_subset(split.train, alpha, thief_rng);

  attack::FineTuneOptions opt;
  opt.epochs = args.get_int("epochs", 80);
  opt.sgd.lr = args.get_double("lr", 0.01);
  opt.sgd.momentum = args.get_double("momentum", 0.9);
  opt.sgd.weight_decay = args.get_double("weight-decay", 5e-4);
  const std::string init = args.get("init", "stolen");
  const attack::InitStrategy strategy =
      init == "random" ? attack::InitStrategy::kRandomSmall
                       : attack::InitStrategy::kStolenWeights;

  out << "fine-tuning attack (" << attack::init_strategy_name(strategy)
      << ") with " << thief.size() << " thief samples (alpha = "
      << alpha * 100 << "%)...\n";
  const auto report =
      attack::finetune_attack(artifact, thief, split.test, strategy, opt);
  out << "attack accuracy: final " << report.final_accuracy * 100
      << "%, best " << report.best_accuracy * 100 << "%\n";
  return 0;
}

/// Parses a comma-separated list of names ("sign-lock,weight-stream").
std::vector<std::string> parse_name_list(const std::string& csv) {
  std::vector<std::string> names;
  std::string token;
  std::istringstream ss(csv);
  while (std::getline(ss, token, ',')) {
    if (!token.empty()) {
      names.push_back(token);
    }
  }
  return names;
}

/// Parses "1,4,16" into attack budgets.
std::vector<std::int64_t> parse_budget_list(const std::string& csv) {
  std::vector<std::int64_t> budgets;
  std::string token;
  std::istringstream ss(csv);
  while (std::getline(ss, token, ',')) {
    try {
      std::size_t consumed = 0;
      const long long v = std::stoll(token, &consumed);
      if (consumed != token.size() || v <= 0) {
        throw Error("");
      }
      budgets.push_back(v);
    } catch (const std::exception&) {
      throw UsageError("bad --budgets entry '" + token +
                       "' (expected positive integers)");
    }
  }
  if (budgets.empty()) {
    throw UsageError("--budgets must list at least one budget");
  }
  return budgets;
}

int cmd_defend_bench(const Args& args, std::ostream& out) {
  const auto split = load_dataset(args);

  attack::DefenseCampaignOptions opt;
  opt.arch = models::arch_from_name(args.get("arch", "CNN1"));
  opt.thief_alpha = args.get_double("alpha", 0.25);
  opt.owner_epochs = args.get_int("epochs", 6);
  opt.batch_size = args.get_int("batch", 32);
  opt.lr = args.get_double("lr", 0.01);
  opt.oracle_samples = args.get_int("oracle-samples", 128);
  opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 2020));
  opt.init_seed = static_cast<std::uint64_t>(args.get_int("init-seed", 7));
  if (args.has("schemes")) {
    opt.schemes = parse_name_list(args.require("schemes"));
  }
  if (args.has("attacks")) {
    opt.attacks = parse_name_list(args.require("attacks"));
  }
  if (args.has("budgets")) {
    opt.budgets = parse_budget_list(args.require("budgets"));
  }

  out << "defense benchmark: " << models::arch_name(opt.arch) << ", "
      << (opt.schemes.empty() ? obf::registered_scheme_tags().size()
                              : opt.schemes.size())
      << " scheme(s) x " << opt.attacks.size() << " attack(s) x "
      << opt.budgets.size() << " budget(s)\n";
  const attack::DefenseCampaignReport report =
      attack::run_defense_campaign(split, opt);

  out << "chance accuracy: " << report.chance_accuracy * 100
      << "%, thief set " << report.thief_size << " samples\n";
  for (const auto& b : report.baselines) {
    out << "scheme " << b.scheme << ": protected "
        << b.protected_accuracy * 100 << "%, no key "
        << b.no_key_accuracy * 100 << "%, locked neurons "
        << b.locked_neurons << "\n";
  }
  out << "scheme          attack        budget  attacker-acc  work\n";
  for (const auto& c : report.cells) {
    out << c.scheme << std::string(16 - std::min<std::size_t>(
                                            16, c.scheme.size()), ' ')
        << c.attack << std::string(14 - std::min<std::size_t>(
                                            14, c.attack.size()), ' ')
        << c.budget << "\t" << c.attacker_accuracy * 100 << "%\t"
        << c.work << "\n";
  }

  const std::string json_path = args.get("json-out", "BENCH_defense.json");
  if (json_path != "-") {
    std::ofstream os(json_path);
    if (!os) {
      throw SerializationError("cannot write " + json_path);
    }
    attack::write_defense_json(os, report);
    out << "curves written to " << json_path << "\n";
  }
  if (args.has("json")) {
    attack::write_defense_json(out, report);
  }
  return 0;
}

int cmd_inspect(const Args& args, std::ostream& out) {
  const auto artifact =
      load_artifact(args);
  out << "architecture: " << models::arch_name(artifact.arch) << "\n";
  out << "input:        " << artifact.in_channels << "x"
      << artifact.image_size << "x" << artifact.image_size << "\n";
  out << "classes:      " << artifact.num_classes << "\n";
  out << "width mult:   " << artifact.width_mult << "\n";
  out << "lock scheme:  " << artifact.scheme_tag << " ("
      << obf::scheme_by_tag(artifact.scheme_tag).description() << ", "
      << artifact.scheme_payload.size() << "-byte payload)\n";
  std::int64_t total = 0;
  for (const auto& p : artifact.parameters) {
    total += p.value.numel();
  }
  out << "parameters:   " << total << " in " << artifact.parameters.size()
      << " tensors\n";
  out << "buffers:      " << artifact.buffers.size() << "\n";
  if (!artifact.activation_scales.empty()) {
    out << "static quant:  " << artifact.activation_scales.size()
        << " calibrated activation scales\n";
  }
  if (args.has("tensors")) {
    for (const auto& p : artifact.parameters) {
      out << "  " << p.name << " " << p.value.shape().to_string() << "\n";
    }
  }
  if (args.has("summary")) {
    auto net = obf::instantiate_baseline(artifact);
    out << nn::summary_table(*net);
  }
  return 0;
}

/// Parses "0,1,2,4,8" into bit counts for the key-SEU campaign.
std::vector<std::size_t> parse_bit_counts(const std::string& csv) {
  std::vector<std::size_t> counts;
  std::string token;
  std::istringstream ss(csv);
  while (std::getline(ss, token, ',')) {
    try {
      std::size_t consumed = 0;
      const unsigned long v = std::stoul(token, &consumed);
      if (consumed != token.size() || v > obf::HpnnKey::kBits) {
        throw Error("");
      }
      counts.push_back(v);
    } catch (const std::exception&) {
      throw Error("bad --bits entry '" + token +
                  "' (expected integers 0.." +
                  std::to_string(obf::HpnnKey::kBits) + ")");
    }
  }
  if (counts.empty()) {
    throw Error("--bits must list at least one flip count");
  }
  return counts;
}

int cmd_fault_campaign(const Args& args, std::ostream& out) {
  const auto artifact = load_artifact(args);
  const auto split = load_dataset(args);
  const obf::HpnnKey key = obf::HpnnKey::from_hex(args.require("key"));
  const std::uint64_t schedule_seed =
      static_cast<std::uint64_t>(args.get_int("schedule-seed", 0xDAC));
  hw::DeviceConfig dev_cfg;
  dev_cfg.schedule_policy = policy_from_args(args);

  const auto bit_counts = parse_bit_counts(args.get("bits", "0,1,2,4,8"));
  const int trials = static_cast<int>(args.get_int("trials", 3));
  const auto campaign_seed =
      static_cast<std::uint64_t>(args.get_int("campaign-seed", 1));

  const auto baseline = hw::run_fault_trial(
      key, schedule_seed, artifact, split.test.images, split.test.labels,
      hw::FaultPlan{}, dev_cfg);
  out << "trusted-device baseline accuracy: " << baseline.accuracy * 100
      << "%\n";

  const auto points = hw::run_key_flip_campaign(
      key, schedule_seed, artifact, split.test.images, split.test.labels,
      bit_counts, trials, campaign_seed, dev_cfg);
  out << "flipped-bits  raw-mean  raw-min  served  detected\n";
  for (const auto& p : points) {
    out << p.bits_flipped << "\t" << p.mean_accuracy * 100 << "%\t"
        << p.min_accuracy * 100 << "%\t" << p.mean_served_accuracy * 100
        << "%\t" << p.detection_rate * 100 << "%\n";
  }

  const double acc_rate = args.get_double("acc-rate", 0.0);
  if (acc_rate > 0.0) {
    hw::FaultPlan plan;
    plan.accumulator_flip_rate = acc_rate;
    plan.accumulator_bit =
        static_cast<int>(args.get_int("acc-bit", plan.accumulator_bit));
    plan.seed = campaign_seed;
    const auto trial = hw::run_fault_trial(
        key, schedule_seed, artifact, split.test.images, split.test.labels,
        plan, dev_cfg);
    out << "accumulator faults (rate " << acc_rate << ", bit "
        << plan.accumulator_bit << "): accuracy " << trial.accuracy * 100
        << "%, " << trial.stats.accumulator_faults << " flips\n";
  }
  const double scale_err = args.get_double("scale-error", 0.0);
  if (scale_err != 0.0) {
    hw::FaultPlan plan;
    plan.scale_relative_error = scale_err;
    const auto trial = hw::run_fault_trial(
        key, schedule_seed, artifact, split.test.images, split.test.labels,
        plan, dev_cfg);
    out << "scale corruption (rel. error " << scale_err << "): accuracy "
        << trial.accuracy * 100 << "%\n";
  }

  if (args.has("json")) {
    hw::write_campaign_json(out, models::arch_name(artifact.arch),
                            baseline.accuracy, points);
    out << "\n";
  }
  return 0;
}

int cmd_metrics_demo(const Args& args, std::ostream& out) {
  if (!metrics::enabled()) {
    out << "metrics are disabled (HPNN_METRICS=off or compiled out); "
           "nothing to demo\n";
    return 1;
  }
  // Tiny end-to-end pass — train a locked model, publish it, serve a batch
  // on the trusted device — so every instrumented layer (tensor ops, pool,
  // trainer, MMU, device) shows up in the snapshot printed below.
  data::SyntheticConfig dc;
  dc.train_per_class = args.get_int("tpc", 6);
  dc.test_per_class = args.get_int("testpc", 3);
  dc.image_size = args.get_int("img", 12);
  dc.seed = static_cast<std::uint64_t>(args.get_int("data-seed", 42));
  const auto split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);

  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
  const obf::HpnnKey key = obf::HpnnKey::random(rng);
  const std::uint64_t schedule_seed = 0xDAC;
  obf::Scheduler scheduler(schedule_seed, obf::SchedulePolicy::kInterleaved);
  models::ModelConfig mc = model_config_for(args, split.train);
  obf::LockedModel model(models::arch_from_name(args.get("arch", "MLP")), mc,
                         key, scheduler);

  obf::OwnerTrainOptions opt;
  opt.epochs = args.get_int("epochs", 1);
  opt.batch_size = 16;
  obf::train_locked_model(model, split.train, split.test, opt);

  std::stringstream artifact_buf;
  obf::publish_model(artifact_buf, model);
  const obf::PublishedModel artifact =
      obf::read_published_model(artifact_buf);
  hw::TrustedDevice device(key, schedule_seed, hw::DeviceConfig{});
  device.load_model(artifact);
  device.classify(split.test.images);

  const auto snap = metrics::MetricsRegistry::instance().snapshot();
  metrics::write_json(out, snap);
  const auto events = metrics::TraceBuffer::instance().events();
  out << "trace: " << events.size() << " spans retained (capacity "
      << metrics::TraceBuffer::instance().capacity() << ")\n";
  return 0;
}

serve::DegradationPolicy degradation_from_name(const std::string& name) {
  if (name == "fail_closed") return serve::DegradationPolicy::kFailClosed;
  if (name == "degrade_to_subset") {
    return serve::DegradationPolicy::kDegradeToSubset;
  }
  if (name == "reject_with_retry_after") {
    return serve::DegradationPolicy::kRejectWithRetryAfter;
  }
  throw Error("unknown degradation policy '" + name +
              "' (fail_closed | degrade_to_subset | reject_with_retry_after)");
}

serve::VerifyMode verify_from_name(const std::string& name) {
  if (name == "none") return serve::VerifyMode::kNone;
  if (name == "echo") return serve::VerifyMode::kEcho;
  if (name == "digest") return serve::VerifyMode::kDigest;
  if (name == "witness") return serve::VerifyMode::kWitness;
  throw Error("unknown verify mode '" + name +
              "' (none | echo | digest | witness)");
}

/// Shared daemon/load knobs for serve, serve-load and serve-sim
/// --offered-qps mode. Defaults model a device sustaining ~6.6k rows/s
/// (400us + 100us/row, 8-row batches).
serve::LoadScenario load_scenario_from_args(const Args& args) {
  serve::LoadScenario scenario;
  scenario.offered_qps = args.get_double("offered-qps", 4'000.0);
  scenario.requests = static_cast<int>(args.get_int("requests", 400));
  scenario.batch = args.get_int("batch", 1);
  scenario.tenants = static_cast<int>(args.get_int("tenants", 4));
  scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  scenario.burst = static_cast<int>(args.get_int("burst", 1));
  scenario.key_seu_rate = args.get_double("key-seu-rate", 0.0);
  scenario.quarantine_at_request =
      static_cast<int>(args.get_int("quarantine-at", -1));
  scenario.config.replicas =
      static_cast<std::size_t>(args.get_int("replicas", 4));
  scenario.config.retry.max_attempts =
      static_cast<int>(args.get_int("max-attempts", 4));
  scenario.config.degradation =
      degradation_from_name(args.get("degradation", "degrade_to_subset"));
  scenario.config.verify = verify_from_name(args.get("verify", "digest"));
  scenario.daemon.batcher.max_batch_rows = args.get_int("max-batch", 8);
  scenario.daemon.batcher.slo_p99_us =
      static_cast<std::uint64_t>(args.get_int("slo-us", 20'000));
  scenario.daemon.batcher.max_linger_us =
      static_cast<std::uint64_t>(args.get_int("max-linger-us", 2'000));
  scenario.daemon.queue.capacity =
      static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  scenario.daemon.queue.max_queue_wait_us =
      static_cast<std::uint64_t>(args.get_int("max-queue-wait-us", 0));
  scenario.daemon.admission.high_watermark =
      static_cast<std::size_t>(args.get_int("high-watermark", 48));
  scenario.daemon.admission.low_watermark =
      static_cast<std::size_t>(args.get_int("low-watermark", 24));
  scenario.daemon.admission.per_tenant.tokens_per_sec =
      args.get_double("tenant-qps", 0.0);
  scenario.daemon.admission.per_tenant.burst =
      args.get_double("tenant-burst", 8.0);
  scenario.daemon.sessions.capacity =
      static_cast<std::size_t>(args.get_int("session-capacity", 64));
  scenario.daemon.sim_service_base_us =
      static_cast<std::uint64_t>(args.get_int("service-base-us", 400));
  scenario.daemon.sim_service_per_row_us =
      static_cast<std::uint64_t>(args.get_int("service-per-row-us", 100));
  return scenario;
}

void print_load_report(std::ostream& out, const serve::LoadScenario& scenario,
                       const serve::LoadReport& report) {
  out << "offered " << report.offered << " requests @ "
      << scenario.offered_qps << " qps (burst " << scenario.burst
      << ", sustainable ~" << serve::sustainable_qps(scenario) << " qps)\n";
  out << "accepted " << report.accepted << ", completed " << report.completed
      << ", shed " << report.shed << ", queue-full " << report.queue_full
      << ", expired " << report.expired << ", failed " << report.failed
      << ", wrong " << report.wrong << "\n";
  out << "latency us p50/p99/max: " << report.p50_latency_us << "/"
      << report.p99_latency_us << "/" << report.max_latency_us
      << "; queue wait us p50/p99: " << report.p50_queue_wait_us << "/"
      << report.p99_queue_wait_us << "\n";
  out << "retry-after hints us: [" << report.min_retry_after_us << ", "
      << report.max_retry_after_us << "]; batches " << report.daemon.batches
      << ", quarantines " << report.pool.quarantines << ", re-provisions "
      << report.pool.reprovisions << "\n";
}

int cmd_serve_load(const Args& args, std::ostream& out) {
  const auto bundle = serve::make_chaos_model(
      static_cast<std::uint64_t>(args.get_int("model-seed", 33)), 16, 0.6,
      /*with_logit_digest=*/true);
  serve::LoadScenario scenario = load_scenario_from_args(args);

  // Sweep offered load, default 0.5x / 1x / 2x of sustainable.
  std::vector<double> sweep;
  if (args.has("qps-list")) {
    std::stringstream ss(args.require("qps-list"));
    std::string token;
    while (std::getline(ss, token, ',')) {
      sweep.push_back(std::stod(token));
    }
  } else if (args.has("offered-qps")) {
    sweep.push_back(scenario.offered_qps);
  } else {
    const double cap = serve::sustainable_qps(scenario);
    sweep = {0.5 * cap, 1.0 * cap, 2.0 * cap};
  }

  int wrong = 0;
  for (const double qps : sweep) {
    scenario.offered_qps = qps;
    const serve::LoadReport report =
        serve::run_load_scenario(bundle, scenario);
    out << "--- offered " << qps << " qps ---\n";
    print_load_report(out, scenario, report);
    if (args.has("json")) {
      serve::write_overload_json(out, scenario, report);
      out << "\n";
    }
    wrong += report.wrong;
  }
  if (wrong > 0) {
    out << "FAIL: " << wrong << " served batches differed from the "
        << "un-faulted reference\n";
    return 1;
  }
  return 0;
}

int cmd_serve(const Args& args, std::ostream& out) {
  const bool sim = args.get_int("sim", 1) != 0;
  const auto bundle = serve::make_chaos_model(
      static_cast<std::uint64_t>(args.get_int("model-seed", 33)), 16, 0.6,
      /*with_logit_digest=*/true);
  serve::LoadScenario defaults = load_scenario_from_args(args);

  core::SimulatedClock sim_clock(0);
  serve::SupervisorConfig config = defaults.config;
  if (sim) {
    config.clock = &sim_clock;
  }
  serve::ServingSupervisor supervisor(bundle.master, bundle.model_id,
                                      bundle.artifact, bundle.challenge,
                                      config);
  serve::DaemonConfig dconfig = defaults.daemon;
  if (sim) {
    dconfig.workers = 0;  // pump mode: the protocol loop drives the clock
  } else {
    dconfig.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    dconfig.sim_service_base_us = 0;  // real inference is the service time
    dconfig.sim_service_per_row_us = 0;
  }
  serve::ServeDaemon daemon(supervisor, bundle.master, bundle.model_id,
                            dconfig);
  daemon.start();

  std::ifstream script;
  std::istream* in = &std::cin;
  if (args.has("script")) {
    const std::string path = args.require("script");
    script.open(path);
    if (!script) {
      throw Error("cannot open script file '" + path + "'");
    }
    in = &script;
  }
  out << "READY model=" << bundle.model_id << " replicas="
      << config.replicas << " mode=" << (sim ? "sim" : "real")
      << " workers=" << dconfig.workers << "\n";

  bool drained = false;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    serve::ProtoRequest request;
    try {
      request = serve::parse_request(line);
    } catch (const Error& e) {
      out << serve::format_error(0, "protocol", 0, e.what()) << "\n";
      continue;
    }
    if (request.kind == serve::ProtoRequest::Kind::kInfer) {
      Rng rng(request.seed);
      Tensor images = Tensor::normal(
          Shape{request.n, bundle.artifact.in_channels,
                bundle.artifact.image_size, bundle.artifact.image_size},
          rng, 0.0f, 0.25f);
      try {
        const serve::Reply reply =
            daemon.submit(request.tenant, std::move(images));
        out << serve::format_reply(request.id, reply) << "\n";
      } catch (...) {
        out << serve::format_exception(request.id, std::current_exception())
            << "\n";
      }
    } else if (request.kind == serve::ProtoRequest::Kind::kStats) {
      out << serve::format_stats(daemon.stats()) << "\n";
    } else if (request.kind == serve::ProtoRequest::Kind::kReload) {
      try {
        for (const auto& [key, value] : request.options) {
          if (key == "slo-us") {
            dconfig.batcher.slo_p99_us = std::stoull(value);
          } else if (key == "max-batch") {
            dconfig.batcher.max_batch_rows = std::stoll(value);
          } else if (key == "max-linger-us") {
            dconfig.batcher.max_linger_us = std::stoull(value);
          } else if (key == "queue-capacity") {
            dconfig.queue.capacity = std::stoull(value);
          } else if (key == "high-watermark") {
            dconfig.admission.high_watermark = std::stoull(value);
          } else if (key == "low-watermark") {
            dconfig.admission.low_watermark = std::stoull(value);
          } else if (key == "tenant-qps") {
            dconfig.admission.per_tenant.tokens_per_sec = std::stod(value);
          } else if (key == "tenant-burst") {
            dconfig.admission.per_tenant.burst = std::stod(value);
          } else if (key == "session-capacity") {
            dconfig.sessions.capacity = std::stoull(value);
          } else {
            throw Error("unknown reload option '" + key + "'");
          }
        }
        daemon.reload(dconfig);
        out << "OK reload\n";
      } catch (const std::exception& e) {
        out << serve::format_error(0, "reload", 0, e.what()) << "\n";
      }
    } else if (request.kind == serve::ProtoRequest::Kind::kDrain) {
      daemon.drain();
      drained = true;
      out << "OK drained\n";
    } else if (request.kind == serve::ProtoRequest::Kind::kQuit) {
      out << "OK bye\n";
      break;
    }
  }
  if (!drained) {
    daemon.drain();
  }
  out << serve::format_stats(daemon.stats()) << "\n";
  return 0;
}

int cmd_serve_sim(const Args& args, std::ostream& out) {
  if (args.has("offered-qps") || args.has("burst")) {
    // Overload mode: open-loop offered load against the serving daemon
    // instead of the serial chaos campaign.
    const auto bundle = serve::make_chaos_model(
        static_cast<std::uint64_t>(args.get_int("model-seed", 33)), 16, 0.6,
        /*with_logit_digest=*/true);
    const serve::LoadScenario scenario = load_scenario_from_args(args);
    const serve::LoadReport report =
        serve::run_load_scenario(bundle, scenario);
    print_load_report(out, scenario, report);
    if (args.has("json")) {
      serve::write_overload_json(out, scenario, report);
      out << "\n";
    }
    if (report.wrong > 0) {
      out << "FAIL: " << report.wrong << " served batches differed from "
          << "the un-faulted reference\n";
      return 1;
    }
    return 0;
  }

  serve::ChaosScenario scenario;
  scenario.requests = static_cast<int>(args.get_int("requests", 40));
  scenario.batch = args.get_int("batch", 2);
  scenario.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  scenario.key_seu_rate = args.get_double("key-seu-rate", 0.1);
  scenario.config.replicas =
      static_cast<std::size_t>(args.get_int("replicas", 4));
  scenario.config.retry.max_attempts =
      static_cast<int>(args.get_int("max-attempts", 4));
  scenario.config.default_deadline_us =
      static_cast<std::uint64_t>(args.get_int("deadline-us", 0));
  scenario.config.degradation =
      degradation_from_name(args.get("degradation", "degrade_to_subset"));
  scenario.config.verify = verify_from_name(args.get("verify", "witness"));

  const double acc_rate = args.get_double("acc-rate", 0.0);
  if (acc_rate > 0.0 && scenario.config.replicas >= 2) {
    // Transient accumulator faults on replica 1 from first provisioning;
    // replacement hardware after re-provisioning is clean.
    scenario.plans.resize(2);
    hw::FaultPlan plan;
    plan.accumulator_flip_rate = acc_rate;
    plan.seed = scenario.seed + 17;
    scenario.plans[1].initial = plan;
  }

  const auto bundle = serve::make_chaos_model(
      static_cast<std::uint64_t>(args.get_int("model-seed", 33)));
  out << "serve-sim: " << scenario.config.replicas << " replicas, "
      << scenario.requests << " requests, key SEU rate "
      << scenario.key_seu_rate << ", "
      << serve::degradation_policy_name(scenario.config.degradation)
      << ", verify " << serve::verify_mode_name(scenario.config.verify)
      << "\n";
  const serve::ChaosReport report =
      serve::run_chaos_scenario(bundle, scenario);
  out << "served " << report.succeeded << "/" << report.requests
      << " requests (" << report.wrong << " wrong, " << report.timeouts
      << " timeouts, " << report.unavailable << " unavailable, "
      << report.retry_exhausted << " retry-exhausted)\n";
  out << "faults:   " << report.seus_injected << " key SEUs injected, "
      << report.pool.quarantines << " quarantines, "
      << report.pool.reprovisions << " re-provisions, "
      << report.pool.probes << " probes\n";
  out << "attempts: " << report.attempts << " total (" << report.retries
      << " retries), " << report.degraded << " degraded successes\n";
  if (args.has("json")) {
    serve::write_chaos_json(out, scenario, report);
    out << "\n";
  }
  if (report.wrong > 0) {
    out << "FAIL: " << report.wrong << " served predictions differed from "
        << "the un-faulted reference\n";
    return 1;
  }
  return 0;
}

int cmd_backends(const Args& args, std::ostream& out) {
  (void)args;
  // Listing must not force resolution side effects beyond registration:
  // report the active backend exactly as the next kernel call would see it.
  const std::string active = ops::backend().name();
  for (const auto& name : ops::backend_names()) {
    const core::ComputeBackend* be = ops::find_backend(name);
    out << (name == active ? "* " : "  ") << name;
    if (!be->supported()) {
      out << " (unsupported on this CPU)";
    }
    out << "\n      " << be->description() << "\n";
  }
  out << "\nselection: --backend > HPNN_BACKEND > HPNN_SIMD (legacy) > "
         "auto-pick\n";
  return 0;
}

int cmd_overhead(const Args& args, std::ostream& out) {
  const std::int64_t dim = args.get_int("dim", 256);
  const auto report = hw::mmu_overhead(dim);
  out << report.to_string() << "\n";
  out << "overhead vs 1e6-gate reference MMU: "
      << report.overhead_vs_reference(1000000) * 100 << "%\n";
  return 0;
}

}  // namespace

std::string usage() {
  return
      "hpnn — Hardware Protected Neural Network toolkit (DAC 2020 repro)\n"
      "\n"
      "commands:\n"
      "  keygen   [--seed N] [--model-id ID]          generate an HPNN key\n"
      "  dataset  --dataset D --out PREFIX            export .hpds files\n"
      "  zoo      --zoo DIR                           list a model-zoo store\n"
      "  provision --zoo DIR --name N | --model FILE\n"
      "           --key HEX --model-id ID [--devices N --probes N\n"
      "            --attest 0|1 --json 1\n"
      "            --challenge FILE | --challenge-out FILE]\n"
      "                                               attest a device fleet\n"
      "                                               off one master key\n"
      "  train    --arch A --dataset D --key HEX --out FILE\n"
      "           [--model-id ID --schedule-seed N --policy P --epochs E\n"
      "            --lr LR --img S --tpc N --width W --static-quant 1]\n"
      "                                               key-dependent training\n"
      "  eval     --model FILE --dataset D [--key HEX [--device 1]]\n"
      "                                               evaluate an artifact\n"
      "  attack   --model FILE --dataset D [--alpha F --init stolen|random]\n"
      "                                               fine-tuning attack\n"
      "  defend-bench --dataset D [--schemes T,T --attacks A,A\n"
      "           --budgets 1,4,16 --arch A --alpha F --epochs E\n"
      "           --oracle-samples N --seed S --json-out FILE --json 1]\n"
      "                                               scheme x attack x budget\n"
      "                                               curves (BENCH_defense)\n"
      "  inspect  --model FILE [--tensors 1]          describe an artifact\n"
      "  backends                                     list compute backends\n"
      "                                               (* marks the active one)\n"
      "  overhead [--dim N]                           locking hardware cost\n"
      "  metrics-demo [--arch A --epochs E]           end-to-end pass that\n"
      "                                               prints a metrics snapshot\n"
      "  fault-campaign --model FILE --dataset D --key HEX\n"
      "           [--bits 0,1,2,4,8 --trials N --campaign-seed N\n"
      "            --acc-rate F --acc-bit B --scale-error F --json 1]\n"
      "                                               SEU fault injection\n"
      "  serve-sim [--requests N --batch B --seed S --key-seu-rate F\n"
      "            --replicas N --max-attempts N --deadline-us N\n"
      "            --degradation P --verify M --acc-rate F\n"
      "            --model-seed N --json 1]\n"
      "                                               chaos-test a replicated\n"
      "                                               serving pool\n"
      "           [--offered-qps Q --burst B]         overload mode: open-\n"
      "                                               loop load against the\n"
      "                                               serving daemon\n"
      "  serve    [--sim 1 --workers N --script FILE --replicas N\n"
      "            --verify M --max-batch N --slo-us N --queue-capacity N\n"
      "            --high-watermark N --low-watermark N --tenant-qps F]\n"
      "                                               line-protocol daemon\n"
      "                                               (INFER/STATS/RELOAD/\n"
      "                                                DRAIN/QUIT on stdin)\n"
      "  serve-load [--qps-list A,B,C | --offered-qps Q] [--requests N\n"
      "            --burst B --tenants N --slo-us N --json 1]\n"
      "                                               offered-load sweep,\n"
      "                                               default 0.5x/1x/2x of\n"
      "                                               sustainable capacity\n"
      "\n"
      "datasets: fashion | cifar | svhn (synthetic stand-ins), or\n"
      "          --train-file F --test-file F (exported .hpds files)\n"
      "artifacts: --model FILE, or --zoo DIR --name N (train publishes to\n"
      "           the zoo when --zoo is given)\n"
      "architectures: CNN1 CNN2 CNN3 ResNet18 MLP LeNet5\n"
      "\n"
      "global options:\n"
      "  --threads N   worker-pool size for GEMM/conv/campaign loops\n"
      "                (default: HPNN_THREADS env var, else all cores;\n"
      "                 results are bit-identical at any setting)\n"
      "  --metrics-out PATH   write a metrics snapshot after the command\n"
      "                (.csv extension selects CSV, otherwise JSON;\n"
      "                 disable collection with HPNN_METRICS=off)\n"
      "  --backend B   compute backend: scalar | avx2 | avx512 (see\n"
      "                `hpnn backends`; default: HPNN_BACKEND env var, else\n"
      "                the best tier this CPU supports; unknown or\n"
      "                unsupported names fail closed with exit code 2)\n"
      "\n"
      "exit codes:\n"
      "  0 success          1 command failed       2 usage error\n"
      "  3 bad artifact/data  4 key/integrity error  5 deadline exceeded\n"
      "  6 no device available  7 retries exhausted\n"
      "  8 admission rejected (retry_after hint printed)  9 queue full\n";
}

namespace {

int dispatch(const Args& args, std::ostream& out) {
  if (args.command == "keygen") return cmd_keygen(args, out);
  if (args.command == "dataset") return cmd_dataset(args, out);
  if (args.command == "zoo") return cmd_zoo(args, out);
  if (args.command == "provision") return cmd_provision(args, out);
  if (args.command == "train") return cmd_train(args, out);
  if (args.command == "eval") return cmd_eval(args, out);
  if (args.command == "attack") return cmd_attack(args, out);
  if (args.command == "defend-bench") return cmd_defend_bench(args, out);
  if (args.command == "inspect") return cmd_inspect(args, out);
  if (args.command == "backends") return cmd_backends(args, out);
  if (args.command == "overhead") return cmd_overhead(args, out);
  if (args.command == "metrics-demo") return cmd_metrics_demo(args, out);
  if (args.command == "fault-campaign") {
    return cmd_fault_campaign(args, out);
  }
  if (args.command == "serve-sim") return cmd_serve_sim(args, out);
  if (args.command == "serve") return cmd_serve(args, out);
  if (args.command == "serve-load") return cmd_serve_load(args, out);
  out << "unknown command '" << args.command << "'\n\n" << usage();
  return 2;
}

}  // namespace

int run_command(const std::vector<std::string>& tokens, std::ostream& out) {
  try {
    const Args args = parse_args(tokens);
    if (args.has("threads")) {
      // Global option: overrides HPNN_THREADS for this invocation.
      const std::int64_t threads = args.get_int("threads", 0);
      HPNN_CHECK(threads >= 1, "--threads must be >= 1");
      core::set_thread_count(static_cast<int>(threads));
    }
    if (args.has("backend")) {
      // Global option: overrides HPNN_BACKEND/HPNN_SIMD for this
      // invocation. Fails closed (UsageError -> exit 2) on unknown or
      // unsupported names before any kernel runs.
      ops::set_backend(args.require("backend"));
    }
    if (args.command.empty() || args.command == "help") {
      out << usage();
      return args.command.empty() ? 2 : 0;
    }
    const int rc = dispatch(args, out);
    if (args.has("metrics-out")) {
      // Global option: snapshot whatever the command recorded, even on a
      // nonzero exit — a failed run's partial counters are still useful.
      const std::string path = args.require("metrics-out");
      if (!metrics::enabled()) {
        out << "warning: --metrics-out given but metrics are disabled\n";
      } else if (metrics::write_snapshot_file(path)) {
        out << "metrics snapshot: " << path << "\n";
      }
    }
    return rc;
  } catch (const UsageError& e) {
    out << "error: " << e.what() << "\n";
    return 2;
  } catch (const SerializationError& e) {
    out << "error: " << e.what() << "\n";
    return 3;
  } catch (const KeyError& e) {
    out << "error: " << e.what() << "\n";
    return 4;
  } catch (const TimeoutError& e) {
    out << "error: " << e.what() << "\n";
    return 5;
  } catch (const DeviceUnavailableError& e) {
    out << "error: " << e.what() << "\n";
    return 6;
  } catch (const RetryExhaustedError& e) {
    out << "error: " << e.what() << "\n";
    return 7;
  } catch (const AdmissionRejectedError& e) {
    out << "error: " << e.what() << "\n";
    return 8;
  } catch (const QueueFullError& e) {
    out << "error: " << e.what() << "\n";
    return 9;
  } catch (const Error& e) {
    out << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace hpnn::cli
