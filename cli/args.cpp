#include "args.hpp"

#include <cstdlib>

#include "core/error.hpp"

namespace hpnn::cli {

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = options.find(key);
  return it == options.end() ? fallback : it->second;
}

std::int64_t Args::get_int(const std::string& key,
                           std::int64_t fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw UsageError("--" + key + " expects an integer, got '" + it->second + "'");
  }
  return static_cast<std::int64_t>(v);
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options.find(key);
  if (it == options.end()) {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw UsageError("--" + key + " expects a number, got '" + it->second + "'");
  }
  return v;
}

std::string Args::require(const std::string& key) const {
  const auto it = options.find(key);
  if (it == options.end()) {
    throw UsageError("missing required option --" + key);
  }
  return it->second;
}

Args parse_args(const std::vector<std::string>& tokens) {
  Args args;
  std::size_t i = 0;
  if (!tokens.empty() && tokens[0].rfind("--", 0) != 0) {
    args.command = tokens[0];
    i = 1;
  }
  for (; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) == 0) {
      const std::string body = tok.substr(2);
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        args.options[body.substr(0, eq)] = body.substr(eq + 1);
      } else {
        if (i + 1 >= tokens.size()) {
          throw UsageError("option " + tok + " expects a value");
        }
        args.options[body] = tokens[++i];
      }
    } else {
      args.positional.push_back(tok);
    }
  }
  return args;
}

}  // namespace hpnn::cli
