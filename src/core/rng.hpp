// Deterministic random number generation.
//
// Everything in the library that needs randomness (weight init, dataset
// synthesis, key generation, thief-dataset sampling, shuffling) takes an
// explicit Rng so experiments are reproducible bit-for-bit across runs.
// The generator is xoshiro256**, seeded through SplitMix64.
#pragma once

#include <cstdint>
#include <vector>

namespace hpnn {

/// xoshiro256** pseudo-random generator with explicit seeding.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions, but the library prefers the built-in helpers below so the
/// stream of values is identical across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) ; n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (deterministic, stateless cache).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for parallel streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hpnn
