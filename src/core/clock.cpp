#include "core/clock.hpp"

#include <chrono>
#include <thread>

namespace hpnn::core {

SteadyClock& SteadyClock::instance() {
  static SteadyClock clock;
  return clock;
}

std::uint64_t SteadyClock::now_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

void SteadyClock::sleep_us(std::uint64_t us) {
  if (us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(us));
  }
}

}  // namespace hpnn::core
