// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for (i) integrity digests embedded in published model artifacts —
// a downloaded model-zoo file is untrusted input — and (ii) HPNN key
// fingerprints and per-model subkey diversification (hpnn/keychain.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hpnn {

/// 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Appends bytes to the message.
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& data);

  /// Finalizes and returns the digest. The hasher must not be reused after
  /// finalize() (construct a fresh one instead).
  Sha256Digest finalize();

  /// One-shot helpers.
  static Sha256Digest hash(std::span<const std::uint8_t> data);
  static Sha256Digest hash(const std::string& data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

/// Lowercase hex string of a digest.
std::string to_hex(const Sha256Digest& digest);

}  // namespace hpnn
