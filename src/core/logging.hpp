// Minimal leveled logger.
//
// Bench harnesses and the trainer use this for progress reporting; verbosity
// is controlled globally (default: Info) or via the HPNN_LOG_LEVEL
// environment variable ("debug", "info", "warn", "error", "off").
#pragma once

#include <sstream>
#include <string>

namespace hpnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level);

/// Current global log threshold (initialized from HPNN_LOG_LEVEL if set).
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
}  // namespace detail

/// Streams a single log line at the given level.
/// Usage: HPNN_LOG(Info) << "epoch " << e << " loss " << loss;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= log_level()) {
      detail::log_line(level_, os_.str());
    }
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hpnn

#define HPNN_LOG(severity) ::hpnn::LogStream(::hpnn::LogLevel::k##severity)
