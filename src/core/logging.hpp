// Minimal leveled logger.
//
// Bench harnesses and the trainer use this for progress reporting; verbosity
// is controlled globally (default: Info) or via the HPNN_LOG_LEVEL
// environment variable ("debug", "info", "warn", "error", "off").
#pragma once

#include <sstream>
#include <string>

namespace hpnn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level);

/// Current global log threshold (initialized from HPNN_LOG_LEVEL if set).
LogLevel log_level();

namespace detail {
/// Emits one log line with a "[hpnn LEVEL t<id> +<us>us]" prefix under a
/// process-wide mutex, so lines from pool workers never interleave
/// mid-line. The thread id is metrics::thread_ordinal(); the timestamp is
/// monotonic microseconds since the process trace epoch.
void log_line(LogLevel level, const std::string& msg);
/// Accounts a line suppressed by the level threshold (metrics counter
/// "log.lines_dropped").
void log_dropped(LogLevel level);
}  // namespace detail

/// Streams a single log line at the given level.
/// Usage: HPNN_LOG(Info) << "epoch " << e << " loss " << loss;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() {
    if (level_ >= log_level()) {
      detail::log_line(level_, os_.str());
    } else {
      detail::log_dropped(level_);
    }
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace hpnn

#define HPNN_LOG(severity) ::hpnn::LogStream(::hpnn::LogLevel::k##severity)
