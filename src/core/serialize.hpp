// Binary serialization primitives.
//
// Little-endian, explicitly sized writes/reads with a magic+version header,
// used by the obfuscated-model container format (src/hpnn/model_io).
// All read paths validate sizes and throw SerializationError on corruption —
// a downloaded "model zoo" artifact is untrusted input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hpnn {

/// Streaming binary writer with size-prefixed containers.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);
  void write_i64_vector(const std::vector<std::int64_t>& v);

 private:
  void write_raw(const void* data, std::size_t n);
  std::ostream& os_;
};

/// Streaming binary reader; every method throws SerializationError on
/// truncated or over-long input.
class BinaryReader {
 public:
  /// `max_container_bytes` bounds any single size-prefixed container to guard
  /// against corrupted length fields causing huge allocations.
  explicit BinaryReader(std::istream& is,
                        std::uint64_t max_container_bytes = (1ULL << 32))
      : is_(is), max_container_bytes_(max_container_bytes) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint8_t> read_u8_vector();
  std::vector<std::int64_t> read_i64_vector();

  /// Bytes left in the stream, or `fallback` when the stream is not
  /// seekable.
  std::uint64_t remaining_bytes_or(std::uint64_t fallback);

 private:
  void read_raw(void* data, std::size_t n);
  /// Reads a u64 length prefix and validates it against both the sanity
  /// bound and — for seekable streams — the bytes actually remaining, so a
  /// corrupted length field is rejected before any allocation.
  std::uint64_t read_container_size(std::size_t elem_bytes);
  std::istream& is_;
  std::uint64_t max_container_bytes_;
};

}  // namespace hpnn
