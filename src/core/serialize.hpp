// Binary serialization primitives.
//
// Little-endian, explicitly sized writes/reads with a magic+version header,
// used by the obfuscated-model container format (src/hpnn/model_io).
// All read paths validate sizes and throw SerializationError on corruption —
// a downloaded "model zoo" artifact is untrusted input.
//
// BinaryReader has two backends behind one API: a streaming mode over any
// std::istream, and a span mode over an in-memory ByteView (typically a
// core::MappedFile of a zoo object). Span mode additionally supports
// zero-copy reads — view_bytes()/view_f32_array_aligned() return spans that
// alias the underlying buffer instead of copying, which is what lets the
// artifact loader parse a verified mapping without touching the float
// payload at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/mapped_file.hpp"

namespace hpnn {

using core::ByteView;

/// Streaming binary writer with size-prefixed containers.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os) : os_(os) {}

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_vector(const std::vector<float>& v);
  void write_u8_vector(const std::vector<std::uint8_t>& v);
  void write_i64_vector(const std::vector<std::int64_t>& v);

  /// Size-prefixed f32 array whose *data* starts at a file offset that is a
  /// multiple of `alignment`: after the u64 count, zero bytes pad the
  /// stream until (stream position + offset_bias) % alignment == 0.
  /// `offset_bias` is the absolute file offset at which this writer's
  /// stream begins (0 when writing the file directly; the payload offset
  /// when building a nested payload buffer). A span-mode reader can then
  /// view the floats in place without misaligned access.
  void write_f32_array_aligned(const std::vector<float>& v,
                               std::size_t alignment,
                               std::uint64_t offset_bias);

  /// Bytes written so far (stream position relative to construction is the
  /// caller's business; this queries tellp).
  std::uint64_t position() const;

 private:
  void write_raw(const void* data, std::size_t n);
  std::ostream& os_;
};

/// Binary reader over a stream or an in-memory span; every method throws
/// SerializationError on truncated or over-long input.
class BinaryReader {
 public:
  /// `max_container_bytes` bounds any single size-prefixed container to guard
  /// against corrupted length fields causing huge allocations.
  explicit BinaryReader(std::istream& is,
                        std::uint64_t max_container_bytes = (1ULL << 32));

  /// Span mode: reads parse `data` in place; the caller keeps `data` alive
  /// for at least as long as any span returned by the view_* methods.
  explicit BinaryReader(ByteView data,
                        std::uint64_t max_container_bytes = (1ULL << 32));

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64();
  float read_f32();
  double read_f64();
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::uint8_t> read_u8_vector();
  std::vector<std::int64_t> read_i64_vector();

  /// Reads an array written by write_f32_array_aligned (count, padding,
  /// data), copying the floats out. Works in both modes.
  std::vector<float> read_f32_array_aligned(std::size_t alignment,
                                            std::uint64_t offset_bias);

  bool span_mode() const { return data_ != nullptr; }

  /// Span mode only: size-prefixed byte container returned as a view into
  /// the underlying buffer (no copy). Throws InvariantError in stream mode.
  ByteView view_u8_array();

  /// Span mode only: the counterpart of write_f32_array_aligned that
  /// returns the float data as a span aliasing the underlying buffer —
  /// zero bytes copied. The padding protocol guarantees the data is
  /// `alignment`-aligned in the file; if the resulting in-memory pointer is
  /// still not float-aligned (buffer not at a page/alignment boundary),
  /// the call throws SerializationError rather than fabricate a misaligned
  /// span.
  std::span<const float> view_f32_array_aligned(std::size_t alignment,
                                                std::uint64_t offset_bias);

  /// Bytes consumed so far (span mode: cursor; stream mode: tellg-based,
  /// `fallback` when not seekable).
  std::uint64_t position_or(std::uint64_t fallback);

  /// Bytes left in the input, or `fallback` when the stream is not
  /// seekable.
  std::uint64_t remaining_bytes_or(std::uint64_t fallback);

 private:
  void read_raw(void* data, std::size_t n);
  void skip_alignment_padding(std::size_t alignment,
                              std::uint64_t offset_bias);
  /// Reads a u64 length prefix and validates it against both the sanity
  /// bound and the bytes actually remaining, so a corrupted length field is
  /// rejected before any allocation.
  std::uint64_t read_container_size(std::size_t elem_bytes);

  std::istream* is_ = nullptr;
  const std::uint8_t* data_ = nullptr;  // span mode when non-null
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  std::uint64_t max_container_bytes_;
};

}  // namespace hpnn
