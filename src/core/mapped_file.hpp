// Read-only memory-mapped files.
//
// The artifact load path hashes and parses every model-zoo object; doing
// that through an ifstream means at least one full copy of the bytes into
// userspace buffers, and — worse — the historic hash-then-reopen pattern
// read the file *twice*, leaving a window where the bytes that were
// verified were not the bytes that were parsed. MappedFile maps an
// artifact once; the SHA-256 digest and the parser then consume the same
// ByteView, so there is no second read and no verify/parse divergence.
//
// On platforms (or special files) where mmap fails, the file is read once
// into an owned buffer instead: the ByteView contract — one stable span of
// the file's bytes for the object's lifetime — holds either way.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hpnn::core {

/// A borrowed, read-only view of contiguous bytes. The owner (MappedFile,
/// a buffer, ...) must outlive every view derived from it.
using ByteView = std::span<const std::uint8_t>;

class MappedFile {
 public:
  MappedFile() = default;

  /// Maps `path` read-only (private mapping); throws SerializationError if
  /// the file cannot be opened or sized. A zero-length file maps to an
  /// empty view.
  explicit MappedFile(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The mapped bytes. Stable for the lifetime of this object, including
  /// across moves (the mapping travels with the object).
  ByteView bytes() const {
    return {static_cast<const std::uint8_t*>(data_), size_};
  }

  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// True when the bytes come from an actual mmap (false: owned-buffer
  /// fallback). Either way bytes() obeys the same contract.
  bool is_mapped() const { return mapped_; }

 private:
  void reset() noexcept;

  std::string path_;
  const void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::uint8_t> fallback_;  // owns the bytes when !mapped_
};

}  // namespace hpnn::core
