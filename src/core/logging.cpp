#include "core/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "core/metrics.hpp"

namespace hpnn {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("HPNN_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kInfo;
  }
  const std::string v(env);
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& global_level() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) {
  global_level().store(level);
}

LogLevel log_level() {
  return global_level().load();
}

namespace detail {

void log_line(LogLevel level, const std::string& msg) {
  // Leaked so workers logging during static destruction stay safe.
  static std::mutex* sink_mutex = new std::mutex;
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  const int tid = metrics::thread_ordinal();
  const std::uint64_t now_us = metrics::trace_now_us();
  std::lock_guard<std::mutex> lock(*sink_mutex);
  os << "[hpnn " << level_tag(level) << " t" << tid << " +" << now_us
     << "us] " << msg << '\n';
}

void log_dropped(LogLevel level) {
  (void)level;
  HPNN_METRIC_COUNT("log.lines_dropped", 1);
}

}  // namespace detail

}  // namespace hpnn
