#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <variant>

#include "core/config.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"

namespace hpnn::metrics {

namespace {

bool enabled_from_env() {
  const std::string v = env_string("HPNN_METRICS", "on");
  return !(v == "off" || v == "0" || v == "false");
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{enabled_from_env()};
  return flag;
}

// CAS loop: atomic<double> has no fetch_add until C++20 library support is
// universal, and relaxed order is fine — the sum is order-independent.
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v,
                                                  std::memory_order_relaxed)) {
  }
}

// JSON number formatting: integral doubles print without a fractional part
// so exported values are stable and compact.
std::string format_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::ostringstream os;
    os.precision(0);
    os << std::fixed << v;
    return os.str();
  }
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

bool enabled() {
#ifdef HPNN_METRICS_DISABLED
  return false;
#else
  return enabled_flag().load(std::memory_order_relaxed);
#endif
}

void set_enabled(bool on) {
#ifdef HPNN_METRICS_DISABLED
  (void)on;
#else
  enabled_flag().store(on, std::memory_order_relaxed);
#endif
}

int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local int ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)),
      buckets_(edges_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  HPNN_CHECK(!edges_.empty(), "histogram needs at least one bucket edge");
  HPNN_CHECK(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) ==
                       edges_.end(),
               "histogram edges must be strictly ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= target && counts[i] > 0) {
      const double lo = (i == 0) ? 0.0 : edges_[i - 1];
      // Overflow bucket has no finite upper edge: report the observed max.
      const double hi = (i < edges_.size()) ? edges_[i] : max();
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(counts[i]);
      const double est = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      return std::min(est, max());
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& Histogram::default_time_edges_us() {
  static const std::vector<double> edges = {
      1.0,     2.0,     5.0,      10.0,     20.0,      50.0,      100.0,
      200.0,   500.0,   1000.0,   2000.0,   5000.0,    10000.0,   20000.0,
      50000.0, 100000.0, 200000.0, 500000.0, 1000000.0, 2000000.0, 5000000.0};
  return edges;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Impl {
  using Instrument = std::variant<std::unique_ptr<Counter>,
                                  std::unique_ptr<Gauge>,
                                  std::unique_ptr<Histogram>>;
  mutable std::mutex mutex;
  // std::map keeps snapshot output sorted without an extra pass, and node
  // stability guarantees instrument addresses survive later insertions.
  std::map<std::string, Instrument> instruments;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

// The registry is a leaked singleton: worker threads and static
// destructors may still touch instruments during shutdown.
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->instruments.find(name);
  if (it == impl_->instruments.end()) {
    it = impl_->instruments
             .emplace(name, std::make_unique<Counter>())
             .first;
  }
  auto* slot = std::get_if<std::unique_ptr<Counter>>(&it->second);
  HPNN_CHECK(slot != nullptr,
               "metrics name '" + name + "' already registered as non-counter");
  return **slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->instruments.find(name);
  if (it == impl_->instruments.end()) {
    it = impl_->instruments.emplace(name, std::make_unique<Gauge>()).first;
  }
  auto* slot = std::get_if<std::unique_ptr<Gauge>>(&it->second);
  HPNN_CHECK(slot != nullptr,
               "metrics name '" + name + "' already registered as non-gauge");
  return **slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_edges) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->instruments.find(name);
  if (it == impl_->instruments.end()) {
    if (upper_edges.empty()) {
      upper_edges = Histogram::default_time_edges_us();
    }
    it = impl_->instruments
             .emplace(name, std::make_unique<Histogram>(std::move(upper_edges)))
             .first;
  }
  auto* slot = std::get_if<std::unique_ptr<Histogram>>(&it->second);
  HPNN_CHECK(slot != nullptr, "metrics name '" + name +
                                    "' already registered as non-histogram");
  return **slot;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Snapshot snap;
  for (const auto& [name, instrument] : impl_->instruments) {
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&instrument)) {
      snap.counters.push_back({name, (*c)->value()});
    } else if (const auto* g =
                   std::get_if<std::unique_ptr<Gauge>>(&instrument)) {
      snap.gauges.push_back({name, (*g)->value()});
    } else if (const auto* h =
                   std::get_if<std::unique_ptr<Histogram>>(&instrument)) {
      Snapshot::HistogramEntry entry;
      entry.name = name;
      entry.edges = (*h)->edges();
      entry.buckets = (*h)->bucket_counts();
      entry.count = (*h)->count();
      entry.sum = (*h)->sum();
      entry.min = entry.count > 0 ? (*h)->min() : 0.0;
      entry.max = entry.count > 0 ? (*h)->max() : 0.0;
      entry.p50 = (*h)->percentile(0.50);
      entry.p95 = (*h)->percentile(0.95);
      entry.p99 = (*h)->percentile(0.99);
      snap.histograms.push_back(std::move(entry));
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, instrument] : impl_->instruments) {
    std::visit([](auto& ptr) { ptr->reset(); }, instrument);
  }
}

// ---------------------------------------------------------------------------
// Exporters

void write_json(std::ostream& os, const Snapshot& snap, bool deterministic) {
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    \"" << snap.counters[i].name
       << "\": " << snap.counters[i].value;
  }
  os << (snap.counters.empty() ? "}" : "\n  }");
  if (!deterministic) {
    os << ",\n  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    \"" << snap.gauges[i].name
         << "\": " << format_double(snap.gauges[i].value);
    }
    os << (snap.gauges.empty() ? "}" : "\n  }");
  }
  os << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    \"" << h.name << "\": {"
       << "\"count\": " << h.count;
    if (!deterministic) {
      os << ", \"sum\": " << format_double(h.sum)
         << ", \"min\": " << format_double(h.min)
         << ", \"max\": " << format_double(h.max)
         << ", \"p50\": " << format_double(h.p50)
         << ", \"p95\": " << format_double(h.p95)
         << ", \"p99\": " << format_double(h.p99) << ", \"edges\": [";
      for (std::size_t j = 0; j < h.edges.size(); ++j) {
        os << (j == 0 ? "" : ", ") << format_double(h.edges[j]);
      }
      os << "], \"buckets\": [";
      for (std::size_t j = 0; j < h.buckets.size(); ++j) {
        os << (j == 0 ? "" : ", ") << h.buckets[j];
      }
      os << "]";
    }
    os << "}";
  }
  os << (snap.histograms.empty() ? "}" : "\n  }") << "\n}\n";
}

void write_csv(std::ostream& os, const Snapshot& snap, bool deterministic) {
  os << "kind,name,field,value\n";
  for (const auto& c : snap.counters) {
    os << "counter," << c.name << ",value," << c.value << "\n";
  }
  if (!deterministic) {
    for (const auto& g : snap.gauges) {
      os << "gauge," << g.name << ",value," << format_double(g.value) << "\n";
    }
  }
  for (const auto& h : snap.histograms) {
    os << "histogram," << h.name << ",count," << h.count << "\n";
    if (!deterministic) {
      os << "histogram," << h.name << ",sum," << format_double(h.sum) << "\n";
      os << "histogram," << h.name << ",min," << format_double(h.min) << "\n";
      os << "histogram," << h.name << ",max," << format_double(h.max) << "\n";
      os << "histogram," << h.name << ",p50," << format_double(h.p50) << "\n";
      os << "histogram," << h.name << ",p95," << format_double(h.p95) << "\n";
      os << "histogram," << h.name << ",p99," << format_double(h.p99) << "\n";
    }
  }
}

bool write_snapshot_file(const std::string& path, bool deterministic) {
  std::ofstream out(path);
  if (!out) {
    HPNN_LOG(Warn) << "metrics: cannot open snapshot path " << path;
    return false;
  }
  const Snapshot snap = MetricsRegistry::instance().snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_csv(out, snap, deterministic);
  } else {
    write_json(out, snap, deterministic);
  }
  out.flush();
  if (!out) {
    HPNN_LOG(Warn) << "metrics: failed writing snapshot to " << path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Timers & tracing

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
}

std::uint64_t trace_now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

TraceBuffer::TraceBuffer()
    : mutex_(new std::mutex),
      capacity_(static_cast<std::size_t>(
          std::max<std::int64_t>(env_int("HPNN_TRACE_CAPACITY", 4096), 16))) {
  ring_.resize(capacity_);
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::record(const char* name, std::uint64_t start_us,
                         std::uint64_t duration_us) {
  const int lane = thread_ordinal();
  std::lock_guard<std::mutex> lock(*mutex_);
  ring_[static_cast<std::size_t>(next_ % capacity_)] =
      TraceEvent{name, start_us, duration_us, lane};
  ++next_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<TraceEvent> out;
  const std::uint64_t retained = std::min<std::uint64_t>(next_, capacity_);
  out.reserve(static_cast<std::size_t>(retained));
  const std::uint64_t first = next_ - retained;
  for (std::uint64_t i = first; i < next_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return next_;
}

void TraceBuffer::reset() {
  std::lock_guard<std::mutex> lock(*mutex_);
  next_ = 0;
  std::fill(ring_.begin(), ring_.end(), TraceEvent{});
}

void TraceBuffer::write_json(std::ostream& os) const {
  const std::vector<TraceEvent> evts = events();
  os << "[";
  for (std::size_t i = 0; i < evts.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "  {\"name\": \""
       << (evts[i].name != nullptr ? evts[i].name : "") << "\", \"start_us\": "
       << evts[i].start_us << ", \"dur_us\": " << evts[i].duration_us
       << ", \"lane\": " << evts[i].lane << "}";
  }
  os << (evts.empty() ? "]" : "\n]") << "\n";
}

TraceSpan::TraceSpan(const char* name, Histogram* hist)
    : name_(enabled() ? name : nullptr),
      hist_(enabled() ? hist : nullptr) {
  if (name_ != nullptr || hist_ != nullptr) {
    start_ = std::chrono::steady_clock::now();
  }
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr && hist_ == nullptr) {
    return;
  }
  const auto end = std::chrono::steady_clock::now();
  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  if (hist_ != nullptr) {
    hist_->observe(us);
  }
  if (name_ != nullptr) {
    const std::uint64_t end_us = trace_now_us();
    const auto dur = static_cast<std::uint64_t>(us);
    TraceBuffer::instance().record(name_, end_us >= dur ? end_us - dur : 0,
                                   dur);
  }
}

}  // namespace hpnn::metrics
