#include "core/aligned_buffer.hpp"

#include <algorithm>
#include <new>

#include "core/compute_backend.hpp"

namespace hpnn::core {

namespace {

/// First block size: big enough for the pack buffers of a 28x28 conv layer
/// so steady-state training never chains a second block.
constexpr std::size_t kInitialBlockBytes = std::size_t{1} << 16;  // 64 KiB

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) / align * align;
}

}  // namespace

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    release();
    data_ = other.data_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  return *this;
}

void AlignedBuffer::reserve(std::size_t bytes) {
  if (bytes <= capacity_) {
    return;
  }
  const std::size_t grown = std::max(bytes, capacity_ * 2);
  release();
  data_ = static_cast<std::byte*>(
      ::operator new(grown, std::align_val_t{kScratchAlignment}));
  capacity_ = grown;
}

void AlignedBuffer::release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{kScratchAlignment});
    data_ = nullptr;
    capacity_ = 0;
  }
}

ScratchArena& ScratchArena::tls() {
  thread_local ScratchArena arena;
  return arena;
}

std::size_t ScratchArena::retained_bytes() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) {
    total += block->capacity();
  }
  return total;
}

std::byte* ScratchArena::allocate(std::size_t bytes) {
  bytes = std::max<std::size_t>(round_up(bytes, kScratchAlignment), 1);
  // Bump within the active block when it fits.
  if (active_block_ < blocks_.size()) {
    AlignedBuffer& block = *blocks_[active_block_];
    if (offset_ + bytes <= block.capacity()) {
      std::byte* p = block.data() + offset_;
      offset_ += bytes;
      return p;
    }
    // Advance to the next retained block that fits (its predecessor keeps
    // its live allocations; only the unused tail is skipped).
    for (std::size_t i = active_block_ + 1; i < blocks_.size(); ++i) {
      if (bytes <= blocks_[i]->capacity()) {
        active_block_ = i;
        offset_ = bytes;
        return blocks_[i]->data();
      }
    }
  }
  // Chain a new block; existing blocks (and the pointers into them) are
  // untouched. Doubling keeps the chain length logarithmic in demand.
  const std::size_t last_cap =
      blocks_.empty() ? kInitialBlockBytes / 2 : blocks_.back()->capacity();
  const std::size_t cap = std::max(bytes, last_cap * 2);
  blocks_.push_back(std::make_unique<AlignedBuffer>(cap));
  active_block_ = blocks_.size() - 1;
  offset_ = bytes;
  return blocks_.back()->data();
}

void ScratchArena::refresh_backend_epoch() {
  const std::uint64_t now = compute_backend_epoch();
  if (backend_epoch_ == now) {
    return;
  }
  // The retained blocks may hold packed panels laid out by the previous
  // backend's microtile geometry; drop them rather than risk a replay.
  blocks_.clear();
  active_block_ = 0;
  offset_ = 0;
  backend_epoch_ = now;
}

void ScratchArena::rewind(std::size_t block, std::size_t offset) {
  active_block_ = block;
  offset_ = offset;
  // Full rewind with a fragmented chain: coalesce into one block sized for
  // everything seen so far, so the next pass bumps through contiguous,
  // cache-friendly storage.
  if (active_block_ == 0 && offset_ == 0 && blocks_.size() > 1) {
    const std::size_t total = retained_bytes();
    blocks_.clear();
    blocks_.push_back(std::make_unique<AlignedBuffer>(total));
  }
}

}  // namespace hpnn::core
