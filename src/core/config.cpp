#include "core/config.hpp"

#include <cstdlib>

namespace hpnn {

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return v;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* env = std::getenv(name.c_str());
  return env == nullptr ? fallback : std::string(env);
}

}  // namespace hpnn
