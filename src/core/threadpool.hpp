// Deterministic thread-pool execution layer.
//
// A lazily-started, fixed-size worker pool (size from the HPNN_THREADS
// environment variable, default std::thread::hardware_concurrency) exposing
// one primitive: parallel_for(begin, end, grain, fn).
//
// Determinism contract: the range [begin, end) is split into *static*
// chunks of exactly `grain` iterations (the last chunk may be short). The
// chunk boundaries are a pure function of (begin, end, grain) — never of
// the thread count — so a kernel that writes disjoint outputs per chunk, or
// reduces per-chunk partials in chunk-index order, produces bit-identical
// results at any HPNN_THREADS setting, including 1. Which worker executes
// which chunk is dynamic (work stealing via an atomic cursor); that only
// affects wall-clock, never values.
//
// Nesting: a parallel_for issued from inside a worker runs its chunks
// inline on that worker (no re-entry into the pool), so kernels may freely
// call other parallel kernels — e.g. the per-sample conv loop calling gemm.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>

namespace hpnn::core {

/// Body signature for chunk-indexed loops: [chunk_begin, chunk_end) plus
/// the zero-based chunk index (for per-chunk scratch / partial slots).
using ChunkFn =
    std::function<void(std::int64_t, std::int64_t, std::int64_t)>;

class ThreadPool {
 public:
  /// The process-wide pool. Workers are spawned on first use.
  static ThreadPool& instance();

  /// Number of chunks parallel_for will create for this range — a pure
  /// function of the range and grain, independent of the thread count.
  static std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                                  std::int64_t grain);

  /// Total execution lanes (caller + workers), >= 1.
  int threads() const { return configured_threads_; }

  /// Runs fn over the static chunks of [begin, end); blocks until every
  /// chunk finished. The first exception thrown by a chunk is rethrown in
  /// the calling thread once all chunks have completed or been skipped.
  void run(std::int64_t begin, std::int64_t end, std::int64_t grain,
           const ChunkFn& fn);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  friend void set_thread_count(int n);
  struct Impl;

  ThreadPool();
  ~ThreadPool();

  void restart(int threads);  // joins workers and reconfigures the pool

  Impl* impl_;
  int configured_threads_ = 1;
};

/// Overrides the pool size at runtime (tests, CLI --threads). `n <= 0`
/// re-reads HPNN_THREADS / hardware_concurrency. Must not be called while a
/// parallel_for is in flight.
void set_thread_count(int n);

/// The pool's current lane count (>= 1).
int thread_count();

/// Splits [begin, end) into static chunks of `grain` iterations and runs
/// `fn` across the pool. `fn` is either fn(chunk_begin, chunk_end) or
/// fn(chunk_begin, chunk_end, chunk_index). See the determinism contract
/// at the top of this header.
template <typename Fn>
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  Fn&& fn) {
  if constexpr (std::is_invocable_v<Fn&, std::int64_t, std::int64_t,
                                    std::int64_t>) {
    ThreadPool::instance().run(begin, end, grain, std::forward<Fn>(fn));
  } else {
    static_assert(std::is_invocable_v<Fn&, std::int64_t, std::int64_t>,
                  "parallel_for body must be fn(begin, end[, chunk])");
    ThreadPool::instance().run(
        begin, end, grain,
        [&fn](std::int64_t b, std::int64_t e, std::int64_t) { fn(b, e); });
  }
}

}  // namespace hpnn::core
