#include "core/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"

namespace hpnn::core {

namespace {

/// True on threads owned by the pool; nested parallel_for calls detect this
/// and run inline instead of re-entering the pool (which would deadlock a
/// fully busy pool).
thread_local bool t_in_worker = false;

int default_thread_count() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::int64_t requested =
      env_int("HPNN_THREADS", static_cast<std::int64_t>(hw));
  return static_cast<int>(std::clamp<std::int64_t>(requested, 1, 1024));
}

/// One blocking parallel_for invocation. Heap-allocated and shared with the
/// workers so a worker that wakes up late (after the caller returned) still
/// touches valid memory.
struct Job {
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t chunks = 0;
  const ChunkFn* fn = nullptr;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  // Set at submission when metrics are enabled; workers observe the gap
  // between this and their wake-up as "core.pool.queue_wait_us".
  std::chrono::steady_clock::time_point submitted;

  struct DrainOutcome {
    std::int64_t ran = 0;  // chunks this thread executed (imbalance signal)
    bool last = false;     // this thread completed the final chunk
  };

  /// Claims and runs chunks until none remain.
  DrainOutcome drain() {
    DrainOutcome outcome;
    for (;;) {
      const std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) {
        break;
      }
      const std::int64_t c0 = begin + c * grain;
      const std::int64_t c1 = std::min(end, c0 + grain);
      try {
        (*fn)(c0, c1, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
      ++outcome.ran;
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        outcome.last = true;
      }
    }
    return outcome;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // wakes workers
  std::condition_variable done_cv;   // wakes the caller
  std::shared_ptr<Job> job;          // current job, null when idle
  std::uint64_t epoch = 0;           // bumped per job submission
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock,
                   [&] { return stopping || (job != nullptr && epoch != seen); });
      if (stopping) {
        return;
      }
      seen = epoch;
      std::shared_ptr<Job> current = job;
      lock.unlock();
      if (metrics::enabled()) {
        const auto wait = std::chrono::steady_clock::now() - current->submitted;
        HPNN_METRIC_OBSERVE(
            "core.pool.queue_wait_us",
            std::chrono::duration_cast<std::chrono::microseconds>(wait)
                .count());
      }
      const Job::DrainOutcome outcome = current->drain();
      lock.lock();
      if (outcome.last) {
        done_cv.notify_all();
      }
    }
  }

  void start(int lanes) {
    // `lanes` counts the caller as one execution lane; spawn the rest.
    for (int i = 1; i < lanes; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) {
      w.join();
    }
    workers.clear();
    stopping = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  configured_threads_ = default_thread_count();
  impl_->start(configured_threads_);
}

ThreadPool::~ThreadPool() {
  impl_->stop();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::restart(int threads) {
  impl_->stop();
  configured_threads_ = threads > 0 ? threads : default_thread_count();
  impl_->start(configured_threads_);
}

std::int64_t ThreadPool::chunk_count(std::int64_t begin, std::int64_t end,
                                     std::int64_t grain) {
  HPNN_CHECK(grain >= 1, "parallel_for grain must be >= 1");
  const std::int64_t range = end - begin;
  return range <= 0 ? 0 : (range + grain - 1) / grain;
}

void ThreadPool::run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     const ChunkFn& fn) {
  const std::int64_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) {
    return;
  }
  // Serial fast paths: a one-lane pool, a single chunk, or a nested call
  // from inside a worker all execute inline, in chunk order. The chunk
  // decomposition (and therefore every result bit) is identical to the
  // parallel path.
  if (chunks == 1 || impl_->workers.empty() || t_in_worker) {
    HPNN_METRIC_COUNT("core.pool.jobs_inline", 1);
    HPNN_METRIC_COUNT("core.pool.chunks", chunks);
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t c0 = begin + c * grain;
      fn(c0, std::min(end, c0 + grain), c);
    }
    return;
  }

  HPNN_METRIC_COUNT("core.pool.jobs", 1);
  HPNN_METRIC_COUNT("core.pool.chunks", chunks);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->grain = grain;
  job->end = end;
  job->chunks = chunks;
  job->fn = &fn;
  if (metrics::enabled()) {
    job->submitted = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();

  // The caller is a full execution lane, not a spectator. The share of
  // chunks it ends up running is the chunk-imbalance signal: with perfect
  // load spread it runs ~chunks/lanes of them.
  const Job::DrainOutcome caller = job->drain();
  HPNN_METRIC_COUNT("core.pool.caller_chunks", caller.ran);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == chunks;
    });
    impl_->job = nullptr;
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

void set_thread_count(int n) {
  ThreadPool::instance().restart(n);
}

int thread_count() { return ThreadPool::instance().threads(); }

}  // namespace hpnn::core
