#include "core/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/error.hpp"

namespace hpnn::core {

namespace {

/// True on threads owned by the pool; nested parallel_for calls detect this
/// and run inline instead of re-entering the pool (which would deadlock a
/// fully busy pool).
thread_local bool t_in_worker = false;

int default_thread_count() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::int64_t requested =
      env_int("HPNN_THREADS", static_cast<std::int64_t>(hw));
  return static_cast<int>(std::clamp<std::int64_t>(requested, 1, 1024));
}

/// One blocking parallel_for invocation. Heap-allocated and shared with the
/// workers so a worker that wakes up late (after the caller returned) still
/// touches valid memory.
struct Job {
  std::int64_t begin = 0;
  std::int64_t grain = 1;
  std::int64_t end = 0;
  std::int64_t chunks = 0;
  const ChunkFn* fn = nullptr;
  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  /// Claims and runs chunks until none remain; returns true if this thread
  /// ran the final chunk.
  bool drain() {
    bool finished_last = false;
    for (;;) {
      const std::int64_t c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) {
        break;
      }
      const std::int64_t c0 = begin + c * grain;
      const std::int64_t c1 = std::min(end, c0 + grain);
      try {
        (*fn)(c0, c1, c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == chunks) {
        finished_last = true;
      }
    }
    return finished_last;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // wakes workers
  std::condition_variable done_cv;   // wakes the caller
  std::shared_ptr<Job> job;          // current job, null when idle
  std::uint64_t epoch = 0;           // bumped per job submission
  bool stopping = false;
  std::vector<std::thread> workers;

  void worker_loop() {
    t_in_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      work_cv.wait(lock,
                   [&] { return stopping || (job != nullptr && epoch != seen); });
      if (stopping) {
        return;
      }
      seen = epoch;
      std::shared_ptr<Job> current = job;
      lock.unlock();
      const bool last = current->drain();
      lock.lock();
      if (last) {
        done_cv.notify_all();
      }
    }
  }

  void start(int lanes) {
    // `lanes` counts the caller as one execution lane; spawn the rest.
    for (int i = 1; i < lanes; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (auto& w : workers) {
      w.join();
    }
    workers.clear();
    stopping = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {
  configured_threads_ = default_thread_count();
  impl_->start(configured_threads_);
}

ThreadPool::~ThreadPool() {
  impl_->stop();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::restart(int threads) {
  impl_->stop();
  configured_threads_ = threads > 0 ? threads : default_thread_count();
  impl_->start(configured_threads_);
}

std::int64_t ThreadPool::chunk_count(std::int64_t begin, std::int64_t end,
                                     std::int64_t grain) {
  HPNN_CHECK(grain >= 1, "parallel_for grain must be >= 1");
  const std::int64_t range = end - begin;
  return range <= 0 ? 0 : (range + grain - 1) / grain;
}

void ThreadPool::run(std::int64_t begin, std::int64_t end, std::int64_t grain,
                     const ChunkFn& fn) {
  const std::int64_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) {
    return;
  }
  // Serial fast paths: a one-lane pool, a single chunk, or a nested call
  // from inside a worker all execute inline, in chunk order. The chunk
  // decomposition (and therefore every result bit) is identical to the
  // parallel path.
  if (chunks == 1 || impl_->workers.empty() || t_in_worker) {
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t c0 = begin + c * grain;
      fn(c0, std::min(end, c0 + grain), c);
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->grain = grain;
  job->end = end;
  job->chunks = chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();

  // The caller is a full execution lane, not a spectator.
  job->drain();

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == chunks;
    });
    impl_->job = nullptr;
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

void set_thread_count(int n) {
  ThreadPool::instance().restart(n);
}

int thread_count() { return ThreadPool::instance().threads(); }

}  // namespace hpnn::core
