// The pluggable compute-backend layer (DESIGN §15).
//
// Every dense kernel in the system — GEMM/GEMV, the im2col-lowered conv
// forward/backward, pooling drivers, the vectorized elementwise and
// locked-ReLU ops, and the MMU's fast-fidelity int8 datapath — routes its
// innermost compute through one ComputeBackend. The blocking, packing,
// thread-pool fan-out and chunking structure stays *shared* above the
// interface (tensor/gemm_kernel, tensor/ops): a backend supplies the
// register microkernel and the vector primitives, not its own loop nest.
// That boundary is deliberate — it is what makes the per-backend contracts
// cheap to uphold:
//   - results are bit-identical at any HPNN_THREADS for a fixed backend
//     (chunk boundaries are a pure function of the shape, each C element
//     accumulates its full K extent inside one microkernel call);
//   - Theorem-1 exactness holds through locked-ReLU gradients (the ±1 lock
//     multiply is exact in every vector width);
//   - the int8 MMU datapath is bit-identical across *all* backends (32-bit
//     wrap-around accumulation is modular arithmetic, so any evaluation
//     order — scalar, AVX2 widening, AVX-512 VNNI vpdpbusd — produces the
//     same bits).
// Float GEMM/conv results may differ across backends only by documented
// rounding (FMA vs separate multiply+add, tile-width reduction order); the
// backend-conformance kit (tests/tensor/backend_conformance_test.cpp)
// enforces the tolerance and the bit-exactness contracts for every
// registered backend.
//
// Selection order: `--backend` CLI flag > `HPNN_BACKEND` environment >
// legacy `HPNN_SIMD` environment (off/0/false/scalar force the scalar
// reference) > automatic pick of the highest-priority backend whose
// supported() probe passes. The registry fails closed: an unknown or
// unsupported name is an error, never a silent fallback.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hpnn::core {

/// One compute-kernel implementation tier. Instances are registered once
/// and live for the process lifetime, so raw pointers to them are stable
/// (packed weight panels record which backend laid them out).
class ComputeBackend {
 public:
  virtual ~ComputeBackend() = default;

  /// Stable selection name ("scalar", "avx2", "avx512").
  virtual std::string name() const = 0;

  /// One-line human description for `hpnn backends`.
  virtual std::string description() const = 0;

  /// True when this CPU can execute the backend's kernels. Checked at
  /// selection time; set_active_compute_backend fails closed when false.
  virtual bool supported() const = 0;

  /// Auto-pick rank: the highest-priority supported backend wins when no
  /// explicit selection is made.
  virtual int priority() const = 0;

  // ---- GEMM microtile -----------------------------------------------
  // op(A) is packed into mr-row panels (column-major within a panel),
  // op(B) into nr-column panels (row-major within a panel); the packed
  // panel layout is therefore a property of the backend, and panels must
  // never be replayed through a different backend's microkernel.

  /// Microtile rows (the A-panel height).
  virtual std::int64_t gemm_mr() const = 0;
  /// Microtile columns (the B-panel width); rows of a B panel are
  /// nr floats apart, which every backend keeps 64-byte aligned.
  virtual std::int64_t gemm_nr() const = 0;

  /// One microtile: C[0..mr)[0..nr) = (packed product) + beta * C, with
  /// full-K accumulation held in registers and beta applied once at store
  /// time. `mr`/`nr` may be partial at the matrix edge. No data-dependent
  /// branches: the instruction stream is a pure function of k/mr/nr/beta.
  virtual void gemm_micro(const float* ap, const float* bp, std::int64_t k,
                          float* c, std::int64_t ldc, std::int64_t mr,
                          std::int64_t nr, float beta) const = 0;

  /// m == 1 vector-matrix product: c = alpha * a @ op(B) + beta * c.
  /// The default lowers onto dot (tb) / axpy (!tb) in ascending index
  /// order; backends may override with a fused kernel.
  virtual void gemv(const float* a, const float* b, bool tb, std::int64_t n,
                    std::int64_t k, float alpha, float beta, float* c) const;

  // ---- vectorized elementwise / locked-ReLU -------------------------
  // Per-element semantics are fixed by the scalar reference; every
  // implementation must be branch-free in the data and process elements
  // in ascending index order.

  /// y[i] = max(x[i], 0). In-place (y == x) allowed.
  virtual void relu(const float* x, float* y, std::int64_t n) const = 0;
  /// g[i] = x[i] > 0 ? g[i] : 0 — ReLU backward mask applied in place.
  virtual void relu_mask(const float* x, float* g, std::int64_t n) const = 0;
  /// y[i] = a[i] * b[i]. Any aliasing among a, b, y allowed.
  virtual void mul(const float* a, const float* b, float* y,
                   std::int64_t n) const = 0;
  /// y[i] += s * x[i].
  virtual void axpy(float s, const float* x, float* y,
                    std::int64_t n) const = 0;
  /// y[i] += s.
  virtual void add_scalar(float s, float* y, std::int64_t n) const = 0;
  /// Dot product with a backend-fixed lane-reduction order (deterministic
  /// for a fixed backend).
  virtual float dot(const float* a, const float* b, std::int64_t n) const = 0;
  /// gx[i] = g[i] * lock[i] when z[i] > 0, else 0 — the locked-ReLU delta
  /// rule with f = ReLU fused into one pass. lock values are ±1, so the
  /// multiply is exact and Theorem-1 sign equality holds bit-for-bit in
  /// every backend.
  virtual void lock_relu_grad(const float* g, const float* z,
                              const float* lock, float* gx,
                              std::int64_t n) const = 0;

  // ---- MMU int8 fast-fidelity datapath ------------------------------

  /// out[i,j] = sum_p a[i,p] * w[p,j] with 32-bit wrap-around accumulation
  /// (modular — bit-identical across backends), negated where
  /// negate[i,j] != 0 (Σ(-p) == -(Σp) in two's complement). `negate` may
  /// be null for the unlocked path.
  virtual void matmul_i8(const std::int8_t* a, std::int64_t m,
                         std::int64_t k, const std::int8_t* w, std::int64_t n,
                         const std::uint8_t* negate,
                         std::int32_t* out) const = 0;
};

// ---- registry ---------------------------------------------------------

/// Registers a backend. Names must be unique; duplicates throw. Intended
/// for the built-in tiers (registered on first use by the tensor layer)
/// and for external/experimental backends in tests.
void register_compute_backend(std::unique_ptr<ComputeBackend> backend);

/// Names of every registered backend, in registration order.
std::vector<std::string> compute_backend_names();

/// Lookup; nullptr when unknown. Returned pointers are stable for the
/// process lifetime.
const ComputeBackend* find_compute_backend(const std::string& name);

/// Fail-closed lookup: throws UsageError on unknown names.
const ComputeBackend& compute_backend_by_name(const std::string& name);

/// The active backend. Resolved on first use from the environment
/// (HPNN_BACKEND, then legacy HPNN_SIMD, then auto-pick); throws
/// UsageError when the environment names an unknown or unsupported
/// backend, and Error when the registry is empty.
const ComputeBackend& active_compute_backend();

/// Switches the active backend (tests and the --backend CLI flag do this
/// mid-process). Throws UsageError when `name` is unknown or the backend
/// is not supported on this CPU — never falls back silently. Bumps the
/// backend epoch, which invalidates every cached packed panel and the
/// scratch arenas' retained blocks.
void set_active_compute_backend(const std::string& name);

/// Monotonic counter bumped by every set_active_compute_backend call (and
/// by first-use resolution). Caches keyed on a backend's packed data
/// layout — PackedA panels, ScratchArena retained blocks — record the
/// epoch and treat a mismatch as stale.
std::uint64_t compute_backend_epoch();

/// Pure selection-policy helper (unit-testable without touching the real
/// environment): returns the backend name forced by the environment, or
/// "" for auto-pick. `env_backend` is HPNN_BACKEND; `env_simd` is the
/// legacy HPNN_SIMD kill switch, whose off/0/false/scalar values force the
/// scalar reference backend. Either may be null (unset).
std::string backend_name_from_env(const char* env_backend,
                                  const char* env_simd);

}  // namespace hpnn::core
