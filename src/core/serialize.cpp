#include "core/serialize.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/error.hpp"

static_assert(std::endian::native == std::endian::little,
              "HPNN serialization assumes a little-endian host");

namespace hpnn {

void BinaryWriter::write_raw(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os_) {
    throw SerializationError("write failed (stream error)");
  }
}

void BinaryWriter::write_u8(std::uint8_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_u32(std::uint32_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_u64(std::uint64_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_i64(std::int64_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_f32(float v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_f64(double v) {
  write_raw(&v, sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) {
    write_raw(s.data(), s.size());
  }
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(float));
  }
}

void BinaryWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size());
  }
}

void BinaryWriter::write_i64_vector(const std::vector<std::int64_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(std::int64_t));
  }
}

void BinaryReader::read_raw(void* data, std::size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n) {
    throw SerializationError("read failed: truncated input");
  }
}

std::uint64_t BinaryReader::remaining_bytes_or(std::uint64_t fallback) {
  const std::streampos cur = is_.tellg();
  if (!is_ || cur == std::streampos(-1)) {
    is_.clear();
    return fallback;
  }
  is_.seekg(0, std::ios::end);
  if (!is_) {
    is_.clear();
    is_.seekg(cur);
    return fallback;
  }
  const std::streampos end = is_.tellg();
  is_.seekg(cur);
  if (end == std::streampos(-1) || end < cur) {
    return fallback;
  }
  return static_cast<std::uint64_t>(end - cur);
}

std::uint64_t BinaryReader::read_container_size(std::size_t elem_bytes) {
  const std::uint64_t n = read_u64();
  if (n > max_container_bytes_ / elem_bytes) {
    throw SerializationError("read failed: container length " +
                             std::to_string(n) + " exceeds sanity bound");
  }
  // A length field cannot legitimately exceed the bytes physically left in
  // the input; reject before resize() so truncated or hostile headers never
  // trigger a huge allocation.
  const std::uint64_t remaining = remaining_bytes_or(max_container_bytes_);
  if (n > remaining / elem_bytes) {
    throw SerializationError("read failed: container length " +
                             std::to_string(n) +
                             " exceeds remaining input size");
  }
  return n;
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v{};
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v{};
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v{};
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_container_size(1);
  std::string s(n, '\0');
  if (n > 0) {
    read_raw(s.data(), n);
  }
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_container_size(sizeof(float));
  std::vector<float> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(float));
  }
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vector() {
  const std::uint64_t n = read_container_size(1);
  std::vector<std::uint8_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n);
  }
  return v;
}

std::vector<std::int64_t> BinaryReader::read_i64_vector() {
  const std::uint64_t n = read_container_size(sizeof(std::int64_t));
  std::vector<std::int64_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(std::int64_t));
  }
  return v;
}

}  // namespace hpnn
