#include "core/serialize.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>

#include "core/error.hpp"

static_assert(std::endian::native == std::endian::little,
              "HPNN serialization assumes a little-endian host");

namespace hpnn {

namespace {

/// Zero bytes needed so that (position + bias) becomes a multiple of
/// `alignment`.
std::size_t padding_for(std::uint64_t position, std::uint64_t bias,
                        std::size_t alignment) {
  if (alignment <= 1) {
    return 0;
  }
  const std::uint64_t at = position + bias;
  const std::uint64_t rem = at % alignment;
  return rem == 0 ? 0 : static_cast<std::size_t>(alignment - rem);
}

}  // namespace

void BinaryWriter::write_raw(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os_) {
    throw SerializationError("write failed (stream error)");
  }
}

void BinaryWriter::write_u8(std::uint8_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_u32(std::uint32_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_u64(std::uint64_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_i64(std::int64_t v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_f32(float v) {
  write_raw(&v, sizeof v);
}
void BinaryWriter::write_f64(double v) {
  write_raw(&v, sizeof v);
}

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  if (!s.empty()) {
    write_raw(s.data(), s.size());
  }
}

void BinaryWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(float));
  }
}

void BinaryWriter::write_u8_vector(const std::vector<std::uint8_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size());
  }
}

void BinaryWriter::write_i64_vector(const std::vector<std::int64_t>& v) {
  write_u64(v.size());
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(std::int64_t));
  }
}

std::uint64_t BinaryWriter::position() const {
  const std::streampos p = os_.tellp();
  if (p == std::streampos(-1)) {
    throw SerializationError("aligned write requires a seekable stream");
  }
  return static_cast<std::uint64_t>(p);
}

void BinaryWriter::write_f32_array_aligned(const std::vector<float>& v,
                                           std::size_t alignment,
                                           std::uint64_t offset_bias) {
  write_u64(v.size());
  const std::size_t pad = padding_for(position(), offset_bias, alignment);
  static constexpr char kZeros[64] = {};
  std::size_t left = pad;
  while (left > 0) {
    const std::size_t n = left < sizeof(kZeros) ? left : sizeof(kZeros);
    write_raw(kZeros, n);
    left -= n;
  }
  if (!v.empty()) {
    write_raw(v.data(), v.size() * sizeof(float));
  }
}

BinaryReader::BinaryReader(std::istream& is,
                           std::uint64_t max_container_bytes)
    : is_(&is), max_container_bytes_(max_container_bytes) {}

BinaryReader::BinaryReader(ByteView data, std::uint64_t max_container_bytes)
    : data_(data.data()),
      size_(data.size()),
      max_container_bytes_(max_container_bytes) {}

void BinaryReader::read_raw(void* data, std::size_t n) {
  if (span_mode()) {
    if (n > size_ - pos_) {
      throw SerializationError("read failed: truncated input");
    }
    std::memcpy(data, data_ + pos_, n);
    pos_ += n;
    return;
  }
  is_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_->gcount()) != n) {
    throw SerializationError("read failed: truncated input");
  }
}

std::uint64_t BinaryReader::position_or(std::uint64_t fallback) {
  if (span_mode()) {
    return pos_;
  }
  const std::streampos cur = is_->tellg();
  if (!*is_ || cur == std::streampos(-1)) {
    is_->clear();
    return fallback;
  }
  return static_cast<std::uint64_t>(cur);
}

std::uint64_t BinaryReader::remaining_bytes_or(std::uint64_t fallback) {
  if (span_mode()) {
    return size_ - pos_;
  }
  const std::streampos cur = is_->tellg();
  if (!*is_ || cur == std::streampos(-1)) {
    is_->clear();
    return fallback;
  }
  is_->seekg(0, std::ios::end);
  if (!*is_) {
    is_->clear();
    is_->seekg(cur);
    return fallback;
  }
  const std::streampos end = is_->tellg();
  is_->seekg(cur);
  if (end == std::streampos(-1) || end < cur) {
    return fallback;
  }
  return static_cast<std::uint64_t>(end - cur);
}

std::uint64_t BinaryReader::read_container_size(std::size_t elem_bytes) {
  const std::uint64_t n = read_u64();
  if (n > max_container_bytes_ / elem_bytes) {
    throw SerializationError("read failed: container length " +
                             std::to_string(n) + " exceeds sanity bound");
  }
  // A length field cannot legitimately exceed the bytes physically left in
  // the input; reject before resize() so truncated or hostile headers never
  // trigger a huge allocation.
  const std::uint64_t remaining = remaining_bytes_or(max_container_bytes_);
  if (n > remaining / elem_bytes) {
    throw SerializationError("read failed: container length " +
                             std::to_string(n) +
                             " exceeds remaining input size");
  }
  return n;
}

void BinaryReader::skip_alignment_padding(std::size_t alignment,
                                          std::uint64_t offset_bias) {
  std::uint64_t position;
  if (span_mode()) {
    position = pos_;
  } else {
    // Stream mode relies on tellg for the padding math; a non-seekable
    // stream would desynchronize silently, so fail loudly instead. In
    // practice artifact streams (ifstream, stringstream) are seekable.
    const std::streampos cur = is_->tellg();
    if (!*is_ || cur == std::streampos(-1)) {
      is_->clear();
      throw SerializationError(
          "aligned read requires a seekable stream or span input");
    }
    position = static_cast<std::uint64_t>(cur);
  }
  std::size_t pad = padding_for(position, offset_bias, alignment);
  char scratch[64];
  while (pad > 0) {
    const std::size_t n = pad < sizeof(scratch) ? pad : sizeof(scratch);
    read_raw(scratch, n);
    pad -= n;
  }
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v{};
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v{};
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v{};
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v{};
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_container_size(1);
  std::string s(n, '\0');
  if (n > 0) {
    read_raw(s.data(), n);
  }
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_container_size(sizeof(float));
  std::vector<float> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(float));
  }
  return v;
}

std::vector<std::uint8_t> BinaryReader::read_u8_vector() {
  const std::uint64_t n = read_container_size(1);
  std::vector<std::uint8_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n);
  }
  return v;
}

std::vector<std::int64_t> BinaryReader::read_i64_vector() {
  const std::uint64_t n = read_container_size(sizeof(std::int64_t));
  std::vector<std::int64_t> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(std::int64_t));
  }
  return v;
}

std::vector<float> BinaryReader::read_f32_array_aligned(
    std::size_t alignment, std::uint64_t offset_bias) {
  const std::uint64_t n = read_container_size(sizeof(float));
  skip_alignment_padding(alignment, offset_bias);
  std::vector<float> v(n);
  if (n > 0) {
    read_raw(v.data(), n * sizeof(float));
  }
  return v;
}

ByteView BinaryReader::view_u8_array() {
  HPNN_CHECK(span_mode(), "view_u8_array requires a span-backed reader");
  const std::uint64_t n = read_container_size(1);
  ByteView view{data_ + pos_, static_cast<std::size_t>(n)};
  pos_ += static_cast<std::size_t>(n);
  return view;
}

std::span<const float> BinaryReader::view_f32_array_aligned(
    std::size_t alignment, std::uint64_t offset_bias) {
  HPNN_CHECK(span_mode(),
             "view_f32_array_aligned requires a span-backed reader");
  const std::uint64_t n = read_container_size(sizeof(float));
  skip_alignment_padding(alignment, offset_bias);
  // read_container_size validated n against the bytes remaining *before*
  // the padding was consumed; re-check against what is actually left.
  if (n > (size_ - pos_) / sizeof(float)) {
    throw SerializationError("read failed: truncated aligned f32 array");
  }
  const std::uint8_t* at = data_ + pos_;
  if (reinterpret_cast<std::uintptr_t>(at) % alignof(float) != 0) {
    throw SerializationError(
        "aligned f32 array is misaligned in memory (buffer not aligned)");
  }
  pos_ += static_cast<std::size_t>(n) * sizeof(float);
  return {reinterpret_cast<const float*>(at), static_cast<std::size_t>(n)};
}

}  // namespace hpnn
