// Cache-line-aligned scratch storage for the packed kernels.
//
// AlignedBuffer is raw, 64-byte-aligned, geometrically-grown storage with no
// construction/destruction of elements — the GEMM pack buffers, im2col
// columns and per-layer packed weight panels all live in one. Contents are
// discarded on growth (scratch semantics), so reserve() is O(1) amortized
// and never copies.
//
// ScratchArena is a thread-local bump allocator over a chain of
// AlignedBuffers. Kernels open a ScratchArena::Scope, carve out what they
// need, and the storage is handed back (not freed) when the scope closes —
// the second conv batch, the second GEMM of a training step, every
// subsequent call reuses the same cache-hot bytes instead of hitting the
// system allocator. Blocks already handed out stay valid while new blocks
// are chained on, so pointers never move mid-scope; when the arena fully
// rewinds it coalesces the chain into one block sized for the high-water
// mark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hpnn::core {

/// Alignment of every buffer and arena allocation: one cache line, which
/// also satisfies 32-byte AVX vector loads.
inline constexpr std::size_t kScratchAlignment = 64;

class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t bytes) { reserve(bytes); }
  ~AlignedBuffer() { release(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Ensures at least `bytes` of capacity. Growth discards contents; the
  /// new capacity is at least double the old one so repeated reserve()
  /// calls settle after the first pass over a workload.
  void reserve(std::size_t bytes);

  std::size_t capacity() const { return capacity_; }
  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }

  /// Reserves room for `count` floats and returns the typed base pointer.
  float* float_slots(std::size_t count) {
    reserve(count * sizeof(float));
    return reinterpret_cast<float*>(data_);
  }

 private:
  void release();

  std::byte* data_ = nullptr;
  std::size_t capacity_ = 0;
};

class ScratchArena {
 public:
  /// The calling thread's arena. Each pool worker (and the main thread)
  /// owns one, so kernels running under parallel_for get private scratch
  /// with no synchronization.
  static ScratchArena& tls();

  /// RAII allocation frame. Allocations made through a Scope are handed
  /// back when it is destroyed (destruction order must nest, which the
  /// stack guarantees). Pointers remain stable for the Scope's lifetime.
  class Scope {
   public:
    Scope() : Scope(tls()) {}
    explicit Scope(ScratchArena& arena)
        : arena_(arena),
          saved_block_(arena.active_block_),
          saved_offset_(arena.offset_) {
      // An outermost scope (no live allocations) re-tags the arena with
      // the current compute-backend epoch, dropping retained blocks whose
      // contents were laid out by a previous backend — a packed panel must
      // never be replayed through another backend's microkernel.
      if (saved_block_ == 0 && saved_offset_ == 0) {
        arena.refresh_backend_epoch();
      }
    }
    ~Scope() { arena_.rewind(saved_block_, saved_offset_); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// 64-byte-aligned uninitialized allocation of `count` floats.
    float* floats(std::int64_t count) {
      return reinterpret_cast<float*>(
          arena_.allocate(static_cast<std::size_t>(count) * sizeof(float)));
    }
    /// 64-byte-aligned uninitialized allocation of `count` bytes.
    std::byte* bytes(std::size_t count) { return arena_.allocate(count); }

   private:
    ScratchArena& arena_;
    std::size_t saved_block_;
    std::size_t saved_offset_;
  };

  /// Total capacity currently retained across all blocks (observability /
  /// tests).
  std::size_t retained_bytes() const;
  /// Number of blocks in the chain; 1 once the arena has coalesced.
  std::size_t block_count() const { return blocks_.size(); }

 private:
  friend class Scope;

  std::byte* allocate(std::size_t bytes);
  void rewind(std::size_t block, std::size_t offset);
  /// Drops every retained block (and restamps) when the compute-backend
  /// epoch moved since the last outermost scope. Only called with no live
  /// allocations, so clearing the chain is safe.
  void refresh_backend_epoch();

  std::vector<std::unique_ptr<AlignedBuffer>> blocks_;
  std::size_t active_block_ = 0;  // block currently being bumped
  std::size_t offset_ = 0;        // bump offset within the active block
  std::uint64_t backend_epoch_ = 0;  // epoch the retained blocks belong to
};

}  // namespace hpnn::core
