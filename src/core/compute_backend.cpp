#include "core/compute_backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "core/error.hpp"

namespace hpnn::core {

void ComputeBackend::gemv(const float* a, const float* b, bool tb,
                          std::int64_t n, std::int64_t k, float alpha,
                          float beta, float* c) const {
  if (tb) {
    // op(B) = B^T stored n x k: each output is a contiguous dot product.
    for (std::int64_t j = 0; j < n; ++j) {
      const float d = alpha * dot(a, b + j * k, k);
      c[j] = d + (beta == 0.0f ? 0.0f : beta * c[j]);
    }
    return;
  }
  // op(B) = B stored k x n: a chain of axpys over contiguous B rows.
  // beta == 0 must overwrite without reading (NaN garbage must not
  // propagate).
  if (beta == 0.0f) {
    for (std::int64_t j = 0; j < n; ++j) {
      c[j] = 0.0f;
    }
  } else if (beta != 1.0f) {
    for (std::int64_t j = 0; j < n; ++j) {
      c[j] *= beta;
    }
  }
  for (std::int64_t p = 0; p < k; ++p) {
    axpy(alpha * a[p], b + p * n, c, n);
  }
}

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ComputeBackend>> backends;
};

Registry& registry() {
  static Registry r;
  return r;
}

std::atomic<const ComputeBackend*> g_active{nullptr};
std::atomic<std::uint64_t> g_epoch{1};

/// Picks the highest-priority supported backend. Called with the registry
/// lock held.
const ComputeBackend* auto_pick_locked(const Registry& r) {
  const ComputeBackend* best = nullptr;
  for (const auto& b : r.backends) {
    if (b->supported() &&
        (best == nullptr || b->priority() > best->priority())) {
      best = b.get();
    }
  }
  return best;
}

const ComputeBackend* lookup_locked(const Registry& r,
                                    const std::string& name) {
  for (const auto& b : r.backends) {
    if (b->name() == name) {
      return b.get();
    }
  }
  return nullptr;
}

std::string known_names_locked(const Registry& r) {
  std::string names;
  for (const auto& b : r.backends) {
    if (!names.empty()) {
      names += ", ";
    }
    names += b->name();
  }
  return names;
}

/// Fail-closed resolution of `name` against the registry (lock held):
/// unknown and unsupported names both throw, never fall back.
const ComputeBackend& resolve_locked(const Registry& r,
                                     const std::string& name,
                                     const char* origin) {
  const ComputeBackend* b = lookup_locked(r, name);
  if (b == nullptr) {
    throw UsageError(std::string(origin) + " names unknown compute backend '" +
                     name + "' (registered: " + known_names_locked(r) + ")");
  }
  if (!b->supported()) {
    throw UsageError(std::string(origin) + " names compute backend '" + name +
                     "', which this CPU does not support");
  }
  return *b;
}

}  // namespace

std::string backend_name_from_env(const char* env_backend,
                                  const char* env_simd) {
  if (env_backend != nullptr && env_backend[0] != '\0') {
    return env_backend;
  }
  if (env_simd != nullptr &&
      (std::strcmp(env_simd, "off") == 0 || std::strcmp(env_simd, "0") == 0 ||
       std::strcmp(env_simd, "false") == 0 ||
       std::strcmp(env_simd, "scalar") == 0)) {
    // Legacy kill switch for A/B runs: force the scalar reference tier.
    return "scalar";
  }
  return "";
}

void register_compute_backend(std::unique_ptr<ComputeBackend> backend) {
  HPNN_CHECK(backend != nullptr, "cannot register a null compute backend");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& b : r.backends) {
    HPNN_CHECK(b->name() != backend->name(),
               "compute backend '" + backend->name() +
                   "' is already registered");
  }
  r.backends.push_back(std::move(backend));
}

std::vector<std::string> compute_backend_names() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const auto& b : r.backends) {
    names.push_back(b->name());
  }
  return names;
}

const ComputeBackend* find_compute_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  return lookup_locked(r, name);
}

const ComputeBackend& compute_backend_by_name(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const ComputeBackend* b = lookup_locked(r, name);
  if (b == nullptr) {
    throw UsageError("unknown compute backend '" + name +
                     "' (registered: " + known_names_locked(r) + ")");
  }
  return *b;
}

const ComputeBackend& active_compute_backend() {
  const ComputeBackend* active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) {
    return *active;
  }
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  active = g_active.load(std::memory_order_acquire);
  if (active != nullptr) {
    return *active;
  }
  HPNN_CHECK(!r.backends.empty(),
             "no compute backends registered (the tensor layer registers "
             "the built-ins on first use)");
  const std::string forced = backend_name_from_env(
      std::getenv("HPNN_BACKEND"), std::getenv("HPNN_SIMD"));
  const ComputeBackend* chosen = nullptr;
  if (!forced.empty()) {
    chosen = &resolve_locked(r, forced, "environment");
  } else {
    chosen = auto_pick_locked(r);
    HPNN_CHECK(chosen != nullptr,
               "no registered compute backend is supported on this CPU");
  }
  g_active.store(chosen, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
  return *chosen;
}

void set_active_compute_backend(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  const ComputeBackend& chosen = resolve_locked(r, name, "--backend");
  g_active.store(&chosen, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

std::uint64_t compute_backend_epoch() {
  return g_epoch.load(std::memory_order_acquire);
}

}  // namespace hpnn::core
