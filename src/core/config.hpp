// Environment-variable backed configuration knobs.
//
// Every bench/example is sized to finish quickly on a single CPU core by
// default; users can scale experiments towards the paper's full settings by
// exporting HPNN_* variables (documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>

namespace hpnn {

/// Returns the environment value for `name`, or `fallback` if unset/invalid.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Returns the environment value for `name`, or `fallback` if unset/invalid.
double env_double(const std::string& name, double fallback);

/// Returns the environment value for `name`, or `fallback` if unset.
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace hpnn
