#include "core/error.hpp"

#include <sstream>

namespace hpnn::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "HPNN_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InvariantError(os.str());
}

}  // namespace hpnn::detail
