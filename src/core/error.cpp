#include "core/error.hpp"

#include <sstream>

namespace hpnn {

std::string RetryExhaustedError::format(
    const std::string& what, const std::vector<std::string>& history) {
  std::ostringstream os;
  os << what << " after " << history.size() << " attempt"
     << (history.size() == 1 ? "" : "s");
  if (!history.empty()) {
    os << ":";
    for (std::size_t i = 0; i < history.size(); ++i) {
      os << "\n  attempt " << (i + 1) << ": " << history[i];
    }
  }
  return os.str();
}

}  // namespace hpnn

namespace hpnn::detail {

void throw_check_failure(const char* cond, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "HPNN_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw InvariantError(os.str());
}

}  // namespace hpnn::detail
