// Process-wide observability: metrics registry + trace spans.
//
// A MetricsRegistry of named counters, gauges and fixed-bucket histograms,
// plus RAII timers (ScopedTimer) and trace spans (TraceSpan) feeding a
// preallocated ring buffer. Hot-path increments are lock-free atomics, so
// counter totals stay *exact* under any HPNN_THREADS setting; the registry
// mutex is only taken on first lookup of a name and when snapshotting.
//
// Determinism contract (DESIGN.md §9): counters, gauges and histogram
// sample counts are pure functions of the work performed, so the
// *deterministic* snapshot view is byte-identical across identical runs.
// Wall-clock-derived fields (histogram sums/buckets/percentiles, trace
// timestamps) are measurements, not functions of the input, and are only
// present in the full view.
//
// Kill switch: compile-time -DHPNN_METRICS_DISABLED (CMake -DHPNN_METRICS=OFF)
// pins enabled() to false; at runtime HPNN_METRICS=off (or "0") disables
// collection. Every instrumentation site guards on enabled(), so the
// disabled cost is one branch on a cached atomic bool.
//
// Instrument naming convention: dot-separated "<layer>.<op>.<what>", e.g.
// "tensor.gemm.calls", "hw.device.infer.latency_us". Time histograms end in
// "_us" and record microseconds.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace hpnn::metrics {

/// Whether collection is active (compile-time and runtime kill switch).
bool enabled();

/// Overrides the runtime switch (tests, CLI). No-op when compiled out.
void set_enabled(bool on);

/// Small dense per-thread ordinal (0 = first thread to ask). Stable for the
/// thread's lifetime; used as the trace lane and the log thread-id. Always
/// available, even with metrics disabled.
int thread_ordinal();

/// Monotonically increasing sum. Lock-free; totals are exact under
/// concurrency (relaxed atomics — ordering is irrelevant for sums).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (e.g. "trainer.last_epoch_loss").
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bucket edges are set at creation and never
/// change, so observe() is a binary search plus two relaxed atomic adds —
/// no allocation, no lock. Percentiles are estimated by linear
/// interpolation inside the owning bucket.
class Histogram {
 public:
  /// `upper_edges` must be non-empty and strictly ascending; an implicit
  /// overflow bucket covers (upper_edges.back(), +inf).
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  /// q in [0, 1]; 0 when empty. Upper-edge interpolation, clamped to max().
  double percentile(double q) const;

  const std::vector<double>& edges() const { return edges_; }
  /// Length edges().size() + 1; the last entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

  /// Default timing edges (microseconds), 1us .. 5s, roughly 1-2-5 spaced.
  static const std::vector<double>& default_time_edges_us();

 private:
  std::vector<double> edges_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // edges_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Point-in-time copy of every registered instrument, sorted by name.
struct Snapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

/// The process-wide registry. Instrument references returned by
/// counter()/gauge()/histogram() are stable for the process lifetime
/// (reset() zeroes values but never invalidates references), so call sites
/// cache them in a function-local static and skip the name lookup on the
/// hot path.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Create-or-lookup by name. Looking up an existing name with a different
  /// instrument kind throws InvariantError.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_edges` empty selects Histogram::default_time_edges_us(). Edges
  /// are fixed by the first registration; later lookups ignore the argument.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_edges = {});

  Snapshot snapshot() const;

  /// Zeroes every instrument (registrations and references survive).
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry();
  ~MetricsRegistry();
  struct Impl;
  Impl* impl_;
};

/// JSON object {"counters":{...},"gauges":{...},"histograms":{...}} with
/// keys in sorted order. `deterministic` drops every wall-clock-derived
/// field (gauges, histogram sum/min/max/percentiles/buckets), leaving only
/// counters and histogram sample counts — byte-identical across identical
/// runs (DESIGN.md §9).
void write_json(std::ostream& os, const Snapshot& snap,
                bool deterministic = false);

/// CSV rows "kind,name,field,value", sorted; same deterministic filter.
void write_csv(std::ostream& os, const Snapshot& snap,
               bool deterministic = false);

/// Snapshots the registry to `path` (".csv" extension selects CSV,
/// anything else JSON). Returns false (and logs a warning) on I/O failure.
bool write_snapshot_file(const std::string& path, bool deterministic = false);

/// RAII wall-time recorder: observes elapsed microseconds into `hist` on
/// destruction. A null histogram makes it a no-op — the idiom is
///   metrics::ScopedTimer t(metrics::enabled() ? &hist : nullptr);
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// One completed span in the trace ring buffer.
struct TraceEvent {
  const char* name = nullptr;  // static string supplied by the TraceSpan
  std::uint64_t start_us = 0;  // since the process trace epoch
  std::uint64_t duration_us = 0;
  int lane = 0;  // thread_ordinal() of the recording thread
};

/// Fixed-capacity ring of completed spans: preallocated at first use
/// (HPNN_TRACE_CAPACITY, default 4096 events), so recording never
/// allocates after warm-up; once full, the oldest events are overwritten.
class TraceBuffer {
 public:
  static TraceBuffer& instance();

  void record(const char* name, std::uint64_t start_us,
              std::uint64_t duration_us);

  /// Events currently retained, oldest first.
  std::vector<TraceEvent> events() const;
  /// Total record() calls, including overwritten events.
  std::uint64_t total_recorded() const;
  std::size_t capacity() const { return capacity_; }
  void reset();

  /// JSON array of the retained events (full view only — timestamps are
  /// inherently nondeterministic).
  void write_json(std::ostream& os) const;

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

 private:
  TraceBuffer();
  ~TraceBuffer() = default;

  mutable std::mutex* mutex_;  // leaked: spans may finish during exit
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_ = 0;  // total records; next_ % capacity_ is the slot
};

/// RAII span: on destruction records (name, start, duration) into the
/// TraceBuffer and, when given, a latency histogram. `name` must be a
/// string with static storage duration (a literal) — the ring buffer
/// stores the pointer. No-op when metrics are disabled at construction.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Histogram* hist = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;  // null when disabled
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Microseconds since the process trace epoch (first use).
std::uint64_t trace_now_us();

}  // namespace hpnn::metrics

/// Bumps counter `name` by `n` when metrics are enabled. `name` must be a
/// string literal. The instrument reference is cached in a function-local
/// static, so the registry lookup happens once per call site.
#define HPNN_METRIC_COUNT(name, n)                                        \
  do {                                                                    \
    if (::hpnn::metrics::enabled()) {                                     \
      static ::hpnn::metrics::Counter& hpnn_metric_counter_ =             \
          ::hpnn::metrics::MetricsRegistry::instance().counter(name);     \
      hpnn_metric_counter_.add(static_cast<std::uint64_t>(n));            \
    }                                                                     \
  } while (false)

/// Sets gauge `name` to `v` when metrics are enabled.
#define HPNN_METRIC_GAUGE(name, v)                                        \
  do {                                                                    \
    if (::hpnn::metrics::enabled()) {                                     \
      static ::hpnn::metrics::Gauge& hpnn_metric_gauge_ =                 \
          ::hpnn::metrics::MetricsRegistry::instance().gauge(name);       \
      hpnn_metric_gauge_.set(static_cast<double>(v));                     \
    }                                                                     \
  } while (false)

/// Observes `v` into histogram `name` when metrics are enabled.
#define HPNN_METRIC_OBSERVE(name, v)                                      \
  do {                                                                    \
    if (::hpnn::metrics::enabled()) {                                     \
      static ::hpnn::metrics::Histogram& hpnn_metric_hist_ =              \
          ::hpnn::metrics::MetricsRegistry::instance().histogram(name);   \
      hpnn_metric_hist_.observe(static_cast<double>(v));                  \
    }                                                                     \
  } while (false)

/// Counts one call to op `name` and times the enclosing scope:
///   HPNN_METRIC_OP_SCOPE("tensor.gemm");
/// bumps "<name>.calls" and records the scope's wall time (microseconds)
/// into "<name>.time_us". Disabled cost: one branch on a cached atomic.
/// At most one per scope (declares a timer variable).
#define HPNN_METRIC_OP_SCOPE(name)                                           \
  ::hpnn::metrics::Histogram* hpnn_metric_op_hist_ = nullptr;                \
  if (::hpnn::metrics::enabled()) {                                          \
    static ::hpnn::metrics::Counter& hpnn_metric_op_calls_ =                 \
        ::hpnn::metrics::MetricsRegistry::instance().counter(name ".calls"); \
    static ::hpnn::metrics::Histogram& hpnn_metric_op_time_ =                \
        ::hpnn::metrics::MetricsRegistry::instance().histogram(name          \
                                                               ".time_us");  \
    hpnn_metric_op_calls_.add(1);                                            \
    hpnn_metric_op_hist_ = &hpnn_metric_op_time_;                            \
  }                                                                          \
  ::hpnn::metrics::ScopedTimer hpnn_metric_op_timer_(hpnn_metric_op_hist_)
