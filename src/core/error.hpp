// Error handling primitives for the HPNN library.
//
// All recoverable failures are reported through exceptions derived from
// hpnn::Error. Invariant violations (programming errors) use HPNN_CHECK,
// which throws InvariantError with file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace hpnn {

/// Base class of all exceptions thrown by the HPNN library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape or dimensionality mismatch between tensors / layers.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// Malformed, truncated or incompatible serialized artifact.
class SerializationError : public Error {
 public:
  using Error::Error;
};

/// Key / schedule mismatch or secure-memory access violation.
class KeyError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violated (a bug in the caller or the library).
class InvariantError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace hpnn

/// Checks a condition and throws hpnn::InvariantError with context on failure.
/// Usage: HPNN_CHECK(a.size() == b.size(), "size mismatch: " + ...);
#define HPNN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hpnn::detail::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
