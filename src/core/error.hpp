// Error handling primitives for the HPNN library.
//
// All recoverable failures are reported through exceptions derived from
// hpnn::Error. Invariant violations (programming errors) use HPNN_CHECK,
// which throws InvariantError with file/line context.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hpnn {

/// Base class of all exceptions thrown by the HPNN library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape or dimensionality mismatch between tensors / layers.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// Malformed, truncated or incompatible serialized artifact.
class SerializationError : public Error {
 public:
  using Error::Error;
};

/// Key / schedule mismatch or secure-memory access violation.
class KeyError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violated (a bug in the caller or the library).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Malformed user input at an interface boundary (bad CLI flags, unknown
/// commands). The CLI maps this to its "usage" exit code.
class UsageError : public Error {
 public:
  using Error::Error;
};

// ---- serving taxonomy ----------------------------------------------------
//
// The serving supervisor (src/serve) reports request outcomes through typed
// errors so callers (and the CLI exit-code map) can distinguish "the request
// ran out of time" from "the pool is down" from "every retry failed".

/// A request exceeded its deadline (including time spent on retries and
/// backoff sleeps).
class TimeoutError : public Error {
 public:
  TimeoutError(const std::string& what, std::uint64_t elapsed_us = 0,
               std::uint64_t budget_us = 0)
      : Error(what), elapsed_us_(elapsed_us), budget_us_(budget_us) {}

  std::uint64_t elapsed_us() const { return elapsed_us_; }
  std::uint64_t budget_us() const { return budget_us_; }

 private:
  std::uint64_t elapsed_us_;
  std::uint64_t budget_us_;
};

/// No healthy device replica can serve the request. `retry_after_us` is a
/// backpressure hint: microseconds until the pool next probes or
/// re-provisions a sick replica (0 = no estimate; the pool is hard down).
class DeviceUnavailableError : public Error {
 public:
  explicit DeviceUnavailableError(const std::string& what,
                                  std::uint64_t retry_after_us = 0)
      : Error(what), retry_after_us_(retry_after_us) {}

  std::uint64_t retry_after_us() const { return retry_after_us_; }

 private:
  std::uint64_t retry_after_us_;
};

/// The serving daemon's admission controller shed the request before it
/// entered the queue (token bucket empty, overload watermark reached, or
/// the daemon is draining). `retry_after_us` tells a well-behaved client
/// when capacity is expected back (0 = unknown / permanently closed).
class AdmissionRejectedError : public Error {
 public:
  explicit AdmissionRejectedError(const std::string& what,
                                  std::uint64_t retry_after_us = 0)
      : Error(what), retry_after_us_(retry_after_us) {}

  std::uint64_t retry_after_us() const { return retry_after_us_; }

 private:
  std::uint64_t retry_after_us_;
};

/// The daemon's bounded request queue is at capacity. Admission control is
/// tuned to shed with AdmissionRejectedError *before* this fires; hitting
/// it means the watermarks are misconfigured (or disabled). Carries the
/// depth/capacity observed at rejection time.
class QueueFullError : public Error {
 public:
  QueueFullError(const std::string& what, std::size_t depth = 0,
                 std::size_t capacity = 0)
      : Error(what), depth_(depth), capacity_(capacity) {}

  std::size_t depth() const { return depth_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t depth_;
  std::size_t capacity_;
};

/// Every allowed attempt of a request failed. Carries the per-attempt cause
/// history ("attempt 2: replica 1: key-store integrity check failed", ...)
/// so the caller can see *why* the retries burned down.
class RetryExhaustedError : public Error {
 public:
  RetryExhaustedError(const std::string& what,
                      std::vector<std::string> history)
      : Error(format(what, history)), history_(std::move(history)) {}

  /// One cause per failed attempt, oldest first.
  const std::vector<std::string>& history() const { return history_; }
  int attempts() const { return static_cast<int>(history_.size()); }

 private:
  static std::string format(const std::string& what,
                            const std::vector<std::string>& history);

  std::vector<std::string> history_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* cond, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace hpnn

/// Checks a condition and throws hpnn::InvariantError with context on failure.
/// Usage: HPNN_CHECK(a.size() == b.size(), "size mismatch: " + ...);
#define HPNN_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::hpnn::detail::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (false)
