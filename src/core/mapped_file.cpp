#include "core/mapped_file.hpp"

#include <fstream>
#include <utility>

#include "core/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HPNN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hpnn::core {

namespace {

// One-pass read of the whole file; used when mmap is unavailable or fails
// (special files, exotic filesystems).
std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SerializationError("mapped_file: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  char buffer[1 << 16];
  while (is.read(buffer, sizeof(buffer)) || is.gcount() > 0) {
    bytes.insert(bytes.end(), buffer, buffer + is.gcount());
    if (is.eof()) {
      break;
    }
  }
  if (is.bad()) {
    throw SerializationError("mapped_file: read failed for " + path);
  }
  return bytes;
}

}  // namespace

MappedFile::MappedFile(const std::string& path) : path_(path) {
#if HPNN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SerializationError("mapped_file: cannot open " + path);
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw SerializationError("mapped_file: cannot stat " + path);
  }
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr != MAP_FAILED) {
      data_ = addr;
      size_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
      return;
    }
    // fall through to the buffered read
  } else {
    ::close(fd);
    if (S_ISREG(st.st_mode)) {
      return;  // empty regular file: empty view, nothing to map
    }
  }
#endif
  fallback_ = read_all(path);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) {
    data_ = fallback_.data();
  }
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) {
      data_ = fallback_.data();
    }
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

MappedFile::~MappedFile() {
  reset();
}

void MappedFile::reset() noexcept {
#if HPNN_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<void*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

}  // namespace hpnn::core
