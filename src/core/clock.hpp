// Time source abstraction shared by every subsystem with deadlines.
//
// Deadlines, breaker cooldowns, backoff sleeps, queue-wait budgets and
// token-bucket refills all go through a Clock so the chaos harness, the
// serving daemon and the unit tests can run on a SimulatedClock: sleeps
// advance a counter instead of blocking, which makes seeded campaigns both
// fast and bit-reproducible (wall time never enters the control flow).
// Wall-clock is injected only in the real daemon process.
#pragma once

#include <atomic>
#include <cstdint>

namespace hpnn::core {

/// Monotonic microsecond clock + sleep. Implementations must be safe to
/// call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary (per-clock) epoch. Monotonic.
  virtual std::uint64_t now_us() = 0;

  /// Blocks the caller for `us` microseconds (or advances simulated time).
  virtual void sleep_us(std::uint64_t us) = 0;
};

/// Wall-clock implementation on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  /// Process-wide instance (the default clock of the serving layer).
  static SteadyClock& instance();

  std::uint64_t now_us() override;
  void sleep_us(std::uint64_t us) override;
};

/// Deterministic virtual time: now_us() is a counter, sleep_us() advances
/// it atomically without blocking. Two runs of the same seeded scenario see
/// the exact same timestamps, so breaker cooldowns, batch linger windows
/// and deadlines fire identically.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(std::uint64_t start_us = 0) : now_(start_us) {}

  std::uint64_t now_us() override {
    return now_.load(std::memory_order_relaxed);
  }
  void sleep_us(std::uint64_t us) override { advance(us); }

  /// Manually advances virtual time (tests stepping through cooldowns).
  void advance(std::uint64_t us) {
    now_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace hpnn::core
