// Static-quantization calibration (owner side).
//
// The trusted device quantizes activations to int8 before each MAC layer.
// Dynamic (per-batch) scales are simple but unrealistic for streaming
// hardware; real deployments calibrate per-layer scales offline and ship
// them with the model. This module runs a calibration batch through the
// locked network and records max|x| at the input of every MAC (Conv2d /
// Linear) layer, in the exact traversal order the device executes them.
#pragma once

#include <vector>

#include "hpnn/locked_model.hpp"

namespace hpnn::obf {

/// One scale per MAC layer, in device execution order. scale = max|x|/127.
using ActivationScales = std::vector<float>;

/// Runs `calibration_batch` (NCHW) through the model in eval mode and
/// returns the per-MAC-layer input scales.
ActivationScales calibrate_activation_scales(LockedModel& model,
                                             const Tensor& calibration_batch);

}  // namespace hpnn::obf
