// Hardware-specific scheduling (Sec. III-D2 of the paper).
//
// A modern DNN has far more locked neurons than the 256 accumulator units of
// the TPU-like trusted device, so many neurons share one key bit. The
// mapping neuron -> accumulator unit is fixed by the device's (private)
// scheduling algorithm; the model owner uses the same algorithm at training
// time to expand the 256-bit HPNN key into per-neuron lock factors.
//
// Our model of that algorithm: output neurons of each layer are assigned to
// units round-robin (exactly how an output-stationary systolic array tiles
// an output matrix across its accumulator columns), composed with a secret
// seeded permutation and per-layer rotation. Both the seed and the rotation
// schedule are part of the owner's secret, alongside the key.
#pragma once

#include <cstdint>
#include <vector>

#include "hpnn/key.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace hpnn::obf {

/// Identifies the locked neurons of one nonlinear layer.
struct LockSpec {
  std::string layer_name;     // activation module name, e.g. "act3"
  std::int64_t layer_index;   // position among locked layers (0-based)
  Shape activation_shape;     // per-sample activation shape

  std::int64_t neuron_count() const { return activation_shape.numel(); }
};

/// Neuron→unit assignment policy. Different accelerators tile their output
/// space differently; both policies are balanced, differ only in grouping:
///  - kInterleaved: adjacent neurons land on different units (round-robin,
///    an output-stationary column sweep);
///  - kBlocked: contiguous neuron blocks share a unit (a row-major tile
///    walk). The policy is part of the owner's private schedule config.
enum class SchedulePolicy { kInterleaved, kBlocked };

class Scheduler {
 public:
  /// Number of accumulator units on the trusted device (== HPNN key bits).
  static constexpr std::int64_t kUnits = 256;

  /// `schedule_seed` is the private parameter of the scheduling algorithm.
  explicit Scheduler(std::uint64_t schedule_seed,
                     SchedulePolicy policy = SchedulePolicy::kInterleaved);

  std::uint64_t seed() const { return seed_; }
  SchedulePolicy policy() const { return policy_; }

  /// Accumulator unit for each neuron [0, count) of the given locked layer.
  std::vector<std::uint16_t> assign_units(std::int64_t layer_index,
                                          std::int64_t count) const;

  /// Expands the HPNN key into the per-neuron lock-factor tensor
  /// L in {+1, -1}^{activation_shape} for a layer (Eq. 2).
  Tensor lock_mask(const LockSpec& spec, const HpnnKey& key) const;

  bool operator==(const Scheduler& other) const {
    return seed_ == other.seed_ && policy_ == other.policy_;
  }

 private:
  std::uint64_t seed_;
  SchedulePolicy policy_;
  std::vector<std::uint16_t> permutation_;  // secret permutation of [0, 256)
};

}  // namespace hpnn::obf
