// Model-zoo store: the "public model sharing platform" of Fig. 1 as a
// directory of artifacts with an integrity index.
//
// The owner publishes named obfuscated models into the store; consumers
// list and fetch them. Every artifact's SHA-256 is recorded in the index at
// publish time and re-verified at fetch time — a zoo mirror that tampers
// with a model (or a corrupted download) is detected even before the
// artifact's own embedded digest is checked.
#pragma once

#include <string>
#include <vector>

#include "hpnn/model_io.hpp"

namespace hpnn::obf {

struct ZooEntry {
  std::string name;
  std::string file;        // artifact filename within the store directory
  std::string digest_hex;  // SHA-256 of the artifact bytes
};

class ModelZoo {
 public:
  /// Opens (or initializes) a store in `directory`; creates the directory
  /// if needed. Throws SerializationError if the index is corrupt.
  explicit ModelZoo(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Publishes `model` under `name` (overwrites an existing entry of the
  /// same name). Optional calibrated activation scales as in
  /// publish_model().
  void publish(const std::string& name, const LockedModel& model,
               const std::vector<float>& activation_scales = {});

  /// All published entries, sorted by name.
  std::vector<ZooEntry> list() const;

  bool contains(const std::string& name) const;

  /// Loads an artifact by name; verifies the stored digest against the file
  /// bytes and throws SerializationError on mismatch or unknown name.
  PublishedModel fetch(const std::string& name) const;

 private:
  std::string index_path() const;
  void load_index();
  void save_index() const;

  std::string directory_;
  std::vector<ZooEntry> entries_;
};

}  // namespace hpnn::obf
