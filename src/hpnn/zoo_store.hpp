// Model-zoo store: the "public model sharing platform" of Fig. 1 as a
// sharded, content-addressed directory of artifacts with an integrity
// index.
//
// Layout:
//   <dir>/objects/<hh>/<sha256-hex>   artifact bytes, named by their own
//                                     SHA-256 (hh = first two hex chars) —
//                                     identical republishes dedup to one
//                                     object, and the name *is* the
//                                     expected digest
//   <dir>/zoo_index.tsv               name -> (object path, digest) rows
//
// Crash/tamper story:
//   - objects are written to a temp file and renamed into place; the index
//     is committed the same way, so a crash at any point leaves either the
//     old index or the new one — never a truncated half-index (at worst an
//     orphaned object, which no index row references).
//   - fetch() maps the object once; the SHA-256 is computed over that
//     mapping and the artifact is parsed from the *same bytes*, so there
//     is no window between verification and parsing (the old
//     hash-then-reopen TOCTOU).
//   - the index itself is untrusted at load: names, object paths and
//     digests are validated, duplicates rejected — a tampered row cannot
//     point outside the store or shadow another model.
//
// Concurrency: one writer per store directory (publishers); readers
// (fetch/fetch_view) are safe against a concurrent publisher because both
// object files and the index only ever appear via atomic rename.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "hpnn/model_io.hpp"

namespace hpnn::obf {

struct ZooEntry {
  std::string name;
  std::string file;        // artifact path relative to the store directory
  std::string digest_hex;  // SHA-256 of the artifact bytes (lowercase hex)
};

class ModelZoo {
 public:
  /// Opens (or initializes) a store in `directory`; creates the directory
  /// if needed. Throws SerializationError if the index is corrupt.
  explicit ModelZoo(std::string directory);

  const std::string& directory() const { return directory_; }

  /// Publishes `model` under `name` (overwrites an existing entry of the
  /// same name). Optional calibrated activation scales as in
  /// publish_model(). The artifact is stored content-addressed (identical
  /// bytes are written once) and the index commit is atomic: on any
  /// failure the in-memory and on-disk state both keep their previous
  /// contents (strong exception safety).
  void publish(const std::string& name, const LockedModel& model,
               const std::vector<float>& activation_scales = {});

  /// All published entries, sorted by name.
  std::vector<ZooEntry> list() const;

  bool contains(const std::string& name) const;

  /// Loads an artifact by name; verifies the stored digest against the
  /// mapped file bytes and parses those same bytes. Throws
  /// SerializationError on mismatch or unknown name.
  PublishedModel fetch(const std::string& name) const;

  /// Zero-copy fetch: same verification as fetch(), but the artifact is
  /// returned as a view whose tensors alias the retained file mapping —
  /// no float is unpacked or repacked. This is the eval-only load path.
  ArtifactView fetch_view(const std::string& name) const;

  /// Distinct content objects referenced by the index (< list().size()
  /// when identical models were republished under several names).
  std::size_t object_count() const;

 private:
  std::string index_path() const;
  void load_index();
  /// Writes `entries` to a temp file and atomically renames it over the
  /// index. Throws without touching the existing index on failure.
  void save_index(const std::vector<ZooEntry>& entries) const;
  void rebuild_name_index();
  const ZooEntry& find_entry(const std::string& name) const;

  std::string directory_;
  std::vector<ZooEntry> entries_;
  /// name -> slot in entries_, so contains/fetch stay O(1) when the index
  /// holds tens of thousands of names.
  std::unordered_map<std::string, std::size_t> by_name_;
};

}  // namespace hpnn::obf
