// The DL model owner's workflow (Fig. 1, left): key-dependent training of a
// network and convenience evaluation under different key scenarios.
#pragma once

#include "data/dataset.hpp"
#include "hpnn/locked_model.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"

namespace hpnn::obf {

struct OwnerTrainOptions {
  nn::Sgd::Options sgd{0.05, 0.9, 5e-4};
  std::int64_t epochs = 8;
  std::int64_t batch_size = 32;
  std::uint64_t shuffle_seed = 11;
  std::int64_t lr_step = 0;     // 0 disables lr decay
  double lr_gamma = 1.0;
};

struct OwnerTrainReport {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;   // with the correct key applied
};

/// Trains `model` with key-dependent backpropagation (the lock factors are
/// already baked into the network's LockedActivation modules, so plain SGD
/// performs the Sec. III-C learning rule) and evaluates it.
OwnerTrainReport train_locked_model(LockedModel& model,
                                    const data::Dataset& train,
                                    const data::Dataset& test,
                                    const OwnerTrainOptions& options);

/// Accuracy of the locked model as run by an attacker with NO key, i.e. the
/// stolen weights in the plain baseline architecture. Restores the previous
/// lock masks afterwards.
double evaluate_without_key(LockedModel& model, const HpnnKey& key,
                            const Scheduler& scheduler,
                            const data::Dataset& test);

/// Accuracy of the locked model under an arbitrary (possibly wrong) key.
/// Restores the correct key afterwards.
double evaluate_with_key(LockedModel& model, const HpnnKey& trial_key,
                         const HpnnKey& correct_key,
                         const Scheduler& scheduler,
                         const data::Dataset& test);

}  // namespace hpnn::obf
