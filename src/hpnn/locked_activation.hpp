// The key-locked neuron (Sec. III-B) and the key-dependent delta rule
// (Sec. III-C) of the paper.
//
// A locked neuron computes out_j = f(L_j * MAC_j) with L_j = (-1)^{k_j}
// (Eqs. 1-2). Placing the lock on the activation module means the generic
// layers need no changes: in backward(), dE/dMAC_j = dE/dout_j *
// f'(L_j MAC_j) * L_j, which is exactly the delta-rule factor of Eq. (4)/(5)
// riding the ordinary chain rule.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace hpnn::obf {

/// Nonlinearity f applied inside a locked neuron. The paper's networks use
/// ReLU (Table I); sigmoid/tanh are provided because the theory of
/// Sec. III-C is stated for a generic differentiable f (and the Theorem 1
/// tests need f'(0) != 0).
enum class ActivationKind { kRelu, kSigmoid, kTanh };

/// Activation locked with a per-neuron {+1, -1} lock-factor mask (broadcast
/// over the batch dimension).
class LockedActivation : public nn::Module {
 public:
  /// `lock` must have shape == per-sample activation shape, entries in
  /// {+1, -1}. Throws InvariantError otherwise.
  LockedActivation(std::string name, Tensor lock,
                   ActivationKind kind = ActivationKind::kRelu);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

  const Tensor& lock() const { return lock_; }

  /// Installs a new lock mask (same shape). Used to apply / remove / corrupt
  /// keys on an already-built network.
  void set_lock(Tensor lock);

  /// Sets every lock factor to +1 (the attacker's "no key" baseline view).
  void clear_lock();

  std::int64_t neuron_count() const { return lock_.numel(); }
  ActivationKind kind() const { return kind_; }

 private:
  static void validate_mask(const Tensor& lock, const std::string& name);
  float f(float z) const;        // the activation function
  float f_prime(float z) const;  // its derivative (subgradient for ReLU)

  std::string name_;
  Tensor lock_;          // per-sample {+1,-1} mask
  ActivationKind kind_;
  Tensor cached_signed_; // L ⊙ z for the last forward batch
};

}  // namespace hpnn::obf
