// The pluggable locking-scheme framework (DESIGN §14).
//
// The paper's sign-locked activations are one point in a design space that
// also contains Deep-Lock-style per-weight key-stream encryption and logic-
// locked accelerators (see PAPERS.md). LockScheme abstracts what every such
// defense must provide — provisioning a trainable model, locking/unlocking
// the published artifact, a per-key evaluator for forward passes, and a
// serialization tag — so competing schemes plug into one owner pipeline,
// one TrustedDevice load path, and one attack-campaign harness
// (`hpnn defend-bench`).
//
// Contracts every registered scheme must satisfy (enforced by
// tests/hpnn/lock_scheme_conformance_test.cpp):
//   - correct-key inference matches the trainable model (bit-identical when
//     exact_under_correct_key() is true — Theorem 1 for sign-locking);
//   - wrong-key inference degrades to chance accuracy;
//   - artifacts round-trip byte-identically through serialize/load;
//   - provisioning is deterministic at any HPNN_THREADS.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "hpnn/keychain.hpp"
#include "hpnn/locked_model.hpp"

namespace hpnn::obf {

struct PublishedModel;  // hpnn/model_io.hpp

/// Canonical tags of the built-in schemes (also the artifact wire tags).
inline constexpr const char* kSignLockTag = "sign-lock";
inline constexpr const char* kWeightStreamTag = "weight-stream";

/// Everything secret a scheme consumes: the per-model key plus the private
/// schedule parameters. Derived from (master key, model id) on both the
/// owner's and the device's side — see derive_scheme_secrets.
struct SchemeSecrets {
  HpnnKey key;
  std::uint64_t schedule_seed = 0;
  SchedulePolicy policy = SchedulePolicy::kInterleaved;
};

/// Per-model secret derivation shared by every scheme: the keychain's
/// domain-separated SHA-256 subkey + schedule-seed derivation.
SchemeSecrets derive_scheme_secrets(
    const HpnnKey& master, const std::string& model_id,
    SchedulePolicy policy = SchedulePolicy::kInterleaved);

/// A keyed forward-pass handle over a published artifact: the per-key hook
/// attackers probe (key recovery flips bits through set_key) and owners use
/// to measure protected accuracy. The network reference stays valid across
/// set_key calls.
class KeyedEvaluator {
 public:
  virtual ~KeyedEvaluator() = default;

  /// The evaluation network under the most recently applied key.
  virtual nn::Sequential& network() = 0;

  /// Re-keys the evaluator (possibly with a wrong key).
  virtual void set_key(const HpnnKey& trial) = 0;
};

/// One hardware-assisted IP-protection scheme.
class LockScheme {
 public:
  virtual ~LockScheme() = default;

  /// Stable serialization tag written into artifacts ("sign-lock", ...).
  virtual std::string tag() const = 0;

  /// One-line human description for CLI listings.
  virtual std::string description() const = 0;

  /// True if correct-key inference is bit-identical to the unprotected
  /// model (HPNN's Theorem 1; also true for exactly invertible encryption).
  virtual bool exact_under_correct_key() const = 0;

  /// True if the device must apply per-neuron lock masks at activation
  /// inputs (sign-locking); false for schemes that only transform weights.
  virtual bool uses_activation_locks() const = 0;

  /// True if the published weights are transformed (encrypted) and must be
  /// inverted with the key on device load.
  virtual bool transforms_weights() const = 0;

  /// Validates the artifact's scheme payload; throws SerializationError on
  /// any mismatch (read paths fail closed on this).
  virtual void validate_payload(
      std::span<const std::uint8_t> payload) const = 0;

  /// The owner's trainable model for this scheme. Sign-locking bakes the
  /// key into the activations; weight-encryption schemes train in the clear
  /// (identity locks) and protect at publish time.
  virtual std::unique_ptr<LockedModel> make_trainable(
      models::Architecture arch, const models::ModelConfig& config,
      const SchemeSecrets& secrets) const = 0;

  /// Transforms a snapshot into its published (protected) form in place:
  /// fills scheme_payload and, for weight-transforming schemes, encrypts
  /// the parameters. The artifact's scheme_tag must already equal tag().
  virtual void lock_payload(PublishedModel& artifact,
                            const SchemeSecrets& secrets) const = 0;

  /// Inverts lock_payload in place using the artifact's scheme_payload.
  /// With wrong secrets the result decodes to garbage — that degradation is
  /// the defense, not an error.
  virtual void unlock_payload(PublishedModel& artifact,
                              const SchemeSecrets& secrets) const = 0;

  /// Builds a keyed evaluator over the published artifact, initially keyed
  /// with `trial` (which need not be correct).
  virtual std::unique_ptr<KeyedEvaluator> make_evaluator(
      const PublishedModel& artifact, const SchemeSecrets& trial) const = 0;

  /// The attacker's no-key view of the artifact: the baseline architecture
  /// running the published bits as-is (stolen weights, no device).
  virtual std::unique_ptr<nn::Sequential> attacker_view(
      const PublishedModel& artifact) const = 0;
};

/// Registry. The built-in schemes (sign-lock, weight-stream) are registered
/// on first use; register_scheme adds external ones (tags must be unique).
/// Lookups return stable pointers for the process lifetime.
const LockScheme* find_scheme(const std::string& tag);

/// Like find_scheme but throws SerializationError on unknown tags — the
/// fail-closed lookup used by artifact read paths and the device.
const LockScheme& scheme_by_tag(const std::string& tag);

std::vector<std::string> registered_scheme_tags();
void register_scheme(std::unique_ptr<LockScheme> scheme);

/// Owner-side convenience: snapshot `model`, stamp the scheme tag, and run
/// lock_payload — the protected artifact ready for publication.
PublishedModel make_protected_artifact(
    const LockScheme& scheme, const LockedModel& model,
    const SchemeSecrets& secrets,
    const std::vector<float>& activation_scales = {});

/// make_protected_artifact + serialization in one step.
void publish_protected_model(std::ostream& os, const LockScheme& scheme,
                             const LockedModel& model,
                             const SchemeSecrets& secrets,
                             const std::vector<float>& activation_scales = {});

}  // namespace hpnn::obf
