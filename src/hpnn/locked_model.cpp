#include "hpnn/locked_model.hpp"

#include "core/error.hpp"

namespace hpnn::obf {

LockedModel::LockedModel(models::Architecture arch,
                         const models::ModelConfig& config,
                         const HpnnKey& key, const Scheduler& scheduler)
    : arch_(arch), config_(config) {
  HPNN_CHECK(!config_.activation,
             "LockedModel installs its own activation factory; leave "
             "ModelConfig::activation empty");

  models::ModelConfig build_cfg = config_;
  build_cfg.activation = [this, &key, &scheduler](const std::string& name,
                                                  const Shape& act_shape) {
    LockSpec spec{name, static_cast<std::int64_t>(specs_.size()), act_shape};
    Tensor mask = scheduler.lock_mask(spec, key);
    auto act = std::make_unique<LockedActivation>(name, std::move(mask));
    activations_.push_back(act.get());
    specs_.push_back(std::move(spec));
    return act;
  };
  net_ = models::build(arch_, build_cfg);
  HPNN_CHECK(!activations_.empty(),
             "architecture has no nonlinear layers to lock");
}

std::int64_t LockedModel::locked_neuron_count() const {
  std::int64_t n = 0;
  for (const auto& spec : specs_) {
    n += spec.neuron_count();
  }
  return n;
}

void LockedModel::apply_key(const HpnnKey& key, const Scheduler& scheduler) {
  for (std::size_t i = 0; i < activations_.size(); ++i) {
    activations_[i]->set_lock(scheduler.lock_mask(specs_[i], key));
  }
}

void LockedModel::remove_locks() {
  for (auto* act : activations_) {
    act->clear_lock();
  }
}

}  // namespace hpnn::obf
