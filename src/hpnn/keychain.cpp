#include "hpnn/keychain.hpp"

namespace hpnn::obf {

std::string key_fingerprint(const HpnnKey& key) {
  return to_hex(Sha256::hash("hpnn-key-fp:" + key.to_hex()));
}

HpnnKey derive_model_key(const HpnnKey& master, const std::string& model_id) {
  const Sha256Digest digest =
      Sha256::hash("hpnn-model-key:" + master.to_hex() + ":" + model_id);
  return HpnnKey::from_hex(to_hex(digest));
}

std::uint64_t derive_schedule_seed(const HpnnKey& master,
                                   const std::string& model_id) {
  const Sha256Digest digest =
      Sha256::hash("hpnn-schedule:" + master.to_hex() + ":" + model_id);
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) {
    seed = (seed << 8) | digest[static_cast<std::size_t>(i)];
  }
  return seed;
}

License License::issue(const HpnnKey& master, const std::string& model_id) {
  License lic;
  lic.model_id = model_id;
  lic.master_fingerprint = key_fingerprint(master);
  lic.model_key_fingerprint =
      key_fingerprint(derive_model_key(master, model_id));
  return lic;
}

bool License::matches_model_key(const HpnnKey& candidate) const {
  return key_fingerprint(candidate) == model_key_fingerprint;
}

}  // namespace hpnn::obf
