// HPNN sign-locking as a LockScheme: the paper's defense, repackaged as one
// registered implementation of the pluggable framework.
//
// The published weights are *trained against* key-dependent activation sign
// flips (Sec. III-C), so the artifact itself carries no per-scheme payload —
// everything secret lives in (key, schedule). Correct-key inference is
// bit-identical to the trainable model (Theorem 1); without the key the
// weights only fit the sign-flipped functions and degrade to chance.
#pragma once

#include "hpnn/lock_scheme.hpp"

namespace hpnn::obf {

class SignLockScheme : public LockScheme {
 public:
  std::string tag() const override { return kSignLockTag; }
  std::string description() const override {
    return "HPNN key-locked activation signs (DAC'20)";
  }
  bool exact_under_correct_key() const override { return true; }
  bool uses_activation_locks() const override { return true; }
  bool transforms_weights() const override { return false; }

  void validate_payload(
      std::span<const std::uint8_t> payload) const override;

  std::unique_ptr<LockedModel> make_trainable(
      models::Architecture arch, const models::ModelConfig& config,
      const SchemeSecrets& secrets) const override;

  void lock_payload(PublishedModel& artifact,
                    const SchemeSecrets& secrets) const override;
  void unlock_payload(PublishedModel& artifact,
                      const SchemeSecrets& secrets) const override;

  std::unique_ptr<KeyedEvaluator> make_evaluator(
      const PublishedModel& artifact,
      const SchemeSecrets& trial) const override;

  std::unique_ptr<nn::Sequential> attacker_view(
      const PublishedModel& artifact) const override;
};

}  // namespace hpnn::obf
