#include "hpnn/schemes/weight_stream.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"
#include "core/sha256.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::obf {

namespace {

// Sign + mantissa bits of an IEEE-754 float: XORing only these keeps the
// exponent — and therefore finiteness — of every encrypted weight.
constexpr std::uint32_t kStreamMask = 0x807F'FFFFu;

std::string bytes_to_hex(std::span<const std::uint8_t> bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

/// The per-artifact salt, bound to the per-model key and schedule seed with
/// a domain-separated derivation (same idiom as hpnn/keychain.cpp).
std::vector<std::uint8_t> derive_salt(const SchemeSecrets& secrets) {
  const Sha256Digest d =
      Sha256::hash("hpnn-ws-salt:" + secrets.key.to_hex() + ":" +
                   std::to_string(secrets.schedule_seed));
  return std::vector<std::uint8_t>(
      d.begin(), d.begin() + WeightStreamScheme::kSaltBytes);
}

/// XORs the SHA-256 counter-mode keystream into a tensor, in place. Each
/// 32-byte block covers 8 floats; the stream is domain-separated per tensor
/// so identical weights in different layers encrypt differently. XOR is an
/// involution, so this is both lock and unlock.
void apply_keystream(Tensor& t, const std::string& stream_prefix) {
  float* data = t.data();
  const std::int64_t n = t.numel();
  for (std::int64_t block = 0; block * 8 < n; ++block) {
    const Sha256Digest d =
        Sha256::hash(stream_prefix + ":" + std::to_string(block));
    const std::int64_t base = block * 8;
    const std::int64_t count = std::min<std::int64_t>(8, n - base);
    for (std::int64_t j = 0; j < count; ++j) {
      std::uint32_t word;
      std::memcpy(&word, d.data() + 4 * j, 4);
      std::uint32_t bits;
      std::memcpy(&bits, data + base + j, 4);
      bits ^= word & kStreamMask;
      std::memcpy(data + base + j, &bits, 4);
    }
  }
}

void crypt_parameters(PublishedModel& artifact, const HpnnKey& key) {
  const std::string salt_hex = bytes_to_hex(artifact.scheme_payload);
  for (auto& p : artifact.parameters) {
    apply_keystream(p.value, "hpnn-ws:" + key.to_hex() + ":" + salt_hex +
                                 ":" + p.name);
  }
}

/// Holds the encrypted artifact and a baseline network; set_key decrypts a
/// scratch copy of the parameters under the trial key and loads it. With
/// the right key the weights decode exactly (XOR involution); any other key
/// yields an uncorrelated keystream (SHA-256 avalanche), which is what
/// removes the per-bit signal greedy key recovery depends on.
class WeightStreamEvaluator : public KeyedEvaluator {
 public:
  WeightStreamEvaluator(const WeightStreamScheme& scheme,
                        const PublishedModel& artifact,
                        const SchemeSecrets& trial)
      : scheme_(scheme), encrypted_(artifact), secrets_(trial) {
    auto cfg = encrypted_.model_config();
    cfg.activation = models::plain_relu_factory();
    net_ = models::build(encrypted_.arch, cfg);
    set_key(trial.key);
  }

  nn::Sequential& network() override { return *net_; }

  void set_key(const HpnnKey& trial) override {
    secrets_.key = trial;
    PublishedModel decrypted = encrypted_;
    scheme_.unlock_payload(decrypted, secrets_);
    load_weights(decrypted, *net_);
    net_->set_training(false);
  }

 private:
  const WeightStreamScheme& scheme_;
  PublishedModel encrypted_;
  SchemeSecrets secrets_;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace

void WeightStreamScheme::validate_payload(
    std::span<const std::uint8_t> payload) const {
  if (payload.size() != kSaltBytes) {
    throw SerializationError(
        "weight-stream artifact must carry a " +
        std::to_string(kSaltBytes) + "-byte keystream salt, got " +
        std::to_string(payload.size()) + " bytes");
  }
}

std::unique_ptr<LockedModel> WeightStreamScheme::make_trainable(
    models::Architecture arch, const models::ModelConfig& config,
    const SchemeSecrets& secrets) const {
  // Deep-Lock trains in the clear: an all-zero key makes every lock factor
  // +1, so the LockedModel container degenerates to the plain baseline
  // while keeping the owner pipeline (train/snapshot/publish) uniform.
  return std::make_unique<LockedModel>(
      arch, config, HpnnKey{},
      Scheduler(secrets.schedule_seed, secrets.policy));
}

void WeightStreamScheme::lock_payload(PublishedModel& artifact,
                                      const SchemeSecrets& secrets) const {
  artifact.scheme_payload = derive_salt(secrets);
  crypt_parameters(artifact, secrets.key);
}

void WeightStreamScheme::unlock_payload(PublishedModel& artifact,
                                        const SchemeSecrets& secrets) const {
  validate_payload(artifact.scheme_payload);
  crypt_parameters(artifact, secrets.key);
}

std::unique_ptr<KeyedEvaluator> WeightStreamScheme::make_evaluator(
    const PublishedModel& artifact, const SchemeSecrets& trial) const {
  validate_payload(artifact.scheme_payload);
  return std::make_unique<WeightStreamEvaluator>(*this, artifact, trial);
}

std::unique_ptr<nn::Sequential> WeightStreamScheme::attacker_view(
    const PublishedModel& artifact) const {
  // The attacker runs the published bits as-is: encrypted weights in the
  // baseline architecture. Exponents are intact (see kStreamMask), so this
  // evaluates to finite garbage rather than NaNs.
  auto net = instantiate_baseline(artifact);
  net->set_training(false);
  return net;
}

}  // namespace hpnn::obf
