// Deep-Lock-style per-weight key-stream encryption as a LockScheme.
//
// Instead of training against activation sign flips, the owner trains the
// model *in the clear* and encrypts every published parameter with a
// SHA-256 counter-mode keystream derived from the keychain (per-model key,
// per-artifact salt, per-tensor domain separation). The trusted device
// decrypts on load with its sealed key; an attacker — or a device with a
// wrong key — sees uncorrelated weights and degrades to chance accuracy.
//
// Two deliberate format choices:
//   - the keystream XOR touches only the sign + mantissa bits of each f32
//     (mask 0x807FFFFF), leaving the exponent intact: encrypted or wrongly
//     decrypted weights are always finite (no NaN/Inf reaching the int8
//     quantizer) while still being value-wise garbage;
//   - only parameters are encrypted; buffers (BatchNorm running stats) stay
//     plaintext, so a wrong key cannot fabricate a negative running
//     variance and the degraded network still evaluates to finite logits.
#pragma once

#include "hpnn/lock_scheme.hpp"

namespace hpnn::obf {

class WeightStreamScheme : public LockScheme {
 public:
  /// The scheme payload is exactly this salt, bound to (key, schedule
  /// seed) at publish time so re-publishing under a new model id re-keys
  /// the stream.
  static constexpr std::size_t kSaltBytes = 16;

  std::string tag() const override { return kWeightStreamTag; }
  std::string description() const override {
    return "Deep-Lock-style per-weight SHA-256 keystream encryption";
  }
  bool exact_under_correct_key() const override { return true; }
  bool uses_activation_locks() const override { return false; }
  bool transforms_weights() const override { return true; }

  void validate_payload(
      std::span<const std::uint8_t> payload) const override;

  std::unique_ptr<LockedModel> make_trainable(
      models::Architecture arch, const models::ModelConfig& config,
      const SchemeSecrets& secrets) const override;

  void lock_payload(PublishedModel& artifact,
                    const SchemeSecrets& secrets) const override;
  void unlock_payload(PublishedModel& artifact,
                      const SchemeSecrets& secrets) const override;

  std::unique_ptr<KeyedEvaluator> make_evaluator(
      const PublishedModel& artifact,
      const SchemeSecrets& trial) const override;

  std::unique_ptr<nn::Sequential> attacker_view(
      const PublishedModel& artifact) const override;
};

}  // namespace hpnn::obf
