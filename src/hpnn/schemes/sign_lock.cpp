#include "hpnn/schemes/sign_lock.hpp"

#include "core/error.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::obf {

namespace {

/// Wraps instantiate_locked: re-keying recomputes the lock masks in place,
/// so the network reference stays stable across set_key calls.
class SignLockEvaluator : public KeyedEvaluator {
 public:
  SignLockEvaluator(const PublishedModel& artifact,
                    const SchemeSecrets& trial)
      : scheduler_(trial.schedule_seed, trial.policy),
        model_(instantiate_locked(artifact, trial.key, scheduler_)) {
    model_->network().set_training(false);
  }

  nn::Sequential& network() override { return model_->network(); }

  void set_key(const HpnnKey& trial) override {
    model_->apply_key(trial, scheduler_);
  }

 private:
  Scheduler scheduler_;
  std::unique_ptr<LockedModel> model_;
};

}  // namespace

void SignLockScheme::validate_payload(
    std::span<const std::uint8_t> payload) const {
  if (!payload.empty()) {
    throw SerializationError(
        "sign-lock artifact must carry an empty scheme payload, got " +
        std::to_string(payload.size()) + " bytes");
  }
}

std::unique_ptr<LockedModel> SignLockScheme::make_trainable(
    models::Architecture arch, const models::ModelConfig& config,
    const SchemeSecrets& secrets) const {
  return std::make_unique<LockedModel>(
      arch, config, secrets.key,
      Scheduler(secrets.schedule_seed, secrets.policy));
}

void SignLockScheme::lock_payload(PublishedModel& artifact,
                                  const SchemeSecrets& secrets) const {
  // The protection is baked into the weights by key-dependent training;
  // publication transforms nothing and attaches no payload.
  (void)secrets;
  artifact.scheme_payload.clear();
}

void SignLockScheme::unlock_payload(PublishedModel& artifact,
                                    const SchemeSecrets& secrets) const {
  (void)secrets;
  validate_payload(artifact.scheme_payload);
}

std::unique_ptr<KeyedEvaluator> SignLockScheme::make_evaluator(
    const PublishedModel& artifact, const SchemeSecrets& trial) const {
  validate_payload(artifact.scheme_payload);
  return std::make_unique<SignLockEvaluator>(artifact, trial);
}

std::unique_ptr<nn::Sequential> SignLockScheme::attacker_view(
    const PublishedModel& artifact) const {
  auto net = instantiate_baseline(artifact);
  net->set_training(false);
  return net;
}

}  // namespace hpnn::obf
