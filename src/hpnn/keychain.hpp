// Key management on top of the raw 256-bit HPNN key.
//
// The paper notes (Sec. III-A) that one HPNN key can lock several models.
// In practice an owner wants per-model key diversification — compromising
// one model's lock pattern must not expose another's — while the trusted
// device holds a single master secret. This module derives per-model
// subkeys and schedule seeds from (master key, model id) with SHA-256, and
// provides public key fingerprints for license bookkeeping.
#pragma once

#include <string>

#include "core/sha256.hpp"
#include "hpnn/key.hpp"

namespace hpnn::obf {

/// Public identifier of a key: SHA-256 of its hex form. Safe to print/store
/// in license databases; reveals nothing about the key bits.
std::string key_fingerprint(const HpnnKey& key);

/// Derives the per-model HPNN key: SHA256(master || ":" || model_id)
/// interpreted as 256 key bits. Deterministic on both the owner's side and
/// the device's side.
HpnnKey derive_model_key(const HpnnKey& master, const std::string& model_id);

/// Derives the per-model scheduling seed from the same material (domain
/// separated), so each model also gets its own private neuron->unit map.
std::uint64_t derive_schedule_seed(const HpnnKey& master,
                                   const std::string& model_id);

/// A license record the owner hands to a hardware vendor for provisioning:
/// binds a device batch to a master key fingerprint and a model id.
struct License {
  std::string model_id;
  std::string master_fingerprint;  // fingerprint of the master key
  std::string model_key_fingerprint;

  /// Issues the license record for (master, model_id).
  static License issue(const HpnnKey& master, const std::string& model_id);

  /// True if `candidate` is the model key this license was issued for.
  bool matches_model_key(const HpnnKey& candidate) const;
};

}  // namespace hpnn::obf
