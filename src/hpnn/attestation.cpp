#include "hpnn/attestation.hpp"

#include <istream>
#include <ostream>
#include <span>

#include "core/error.hpp"
#include "core/serialize.hpp"
#include "core/sha256.hpp"
#include "tensor/ops.hpp"

namespace hpnn::obf {

namespace {
constexpr std::uint32_t kChallengeMagic = 0x4850'4143u;  // "HPAC"
}

AttestationChallenge make_challenge(LockedModel& model,
                                    std::int64_t num_probes, Rng& rng,
                                    float probe_stddev) {
  const auto& cfg = model.config();
  return make_challenge(model.network(), cfg.in_channels, cfg.image_size,
                        num_probes, rng, probe_stddev);
}

AttestationChallenge make_challenge(nn::Module& reference,
                                    std::int64_t in_channels,
                                    std::int64_t image_size,
                                    std::int64_t num_probes, Rng& rng,
                                    float probe_stddev) {
  HPNN_CHECK(num_probes > 0, "challenge needs at least one probe");
  AttestationChallenge challenge;
  challenge.probes = Tensor::normal(
      Shape{num_probes, in_channels, image_size, image_size}, rng, 0.0f,
      probe_stddev);
  reference.set_training(false);
  challenge.expected = ops::argmax_rows(reference.forward(challenge.probes));
  return challenge;
}

AttestationResult check_response(const AttestationChallenge& challenge,
                                 const std::vector<std::int64_t>& response) {
  HPNN_CHECK(response.size() == challenge.expected.size(),
             "attestation response length mismatch");
  std::int64_t agree = 0;
  for (std::size_t i = 0; i < response.size(); ++i) {
    agree += (response[i] == challenge.expected[i]);
  }
  AttestationResult result;
  result.agreement = static_cast<double>(agree) /
                     static_cast<double>(response.size());
  result.passed = result.agreement >= challenge.min_agreement;
  return result;
}

std::string logit_digest_hex(const Tensor& logits) {
  Sha256 hasher;
  for (const std::int64_t d : logits.shape().dims()) {
    hasher.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(&d), sizeof(d)));
  }
  hasher.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(logits.data()),
      static_cast<std::size_t>(logits.numel()) * sizeof(float)));
  return to_hex(hasher.finalize());
}

void write_challenge(std::ostream& os,
                     const AttestationChallenge& challenge) {
  BinaryWriter w(os);
  w.write_u32(kChallengeMagic);
  w.write_i64_vector(challenge.probes.shape().dims());
  w.write_f32_vector(std::vector<float>(
      challenge.probes.data(),
      challenge.probes.data() + challenge.probes.numel()));
  w.write_i64_vector(challenge.expected);
  w.write_f64(challenge.min_agreement);
  w.write_string(challenge.logit_digest_hex);
}

AttestationChallenge read_challenge(std::istream& is) {
  BinaryReader r(is);
  if (r.read_u32() != kChallengeMagic) {
    throw SerializationError("not an HPNN attestation challenge");
  }
  AttestationChallenge challenge;
  // A challenge file is untrusted input: validate the declared probe
  // extents before they reach Shape (whose negative-dim check reports a
  // programmer error) or an allocation size.
  const auto dims = r.read_i64_vector();
  if (dims.size() != 4) {
    throw SerializationError("corrupt challenge probe tensor rank");
  }
  std::int64_t numel = 1;
  for (const std::int64_t d : dims) {
    constexpr std::int64_t kMaxProbeElems = std::int64_t{1} << 28;
    if (d <= 0 || d > kMaxProbeElems) {
      throw SerializationError("corrupt challenge probe dimension " +
                               std::to_string(d));
    }
    numel *= d;
    if (numel > kMaxProbeElems) {
      throw SerializationError("declared challenge probe tensor too large");
    }
  }
  const Shape shape{dims};
  auto values = r.read_f32_vector();
  if (static_cast<std::int64_t>(values.size()) != shape.numel()) {
    throw SerializationError("corrupt challenge probe tensor");
  }
  challenge.probes = Tensor(shape, std::move(values));
  challenge.expected = r.read_i64_vector();
  if (static_cast<std::int64_t>(challenge.expected.size()) != shape.dim(0)) {
    throw SerializationError("corrupt challenge expectations");
  }
  challenge.min_agreement = r.read_f64();
  // Negated comparison so NaN (from corrupt bytes) is also rejected.
  if (!(challenge.min_agreement > 0.0 && challenge.min_agreement <= 1.0)) {
    throw SerializationError("corrupt challenge threshold");
  }
  challenge.logit_digest_hex = r.read_string();
  if (!challenge.logit_digest_hex.empty() &&
      challenge.logit_digest_hex.size() != 64) {
    throw SerializationError("corrupt challenge logit digest");
  }
  return challenge;
}

}  // namespace hpnn::obf
