#include "hpnn/lock_scheme.hpp"

#include <mutex>
#include <ostream>
#include <utility>

#include "core/error.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/schemes/sign_lock.hpp"
#include "hpnn/schemes/weight_stream.hpp"
#include "nn/module.hpp"

namespace hpnn::obf {

SchemeSecrets derive_scheme_secrets(const HpnnKey& master,
                                    const std::string& model_id,
                                    SchedulePolicy policy) {
  SchemeSecrets s;
  s.key = derive_model_key(master, model_id);
  s.schedule_seed = derive_schedule_seed(master, model_id);
  s.policy = policy;
  return s;
}

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<LockScheme>> schemes;

  Registry() {
    schemes.push_back(std::make_unique<SignLockScheme>());
    schemes.push_back(std::make_unique<WeightStreamScheme>());
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const LockScheme* find_scheme(const std::string& tag) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.schemes) {
    if (s->tag() == tag) {
      return s.get();
    }
  }
  return nullptr;
}

const LockScheme& scheme_by_tag(const std::string& tag) {
  const LockScheme* s = find_scheme(tag);
  if (s == nullptr) {
    // Fail closed: an artifact claiming a scheme this build cannot decode
    // must be rejected, never run as if it were unprotected.
    throw SerializationError("unknown lock-scheme tag '" + tag + "'");
  }
  return *s;
}

std::vector<std::string> registered_scheme_tags() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> tags;
  tags.reserve(r.schemes.size());
  for (const auto& s : r.schemes) {
    tags.push_back(s->tag());
  }
  return tags;
}

void register_scheme(std::unique_ptr<LockScheme> scheme) {
  HPNN_CHECK(scheme != nullptr, "cannot register a null lock scheme");
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& s : r.schemes) {
    HPNN_CHECK(s->tag() != scheme->tag(),
               "lock scheme tag '" + scheme->tag() + "' already registered");
  }
  r.schemes.push_back(std::move(scheme));
}

PublishedModel make_protected_artifact(
    const LockScheme& scheme, const LockedModel& model,
    const SchemeSecrets& secrets,
    const std::vector<float>& activation_scales) {
  PublishedModel artifact = snapshot_model(model, activation_scales);
  artifact.scheme_tag = scheme.tag();
  artifact.scheme_payload.clear();
  scheme.lock_payload(artifact, secrets);
  // A scheme that emits a payload its own validator rejects is a bug, not
  // bad input — surface it at publish time, before anything ships.
  scheme.validate_payload(artifact.scheme_payload);
  return artifact;
}

void publish_protected_model(std::ostream& os, const LockScheme& scheme,
                             const LockedModel& model,
                             const SchemeSecrets& secrets,
                             const std::vector<float>& activation_scales) {
  publish_artifact(os,
                   make_protected_artifact(scheme, model, secrets,
                                           activation_scales));
}

}  // namespace hpnn::obf
