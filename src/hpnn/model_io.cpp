#include "hpnn/model_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "core/serialize.hpp"
#include "core/sha256.hpp"
#include "hpnn/lock_scheme.hpp"

namespace hpnn::obf {

namespace {

constexpr std::uint32_t kMagic = 0x4850'4E4Eu;  // "HPNN"
// v2 appended a SHA-256 integrity digest over the payload; v3 added the
// optional static-quantization activation scales; v4 pads every float
// array to a 64-byte-aligned file offset so an mmap'd artifact can be
// parsed into spans with zero float copies (see ArtifactView); v5 adds the
// locking-scheme tag + payload after the architecture header (read paths
// fail closed on tags with no registered LockScheme).
constexpr std::uint32_t kVersion = 5;

// File offset at which the payload begins: magic (4) + version (4) +
// payload length prefix (8). Both the writer (building the payload in a
// buffer) and the reader (parsing the payload in place) add this bias to
// their payload-relative positions, so alignment padding is computed
// against real file offsets.
constexpr std::uint64_t kPayloadFileOffset = 16;

// Cache-line alignment for tensor data: the packed-GEMM kernels load
// 32-byte vectors, and 64 keeps mapped panels friendly to both.
constexpr std::size_t kFloatAlignment = 64;

void write_named_tensors(
    BinaryWriter& w,
    const std::vector<PublishedModel::NamedTensor>& tensors) {
  w.write_u64(tensors.size());
  for (const auto& t : tensors) {
    w.write_string(t.name);
    w.write_i64_vector(t.value.shape().dims());
    w.write_f32_array_aligned(
        std::vector<float>(t.value.data(), t.value.data() + t.value.numel()),
        kFloatAlignment, kPayloadFileOffset);
  }
}

// Declared tensor extents are untrusted: a hostile artifact can carry a
// self-consistent digest, so every dimension must be validated before it
// reaches Shape (which treats bad dims as programmer error) or an
// allocation.
constexpr std::size_t kMaxTensorRank = 8;
constexpr std::int64_t kMaxTensorElems = std::int64_t{1} << 28;  // 1 GiB f32
constexpr std::uint64_t kMaxTensorCount = 100000;

Shape checked_shape(std::vector<std::int64_t> dims,
                    const std::string& context) {
  if (dims.size() > kMaxTensorRank) {
    throw SerializationError(context + ": implausible tensor rank " +
                             std::to_string(dims.size()));
  }
  std::int64_t numel = 1;
  for (const std::int64_t d : dims) {
    if (d < 0 || d > kMaxTensorElems) {
      throw SerializationError(context + ": corrupt tensor dimension " +
                               std::to_string(d));
    }
    numel *= d == 0 ? 1 : d;
    if (numel > kMaxTensorElems) {
      throw SerializationError(context + ": declared tensor size too large");
    }
  }
  return Shape{std::move(dims)};
}

std::vector<PublishedModel::NamedTensor> read_named_tensors(BinaryReader& r) {
  const std::uint64_t count = r.read_u64();
  if (count > kMaxTensorCount) {
    throw SerializationError("implausible tensor count in artifact");
  }
  std::vector<PublishedModel::NamedTensor> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PublishedModel::NamedTensor t;
    t.name = r.read_string();
    const Shape shape = checked_shape(r.read_i64_vector(), "tensor " + t.name);
    auto values = r.read_f32_array_aligned(kFloatAlignment, kPayloadFileOffset);
    if (static_cast<std::int64_t>(values.size()) != shape.numel()) {
      throw SerializationError("tensor " + t.name +
                               " data does not match its shape");
    }
    t.value = Tensor(shape, std::move(values));
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ArtifactView::TensorView> read_tensor_views(BinaryReader& r) {
  const std::uint64_t count = r.read_u64();
  if (count > kMaxTensorCount) {
    throw SerializationError("implausible tensor count in artifact");
  }
  std::vector<ArtifactView::TensorView> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ArtifactView::TensorView t;
    t.name = r.read_string();
    t.shape = checked_shape(r.read_i64_vector(), "tensor " + t.name);
    t.values = r.view_f32_array_aligned(kFloatAlignment, kPayloadFileOffset);
    if (static_cast<std::int64_t>(t.values.size()) != t.shape.numel()) {
      throw SerializationError("tensor " + t.name +
                               " data does not match its shape");
    }
    out.push_back(std::move(t));
  }
  return out;
}

struct ArtifactHeader {
  models::Architecture arch;
  std::int64_t in_channels;
  std::int64_t image_size;
  std::int64_t num_classes;
  double width_mult;
};

ArtifactHeader read_artifact_header(BinaryReader& r) {
  ArtifactHeader h;
  try {
    h.arch = models::arch_from_name(r.read_string());
  } catch (const Error& e) {
    throw SerializationError(std::string("artifact architecture: ") +
                             e.what());
  }
  h.in_channels = r.read_i64();
  h.image_size = r.read_i64();
  h.num_classes = r.read_i64();
  h.width_mult = r.read_f64();
  if (h.in_channels <= 0 || h.image_size <= 0 || h.num_classes <= 0 ||
      h.width_mult <= 0.0) {
    throw SerializationError("corrupt artifact header");
  }
  return h;
}

void check_outer_header(BinaryReader& outer) {
  if (outer.read_u32() != kMagic) {
    throw SerializationError("not an HPNN model artifact (bad magic)");
  }
  const std::uint32_t version = outer.read_u32();
  if (version != kVersion) {
    throw SerializationError("unsupported artifact version " +
                             std::to_string(version));
  }
}

// Sanity bounds for the scheme fields: real tags are short identifiers and
// real payloads are small public material (a salt, a nonce). Oversized
// values in either field mean corruption, rejected before the registry
// lookup can embed megabytes of garbage into an error message.
constexpr std::size_t kMaxSchemeTagBytes = 64;
constexpr std::size_t kMaxSchemePayloadBytes = 4096;

struct SchemeFields {
  std::string tag;
  std::vector<std::uint8_t> payload;
};

/// Reads and validates the v5 scheme fields. Fail-closed on every axis: an
/// implausible tag or payload size, a tag with no registered scheme, and a
/// payload the tagged scheme's validator rejects are all SerializationError.
SchemeFields read_scheme_fields(BinaryReader& r) {
  SchemeFields f;
  f.tag = r.read_string();
  if (f.tag.empty() || f.tag.size() > kMaxSchemeTagBytes) {
    throw SerializationError("corrupt lock-scheme tag in artifact");
  }
  f.payload = r.read_u8_vector();
  if (f.payload.size() > kMaxSchemePayloadBytes) {
    throw SerializationError("implausible lock-scheme payload size " +
                             std::to_string(f.payload.size()));
  }
  scheme_by_tag(f.tag).validate_payload(f.payload);
  return f;
}

void check_scales(std::span<const float> scales) {
  for (const float s : scales) {
    if (!(s > 0.0f)) {
      throw SerializationError("corrupt activation scale in artifact");
    }
  }
}

}  // namespace

models::ModelConfig PublishedModel::model_config(
    std::uint64_t init_seed) const {
  models::ModelConfig cfg;
  cfg.in_channels = in_channels;
  cfg.image_size = image_size;
  cfg.num_classes = num_classes;
  cfg.width_mult = width_mult;
  cfg.init_seed = init_seed;
  return cfg;
}

models::ModelConfig ArtifactView::model_config(std::uint64_t init_seed) const {
  models::ModelConfig cfg;
  cfg.in_channels = in_channels;
  cfg.image_size = image_size;
  cfg.num_classes = num_classes;
  cfg.width_mult = width_mult;
  cfg.init_seed = init_seed;
  return cfg;
}

PublishedModel ArtifactView::materialize() const {
  PublishedModel m;
  m.arch = arch;
  m.in_channels = in_channels;
  m.image_size = image_size;
  m.num_classes = num_classes;
  m.width_mult = width_mult;
  m.scheme_tag = scheme_tag;
  m.scheme_payload = scheme_payload;
  m.parameters.reserve(parameters.size());
  for (const auto& t : parameters) {
    m.parameters.push_back(
        {t.name, Tensor(t.shape,
                        std::vector<float>(t.values.begin(), t.values.end()))});
  }
  m.buffers.reserve(buffers.size());
  for (const auto& t : buffers) {
    m.buffers.push_back(
        {t.name, Tensor(t.shape,
                        std::vector<float>(t.values.begin(), t.values.end()))});
  }
  m.activation_scales.assign(activation_scales.begin(),
                             activation_scales.end());
  return m;
}

PublishedModel snapshot_model(const LockedModel& model,
                              const std::vector<float>& activation_scales) {
  PublishedModel m;
  m.arch = model.architecture();
  const auto& cfg = model.config();
  m.in_channels = cfg.in_channels;
  m.image_size = cfg.image_size;
  m.num_classes = cfg.num_classes;
  m.width_mult = cfg.width_mult;
  auto& net = const_cast<nn::Sequential&>(model.network());
  for (const auto* p : nn::parameters_of(net)) {
    m.parameters.push_back({p->name, p->value});
  }
  for (const auto& [name, tensor] : nn::buffers_of(net)) {
    m.buffers.push_back({name, *tensor});
  }
  m.activation_scales = activation_scales;
  return m;
}

void publish_artifact(std::ostream& os, const PublishedModel& artifact) {
  // Build the payload in memory so an integrity digest can be appended —
  // a model-zoo download is untrusted input on the consumer side.
  std::ostringstream payload_stream;
  {
    BinaryWriter w(payload_stream);
    w.write_string(models::arch_name(artifact.arch));
    w.write_i64(artifact.in_channels);
    w.write_i64(artifact.image_size);
    w.write_i64(artifact.num_classes);
    w.write_f64(artifact.width_mult);
    w.write_string(artifact.scheme_tag);
    w.write_u8_vector(artifact.scheme_payload);
    write_named_tensors(w, artifact.parameters);
    write_named_tensors(w, artifact.buffers);
    w.write_f32_array_aligned(artifact.activation_scales, kFloatAlignment,
                              kPayloadFileOffset);
  }
  const std::string payload = payload_stream.str();
  const Sha256Digest digest = Sha256::hash(payload);

  BinaryWriter w(os);
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_string(payload);
  w.write_u8_vector(
      std::vector<std::uint8_t>(digest.begin(), digest.end()));
}

void publish_model(std::ostream& os, const LockedModel& model,
                   const std::vector<float>& activation_scales) {
  publish_artifact(os, snapshot_model(model, activation_scales));
}

PublishedModel read_published_model(std::istream& is) {
  BinaryReader outer(is);
  check_outer_header(outer);
  const std::string payload = outer.read_string();
  const auto digest_bytes = outer.read_u8_vector();
  if (digest_bytes.size() != 32) {
    throw SerializationError("artifact integrity digest malformed");
  }
  const Sha256Digest digest = Sha256::hash(payload);
  if (!std::equal(digest.begin(), digest.end(), digest_bytes.begin())) {
    throw SerializationError(
        "artifact integrity check failed (corrupted or tampered)");
  }

  std::istringstream payload_stream{payload};
  BinaryReader r(payload_stream);
  const ArtifactHeader h = read_artifact_header(r);
  PublishedModel m;
  m.arch = h.arch;
  m.in_channels = h.in_channels;
  m.image_size = h.image_size;
  m.num_classes = h.num_classes;
  m.width_mult = h.width_mult;
  SchemeFields scheme = read_scheme_fields(r);
  m.scheme_tag = std::move(scheme.tag);
  m.scheme_payload = std::move(scheme.payload);
  m.parameters = read_named_tensors(r);
  m.buffers = read_named_tensors(r);
  m.activation_scales =
      r.read_f32_array_aligned(kFloatAlignment, kPayloadFileOffset);
  check_scales(m.activation_scales);
  return m;
}

ArtifactView view_published_model(core::ByteView bytes) {
  BinaryReader outer(bytes);
  check_outer_header(outer);
  const core::ByteView payload = outer.view_u8_array();
  const core::ByteView digest_bytes = outer.view_u8_array();
  if (digest_bytes.size() != 32) {
    throw SerializationError("artifact integrity digest malformed");
  }
  // Digest over the exact bytes the spans below will alias: verification
  // and parsing cannot diverge.
  const Sha256Digest digest = Sha256::hash(payload);
  if (!std::equal(digest.begin(), digest.end(), digest_bytes.begin())) {
    throw SerializationError(
        "artifact integrity check failed (corrupted or tampered)");
  }

  BinaryReader r(payload);
  const ArtifactHeader h = read_artifact_header(r);
  ArtifactView view;
  view.arch = h.arch;
  view.in_channels = h.in_channels;
  view.image_size = h.image_size;
  view.num_classes = h.num_classes;
  view.width_mult = h.width_mult;
  SchemeFields scheme = read_scheme_fields(r);
  view.scheme_tag = std::move(scheme.tag);
  view.scheme_payload = std::move(scheme.payload);
  view.parameters = read_tensor_views(r);
  view.buffers = read_tensor_views(r);
  view.activation_scales =
      r.view_f32_array_aligned(kFloatAlignment, kPayloadFileOffset);
  check_scales(view.activation_scales);
  return view;
}

ArtifactView map_published_model(core::MappedFile file) {
  ArtifactView view = view_published_model(file.bytes());
  // The spans alias the mapping; hand the mapping to the view so they stay
  // valid for its lifetime (MappedFile moves keep addresses stable).
  view.file_ = std::move(file);
  return view;
}

ArtifactView map_published_model_file(const std::string& path) {
  return map_published_model(core::MappedFile(path));
}

void load_weights(const PublishedModel& artifact, nn::Module& net) {
  const auto params = nn::parameters_of(net);
  if (params.size() != artifact.parameters.size()) {
    throw SerializationError(
        "artifact parameter count does not match architecture (" +
        std::to_string(artifact.parameters.size()) + " vs " +
        std::to_string(params.size()) + ")");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& src = artifact.parameters[i];
    if (src.name != params[i]->name ||
        !(src.value.shape() == params[i]->value.shape())) {
      throw SerializationError("artifact parameter mismatch at " + src.name);
    }
    params[i]->assign_value(src.value);
  }
  const auto buffers = nn::buffers_of(net);
  if (buffers.size() != artifact.buffers.size()) {
    throw SerializationError("artifact buffer count mismatch");
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const auto& src = artifact.buffers[i];
    if (src.name != buffers[i].first ||
        !(src.value.shape() == buffers[i].second->shape())) {
      throw SerializationError("artifact buffer mismatch at " + src.name);
    }
    *buffers[i].second = src.value;
  }
}

std::unique_ptr<nn::Sequential> instantiate_baseline(
    const PublishedModel& artifact) {
  auto cfg = artifact.model_config();
  cfg.activation = models::plain_relu_factory();
  auto net = models::build(artifact.arch, cfg);
  load_weights(artifact, *net);
  return net;
}

std::unique_ptr<LockedModel> instantiate_locked(const PublishedModel& artifact,
                                                const HpnnKey& key,
                                                const Scheduler& scheduler) {
  if (artifact.scheme_tag != kSignLockTag) {
    // Applying sign masks over another scheme's (e.g. encrypted) weights
    // would silently compute garbage; refuse instead.
    throw KeyError("artifact lock scheme '" + artifact.scheme_tag +
                   "' does not use sign-lock masks; route through "
                   "LockScheme::make_evaluator");
  }
  auto model = std::make_unique<LockedModel>(
      artifact.arch, artifact.model_config(), key, scheduler);
  load_weights(artifact, model->network());
  return model;
}

void publish_model_file(const std::string& path, const LockedModel& model) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw SerializationError("cannot open " + path + " for writing");
  }
  publish_model(os, model);
}

PublishedModel read_published_model_file(const std::string& path) {
  // Map + parse in one pass over one set of bytes (no hash-then-reopen).
  return map_published_model_file(path).materialize();
}

}  // namespace hpnn::obf
