// A network whose nonlinear layers are key-locked (the HPNN framework's
// obfuscated DL model).
#pragma once

#include <memory>
#include <vector>

#include "hpnn/key.hpp"
#include "hpnn/locked_activation.hpp"
#include "hpnn/scheduler.hpp"
#include "models/zoo.hpp"

namespace hpnn::obf {

/// An architecture built with LockedActivation modules in place of every
/// plain ReLU, with lock masks derived from (key, scheduler).
class LockedModel {
 public:
  /// Builds the architecture and installs the lock masks for `key`.
  /// `config.activation` must be empty (the locked factory is installed
  /// internally); throws InvariantError otherwise.
  LockedModel(models::Architecture arch, const models::ModelConfig& config,
              const HpnnKey& key, const Scheduler& scheduler);

  nn::Sequential& network() { return *net_; }
  const nn::Sequential& network() const { return *net_; }
  models::Architecture architecture() const { return arch_; }
  const models::ModelConfig& config() const { return config_; }
  const std::vector<LockSpec>& lock_specs() const { return specs_; }

  /// Total locked neurons (Table I column 3).
  std::int64_t locked_neuron_count() const;

  /// Recomputes every lock mask for a (possibly different) key/schedule —
  /// e.g. to evaluate a wrong-key guess.
  void apply_key(const HpnnKey& key, const Scheduler& scheduler);

  /// Sets all lock factors to +1: the attacker's view, i.e. the stolen
  /// weights loaded into the plain baseline architecture (no key).
  void remove_locks();

  /// Direct access to the locked activation modules (layer order).
  const std::vector<LockedActivation*>& activations() const {
    return activations_;
  }

 private:
  models::Architecture arch_;
  models::ModelConfig config_;
  std::unique_ptr<nn::Sequential> net_;
  std::vector<LockedActivation*> activations_;  // owned by net_
  std::vector<LockSpec> specs_;
};

}  // namespace hpnn::obf
