#include "hpnn/locked_activation.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "tensor/vec_ops.hpp"

namespace hpnn::obf {

LockedActivation::LockedActivation(std::string name, Tensor lock,
                                   ActivationKind kind)
    : name_(std::move(name)), lock_(std::move(lock)), kind_(kind) {
  validate_mask(lock_, name_);
}

float LockedActivation::f(float z) const {
  switch (kind_) {
    case ActivationKind::kRelu:
      return std::max(z, 0.0f);
    case ActivationKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-z));
    case ActivationKind::kTanh:
      return std::tanh(z);
  }
  return z;
}

float LockedActivation::f_prime(float z) const {
  switch (kind_) {
    case ActivationKind::kRelu:
      return z > 0.0f ? 1.0f : 0.0f;
    case ActivationKind::kSigmoid: {
      const float s = 1.0f / (1.0f + std::exp(-z));
      return s * (1.0f - s);
    }
    case ActivationKind::kTanh: {
      const float t = std::tanh(z);
      return 1.0f - t * t;
    }
  }
  return 1.0f;
}

void LockedActivation::validate_mask(const Tensor& lock,
                                     const std::string& name) {
  HPNN_CHECK(lock.numel() > 0, name + ": empty lock mask");
  for (const auto v : lock.span()) {
    HPNN_CHECK(v == 1.0f || v == -1.0f,
               name + ": lock factors must be +1 or -1");
  }
}

Tensor LockedActivation::forward(const Tensor& x) {
  const std::int64_t per_sample = lock_.numel();
  HPNN_CHECK(x.rank() >= 2 && x.numel() % per_sample == 0 &&
                 x.numel() / x.dim(0) == per_sample,
             name_ + ": input " + x.shape().to_string() +
                 " incompatible with lock mask of " +
                 std::to_string(per_sample) + " neurons");
  const std::int64_t batch = x.dim(0);

  cached_signed_ = Tensor(x.shape());
  Tensor out(x.shape());
  const float* lock = lock_.data();
  const float* in = x.data();
  float* signedz = cached_signed_.data();
  float* o = out.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t base = n * per_sample;
    // z = L_j * MAC_j per neuron; ±1 multiplication is exact, so the
    // vectorized path is bit-identical to the scalar one (Theorem 1's
    // exact-negation property is preserved).
    ops::vec_mul(lock, in + base, signedz + base, per_sample);
    if (kind_ == ActivationKind::kRelu) {
      ops::vec_relu(signedz + base, o + base, per_sample);  // f(L*MAC), Eq. (1)
    } else {
      for (std::int64_t i = 0; i < per_sample; ++i) {
        o[base + i] = f(signedz[base + i]);  // f(L_j * MAC_j), Eq. (1)
      }
    }
  }
  return out;
}

Tensor LockedActivation::backward(const Tensor& grad_out) {
  HPNN_CHECK(grad_out.shape() == cached_signed_.shape(),
             name_ + ": backward before forward or shape mismatch");
  const std::int64_t per_sample = lock_.numel();
  const std::int64_t batch = grad_out.dim(0);

  Tensor grad_x(grad_out.shape());
  const float* lock = lock_.data();
  const float* g = grad_out.data();
  const float* signedz = cached_signed_.data();
  float* gx = grad_x.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    const std::int64_t base = n * per_sample;
    if (kind_ == ActivationKind::kRelu) {
      // dE/dMAC = dE/dout * f'(L*MAC) * L with f' ∈ {0, 1}: the fused
      // vector form selects g*L where z > 0, matching the scalar product
      // g * f'(z) * L bit for bit (multiplying by exactly 1.0 or 0.0).
      ops::vec_lock_relu_grad(g + base, signedz + base, lock, gx + base,
                              per_sample);
    } else {
      for (std::int64_t i = 0; i < per_sample; ++i) {
        // dE/dMAC = dE/dout * f'(L*MAC) * L — the key-dependent delta rule.
        gx[base + i] = g[base + i] * f_prime(signedz[base + i]) * lock[i];
      }
    }
  }
  return grad_x;
}

void LockedActivation::set_lock(Tensor lock) {
  HPNN_CHECK(lock.shape() == lock_.shape(),
             name_ + ": lock mask shape mismatch");
  validate_mask(lock, name_);
  lock_ = std::move(lock);
}

void LockedActivation::clear_lock() {
  lock_.fill(1.0f);
}

}  // namespace hpnn::obf
