// The secret HPNN key (Sec. III-B/III-D2 of the paper).
//
// The key is 256 bits — one bit per accumulator unit of the TPU-like
// trusted hardware. Key bit k gives lock factor L = (-1)^k: k=0 keeps a
// neuron's MAC, k=1 flips its sign.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/rng.hpp"

namespace hpnn::obf {

class HpnnKey {
 public:
  static constexpr std::size_t kBits = 256;

  /// All-zero key: every lock factor is +1, i.e. the locked network
  /// degenerates to the baseline. Useful as a control in tests.
  HpnnKey() = default;

  /// Uniformly random key.
  static HpnnKey random(Rng& rng);

  /// Parses a 64-hex-digit string (as produced by to_hex). Throws KeyError.
  static HpnnKey from_hex(const std::string& hex);

  /// 64 lowercase hex digits, most-significant word first.
  std::string to_hex() const;

  bool bit(std::size_t i) const;
  void set_bit(std::size_t i, bool v);
  void flip_bit(std::size_t i);

  /// Lock factor L = (-1)^{k_i}: +1 if the bit is 0, -1 if it is 1 (Eq. 2).
  float lock_factor(std::size_t i) const { return bit(i) ? -1.0f : 1.0f; }

  /// Number of differing bits.
  std::size_t hamming_distance(const HpnnKey& other) const;

  /// Number of set bits.
  std::size_t popcount() const;

  bool operator==(const HpnnKey& other) const = default;

 private:
  std::array<std::uint64_t, 4> words_{};
};

}  // namespace hpnn::obf
