#include "hpnn/scheduler.hpp"

#include "core/error.hpp"

namespace hpnn::obf {

Scheduler::Scheduler(std::uint64_t schedule_seed, SchedulePolicy policy)
    : seed_(schedule_seed), policy_(policy) {
  Rng rng(schedule_seed);
  const auto perm = rng.permutation(static_cast<std::size_t>(kUnits));
  permutation_.resize(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    permutation_[i] = static_cast<std::uint16_t>(perm[i]);
  }
}

std::vector<std::uint16_t> Scheduler::assign_units(std::int64_t layer_index,
                                                   std::int64_t count) const {
  HPNN_CHECK(layer_index >= 0 && count >= 0, "invalid scheduler query");
  // Per-layer rotation derived from the secret seed; mixing the layer index
  // through SplitMix-style constants keeps layers decorrelated.
  std::uint64_t x = seed_ ^ (0x9e3779b97f4a7c15ULL *
                             (static_cast<std::uint64_t>(layer_index) + 1));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  const auto rotation = static_cast<std::int64_t>((x ^ (x >> 31)) %
                                                  static_cast<std::uint64_t>(
                                                      kUnits));
  std::vector<std::uint16_t> units(static_cast<std::size_t>(count));
  if (policy_ == SchedulePolicy::kInterleaved) {
    for (std::int64_t i = 0; i < count; ++i) {
      units[static_cast<std::size_t>(i)] =
          permutation_[static_cast<std::size_t>((i + rotation) % kUnits)];
    }
  } else {
    // Blocked: contiguous chunks of ceil(count/kUnits) neurons per unit.
    const std::int64_t block = (count + kUnits - 1) / kUnits;
    for (std::int64_t i = 0; i < count; ++i) {
      units[static_cast<std::size_t>(i)] = permutation_[
          static_cast<std::size_t>((i / block + rotation) % kUnits)];
    }
  }
  return units;
}

Tensor Scheduler::lock_mask(const LockSpec& spec, const HpnnKey& key) const {
  const std::int64_t count = spec.neuron_count();
  const auto units = assign_units(spec.layer_index, count);
  Tensor mask(spec.activation_shape);
  for (std::int64_t i = 0; i < count; ++i) {
    mask.at(i) = key.lock_factor(units[static_cast<std::size_t>(i)]);
  }
  return mask;
}

}  // namespace hpnn::obf
