// Obfuscated-model container format: what the owner uploads to the public
// model-sharing platform and what end-users (and attackers) download.
//
// The artifact contains the *baseline architecture description and the
// trained weights only* — never the HPNN key or the scheduling secret. That
// is the point of the framework: the file can be published openly because
// the weights are meaningless without the on-chip key (Fig. 1).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "hpnn/locked_model.hpp"
#include "nn/module.hpp"

namespace hpnn::obf {

/// In-memory form of a downloaded model-zoo artifact.
struct PublishedModel {
  models::Architecture arch = models::Architecture::kCnn1;
  std::int64_t in_channels = 0;
  std::int64_t image_size = 0;
  std::int64_t num_classes = 0;
  double width_mult = 1.0;

  struct NamedTensor {
    std::string name;
    Tensor value;
  };
  std::vector<NamedTensor> parameters;
  std::vector<NamedTensor> buffers;
  /// Optional static-quantization scales, one per MAC layer in device
  /// execution order (empty = device falls back to dynamic quantization).
  std::vector<float> activation_scales;

  /// ModelConfig reconstructing the published topology (activation unset).
  models::ModelConfig model_config(std::uint64_t init_seed = 0) const;
};

/// Serializes the locked model's architecture + weights (key NOT included).
/// `activation_scales` optionally embeds calibrated static-quantization
/// scales (see hpnn/calibration.hpp).
void publish_model(std::ostream& os, const LockedModel& model,
                   const std::vector<float>& activation_scales = {});

/// Parses a model-zoo artifact; throws SerializationError on corruption.
PublishedModel read_published_model(std::istream& is);

/// Loads published weights into a freshly built network of the matching
/// architecture; throws SerializationError if names/shapes disagree.
void load_weights(const PublishedModel& artifact, nn::Module& net);

/// Attacker's view: the baseline architecture (plain ReLUs) initialized with
/// the stolen weights.
std::unique_ptr<nn::Sequential> instantiate_baseline(
    const PublishedModel& artifact);

/// Authorized view: the locked network with masks from (key, scheduler) and
/// the published weights — what the trusted device effectively executes.
std::unique_ptr<LockedModel> instantiate_locked(const PublishedModel& artifact,
                                                const HpnnKey& key,
                                                const Scheduler& scheduler);

/// File-path conveniences.
void publish_model_file(const std::string& path, const LockedModel& model);
PublishedModel read_published_model_file(const std::string& path);

}  // namespace hpnn::obf
