// Obfuscated-model container format: what the owner uploads to the public
// model-sharing platform and what end-users (and attackers) download.
//
// The artifact contains the *baseline architecture description and the
// trained weights only* — never the HPNN key or the scheduling secret. That
// is the point of the framework: the file can be published openly because
// the weights are meaningless without the on-chip key (Fig. 1).
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mapped_file.hpp"
#include "hpnn/locked_model.hpp"
#include "nn/module.hpp"

namespace hpnn::obf {

/// In-memory form of a downloaded model-zoo artifact.
struct PublishedModel {
  models::Architecture arch = models::Architecture::kCnn1;
  std::int64_t in_channels = 0;
  std::int64_t image_size = 0;
  std::int64_t num_classes = 0;
  double width_mult = 1.0;
  /// Locking-scheme tag (format v5). Read paths reject tags with no
  /// registered LockScheme — an artifact this build cannot decode fails
  /// closed instead of running as if it were unprotected.
  std::string scheme_tag = "sign-lock";
  /// Scheme-specific public material (e.g. the weight-stream keystream
  /// salt); validated by the tagged scheme. Empty for sign-lock.
  std::vector<std::uint8_t> scheme_payload;

  struct NamedTensor {
    std::string name;
    Tensor value;
  };
  std::vector<NamedTensor> parameters;
  std::vector<NamedTensor> buffers;
  /// Optional static-quantization scales, one per MAC layer in device
  /// execution order (empty = device falls back to dynamic quantization).
  std::vector<float> activation_scales;

  /// ModelConfig reconstructing the published topology (activation unset).
  models::ModelConfig model_config(std::uint64_t init_seed = 0) const;
};

/// Zero-copy view of a published artifact. The header fields are parsed
/// out, but every tensor's float data is a span aliasing the artifact
/// bytes — nothing is unpacked or repacked. The view optionally owns the
/// file mapping the spans point into (map_published_model_file); a view
/// built over a caller-provided buffer (view_published_model) borrows it
/// instead, and the caller must keep that buffer alive.
///
/// Integrity ordering: the embedded SHA-256 payload digest is verified
/// over the *same bytes* the spans alias — there is no re-read between
/// verification and parsing, so nothing on disk can swap the content
/// after the hash (the classic fetch() TOCTOU).
class ArtifactView {
 public:
  struct TensorView {
    std::string name;
    Shape shape;
    std::span<const float> values;  // aliases the artifact bytes
  };

  models::Architecture arch = models::Architecture::kCnn1;
  std::int64_t in_channels = 0;
  std::int64_t image_size = 0;
  std::int64_t num_classes = 0;
  double width_mult = 1.0;
  std::string scheme_tag = "sign-lock";
  std::vector<std::uint8_t> scheme_payload;  // small; copied, not viewed

  std::vector<TensorView> parameters;
  std::vector<TensorView> buffers;
  std::span<const float> activation_scales;

  /// Deep copy into the owning form (the one float copy, paid only by
  /// consumers that need mutable tensors — training, attacks).
  PublishedModel materialize() const;

  /// ModelConfig reconstructing the published topology (activation unset).
  models::ModelConfig model_config(std::uint64_t init_seed = 0) const;

  /// The retained backing mapping (empty view when the ArtifactView
  /// borrows a caller-owned buffer).
  const core::MappedFile& backing_file() const { return file_; }

  ArtifactView() = default;
  ArtifactView(ArtifactView&&) = default;
  ArtifactView& operator=(ArtifactView&&) = default;
  ArtifactView(const ArtifactView&) = delete;
  ArtifactView& operator=(const ArtifactView&) = delete;

 private:
  friend ArtifactView map_published_model(core::MappedFile file);

  core::MappedFile file_;
};

/// Snapshots the model's architecture + weights into an (unprotected)
/// PublishedModel with the default sign-lock tag and an empty payload.
/// LockScheme::lock_payload / make_protected_artifact turn the snapshot
/// into its published form.
PublishedModel snapshot_model(const LockedModel& model,
                              const std::vector<float>& activation_scales = {});

/// Serializes an in-memory artifact (format v5: scheme tag + payload follow
/// the architecture header). The writer does not validate the scheme fields
/// — negative tests need to craft bad artifacts — but every read path does.
void publish_artifact(std::ostream& os, const PublishedModel& artifact);

/// Serializes the locked model's architecture + weights (key NOT included)
/// under the default sign-lock tag: snapshot_model + publish_artifact.
/// `activation_scales` optionally embeds calibrated static-quantization
/// scales (see hpnn/calibration.hpp). Since format v4 every float array is
/// padded so its data lands on a 64-byte-aligned file offset: an mmap'd
/// artifact can be parsed into spans with zero float copies.
void publish_model(std::ostream& os, const LockedModel& model,
                   const std::vector<float>& activation_scales = {});

/// Parses a model-zoo artifact; throws SerializationError on corruption.
/// This is the streaming (copying) path; prefer map_published_model_file
/// for files.
PublishedModel read_published_model(std::istream& is);

/// Zero-copy parse of an artifact held in `bytes` (caller keeps the buffer
/// alive for the lifetime of the view). Verifies the embedded payload
/// digest over those same bytes before parsing them.
ArtifactView view_published_model(core::ByteView bytes);

/// Maps `path` once and parses the mapping zero-copy; the returned view
/// owns the mapping. Digest verification and parsing consume the same
/// mapped bytes — no second read of the file ever happens.
ArtifactView map_published_model_file(const std::string& path);

/// Takes ownership of an existing mapping (e.g. one whose whole-file
/// SHA-256 a zoo store has already checked) and parses it zero-copy.
ArtifactView map_published_model(core::MappedFile file);

/// Loads published weights into a freshly built network of the matching
/// architecture; throws SerializationError if names/shapes disagree.
void load_weights(const PublishedModel& artifact, nn::Module& net);

/// Attacker's view: the baseline architecture (plain ReLUs) initialized with
/// the stolen weights.
std::unique_ptr<nn::Sequential> instantiate_baseline(
    const PublishedModel& artifact);

/// Authorized view: the locked network with masks from (key, scheduler) and
/// the published weights — what the trusted device effectively executes.
/// Only meaningful for sign-lock artifacts; throws KeyError for any other
/// scheme tag (sign masks over encrypted weights would silently compute
/// garbage — route other schemes through LockScheme::make_evaluator).
std::unique_ptr<LockedModel> instantiate_locked(const PublishedModel& artifact,
                                                const HpnnKey& key,
                                                const Scheduler& scheduler);

/// File-path conveniences. read_published_model_file maps the file once
/// (digest and parse over the same bytes) and materializes the result.
void publish_model_file(const std::string& path, const LockedModel& model);
PublishedModel read_published_model_file(const std::string& path);

}  // namespace hpnn::obf
