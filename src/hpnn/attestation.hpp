// Device attestation: challenge/response verification that a trusted
// device holds the correct HPNN key for a published model.
//
// Deployment problem the paper leaves open: after downloading an obfuscated
// model, an end-user (or the owner's license service) wants to confirm the
// hardware actually decodes it — without ever seeing the key. The owner
// generates a challenge set of random probe inputs plus the predictions the
// *correctly keyed* model makes on them. A device proves possession of the
// key by reproducing those predictions; a device with a wrong key (or a
// stolen model run unlocked) falls to chance agreement.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "hpnn/locked_model.hpp"

namespace hpnn::obf {

struct AttestationChallenge {
  Tensor probes;                          // [N, C, H, W] random inputs
  std::vector<std::int64_t> expected;     // argmax under the correct key
  /// Minimum fraction of matching predictions for a pass (int8 device
  /// datapaths may disagree with the float reference on a few probes).
  double min_agreement = 0.9;
  /// Optional logit-digest witness: SHA-256 (hex) of the *device* logits a
  /// correctly keyed golden device produces on `probes` (the owner holds
  /// the key, so it can emulate the integer datapath exactly). Class-based
  /// agreement is blind to deterministic faults that shift every logit but
  /// preserve the argmax (e.g. a stuck high accumulator bit); healthy
  /// devices are bit-identical executors, so an exact digest closes that
  /// blind spot. Empty = not recorded (class agreement only).
  std::string logit_digest_hex;
};

/// Result of checking a response against a challenge.
struct AttestationResult {
  double agreement = 0.0;
  bool passed = false;
};

/// Owner side: builds a challenge from the correctly keyed model.
/// Probes are drawn i.i.d. normal with the given stddev (matching the
/// standardized input range of the data pipeline).
AttestationChallenge make_challenge(LockedModel& model,
                                    std::int64_t num_probes, Rng& rng,
                                    float probe_stddev = 0.25f);

/// Scheme-generic variant: builds the challenge from any correctly keyed
/// reference network (e.g. a LockScheme evaluator's), with the probe
/// geometry passed explicitly since a plain Sequential carries none.
AttestationChallenge make_challenge(nn::Module& reference,
                                    std::int64_t in_channels,
                                    std::int64_t image_size,
                                    std::int64_t num_probes, Rng& rng,
                                    float probe_stddev = 0.25f);

/// Verifier side: scores a response (predictions for challenge.probes).
AttestationResult check_response(const AttestationChallenge& challenge,
                                 const std::vector<std::int64_t>& response);

/// Canonical logit digest: SHA-256 (hex) over the tensor's shape and the
/// bit patterns of its floats. Bit-identical logits <=> equal digests.
std::string logit_digest_hex(const Tensor& logits);

/// Challenge (de)serialization for shipping alongside the model artifact.
void write_challenge(std::ostream& os, const AttestationChallenge& challenge);
AttestationChallenge read_challenge(std::istream& is);

}  // namespace hpnn::obf
