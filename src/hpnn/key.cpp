#include "hpnn/key.hpp"

#include <bit>

#include "core/error.hpp"

namespace hpnn::obf {

HpnnKey HpnnKey::random(Rng& rng) {
  HpnnKey key;
  for (auto& w : key.words_) {
    w = rng();
  }
  return key;
}

HpnnKey HpnnKey::from_hex(const std::string& hex) {
  if (hex.size() != kBits / 4) {
    throw KeyError("HPNN key hex must be " + std::to_string(kBits / 4) +
                   " digits, got " + std::to_string(hex.size()));
  }
  HpnnKey key;
  for (std::size_t w = 0; w < 4; ++w) {
    std::uint64_t value = 0;
    for (std::size_t d = 0; d < 16; ++d) {
      const char c = hex[w * 16 + d];
      std::uint64_t nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        throw KeyError("invalid hex digit in HPNN key");
      }
      value = (value << 4) | nibble;
    }
    key.words_[3 - w] = value;  // most-significant word first in the string
  }
  return key;
}

std::string HpnnKey::to_hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(kBits / 4, '0');
  for (std::size_t w = 0; w < 4; ++w) {
    const std::uint64_t value = words_[3 - w];
    for (std::size_t d = 0; d < 16; ++d) {
      out[w * 16 + d] =
          kDigits[(value >> (4 * (15 - d))) & 0xF];
    }
  }
  return out;
}

bool HpnnKey::bit(std::size_t i) const {
  HPNN_CHECK(i < kBits, "key bit index out of range");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void HpnnKey::set_bit(std::size_t i, bool v) {
  HPNN_CHECK(i < kBits, "key bit index out of range");
  const std::uint64_t mask = std::uint64_t{1} << (i % 64);
  if (v) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

void HpnnKey::flip_bit(std::size_t i) {
  HPNN_CHECK(i < kBits, "key bit index out of range");
  words_[i / 64] ^= std::uint64_t{1} << (i % 64);
}

std::size_t HpnnKey::hamming_distance(const HpnnKey& other) const {
  std::size_t d = 0;
  for (std::size_t w = 0; w < 4; ++w) {
    d += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return d;
}

std::size_t HpnnKey::popcount() const {
  std::size_t d = 0;
  for (const auto w : words_) {
    d += static_cast<std::size_t>(std::popcount(w));
  }
  return d;
}

}  // namespace hpnn::obf
