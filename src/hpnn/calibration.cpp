#include "hpnn/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/residual.hpp"

namespace hpnn::obf {

namespace {

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (const auto v : t.span()) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

/// Walks the module tree exactly like hw::TrustedDevice::exec_module does,
/// recording the input magnitude of every MAC layer.
Tensor walk(nn::Module& m, Tensor x, ActivationScales& scales) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
    for (std::size_t i = 0; i < seq->size(); ++i) {
      x = walk(seq->at(i), std::move(x), scales);
    }
    return x;
  }
  if (auto* res = dynamic_cast<nn::Residual*>(&m)) {
    Tensor main_out = walk(res->main(), x, scales);
    Tensor skip = res->shortcut() ? walk(*res->shortcut(), x, scales)
                                  : std::move(x);
    main_out.add_(skip);
    if (res->post() != nullptr) {
      main_out = walk(*res->post(), std::move(main_out), scales);
    }
    return main_out;
  }
  if (dynamic_cast<nn::Conv2d*>(&m) != nullptr ||
      dynamic_cast<nn::Linear*>(&m) != nullptr) {
    scales.push_back(std::max(max_abs(x), 1e-6f) / 127.0f);
  }
  return m.forward(x);
}

}  // namespace

ActivationScales calibrate_activation_scales(LockedModel& model,
                                             const Tensor& calibration_batch) {
  HPNN_CHECK(calibration_batch.rank() == 4 && calibration_batch.dim(0) > 0,
             "calibration batch must be a non-empty NCHW tensor");
  const bool was_training = model.network().training();
  model.network().set_training(false);
  ActivationScales scales;
  (void)walk(model.network(), calibration_batch, scales);
  model.network().set_training(was_training);
  HPNN_CHECK(!scales.empty(), "model has no MAC layers to calibrate");
  return scales;
}

}  // namespace hpnn::obf
