#include "hpnn/zoo_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.hpp"
#include "core/sha256.hpp"

namespace hpnn::obf {

namespace {

std::string hash_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SerializationError("zoo: cannot open " + path);
  }
  Sha256 hasher;
  char buffer[4096];
  while (is.read(buffer, sizeof(buffer)) || is.gcount() > 0) {
    hasher.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(buffer),
        static_cast<std::size_t>(is.gcount())));
    if (is.eof()) {
      break;
    }
  }
  return to_hex(hasher.finalize());
}

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw SerializationError("zoo: cannot create directory " + directory_);
  }
  load_index();
}

std::string ModelZoo::index_path() const {
  return directory_ + "/zoo_index.tsv";
}

void ModelZoo::load_index() {
  entries_.clear();
  std::ifstream is(index_path());
  if (!is) {
    return;  // fresh store
  }
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    ZooEntry entry;
    if (!std::getline(row, entry.name, '\t') ||
        !std::getline(row, entry.file, '\t') ||
        !std::getline(row, entry.digest_hex)) {
      throw SerializationError("zoo: corrupt index line: " + line);
    }
    if (entry.digest_hex.size() != 64) {
      throw SerializationError("zoo: corrupt digest for " + entry.name);
    }
    entries_.push_back(std::move(entry));
  }
}

void ModelZoo::save_index() const {
  std::ofstream os(index_path(), std::ios::trunc);
  if (!os) {
    throw SerializationError("zoo: cannot write index");
  }
  for (const auto& entry : entries_) {
    os << entry.name << '\t' << entry.file << '\t' << entry.digest_hex
       << '\n';
  }
}

void ModelZoo::publish(const std::string& name, const LockedModel& model,
                       const std::vector<float>& activation_scales) {
  HPNN_CHECK(valid_name(name),
             "zoo: model names are [A-Za-z0-9._-], got '" + name + "'");
  const std::string file = name + ".hpnn";
  const std::string path = directory_ + "/" + file;
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SerializationError("zoo: cannot write " + path);
    }
    publish_model(os, model, activation_scales);
  }
  ZooEntry entry{name, file, hash_file(path)};
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const ZooEntry& e) {
                                  return e.name == name;
                                }),
                 entries_.end());
  entries_.push_back(std::move(entry));
  save_index();
}

std::vector<ZooEntry> ModelZoo::list() const {
  std::vector<ZooEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ZooEntry& a, const ZooEntry& b) {
              return a.name < b.name;
            });
  return sorted;
}

bool ModelZoo::contains(const std::string& name) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const ZooEntry& e) { return e.name == name; });
}

PublishedModel ModelZoo::fetch(const std::string& name) const {
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [&](const ZooEntry& e) { return e.name == name; });
  if (it == entries_.end()) {
    throw SerializationError("zoo: no model named '" + name + "'");
  }
  const std::string path = directory_ + "/" + it->file;
  if (hash_file(path) != it->digest_hex) {
    throw SerializationError("zoo: artifact '" + name +
                             "' does not match its index digest "
                             "(tampered or corrupted)");
  }
  return read_published_model_file(path);
}

}  // namespace hpnn::obf
