#include "hpnn/zoo_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "core/error.hpp"
#include "core/mapped_file.hpp"
#include "core/sha256.hpp"

namespace hpnn::obf {

namespace {

namespace fs = std::filesystem;

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

bool valid_digest_hex(const std::string& digest) {
  if (digest.size() != 64) {
    return false;
  }
  for (const char c : digest) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!ok) {
      return false;
    }
  }
  return true;
}

/// Store-relative path of the content object for `digest`.
std::string object_relpath(const std::string& digest_hex) {
  return "objects/" + digest_hex.substr(0, 2) + "/" + digest_hex;
}

/// An index row's file column is untrusted; it may only name either the
/// content object derived from the row's digest, or (legacy flat stores) a
/// single well-formed filename. Anything else — absolute paths, "..",
/// separators — escapes the store and is rejected.
bool valid_artifact_relpath(const std::string& file,
                            const std::string& digest_hex) {
  if (file.rfind("objects/", 0) == 0) {
    return file == object_relpath(digest_hex);
  }
  return valid_name(file);
}

void atomic_write_file(const fs::path& final_path, const std::string& bytes,
                       const std::string& what) {
  const fs::path tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw SerializationError("zoo: cannot write " + what + " temp file " +
                               tmp_path.string());
    }
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      throw SerializationError("zoo: short write to " + tmp_path.string());
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw SerializationError("zoo: cannot commit " + what + " to " +
                             final_path.string());
  }
}

}  // namespace

ModelZoo::ModelZoo(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec) {
    throw SerializationError("zoo: cannot create directory " + directory_);
  }
  load_index();
}

std::string ModelZoo::index_path() const {
  return directory_ + "/zoo_index.tsv";
}

void ModelZoo::load_index() {
  entries_.clear();
  std::ifstream is(index_path());
  if (!is) {
    return;  // fresh store
  }
  std::unordered_set<std::string> seen_names;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream row(line);
    ZooEntry entry;
    if (!std::getline(row, entry.name, '\t') ||
        !std::getline(row, entry.file, '\t') ||
        !std::getline(row, entry.digest_hex)) {
      throw SerializationError("zoo: corrupt index line: " + line);
    }
    if (!valid_name(entry.name)) {
      throw SerializationError("zoo: invalid model name in index: '" +
                               entry.name + "'");
    }
    if (!seen_names.insert(entry.name).second) {
      // Silently keeping both rows would let an appended row shadow (or be
      // shadowed by) the legitimate one depending on lookup order.
      throw SerializationError("zoo: duplicate index entry for '" +
                               entry.name + "'");
    }
    if (!valid_digest_hex(entry.digest_hex)) {
      throw SerializationError("zoo: corrupt digest for '" + entry.name +
                               "' (expected 64 lowercase hex chars)");
    }
    if (!valid_artifact_relpath(entry.file, entry.digest_hex)) {
      throw SerializationError("zoo: invalid artifact path for '" +
                               entry.name + "': " + entry.file);
    }
    entries_.push_back(std::move(entry));
  }
  rebuild_name_index();
}

void ModelZoo::rebuild_name_index() {
  by_name_.clear();
  by_name_.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_name_.emplace(entries_[i].name, i);
  }
}

void ModelZoo::save_index(const std::vector<ZooEntry>& entries) const {
  std::ostringstream buf;
  for (const auto& entry : entries) {
    buf << entry.name << '\t' << entry.file << '\t' << entry.digest_hex
        << '\n';
  }
  atomic_write_file(index_path(), buf.str(), "index");
}

void ModelZoo::publish(const std::string& name, const LockedModel& model,
                       const std::vector<float>& activation_scales) {
  HPNN_CHECK(valid_name(name),
             "zoo: model names are [A-Za-z0-9._-], got '" + name + "'");
  std::ostringstream artifact_stream;
  publish_model(artifact_stream, model, activation_scales);
  const std::string bytes = artifact_stream.str();
  const std::string digest =
      to_hex(Sha256::hash(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(bytes.data()),
          bytes.size())));
  const std::string rel = object_relpath(digest);
  const fs::path object_path = fs::path(directory_) / rel;

  std::error_code ec;
  if (!fs::exists(object_path, ec)) {
    // New content: write the object via temp + rename. Identical bytes
    // republished under any name dedup to this one object.
    fs::create_directories(object_path.parent_path(), ec);
    if (ec) {
      throw SerializationError("zoo: cannot create object shard for " +
                               digest.substr(0, 8));
    }
    atomic_write_file(object_path, bytes, "object");
  }

  // Strong exception safety: build the updated entry list, commit it to
  // disk, and only then adopt it in memory. If the index commit throws,
  // both the in-memory entries and the on-disk index keep their previous
  // contents (the new object may remain as an unreferenced orphan, which
  // is harmless and re-used on the next identical publish).
  std::vector<ZooEntry> updated = entries_;
  updated.erase(std::remove_if(updated.begin(), updated.end(),
                               [&](const ZooEntry& e) {
                                 return e.name == name;
                               }),
                updated.end());
  updated.push_back(ZooEntry{name, rel, digest});
  save_index(updated);
  entries_ = std::move(updated);
  rebuild_name_index();
}

std::vector<ZooEntry> ModelZoo::list() const {
  std::vector<ZooEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ZooEntry& a, const ZooEntry& b) {
              return a.name < b.name;
            });
  return sorted;
}

bool ModelZoo::contains(const std::string& name) const {
  return by_name_.count(name) != 0;
}

std::size_t ModelZoo::object_count() const {
  std::unordered_set<std::string> digests;
  for (const auto& entry : entries_) {
    digests.insert(entry.digest_hex);
  }
  return digests.size();
}

const ZooEntry& ModelZoo::find_entry(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw SerializationError("zoo: no model named '" + name + "'");
  }
  return entries_[it->second];
}

ArtifactView ModelZoo::fetch_view(const std::string& name) const {
  const ZooEntry& entry = find_entry(name);
  core::MappedFile file(directory_ + "/" + entry.file);
  // Digest over the mapping, parse the same mapping: whatever happens to
  // the file on disk after this point cannot change what is parsed.
  if (to_hex(Sha256::hash(file.bytes())) != entry.digest_hex) {
    throw SerializationError("zoo: artifact '" + name +
                             "' does not match its index digest "
                             "(tampered or corrupted)");
  }
  return map_published_model(std::move(file));
}

PublishedModel ModelZoo::fetch(const std::string& name) const {
  return fetch_view(name).materialize();
}

}  // namespace hpnn::obf
