#include "hpnn/owner.hpp"

#include "core/logging.hpp"

namespace hpnn::obf {

OwnerTrainReport train_locked_model(LockedModel& model,
                                    const data::Dataset& train,
                                    const data::Dataset& test,
                                    const OwnerTrainOptions& options) {
  train.validate();
  test.validate();

  nn::SoftmaxCrossEntropy loss;
  nn::Sgd opt(nn::parameters_of(model.network()), options.sgd);
  nn::TrainConfig cfg;
  cfg.epochs = options.epochs;
  cfg.batch_size = options.batch_size;
  cfg.shuffle_seed = options.shuffle_seed;
  cfg.lr_step = options.lr_step;
  cfg.lr_gamma = options.lr_gamma;

  const auto result = nn::fit(model.network(), loss, opt, train.images,
                              train.labels, cfg);

  OwnerTrainReport report;
  report.epoch_loss = result.epoch_loss;
  report.train_accuracy =
      nn::evaluate_accuracy(model.network(), train.images, train.labels);
  report.test_accuracy =
      nn::evaluate_accuracy(model.network(), test.images, test.labels);
  HPNN_LOG(Debug) << "owner training done: train acc "
                  << report.train_accuracy << ", test acc "
                  << report.test_accuracy;
  return report;
}

double evaluate_without_key(LockedModel& model, const HpnnKey& key,
                            const Scheduler& scheduler,
                            const data::Dataset& test) {
  model.remove_locks();
  const double acc =
      nn::evaluate_accuracy(model.network(), test.images, test.labels);
  model.apply_key(key, scheduler);
  return acc;
}

double evaluate_with_key(LockedModel& model, const HpnnKey& trial_key,
                         const HpnnKey& correct_key,
                         const Scheduler& scheduler,
                         const data::Dataset& test) {
  model.apply_key(trial_key, scheduler);
  const double acc =
      nn::evaluate_accuracy(model.network(), test.images, test.labels);
  model.apply_key(correct_key, scheduler);
  return acc;
}

}  // namespace hpnn::obf
