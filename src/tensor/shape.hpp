// Tensor shape: an ordered list of non-negative extents.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace hpnn {

/// Shape of a row-major dense tensor. Immutable value type.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims);
  explicit Shape(std::vector<std::int64_t> dims);

  /// Number of dimensions.
  std::size_t rank() const { return dims_.size(); }

  /// Extent of dimension `i`; supports negative indices Python-style.
  std::int64_t dim(std::int64_t i) const;

  /// Total number of elements (1 for rank-0).
  std::int64_t numel() const;

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const = default;

  /// Row-major strides (in elements).
  std::vector<std::int64_t> strides() const;

  /// Human-readable form, e.g. "[2, 3, 4]".
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

}  // namespace hpnn
