// Dense row-major float32 tensor with value semantics.
//
// This is the numeric workhorse of the library: activations, weights,
// gradients and lock masks are all Tensors. Copies are deep; moves are cheap.
#pragma once

#include <span>
#include <vector>

#include "core/rng.hpp"
#include "tensor/shape.hpp"

namespace hpnn {

class Tensor {
 public:
  /// Empty rank-0 tensor with a single zero element slot is NOT created;
  /// a default tensor has no elements and rank 0 shape [].
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value);

  /// Tensor adopting `values` (must match shape.numel()).
  Tensor(Shape shape, std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t dim(std::int64_t i) const { return shape_.dim(i); }
  std::size_t rank() const { return shape_.rank(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Flat element access with bounds check in debug-style (HPNN_CHECK).
  float& at(std::int64_t i);
  float at(std::int64_t i) const;

  /// 2-d element access (rank must be 2).
  float& at(std::int64_t i, std::int64_t j);
  float at(std::int64_t i, std::int64_t j) const;

  /// 4-d element access (rank must be 4; NCHW convention).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;

  /// Returns a tensor with identical data and the new shape
  /// (numel must match).
  Tensor reshaped(Shape new_shape) const;

  // ---- in-place mutation ----
  void fill(float value);
  void zero() { fill(0.0f); }
  /// this += other (shapes must match).
  void add_(const Tensor& other);
  /// this -= other (shapes must match).
  void sub_(const Tensor& other);
  /// this *= other elementwise (shapes must match).
  void mul_(const Tensor& other);
  /// this *= s.
  void scale_(float s);
  /// this += s * other (axpy; shapes must match).
  void axpy_(float s, const Tensor& other);

  // ---- out-of-place helpers ----
  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  /// Elementwise product.
  Tensor operator*(const Tensor& other) const;
  Tensor operator*(float s) const;
  Tensor operator-() const;

  // ---- reductions ----
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties); tensor must be non-empty.
  std::int64_t argmax() const;
  /// Squared L2 norm.
  float squared_norm() const;

  /// True if every |this[i] - other[i]| <= atol + rtol*|other[i]|.
  bool allclose(const Tensor& other, float rtol = 1e-5f,
                float atol = 1e-6f) const;

  // ---- factories ----
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// Uniform in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// Normal(mean, stddev).
  static Tensor normal(Shape shape, Rng& rng, float mean = 0.0f,
                       float stddev = 1.0f);
  /// 0, 1, 2, ... numel-1.
  static Tensor arange(Shape shape);

 private:
  void check_same_shape(const Tensor& other, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

Tensor operator*(float s, const Tensor& t);

}  // namespace hpnn
