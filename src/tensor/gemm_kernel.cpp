#include "tensor/gemm_kernel.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "tensor/backend.hpp"

namespace hpnn::ops {

namespace {

/// Same fan-out threshold as the rest of the kernel layer (ops.cpp): below
/// this arithmetic volume the pool dispatch overhead dominates.
constexpr std::int64_t kParallelWorkThreshold = 1 << 15;

/// Below this volume the packing traffic (m*k + k*n writes) is not repaid
/// by the microkernel, so an unpacked scalar loop wins. The small path is
/// shared by every backend (identical bits across backends by
/// construction).
constexpr std::int64_t kSmallGemmVolume = 4096;

/// C = beta * C for rows [0, m): the alpha == 0 / k == 0 degenerate case.
void scale_c(float beta, std::int64_t m, std::int64_t n, float* c,
             std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] *= beta;
      }
    }
  }
}

/// Unpacked scalar path for tiny problems where packing costs more than it
/// saves. Transposition is absorbed by index strides.
void gemm_small(const float* a, bool ta, const float* b, bool tb,
                std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                float beta, float* c, std::int64_t ldc) {
  const std::int64_t a_row = ta ? 1 : k;
  const std::int64_t a_col = ta ? m : 1;
  const std::int64_t b_row = tb ? 1 : n;
  const std::int64_t b_col = tb ? k : 1;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a[i * a_row + p * a_col] * b[p * b_row + j * b_col];
      }
      float& cv = c[i * ldc + j];
      cv = alpha * acc + (beta == 0.0f ? 0.0f : beta * cv);
    }
  }
}

}  // namespace

namespace detail {

void pack_a(const core::ComputeBackend& be, const float* a, bool trans,
            std::int64_t m, std::int64_t k, float alpha, float* dst) {
  const std::int64_t mr = be.gemm_mr();
  const std::int64_t panels = (m + mr - 1) / mr;
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    const std::int64_t i0 = ip * mr;
    const std::int64_t rows = std::min(mr, m - i0);
    float* pd = dst + ip * mr * k;
    if (!trans) {
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* src = a + (i0 + r) * k;
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * mr + r] = alpha * src[p];
        }
      }
      for (std::int64_t r = rows; r < mr; ++r) {
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * mr + r] = 0.0f;
        }
      }
    } else {
      // A stored k x m: row p is contiguous in r.
      for (std::int64_t p = 0; p < k; ++p) {
        const float* src = a + p * m + i0;
        float* d = pd + p * mr;
        for (std::int64_t r = 0; r < rows; ++r) {
          d[r] = alpha * src[r];
        }
        for (std::int64_t r = rows; r < mr; ++r) {
          d[r] = 0.0f;
        }
      }
    }
  }
}

void pack_b(const core::ComputeBackend& be, const float* b, bool trans,
            std::int64_t k, std::int64_t n, float* dst) {
  const std::int64_t nr = be.gemm_nr();
  const std::int64_t panels = (n + nr - 1) / nr;
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t j0 = jp * nr;
    const std::int64_t cols = std::min(nr, n - j0);
    float* pd = dst + jp * nr * k;
    if (!trans) {
      for (std::int64_t p = 0; p < k; ++p) {
        const float* src = b + p * n + j0;
        float* d = pd + p * nr;
        for (std::int64_t c = 0; c < cols; ++c) {
          d[c] = src[c];
        }
        for (std::int64_t c = cols; c < nr; ++c) {
          d[c] = 0.0f;
        }
      }
    } else {
      // B stored n x k: column c of the panel is the contiguous row
      // (j0 + c) of the stored matrix.
      for (std::int64_t c = 0; c < cols; ++c) {
        const float* src = b + (j0 + c) * k;
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * nr + c] = src[p];
        }
      }
      for (std::int64_t c = cols; c < nr; ++c) {
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * nr + c] = 0.0f;
        }
      }
    }
  }
}

void gemm_packed_panels(const core::ComputeBackend& be, const float* pa,
                        const float* pb, std::int64_t m, std::int64_t panel0,
                        std::int64_t panel1, std::int64_t n, std::int64_t k,
                        float beta, float* c, std::int64_t ldc) {
  const std::int64_t mr_full = be.gemm_mr();
  const std::int64_t nr_full = be.gemm_nr();
  const std::int64_t npanels = (n + nr_full - 1) / nr_full;
  for (std::int64_t ip = panel0; ip < panel1; ++ip) {
    const std::int64_t i0 = ip * mr_full;
    const std::int64_t mr = std::min(mr_full, m - i0);
    const float* apanel = pa + ip * mr_full * k;
    float* crow = c + i0 * ldc;
    for (std::int64_t jp = 0; jp < npanels; ++jp) {
      const std::int64_t j0 = jp * nr_full;
      be.gemm_micro(apanel, pb + jp * nr_full * k, k, crow + j0, ldc, mr,
                    std::min(nr_full, n - j0), beta);
    }
  }
}

void gemm_packed(const core::ComputeBackend& be, const float* pa,
                 const float* pb, std::int64_t m, std::int64_t n,
                 std::int64_t k, float beta, float* c, std::int64_t ldc) {
  const std::int64_t mr = be.gemm_mr();
  const std::int64_t mpanels = (m + mr - 1) / mr;
  if (2 * m * n * k < kParallelWorkThreshold || mpanels == 1) {
    gemm_packed_panels(be, pa, pb, m, 0, mpanels, n, k, beta, c, ldc);
    return;
  }
  // Chunk over row panels: each C row is produced by one chunk with the
  // full-K accumulation order fixed inside the microkernel, so the
  // partition (a pure function of m) never changes result bits.
  const std::int64_t grain = std::max<std::int64_t>(1, mpanels / 64);
  core::parallel_for(0, mpanels, grain,
                     [&](std::int64_t p0, std::int64_t p1) {
                       gemm_packed_panels(be, pa, pb, m, p0, p1, n, k, beta,
                                          c, ldc);
                     });
}

void gemm_with_packed_a(const core::ComputeBackend& be, const float* pa,
                        std::int64_t m, std::int64_t k, const float* b,
                        bool tb, std::int64_t n, float beta, float* c,
                        std::int64_t ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  core::ScratchArena::Scope scope;
  float* pb = scope.floats(packed_b_floats(be, k, n));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    pack_b(be, b, tb, k, n, pb);
  }
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.compute");
    gemm_packed(be, pa, pb, m, n, k, beta, c, ldc);
  }
}

}  // namespace detail

void PackedA::pack(const float* a, bool trans, std::int64_t m, std::int64_t k,
                   float alpha) {
  HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
  const core::ComputeBackend& be = backend();
  float* dst = buf_.float_slots(
      static_cast<std::size_t>(detail::packed_a_floats(be, m, k)));
  detail::pack_a(be, a, trans, m, k, alpha, dst);
  src_ = a;
  backend_ = &be;
  trans_ = trans;
  m_ = m;
  k_ = k;
  alpha_ = alpha;
}

bool PackedA::matches(const float* a, bool trans, std::int64_t m,
                      std::int64_t k, float alpha) const {
  // A panel laid out by another backend has a different geometry, so a
  // backend switch invalidates the packing even when the source matches.
  return src_ == a && backend_ == &backend() && trans_ == trans && m_ == m &&
         k_ == k && alpha_ == alpha;
}

void gemm_raw(const float* a, bool ta, const float* b, bool tb,
              std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              float beta, float* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0 || alpha == 0.0f) {
    scale_c(beta, m, n, c, ldc);
    return;
  }
  const core::ComputeBackend& be = backend();
  if (m == 1) {
    // m == 1 never fans out (single C row), so thread-count independence
    // is trivial. Note op(A) is 1 x k, so the A element index is `p`
    // whether or not A is stored transposed; alpha folds into the scalar.
    be.gemv(a, b, tb, n, k, alpha, beta, c);
    return;
  }
  if (m * n * k <= kSmallGemmVolume) {
    gemm_small(a, ta, b, tb, m, n, k, alpha, beta, c, ldc);
    return;
  }
  core::ScratchArena::Scope scope;
  float* pa = scope.floats(detail::packed_a_floats(be, m, k));
  float* pb = scope.floats(detail::packed_b_floats(be, k, n));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    detail::pack_a(be, a, ta, m, k, alpha, pa);
    detail::pack_b(be, b, tb, k, n, pb);
  }
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.compute");
    detail::gemm_packed(be, pa, pb, m, n, k, beta, c, ldc);
  }
}

void gemm_prepacked(const PackedA& a, const float* b, bool tb, std::int64_t n,
                    float beta, float* c, std::int64_t ldc) {
  // Compute with the backend that packed the panels — they are
  // self-describing, so a stale PackedA still produces correct results
  // (through the old backend) until the caller repacks.
  HPNN_CHECK(a.packed_backend() != nullptr,
             "gemm_prepacked on an empty PackedA");
  detail::gemm_with_packed_a(*a.packed_backend(), a.data(), a.m(), a.k(), b,
                             tb, n, beta, c, ldc);
}

}  // namespace hpnn::ops
