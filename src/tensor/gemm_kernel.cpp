#include "tensor/gemm_kernel.hpp"

#include <algorithm>

#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "tensor/vec_ops.hpp"

#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)
#include <immintrin.h>
#define HPNN_HAVE_AVX2_KERNELS 1
#else
#define HPNN_HAVE_AVX2_KERNELS 0
#endif

namespace hpnn::ops {

namespace {

/// Same fan-out threshold as the rest of the kernel layer (ops.cpp): below
/// this arithmetic volume the pool dispatch overhead dominates.
constexpr std::int64_t kParallelWorkThreshold = 1 << 15;

/// Below this volume the packing traffic (m*k + k*n writes) is not repaid
/// by the microkernel, so an unpacked scalar loop wins.
constexpr std::int64_t kSmallGemmVolume = 4096;

/// Writes one microkernel tile held in `tile` (row stride kGemmNR) into C
/// with the beta policy. Shared by the scalar and AVX2 kernels for partial
/// (edge) tiles.
void merge_tile(const float* tile, float* c, std::int64_t ldc,
                std::int64_t mr, std::int64_t nr, float beta) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* t = tile + r * kGemmNR;
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = t[j];
      }
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] += t[j];
      }
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + t[j];
      }
    }
  }
}

/// Scalar microkernel: identical blocking and accumulation order to the
/// AVX2 kernel (full-K register accumulation per C element, beta applied
/// once at store time), so the two differ only in FMA rounding.
void micro_scalar(const float* ap, const float* bp, std::int64_t k, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  float beta) {
  float acc[kGemmMR][kGemmNR] = {};
  for (std::int64_t p = 0; p < k; ++p) {
    const float* brow = bp + p * kGemmNR;
    const float* arow = ap + p * kGemmMR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const float av = arow[r];
      for (std::int64_t j = 0; j < kGemmNR; ++j) {
        acc[r][j] += av * brow[j];
      }
    }
  }
  merge_tile(&acc[0][0], c, ldc, mr, nr, beta);
}

#if HPNN_HAVE_AVX2_KERNELS

/// AVX2/FMA microkernel: 6 x 16 tile in 12 ymm accumulators, two aligned
/// B-vector loads and six A broadcasts per k step. No data-dependent
/// branches — the instruction stream is a pure function of k/mr/nr/beta.
__attribute__((target("avx2,fma"))) void micro_avx2(
    const float* ap, const float* bp, std::int64_t k, float* c,
    std::int64_t ldc, std::int64_t mr, std::int64_t nr, float beta) {
  __m256 acc[kGemmMR][2];
  for (std::int64_t r = 0; r < kGemmMR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::int64_t p = 0; p < k; ++p) {
    // Panel rows are 64-byte aligned (kGemmNR floats per k step from a
    // 64-byte-aligned arena block), so aligned loads are safe.
    const __m256 b0 = _mm256_load_ps(bp + p * kGemmNR);
    const __m256 b1 = _mm256_load_ps(bp + p * kGemmNR + 8);
    const float* arow = ap + p * kGemmMR;
    for (std::int64_t r = 0; r < kGemmMR; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (mr == kGemmMR && nr == kGemmNR) {
    if (beta == 0.0f) {
      for (std::int64_t r = 0; r < kGemmMR; ++r) {
        _mm256_storeu_ps(c + r * ldc, acc[r][0]);
        _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
      }
    } else if (beta == 1.0f) {
      for (std::int64_t r = 0; r < kGemmMR; ++r) {
        float* crow = c + r * ldc;
        _mm256_storeu_ps(crow,
                         _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
        _mm256_storeu_ps(
            crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
      }
    } else {
      const __m256 bv = _mm256_set1_ps(beta);
      for (std::int64_t r = 0; r < kGemmMR; ++r) {
        float* crow = c + r * ldc;
        _mm256_storeu_ps(
            crow, _mm256_fmadd_ps(bv, _mm256_loadu_ps(crow), acc[r][0]));
        _mm256_storeu_ps(crow + 8, _mm256_fmadd_ps(
                                       bv, _mm256_loadu_ps(crow + 8),
                                       acc[r][1]));
      }
    }
    return;
  }
  alignas(32) float tile[kGemmMR * kGemmNR];
  for (std::int64_t r = 0; r < kGemmMR; ++r) {
    _mm256_store_ps(tile + r * kGemmNR, acc[r][0]);
    _mm256_store_ps(tile + r * kGemmNR + 8, acc[r][1]);
  }
  merge_tile(tile, c, ldc, mr, nr, beta);
}

#endif  // HPNN_HAVE_AVX2_KERNELS

using MicroKernel = void (*)(const float*, const float*, std::int64_t, float*,
                             std::int64_t, std::int64_t, std::int64_t, float);

MicroKernel active_kernel() {
  static const MicroKernel kernel = []() -> MicroKernel {
#if HPNN_HAVE_AVX2_KERNELS
    if (simd_active()) {
      return micro_avx2;
    }
#endif
    return micro_scalar;
  }();
  return kernel;
}

/// C = beta * C for rows [0, m): the alpha == 0 / k == 0 degenerate case.
void scale_c(float beta, std::int64_t m, std::int64_t n, float* c,
             std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] *= beta;
      }
    }
  }
}

/// Unpacked scalar path for tiny problems where packing costs more than it
/// saves. Transposition is absorbed by index strides.
void gemm_small(const float* a, bool ta, const float* b, bool tb,
                std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                float beta, float* c, std::int64_t ldc) {
  const std::int64_t a_row = ta ? 1 : k;
  const std::int64_t a_col = ta ? m : 1;
  const std::int64_t b_row = tb ? 1 : n;
  const std::int64_t b_col = tb ? k : 1;
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += a[i * a_row + p * a_col] * b[p * b_row + j * b_col];
      }
      float& cv = c[i * ldc + j];
      cv = alpha * acc + (beta == 0.0f ? 0.0f : beta * cv);
    }
  }
}

/// m == 1: vector-matrix product. For op(B) = B the row sweep is a chain of
/// axpys over contiguous B rows; for op(B) = B^T each output is a
/// contiguous dot product. Never fans out (single C row), so thread-count
/// independence is trivial. Note op(A) is 1 x k, so the A element index is
/// `p` whether or not A is stored transposed.
void gemv(const float* a, const float* b, bool tb, std::int64_t n,
          std::int64_t k, float alpha, float beta, float* c) {
  if (tb) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float dot = alpha * vec_dot(a, b + j * k, k);
      c[j] = dot + (beta == 0.0f ? 0.0f : beta * c[j]);
    }
    return;
  }
  scale_c(beta, 1, n, c, n);
  for (std::int64_t p = 0; p < k; ++p) {
    vec_axpy(alpha * a[p], b + p * n, c, n);
  }
}

}  // namespace

namespace detail {

bool gemm_simd_active() { return simd_active(); }

void pack_a(const float* a, bool trans, std::int64_t m, std::int64_t k,
            float alpha, float* dst) {
  const std::int64_t panels = (m + kGemmMR - 1) / kGemmMR;
  for (std::int64_t ip = 0; ip < panels; ++ip) {
    const std::int64_t i0 = ip * kGemmMR;
    const std::int64_t rows = std::min(kGemmMR, m - i0);
    float* pd = dst + ip * kGemmMR * k;
    if (!trans) {
      for (std::int64_t r = 0; r < rows; ++r) {
        const float* src = a + (i0 + r) * k;
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * kGemmMR + r] = alpha * src[p];
        }
      }
      for (std::int64_t r = rows; r < kGemmMR; ++r) {
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * kGemmMR + r] = 0.0f;
        }
      }
    } else {
      // A stored k x m: row p is contiguous in r.
      for (std::int64_t p = 0; p < k; ++p) {
        const float* src = a + p * m + i0;
        float* d = pd + p * kGemmMR;
        for (std::int64_t r = 0; r < rows; ++r) {
          d[r] = alpha * src[r];
        }
        for (std::int64_t r = rows; r < kGemmMR; ++r) {
          d[r] = 0.0f;
        }
      }
    }
  }
}

void pack_b(const float* b, bool trans, std::int64_t k, std::int64_t n,
            float* dst) {
  const std::int64_t panels = (n + kGemmNR - 1) / kGemmNR;
  for (std::int64_t jp = 0; jp < panels; ++jp) {
    const std::int64_t j0 = jp * kGemmNR;
    const std::int64_t cols = std::min(kGemmNR, n - j0);
    float* pd = dst + jp * kGemmNR * k;
    if (!trans) {
      for (std::int64_t p = 0; p < k; ++p) {
        const float* src = b + p * n + j0;
        float* d = pd + p * kGemmNR;
        for (std::int64_t c = 0; c < cols; ++c) {
          d[c] = src[c];
        }
        for (std::int64_t c = cols; c < kGemmNR; ++c) {
          d[c] = 0.0f;
        }
      }
    } else {
      // B stored n x k: column c of the panel is the contiguous row
      // (j0 + c) of the stored matrix.
      for (std::int64_t c = 0; c < cols; ++c) {
        const float* src = b + (j0 + c) * k;
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * kGemmNR + c] = src[p];
        }
      }
      for (std::int64_t c = cols; c < kGemmNR; ++c) {
        for (std::int64_t p = 0; p < k; ++p) {
          pd[p * kGemmNR + c] = 0.0f;
        }
      }
    }
  }
}

void gemm_packed_panels(const float* pa, const float* pb, std::int64_t m,
                        std::int64_t panel0, std::int64_t panel1,
                        std::int64_t n, std::int64_t k, float beta, float* c,
                        std::int64_t ldc) {
  const MicroKernel kernel = active_kernel();
  const std::int64_t npanels = (n + kGemmNR - 1) / kGemmNR;
  for (std::int64_t ip = panel0; ip < panel1; ++ip) {
    const std::int64_t i0 = ip * kGemmMR;
    const std::int64_t mr = std::min(kGemmMR, m - i0);
    const float* apanel = pa + ip * kGemmMR * k;
    float* crow = c + i0 * ldc;
    for (std::int64_t jp = 0; jp < npanels; ++jp) {
      const std::int64_t j0 = jp * kGemmNR;
      kernel(apanel, pb + jp * kGemmNR * k, k, crow + j0, ldc, mr,
             std::min(kGemmNR, n - j0), beta);
    }
  }
}

void gemm_packed(const float* pa, const float* pb, std::int64_t m,
                 std::int64_t n, std::int64_t k, float beta, float* c,
                 std::int64_t ldc) {
  const std::int64_t mpanels = (m + kGemmMR - 1) / kGemmMR;
  if (2 * m * n * k < kParallelWorkThreshold || mpanels == 1) {
    gemm_packed_panels(pa, pb, m, 0, mpanels, n, k, beta, c, ldc);
    return;
  }
  // Chunk over row panels: each C row is produced by one chunk with the
  // full-K accumulation order fixed inside the microkernel, so the
  // partition (a pure function of m) never changes result bits.
  const std::int64_t grain = std::max<std::int64_t>(1, mpanels / 64);
  core::parallel_for(0, mpanels, grain,
                     [&](std::int64_t p0, std::int64_t p1) {
                       gemm_packed_panels(pa, pb, m, p0, p1, n, k, beta, c,
                                          ldc);
                     });
}

void gemm_with_packed_a(const float* pa, std::int64_t m, std::int64_t k,
                        const float* b, bool tb, std::int64_t n, float beta,
                        float* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  core::ScratchArena::Scope scope;
  float* pb = scope.floats(packed_b_floats(k, n));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    pack_b(b, tb, k, n, pb);
  }
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.compute");
    gemm_packed(pa, pb, m, n, k, beta, c, ldc);
  }
}

}  // namespace detail

void PackedA::pack(const float* a, bool trans, std::int64_t m, std::int64_t k,
                   float alpha) {
  HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
  float* dst = buf_.float_slots(
      static_cast<std::size_t>(detail::packed_a_floats(m, k)));
  detail::pack_a(a, trans, m, k, alpha, dst);
  src_ = a;
  trans_ = trans;
  m_ = m;
  k_ = k;
  alpha_ = alpha;
}

void gemm_raw(const float* a, bool ta, const float* b, bool tb,
              std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              float beta, float* c, std::int64_t ldc) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (k <= 0 || alpha == 0.0f) {
    scale_c(beta, m, n, c, ldc);
    return;
  }
  if (m == 1) {
    gemv(a, b, tb, n, k, alpha, beta, c);
    return;
  }
  if (m * n * k <= kSmallGemmVolume) {
    gemm_small(a, ta, b, tb, m, n, k, alpha, beta, c, ldc);
    return;
  }
  core::ScratchArena::Scope scope;
  float* pa = scope.floats(detail::packed_a_floats(m, k));
  float* pb = scope.floats(detail::packed_b_floats(k, n));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    detail::pack_a(a, ta, m, k, alpha, pa);
    detail::pack_b(b, tb, k, n, pb);
  }
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.compute");
    detail::gemm_packed(pa, pb, m, n, k, beta, c, ldc);
  }
}

void gemm_prepacked(const PackedA& a, const float* b, bool tb, std::int64_t n,
                    float beta, float* c, std::int64_t ldc) {
  detail::gemm_with_packed_a(a.data(), a.m(), a.k(), b, tb, n, beta, c, ldc);
}

}  // namespace hpnn::ops
