// Dense numeric kernels: GEMM, im2col/col2im, convolution, pooling, softmax.
//
// These are the raw computational primitives; the layer classes in src/nn
// are thin stateful wrappers around them. Kernels are cache-blocked where
// it matters and run on the deterministic thread pool (core/threadpool.hpp)
// when the work is large enough: GEMM fans out over row chunks, conv over
// samples, pooling/softmax over planes/rows. Chunk boundaries never depend
// on the thread count, so every kernel returns bit-identical results at any
// HPNN_THREADS setting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "tensor/gemm_kernel.hpp"
#include "tensor/tensor.hpp"

namespace hpnn::ops {

/// Whether a GEMM operand is used as stored or transposed.
enum class Trans { kNo, kYes };

/// C = alpha * op(A) @ op(B) + beta * C.
/// op(A) is M x K, op(B) is K x N, C is M x N. Rank-2 tensors only.
void gemm(const Tensor& a, Trans ta, const Tensor& b, Trans tb, Tensor& c,
          float alpha = 1.0f, float beta = 0.0f);

/// Convenience: returns op(A) @ op(B).
Tensor matmul(const Tensor& a, const Tensor& b, Trans ta = Trans::kNo,
              Trans tb = Trans::kNo);

/// Geometry of a 2-d convolution / pooling window.
struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t in_h = 0;
  std::int64_t in_w = 0;
  std::int64_t kernel = 1;   // square kernel
  std::int64_t stride = 1;
  std::int64_t padding = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }
};

/// im2col for one sample: input [C, H, W] -> columns
/// [C*K*K, out_h*out_w]. `cols` must be pre-sized. Templated over the
/// scalar type so the float host path and the device's int8 datapath share
/// one owner for the padding/stride semantics.
template <typename T>
void im2col(const T* input, const Conv2dGeometry& g, T* cols) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t plane = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        T* out_row = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            std::fill(out_row + y * ow, out_row + (y + 1) * ow, T{});
            continue;
          }
          const T* in_row = input + c * plane + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kx - g.padding;
            out_row[y * ow + x] = (ix >= 0 && ix < g.in_w) ? in_row[ix] : T{};
          }
        }
      }
    }
  }
}

/// col2im for one sample: scatter-add columns back to input gradient.
void col2im(const float* cols, const Conv2dGeometry& g, float* input_grad);

/// Convolution forward for a batch.
/// x: [N, C, H, W]; weight: [F, C, K, K]; bias: [F] (may be empty for none).
/// Returns [N, F, out_h, out_w].
Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, const Conv2dGeometry& g);

/// Convolution forward against weight panels packed once via
/// PackedA::pack(weight.data(), false, filters, C*K*K) — layers cache the
/// packing across a batch (training) or across calls (frozen eval
/// weights) instead of re-packing per sample.
Tensor conv2d_forward(const Tensor& x, const PackedA& packed_weight,
                      const Tensor& bias, const Conv2dGeometry& g);

/// Convolution backward.
/// grad_out: [N, F, out_h, out_w]. Accumulates into grad_weight/grad_bias
/// (caller zeroes them per step) and returns grad_x [N, C, H, W].
Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Tensor& grad_out, const Conv2dGeometry& g,
                       Tensor& grad_weight, Tensor& grad_bias);

/// Max-pooling forward. x: [N, C, H, W]; returns output and the flat input
/// index (within each sample's channel plane set) of every selected max,
/// for use by the backward pass.
struct MaxPoolResult {
  Tensor output;                       // [N, C, out_h, out_w]
  std::vector<std::int64_t> argmax;    // one flat x-index per output element
};
MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel,
                                std::int64_t stride);

/// Max-pooling backward: routes each output gradient to its argmax source.
Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax);

/// Average pooling with square window. x: [N, C, H, W].
Tensor avgpool2d_forward(const Tensor& x, std::int64_t kernel,
                         std::int64_t stride);
/// Backward of average pooling: spreads each output gradient uniformly
/// over its window (overlaps accumulate).
Tensor avgpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          std::int64_t kernel, std::int64_t stride);

/// Global average pooling: [N, C, H, W] -> [N, C].
Tensor global_avgpool_forward(const Tensor& x);
/// Backward of global average pooling.
Tensor global_avgpool_backward(const Tensor& grad_out, const Shape& input_shape);

/// Row-wise softmax of a [N, C] tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a [N, C] tensor.
Tensor log_softmax_rows(const Tensor& logits);

/// Row-wise argmax of a [N, C] tensor -> N class indices.
std::vector<std::int64_t> argmax_rows(const Tensor& scores);

}  // namespace hpnn::ops
