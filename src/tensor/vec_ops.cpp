#include "tensor/vec_ops.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)
#include <immintrin.h>
#define HPNN_HAVE_AVX2_KERNELS 1
#else
#define HPNN_HAVE_AVX2_KERNELS 0
#endif

namespace hpnn::ops {

namespace {

bool detect_simd() {
#if HPNN_HAVE_AVX2_KERNELS
  // Kill switch for A/B runs and for debugging the dispatch itself.
  const char* env = std::getenv("HPNN_SIMD");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
       std::strcmp(env, "false") == 0)) {
    return false;
  }
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if HPNN_HAVE_AVX2_KERNELS

__attribute__((target("avx2,fma"))) void relu_avx2(const float* x, float* y,
                                                   std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) {
    y[i] = std::max(x[i], 0.0f);
  }
}

__attribute__((target("avx2,fma"))) void relu_mask_avx2(const float* x,
                                                        float* g,
                                                        std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_ps(g + i, _mm256_and_ps(_mm256_loadu_ps(g + i), keep));
  }
  for (; i < n; ++i) {
    g[i] = x[i] > 0.0f ? g[i] : 0.0f;
  }
}

__attribute__((target("avx2,fma"))) void mul_avx2(const float* a,
                                                  const float* b, float* y,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    y[i] = a[i] * b[i];
  }
}

__attribute__((target("avx2,fma"))) void axpy_avx2(float s, const float* x,
                                                   float* y, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(sv, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    y[i] += s * x[i];
  }
}

__attribute__((target("avx2,fma"))) void add_scalar_avx2(float s, float* y,
                                                         std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), sv));
  }
  for (; i < n; ++i) {
    y[i] += s;
  }
}

__attribute__((target("avx2,fma"))) float dot_avx2(const float* a,
                                                   const float* b,
                                                   std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  // Fixed pairwise lane reduction: (lo+hi) -> 4 lanes -> 2 -> 1.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s4 = _mm_add_ps(lo, hi);
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

__attribute__((target("avx2,fma"))) void lock_relu_grad_avx2(
    const float* g, const float* z, const float* lock, float* gx,
    std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(z + i), zero, _CMP_GT_OQ);
    const __m256 gl =
        _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(lock + i));
    _mm256_storeu_ps(gx + i, _mm256_and_ps(gl, keep));
  }
  for (; i < n; ++i) {
    gx[i] = z[i] > 0.0f ? g[i] * lock[i] : 0.0f;
  }
}

#endif  // HPNN_HAVE_AVX2_KERNELS

}  // namespace

bool simd_active() {
  static const bool active = detect_simd();
  return active;
}

void vec_relu(const float* x, float* y, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    relu_avx2(x, y, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = std::max(x[i], 0.0f);
  }
}

void vec_relu_mask(const float* x, float* g, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    relu_mask_avx2(x, g, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    g[i] = x[i] > 0.0f ? g[i] : 0.0f;
  }
}

void vec_mul(const float* a, const float* b, float* y, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    mul_avx2(a, b, y, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] = a[i] * b[i];
  }
}

void vec_axpy(float s, const float* x, float* y, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    axpy_avx2(s, x, y, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += s * x[i];
  }
}

void vec_add_scalar(float s, float* y, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    add_scalar_avx2(s, y, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    y[i] += s;
  }
}

float vec_dot(const float* a, const float* b, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    return dot_avx2(a, b, n);
  }
#endif
  float sum = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void vec_lock_relu_grad(const float* g, const float* z, const float* lock,
                        float* gx, std::int64_t n) {
#if HPNN_HAVE_AVX2_KERNELS
  if (simd_active()) {
    lock_relu_grad_avx2(g, z, lock, gx, n);
    return;
  }
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    gx[i] = z[i] > 0.0f ? g[i] * lock[i] : 0.0f;
  }
}

}  // namespace hpnn::ops
