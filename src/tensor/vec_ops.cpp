#include "tensor/vec_ops.hpp"

#include "tensor/backend.hpp"

namespace hpnn::ops {

bool simd_active() {
  // Not cached: the active backend can change mid-process (set_backend,
  // --backend), and this predicate must track it.
  return backend().name() != "scalar";
}

void vec_relu(const float* x, float* y, std::int64_t n) {
  backend().relu(x, y, n);
}

void vec_relu_mask(const float* x, float* g, std::int64_t n) {
  backend().relu_mask(x, g, n);
}

void vec_mul(const float* a, const float* b, float* y, std::int64_t n) {
  backend().mul(a, b, y, n);
}

void vec_axpy(float s, const float* x, float* y, std::int64_t n) {
  backend().axpy(s, x, y, n);
}

void vec_add_scalar(float s, float* y, std::int64_t n) {
  backend().add_scalar(s, y, n);
}

float vec_dot(const float* a, const float* b, std::int64_t n) {
  return backend().dot(a, b, n);
}

void vec_lock_relu_grad(const float* g, const float* z, const float* lock,
                        float* gx, std::int64_t n) {
  backend().lock_relu_grad(g, z, lock, gx, n);
}

}  // namespace hpnn::ops
