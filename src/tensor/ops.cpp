#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/aligned_buffer.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "tensor/backend.hpp"
#include "tensor/gemm_kernel.hpp"
#include "tensor/vec_ops.hpp"

namespace hpnn::ops {

namespace {

// Minimum arithmetic volume (rough op count) before a kernel fans out to
// the thread pool; below this the dispatch overhead dominates. For every
// kernel here except conv2d_backward the partitioning cannot affect the
// result bits (disjoint writes, per-element order unchanged), so this is a
// pure performance knob. conv2d_backward fixes its own partition
// independently of both this threshold and the thread count.
constexpr std::int64_t kParallelWorkThreshold = 1 << 15;

}  // namespace

void gemm(const Tensor& a, Trans ta, const Tensor& b, Trans tb, Tensor& c,
          float alpha, float beta) {
  HPNN_METRIC_OP_SCOPE("tensor.gemm");
  HPNN_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
             "gemm requires rank-2 tensors");
  const std::int64_t m = (ta == Trans::kNo) ? a.dim(0) : a.dim(1);
  const std::int64_t k = (ta == Trans::kNo) ? a.dim(1) : a.dim(0);
  const std::int64_t kb = (tb == Trans::kNo) ? b.dim(0) : b.dim(1);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  HPNN_CHECK(k == kb, "gemm inner dimension mismatch: " +
                          a.shape().to_string() + " x " + b.shape().to_string());
  HPNN_CHECK(c.dim(0) == m && c.dim(1) == n,
             "gemm output shape mismatch, expected [" + std::to_string(m) +
                 ", " + std::to_string(n) + "], got " + c.shape().to_string());

  // Transposition is folded into the pack stage of the microkernel — no
  // materialized transposed copy (gemm_kernel.hpp).
  gemm_raw(a.data(), ta == Trans::kYes, b.data(), tb == Trans::kYes, m, n, k,
           alpha, beta, c.data(), n);
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans ta, Trans tb) {
  const std::int64_t m = (ta == Trans::kNo) ? a.dim(0) : a.dim(1);
  const std::int64_t n = (tb == Trans::kNo) ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  gemm(a, ta, b, tb, c, 1.0f, 0.0f);
  return c;
}

void col2im(const float* cols, const Conv2dGeometry& g, float* input_grad) {
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t plane = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    for (std::int64_t ky = 0; ky < g.kernel; ++ky) {
      for (std::int64_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + ky - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            continue;
          }
          float* grad_row = input_grad + c * plane + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kx - g.padding;
            if (ix >= 0 && ix < g.in_w) {
              grad_row[ix] += in_row[y * ow + x];
            }
          }
        }
      }
    }
  }
}

namespace {

/// Shared conv2d forward body: `pw` is the packed weight panel image
/// (PackedA layout, filters x cols_rows, alpha = 1) laid out by backend
/// `be`, which every chunk computes with — the backend is snapshotted once
/// per call, so a concurrent backend switch cannot mix panel geometries
/// mid-batch. Writes the GEMM result directly into the output tensor (no
/// per-sample staging copy).
Tensor conv2d_forward_packed(const core::ComputeBackend& be, const Tensor& x,
                             const float* pw, std::int64_t filters,
                             const Tensor& bias, const Conv2dGeometry& g) {
  HPNN_CHECK(x.rank() == 4, "conv2d input must be NCHW");
  HPNN_CHECK(x.dim(1) == g.in_channels && x.dim(2) == g.in_h &&
                 x.dim(3) == g.in_w,
             "conv2d geometry mismatch with input " + x.shape().to_string());

  const std::int64_t batch = x.dim(0);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t cols_rows = g.in_channels * g.kernel * g.kernel;
  HPNN_CHECK(oh > 0 && ow > 0, "conv2d output would be empty");
  HPNN_CHECK(bias.numel() == 0 || bias.numel() == filters,
             "conv2d bias length must equal filter count");

  Tensor out(Shape{batch, filters, oh, ow});

  const std::int64_t in_sample = g.in_channels * g.in_h * g.in_w;
  const std::int64_t out_sample = filters * ohw;

  // Samples are independent: fan out over the batch. Each chunk carves its
  // im2col columns and B-panel scratch from its worker's arena once and
  // reuses them for every sample in the chunk; each sample's arithmetic is
  // identical to the serial path, so the output is bit-identical at any
  // thread count.
  auto sample_range = [&](std::int64_t n0, std::int64_t n1) {
    core::ScratchArena::Scope scope;
    float* cols = scope.floats(cols_rows * ohw);
    float* pb = scope.floats(detail::packed_b_floats(be, cols_rows, ohw));
    for (std::int64_t nidx = n0; nidx < n1; ++nidx) {
      float* dst = out.data() + nidx * out_sample;
      {
        HPNN_METRIC_OP_SCOPE("tensor.conv2d.pack");
        im2col(x.data() + nidx * in_sample, g, cols);
        detail::pack_b(be, cols, false, cols_rows, ohw, pb);
      }
      {
        HPNN_METRIC_OP_SCOPE("tensor.conv2d.compute");
        detail::gemm_packed(be, pw, pb, filters, ohw, cols_rows, 0.0f, dst,
                            ohw);
      }
      if (bias.numel() > 0) {
        for (std::int64_t f = 0; f < filters; ++f) {
          vec_add_scalar(bias.at(f), dst + f * ohw, ohw);
        }
      }
    }
  };
  if (batch == 1 || batch * out_sample * cols_rows < kParallelWorkThreshold) {
    sample_range(0, batch);
  } else {
    core::parallel_for(0, batch, 1, sample_range);
  }
  return out;
}

}  // namespace

Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Tensor& bias, const Conv2dGeometry& g) {
  HPNN_METRIC_OP_SCOPE("tensor.conv2d_forward");
  HPNN_CHECK(weight.rank() == 4, "conv2d weight must be [F, C, K, K]");
  HPNN_CHECK(weight.dim(1) == g.in_channels && weight.dim(2) == g.kernel &&
                 weight.dim(3) == g.kernel,
             "conv2d geometry mismatch with weight " +
                 weight.shape().to_string());
  const std::int64_t filters = weight.dim(0);
  const std::int64_t cols_rows = g.in_channels * g.kernel * g.kernel;

  // Pack the weight panels once for the whole batch (the old path packed
  // nothing but re-read the unblocked weight matrix per sample).
  const core::ComputeBackend& be = backend();
  core::ScratchArena::Scope scope;
  float* pw = scope.floats(detail::packed_a_floats(be, filters, cols_rows));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    detail::pack_a(be, weight.data(), false, filters, cols_rows, 1.0f, pw);
  }
  return conv2d_forward_packed(be, x, pw, filters, bias, g);
}

Tensor conv2d_forward(const Tensor& x, const PackedA& packed_weight,
                      const Tensor& bias, const Conv2dGeometry& g) {
  HPNN_METRIC_OP_SCOPE("tensor.conv2d_forward");
  HPNN_CHECK(!packed_weight.empty() &&
                 packed_weight.k() ==
                     g.in_channels * g.kernel * g.kernel,
             "conv2d packed weight panels do not match geometry");
  // The panels are self-describing: compute with the backend that packed
  // them, which may lag the active backend until the caller repacks.
  return conv2d_forward_packed(*packed_weight.packed_backend(), x,
                               packed_weight.data(), packed_weight.m(),
                               bias, g);
}

Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Tensor& grad_out, const Conv2dGeometry& g,
                       Tensor& grad_weight, Tensor& grad_bias) {
  HPNN_METRIC_OP_SCOPE("tensor.conv2d_backward");
  const std::int64_t batch = x.dim(0);
  const std::int64_t filters = weight.dim(0);
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t cols_rows = g.in_channels * g.kernel * g.kernel;
  HPNN_CHECK(grad_out.shape() == Shape({batch, filters, oh, ow}),
             "conv2d_backward grad_out shape mismatch: " +
                 grad_out.shape().to_string());
  HPNN_CHECK(grad_weight.shape() == weight.shape(),
             "grad_weight shape mismatch");

  Tensor grad_x(x.shape());
  const bool has_bias = grad_bias.numel() > 0;

  const std::int64_t in_sample = g.in_channels * g.in_h * g.in_w;
  const std::int64_t out_sample = filters * oh * ow;
  const std::int64_t ohw = oh * ow;

  // W^T is consumed by every sample's dX GEMM: pack it once (transposition
  // folded into the pack, no materialized W^T) and share the read-only
  // panels across all chunks.
  const core::ComputeBackend& be = backend();
  core::ScratchArena::Scope wt_scope;
  float* pwt =
      wt_scope.floats(detail::packed_a_floats(be, cols_rows, filters));
  {
    HPNN_METRIC_OP_SCOPE("tensor.gemm.pack");
    detail::pack_a(be, weight.data(), true, cols_rows, filters, 1.0f, pwt);
  }

  // Static partition of the batch: at most 8 chunks, boundaries a pure
  // function of the batch size. grad_x writes are disjoint per sample; the
  // per-chunk grad_weight/grad_bias partials are reduced below in chunk
  // order, so the result is bit-identical at any thread count. The chunk
  // cap also bounds the partial-accumulator memory to 8 weight-sized
  // tensors.
  constexpr std::int64_t kMaxChunks = 8;
  const std::int64_t grain = (batch + kMaxChunks - 1) / kMaxChunks;
  const std::int64_t chunks = core::ThreadPool::chunk_count(0, batch, grain);
  std::vector<Tensor> partial_gw(static_cast<std::size_t>(chunks));
  std::vector<Tensor> partial_gb(static_cast<std::size_t>(chunks));

  core::parallel_for(0, batch, grain, [&](std::int64_t n0, std::int64_t n1,
                                          std::int64_t chunk) {
    core::ScratchArena::Scope scope;
    float* cols = scope.floats(cols_rows * ohw);
    float* grad_cols = scope.floats(cols_rows * ohw);
    Tensor gw2d(Shape{filters, cols_rows});
    Tensor gb(Shape{filters});
    for (std::int64_t nidx = n0; nidx < n1; ++nidx) {
      // The sample's output-gradient slice is already a contiguous
      // [filters, oh*ow] matrix — no staging copy needed.
      const float* gout = grad_out.data() + nidx * out_sample;

      // grad wrt weight: dW += dY @ cols^T (cols^T folded into packing).
      im2col(x.data() + nidx * in_sample, g, cols);
      gemm_raw(gout, false, cols, true, filters, cols_rows, ohw, 1.0f, 1.0f,
               gw2d.data(), cols_rows);

      // grad wrt bias: sum of each filter plane.
      if (has_bias) {
        for (std::int64_t f = 0; f < filters; ++f) {
          double s = 0.0;
          const float* plane = gout + f * ohw;
          for (std::int64_t i = 0; i < ohw; ++i) {
            s += plane[i];
          }
          gb.at(f) += static_cast<float>(s);
        }
      }

      // grad wrt input: dcols = W^T @ dY ; col2im scatter-add.
      detail::gemm_with_packed_a(be, pwt, cols_rows, filters, gout, false,
                                 ohw, 0.0f, grad_cols, ohw);
      col2im(grad_cols, g, grad_x.data() + nidx * in_sample);
    }
    partial_gw[static_cast<std::size_t>(chunk)] = std::move(gw2d);
    partial_gb[static_cast<std::size_t>(chunk)] = std::move(gb);
  });

  // Deterministic reduction: accumulate the partials into the caller's
  // gradients in ascending chunk (i.e. sample) order.
  float* gw = grad_weight.data();
  for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
    const float* p = partial_gw[static_cast<std::size_t>(chunk)].data();
    vec_axpy(1.0f, p, gw, grad_weight.numel());
  }
  if (has_bias) {
    for (std::int64_t chunk = 0; chunk < chunks; ++chunk) {
      const Tensor& p = partial_gb[static_cast<std::size_t>(chunk)];
      for (std::int64_t f = 0; f < filters; ++f) {
        grad_bias.at(f) += p.at(f);
      }
    }
  }
  return grad_x;
}

MaxPoolResult maxpool2d_forward(const Tensor& x, std::int64_t kernel,
                                std::int64_t stride) {
  HPNN_METRIC_OP_SCOPE("tensor.maxpool2d_forward");
  HPNN_CHECK(x.rank() == 4, "maxpool2d input must be NCHW");
  HPNN_CHECK(kernel >= 1 && stride >= 1, "invalid pool geometry");
  const std::int64_t batch = x.dim(0);
  const std::int64_t ch = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  // Note: (h - kernel) must be checked before the division — C++ integer
  // division rounds toward zero, so (1-2)/2+1 == 1 would silently produce a
  // window that reads past the plane.
  HPNN_CHECK(h >= kernel && w >= kernel,
             "maxpool2d window larger than input (" + std::to_string(h) +
                 "x" + std::to_string(w) + " vs kernel " +
                 std::to_string(kernel) + ")");
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;

  MaxPoolResult res{Tensor(Shape{batch, ch, oh, ow}),
                    std::vector<std::int64_t>(
                        static_cast<std::size_t>(batch * ch * oh * ow))};
  const float* src = x.data();
  float* dst = res.output.data();
  const std::int64_t planes = batch * ch;
  auto plane_range = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t pidx = p0; pidx < p1; ++pidx) {
      const float* plane = src + pidx * h * w;
      const std::int64_t plane_base = pidx * h * w;
      std::int64_t out_idx = pidx * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo, ++out_idx) {
          // Seed with the first window element (not -inf) so NaN inputs
          // still select a valid argmax for the backward scatter.
          float best = plane[(y * stride) * w + xo * stride];
          std::int64_t best_idx = plane_base + (y * stride) * w + xo * stride;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = y * stride + ky;
              const std::int64_t ix = xo * stride + kx;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = plane_base + iy * w + ix;
              }
            }
          }
          dst[out_idx] = best;
          res.argmax[static_cast<std::size_t>(out_idx)] = best_idx;
        }
      }
    }
  };
  if (planes * oh * ow * kernel * kernel < kParallelWorkThreshold) {
    plane_range(0, planes);
  } else {
    core::parallel_for(0, planes, std::max<std::int64_t>(1, planes / 64),
                       plane_range);
  }
  return res;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& argmax) {
  HPNN_CHECK(static_cast<std::size_t>(grad_out.numel()) == argmax.size(),
             "maxpool2d_backward argmax size mismatch");
  Tensor grad_x(input_shape);
  const float* g = grad_out.data();
  float* gx = grad_x.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) {
    gx[argmax[i]] += g[i];
  }
  return grad_x;
}

Tensor avgpool2d_forward(const Tensor& x, std::int64_t kernel,
                         std::int64_t stride) {
  HPNN_METRIC_OP_SCOPE("tensor.avgpool2d_forward");
  HPNN_CHECK(x.rank() == 4, "avgpool2d input must be NCHW");
  HPNN_CHECK(kernel >= 1 && stride >= 1, "invalid pool geometry");
  const std::int64_t batch = x.dim(0);
  const std::int64_t ch = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  HPNN_CHECK(h >= kernel && w >= kernel,
             "avgpool2d window larger than input");
  const std::int64_t oh = (h - kernel) / stride + 1;
  const std::int64_t ow = (w - kernel) / stride + 1;
  Tensor out(Shape{batch, ch, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const std::int64_t planes = batch * ch;
  auto plane_range = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t pidx = p0; pidx < p1; ++pidx) {
      const float* plane = x.data() + pidx * h * w;
      float* oplane = out.data() + pidx * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          double s = 0.0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              s += plane[(y * stride + ky) * w + (xo * stride + kx)];
            }
          }
          oplane[y * ow + xo] = static_cast<float>(s) * inv;
        }
      }
    }
  };
  if (planes * oh * ow * kernel * kernel < kParallelWorkThreshold) {
    plane_range(0, planes);
  } else {
    core::parallel_for(0, planes, std::max<std::int64_t>(1, planes / 64),
                       plane_range);
  }
  return out;
}

Tensor avgpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          std::int64_t kernel, std::int64_t stride) {
  HPNN_CHECK(grad_out.rank() == 4 && input_shape.rank() == 4,
             "avgpool2d_backward expects NCHW shapes");
  Tensor grad_x(input_shape);
  const std::int64_t batch = input_shape.dim(0);
  const std::int64_t ch = input_shape.dim(1);
  const std::int64_t h = input_shape.dim(2);
  const std::int64_t w = input_shape.dim(3);
  const std::int64_t oh = grad_out.dim(2);
  const std::int64_t ow = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel * kernel);
  const std::int64_t planes = batch * ch;
  // Windows overlap within a plane but never across planes, so chunking by
  // plane keeps the scatter-adds race-free.
  auto plane_range = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t pidx = p0; pidx < p1; ++pidx) {
      const float* gplane = grad_out.data() + pidx * oh * ow;
      float* xplane = grad_x.data() + pidx * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          const float g = gplane[y * ow + xo] * inv;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              xplane[(y * stride + ky) * w + (xo * stride + kx)] += g;
            }
          }
        }
      }
    }
  };
  if (planes * oh * ow * kernel * kernel < kParallelWorkThreshold) {
    plane_range(0, planes);
  } else {
    core::parallel_for(0, planes, std::max<std::int64_t>(1, planes / 64),
                       plane_range);
  }
  return grad_x;
}

Tensor global_avgpool_forward(const Tensor& x) {
  HPNN_METRIC_OP_SCOPE("tensor.global_avgpool_forward");
  HPNN_CHECK(x.rank() == 4, "global_avgpool input must be NCHW");
  const std::int64_t batch = x.dim(0);
  const std::int64_t ch = x.dim(1);
  const std::int64_t plane = x.dim(2) * x.dim(3);
  Tensor out(Shape{batch, ch});
  const float* src = x.data();
  const std::int64_t planes = batch * ch;
  auto plane_range = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t pidx = p0; pidx < p1; ++pidx) {
      double s = 0.0;
      const float* p = src + pidx * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        s += p[i];
      }
      out.at(pidx) = static_cast<float>(s / static_cast<double>(plane));
    }
  };
  if (planes * plane < kParallelWorkThreshold) {
    plane_range(0, planes);
  } else {
    core::parallel_for(0, planes, std::max<std::int64_t>(1, planes / 64),
                       plane_range);
  }
  return out;
}

Tensor global_avgpool_backward(const Tensor& grad_out,
                               const Shape& input_shape) {
  HPNN_CHECK(grad_out.rank() == 2, "global_avgpool grad must be [N, C]");
  Tensor grad_x(input_shape);
  const std::int64_t batch = input_shape.dim(0);
  const std::int64_t ch = input_shape.dim(1);
  const std::int64_t plane = input_shape.dim(2) * input_shape.dim(3);
  const float inv = 1.0f / static_cast<float>(plane);
  float* gx = grad_x.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t c = 0; c < ch; ++c) {
      const float g = grad_out.at(n, c) * inv;
      float* p = gx + (n * ch + c) * plane;
      for (std::int64_t i = 0; i < plane; ++i) {
        p[i] = g;
      }
    }
  }
  return grad_x;
}

namespace {

/// Shared row-parallel driver for the softmax family: every row is an
/// independent computation writing its own output slice.
template <typename RowFn>
void for_each_row(std::int64_t n, std::int64_t c, const RowFn& row_fn) {
  if (n * c < kParallelWorkThreshold / 8) {
    row_fn(0, n);
  } else {
    core::parallel_for(0, n, std::max<std::int64_t>(1, n / 64), row_fn);
  }
}

}  // namespace

Tensor softmax_rows(const Tensor& logits) {
  HPNN_METRIC_OP_SCOPE("tensor.softmax_rows");
  HPNN_CHECK(logits.rank() == 2, "softmax_rows expects [N, C]");
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  for_each_row(n, c, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* row = logits.data() + i * c;
      float* orow = out.data() + i * c;
      const float m = *std::max_element(row, row + c);
      double denom = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        orow[j] = std::exp(row[j] - m);
        denom += orow[j];
      }
      const float inv = static_cast<float>(1.0 / denom);
      for (std::int64_t j = 0; j < c; ++j) {
        orow[j] *= inv;
      }
    }
  });
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  HPNN_METRIC_OP_SCOPE("tensor.log_softmax_rows");
  HPNN_CHECK(logits.rank() == 2, "log_softmax_rows expects [N, C]");
  const std::int64_t n = logits.dim(0);
  const std::int64_t c = logits.dim(1);
  Tensor out(logits.shape());
  for_each_row(n, c, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      const float* row = logits.data() + i * c;
      float* orow = out.data() + i * c;
      const float m = *std::max_element(row, row + c);
      double denom = 0.0;
      for (std::int64_t j = 0; j < c; ++j) {
        denom += std::exp(static_cast<double>(row[j] - m));
      }
      const float log_denom = static_cast<float>(std::log(denom)) + m;
      for (std::int64_t j = 0; j < c; ++j) {
        orow[j] = row[j] - log_denom;
      }
    }
  });
  return out;
}

std::vector<std::int64_t> argmax_rows(const Tensor& scores) {
  HPNN_CHECK(scores.rank() == 2, "argmax_rows expects [N, C]");
  const std::int64_t n = scores.dim(0);
  const std::int64_t c = scores.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = scores.data() + i * c;
    out[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(std::max_element(row, row + c) - row);
  }
  return out;
}

}  // namespace hpnn::ops
