// Tensor-layer access point for the compute-backend registry.
//
// The built-in tiers live in this library (tensor/backends/), so the core
// registry cannot self-populate: linking core alone gives an empty
// registry, and static initializers in a static library would be
// dead-stripped. Instead every kernel-layer call site fetches the active
// backend through ops::backend(), which registers whatever tiers were
// compiled into this binary exactly once before delegating to
// core::active_compute_backend().
#pragma once

#include <string>
#include <vector>

#include "core/compute_backend.hpp"

namespace hpnn::ops {

/// Registers the built-in backends (first call only) and returns the
/// active one. Selection follows core::active_compute_backend(): explicit
/// set_backend() > HPNN_BACKEND env > legacy HPNN_SIMD env > auto-pick.
const core::ComputeBackend& backend();

/// Registers the built-ins (first call only), then switches the active
/// backend. Throws UsageError on unknown or unsupported names — never
/// falls back silently. Bumps the backend epoch, invalidating PackedA
/// panels and ScratchArena retained blocks.
void set_backend(const std::string& name);

/// Registers the built-ins (first call only), then lists every registered
/// backend name in registration order (scalar first).
std::vector<std::string> backend_names();

/// Registers the built-ins (first call only); find by name, nullptr when
/// unknown. For conformance tests that iterate specific tiers.
const core::ComputeBackend* find_backend(const std::string& name);

}  // namespace hpnn::ops
