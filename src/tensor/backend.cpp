#include "tensor/backend.hpp"

#include <mutex>

#include "tensor/backends/backends.hpp"

namespace hpnn::ops {

namespace {

/// One-time registration of the tiers compiled into this binary. call_once
/// (not a static-local initializer) so the first caller on any thread —
/// including pool workers — pays it exactly once, with no reliance on
/// static-init order across translation units.
void ensure_builtins_registered() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    core::register_compute_backend(make_scalar_backend());
#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)
    core::register_compute_backend(make_avx2_backend());
#endif
#if defined(HPNN_SIMD_AVX512) && defined(__x86_64__)
    core::register_compute_backend(make_avx512_backend());
#endif
  });
}

}  // namespace

const core::ComputeBackend& backend() {
  ensure_builtins_registered();
  return core::active_compute_backend();
}

void set_backend(const std::string& name) {
  ensure_builtins_registered();
  core::set_active_compute_backend(name);
}

std::vector<std::string> backend_names() {
  ensure_builtins_registered();
  return core::compute_backend_names();
}

const core::ComputeBackend* find_backend(const std::string& name) {
  ensure_builtins_registered();
  return core::find_compute_backend(name);
}

}  // namespace hpnn::ops
