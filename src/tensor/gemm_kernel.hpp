// Register-tiled, cache-blocked GEMM with operand packing, lowered onto
// the pluggable compute-backend layer (core/compute_backend.hpp).
//
// The kernel follows the classic panel-packing decomposition: op(A) is
// packed into MR-row panels (column-major within each panel), op(B) into
// NR-column panels (row-major within each panel), and an MR x NR register
// microkernel streams the two packed panels with unit stride. Transposition
// is a property of the *packing* stage — the microkernel never sees it — so
// the transposed GEMM variants cost exactly one extra strided read during
// packing instead of a materialized transposed copy.
//
// The blocking, packing and thread-pool fan-out here are shared by every
// backend; only the MR x NR microtile (and the vector primitives behind
// gemv) come from the active core::ComputeBackend. MR and NR are backend
// properties — 6x16 for scalar/AVX2, 8x32 for AVX-512 — so a packed panel
// is only meaningful to the backend that laid it out, and every function
// below takes the backend explicitly. Within one backend the instruction
// sequence is a pure function of the problem shape — no data-dependent
// branch (the old kernel skipped av == 0.0f terms, leaking operand values
// into the timing) — and chunk boundaries under parallel_for depend only
// on the shape, so results are bit-identical at any HPNN_THREADS setting.
//
// Pack buffers come from the calling thread's core::ScratchArena, so
// repeated GEMMs (conv over a batch, a training loop) reuse the same
// cache-hot scratch instead of reallocating. A-side panels that are reused
// across many GEMMs (conv weights over a batch, frozen weights in serving)
// can be packed once into a PackedA and replayed; the PackedA remembers
// which backend packed it, and replays always use that backend.
#pragma once

#include <cstdint>

#include "core/aligned_buffer.hpp"
#include "core/compute_backend.hpp"

namespace hpnn::ops {

namespace detail {

/// Packed sizes in floats for a given backend's microtile (panels are
/// zero-padded to full MR/NR).
inline std::int64_t packed_a_floats(const core::ComputeBackend& be,
                                    std::int64_t m, std::int64_t k) {
  const std::int64_t mr = be.gemm_mr();
  return (m + mr - 1) / mr * mr * k;
}
inline std::int64_t packed_b_floats(const core::ComputeBackend& be,
                                    std::int64_t k, std::int64_t n) {
  const std::int64_t nr = be.gemm_nr();
  return (n + nr - 1) / nr * nr * k;
}

/// Packs op(A) (m x k after the optional transpose) into MR-row panels,
/// folding alpha into the packed values. `a` is the stored matrix: m x k
/// when !trans, k x m when trans.
void pack_a(const core::ComputeBackend& be, const float* a, bool trans,
            std::int64_t m, std::int64_t k, float alpha, float* dst);

/// Packs op(B) (k x n after the optional transpose) into NR-column panels.
/// `b` is the stored matrix: k x n when !trans, n x k when trans.
void pack_b(const core::ComputeBackend& be, const float* b, bool trans,
            std::int64_t k, std::int64_t n, float* dst);

/// C = (packed product) + beta * C over row panels [panel0, panel1) of the
/// m-row problem. C has row stride ldc. Used directly by the parallel_for
/// chunks. `be` must be the backend that packed pa/pb.
void gemm_packed_panels(const core::ComputeBackend& be, const float* pa,
                        const float* pb, std::int64_t m, std::int64_t panel0,
                        std::int64_t panel1, std::int64_t n, std::int64_t k,
                        float beta, float* c, std::int64_t ldc);

/// Full packed-operand GEMM: packs nothing, computes every row panel,
/// fanning out to the thread pool when the volume warrants it.
void gemm_packed(const core::ComputeBackend& be, const float* pa,
                 const float* pb, std::int64_t m, std::int64_t n,
                 std::int64_t k, float beta, float* c, std::int64_t ldc);

/// GEMM against an already-packed A panel image (raw pointer form of
/// gemm_prepacked): packs op(B) into thread-local scratch and computes.
/// `be` must be the backend that packed pa.
void gemm_with_packed_a(const core::ComputeBackend& be, const float* pa,
                        std::int64_t m, std::int64_t k, const float* b,
                        bool tb, std::int64_t n, float beta, float* c,
                        std::int64_t ldc);

}  // namespace detail

/// A reusable packed image of op(A) with alpha folded in. The backing
/// storage is an AlignedBuffer that is retained across pack() calls, so a
/// layer that packs its weights every step pays no allocations, and one
/// that serves frozen weights can skip repacking via matches().
///
/// The panel layout (MR, panel strides) belongs to the backend that packed
/// it, so PackedA records that backend: matches() fails when the active
/// backend has changed (callers repack), and gemm_prepacked computes with
/// the recorded backend, so a panel can never be replayed through another
/// backend's microkernel.
class PackedA {
 public:
  /// Packs with the active backend (ops::backend()).
  void pack(const float* a, bool trans, std::int64_t m, std::int64_t k,
            float alpha = 1.0f);

  /// True when the buffer already holds the packing of exactly this
  /// (pointer, shape, transpose, alpha) request *laid out by the currently
  /// active backend*. Callers are responsible for content freshness:
  /// matches() is a pointer identity check and cannot see in-place
  /// rewrites of the source (optimizer steps and same-shape tensor
  /// assignment both keep the data pointer), so callers must pair it with
  /// their own mutation signal — the nn layers use
  /// nn::Parameter::version().
  bool matches(const float* a, bool trans, std::int64_t m, std::int64_t k,
               float alpha = 1.0f) const;

  const float* data() const {
    return reinterpret_cast<const float*>(buf_.data());
  }
  std::int64_t m() const { return m_; }
  std::int64_t k() const { return k_; }
  bool empty() const { return m_ == 0; }
  /// The backend that laid out the panels; nullptr before the first pack.
  const core::ComputeBackend* packed_backend() const { return backend_; }

 private:
  core::AlignedBuffer buf_;
  const float* src_ = nullptr;
  const core::ComputeBackend* backend_ = nullptr;
  std::int64_t m_ = 0;
  std::int64_t k_ = 0;
  bool trans_ = false;
  float alpha_ = 1.0f;
};

/// Raw-pointer GEMM: C = alpha * op(A) @ op(B) + beta * C, where op(A) is
/// m x k, op(B) is k x n and C is m x n with row stride ldc. This is the
/// single entry point every tensor-level GEMM lowers to; small problems
/// take an unpacked scalar path, m == 1 the backend's GEMV path, and
/// everything else the packed microkernel of the active backend.
void gemm_raw(const float* a, bool ta, const float* b, bool tb, std::int64_t m,
              std::int64_t n, std::int64_t k, float alpha, float beta,
              float* c, std::int64_t ldc);

/// GEMM against a prepacked A operand (alpha was folded at pack time):
/// C = packed(A) @ op(B) + beta * C. B is packed into thread-local
/// scratch. Computes with the backend that packed `a`, which may lag the
/// active backend until the caller repacks.
void gemm_prepacked(const PackedA& a, const float* b, bool tb, std::int64_t n,
                    float beta, float* c, std::int64_t ldc);

}  // namespace hpnn::ops
