// The AVX2/FMA tier: the packed microkernel and vector primitives that
// were the kernel layer's only SIMD path before the backend split. Every
// function carries a per-function target attribute so this translation
// unit compiles into any x86-64 binary; supported() gates execution on
// the CPUID probe at selection time.
#include <algorithm>

#include "tensor/backends/backends.hpp"
#include "tensor/backends/micro_common.hpp"

#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)

#include <immintrin.h>

namespace hpnn::ops {

namespace {

constexpr std::int64_t kAvx2MR = 6;
constexpr std::int64_t kAvx2NR = 16;

/// AVX2/FMA microkernel: 6 x 16 tile in 12 ymm accumulators, two aligned
/// B-vector loads and six A broadcasts per k step. No data-dependent
/// branches — the instruction stream is a pure function of k/mr/nr/beta.
__attribute__((target("avx2,fma"))) void micro_avx2(
    const float* ap, const float* bp, std::int64_t k, float* c,
    std::int64_t ldc, std::int64_t mr, std::int64_t nr, float beta) {
  __m256 acc[kAvx2MR][2];
  for (std::int64_t r = 0; r < kAvx2MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::int64_t p = 0; p < k; ++p) {
    // Panel rows are 64-byte aligned (kAvx2NR floats per k step from a
    // 64-byte-aligned arena block), so aligned loads are safe.
    const __m256 b0 = _mm256_load_ps(bp + p * kAvx2NR);
    const __m256 b1 = _mm256_load_ps(bp + p * kAvx2NR + 8);
    const float* arow = ap + p * kAvx2MR;
    for (std::int64_t r = 0; r < kAvx2MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (mr == kAvx2MR && nr == kAvx2NR) {
    if (beta == 0.0f) {
      for (std::int64_t r = 0; r < kAvx2MR; ++r) {
        _mm256_storeu_ps(c + r * ldc, acc[r][0]);
        _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
      }
    } else if (beta == 1.0f) {
      for (std::int64_t r = 0; r < kAvx2MR; ++r) {
        float* crow = c + r * ldc;
        _mm256_storeu_ps(crow,
                         _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
        _mm256_storeu_ps(
            crow + 8, _mm256_add_ps(_mm256_loadu_ps(crow + 8), acc[r][1]));
      }
    } else {
      const __m256 bv = _mm256_set1_ps(beta);
      for (std::int64_t r = 0; r < kAvx2MR; ++r) {
        float* crow = c + r * ldc;
        _mm256_storeu_ps(
            crow, _mm256_fmadd_ps(bv, _mm256_loadu_ps(crow), acc[r][0]));
        _mm256_storeu_ps(crow + 8, _mm256_fmadd_ps(
                                       bv, _mm256_loadu_ps(crow + 8),
                                       acc[r][1]));
      }
    }
    return;
  }
  alignas(32) float tile[kAvx2MR * kAvx2NR];
  for (std::int64_t r = 0; r < kAvx2MR; ++r) {
    _mm256_store_ps(tile + r * kAvx2NR, acc[r][0]);
    _mm256_store_ps(tile + r * kAvx2NR + 8, acc[r][1]);
  }
  backends::merge_tile(tile, kAvx2NR, c, ldc, mr, nr, beta);
}

__attribute__((target("avx2,fma"))) void relu_avx2(const float* x, float* y,
                                                   std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) {
    y[i] = std::max(x[i], 0.0f);
  }
}

__attribute__((target("avx2,fma"))) void relu_mask_avx2(const float* x,
                                                        float* g,
                                                        std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(x + i), zero, _CMP_GT_OQ);
    _mm256_storeu_ps(g + i, _mm256_and_ps(_mm256_loadu_ps(g + i), keep));
  }
  for (; i < n; ++i) {
    g[i] = x[i] > 0.0f ? g[i] : 0.0f;
  }
}

__attribute__((target("avx2,fma"))) void mul_avx2(const float* a,
                                                  const float* b, float* y,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    y[i] = a[i] * b[i];
  }
}

__attribute__((target("avx2,fma"))) void axpy_avx2(float s, const float* x,
                                                   float* y, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(sv, _mm256_loadu_ps(x + i),
                                            _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    y[i] += s * x[i];
  }
}

__attribute__((target("avx2,fma"))) void add_scalar_avx2(float s, float* y,
                                                         std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), sv));
  }
  for (; i < n; ++i) {
    y[i] += s;
  }
}

__attribute__((target("avx2,fma"))) float dot_avx2(const float* a,
                                                   const float* b,
                                                   std::int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  // Fixed pairwise lane reduction: (lo+hi) -> 4 lanes -> 2 -> 1.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s4 = _mm_add_ps(lo, hi);
  __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

__attribute__((target("avx2,fma"))) void lock_relu_grad_avx2(
    const float* g, const float* z, const float* lock, float* gx,
    std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(z + i), zero, _CMP_GT_OQ);
    const __m256 gl =
        _mm256_mul_ps(_mm256_loadu_ps(g + i), _mm256_loadu_ps(lock + i));
    _mm256_storeu_ps(gx + i, _mm256_and_ps(gl, keep));
  }
  for (; i < n; ++i) {
    gx[i] = z[i] > 0.0f ? g[i] * lock[i] : 0.0f;
  }
}

/// AVX2 int8 fast path: 16 output columns per stripe (two 8-lane int32
/// accumulators), activations broadcast, weights widened int8 -> int32.
/// add_epi32 wraps exactly like the scalar uint32 accumulation and the
/// per-element product order is unchanged, so results are bit-identical to
/// the scalar datapath.
__attribute__((target("avx2"))) void matmul_i8_avx2(
    const std::int8_t* a, std::int64_t m, std::int64_t k,
    const std::int8_t* w, std::int64_t n, const std::uint8_t* negate,
    std::int32_t* out) {
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      for (std::int64_t p = 0; p < k; ++p) {
        const __m256i av =
            _mm256_set1_epi32(static_cast<std::int32_t>(a[i * k + p]));
        const __m128i w16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(w + p * n + j));
        const __m256i w0 = _mm256_cvtepi8_epi32(w16);
        const __m256i w1 = _mm256_cvtepi8_epi32(_mm_srli_si128(w16, 8));
        acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(av, w0));
        acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(av, w1));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i * n + j), acc0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i * n + j + 8),
                          acc1);
    }
    // Column remainder: identical scalar accumulation.
    backends::matmul_i8_row_scalar(a, i, k, w, n, j, n, out);
    backends::negate_row(negate, i, n, out);
  }
}

class Avx2Backend final : public core::ComputeBackend {
 public:
  std::string name() const override { return "avx2"; }
  std::string description() const override {
    return "AVX2/FMA kernels: 6x16 GEMM microtile, 8-lane elementwise, "
           "widening int8 MMU path";
  }
  bool supported() const override {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
  int priority() const override { return 10; }

  std::int64_t gemm_mr() const override { return kAvx2MR; }
  std::int64_t gemm_nr() const override { return kAvx2NR; }

  void gemm_micro(const float* ap, const float* bp, std::int64_t k, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  float beta) const override {
    micro_avx2(ap, bp, k, c, ldc, mr, nr, beta);
  }

  void relu(const float* x, float* y, std::int64_t n) const override {
    relu_avx2(x, y, n);
  }
  void relu_mask(const float* x, float* g, std::int64_t n) const override {
    relu_mask_avx2(x, g, n);
  }
  void mul(const float* a, const float* b, float* y,
           std::int64_t n) const override {
    mul_avx2(a, b, y, n);
  }
  void axpy(float s, const float* x, float* y, std::int64_t n) const override {
    axpy_avx2(s, x, y, n);
  }
  void add_scalar(float s, float* y, std::int64_t n) const override {
    add_scalar_avx2(s, y, n);
  }
  float dot(const float* a, const float* b, std::int64_t n) const override {
    return dot_avx2(a, b, n);
  }
  void lock_relu_grad(const float* g, const float* z, const float* lock,
                      float* gx, std::int64_t n) const override {
    lock_relu_grad_avx2(g, z, lock, gx, n);
  }

  void matmul_i8(const std::int8_t* a, std::int64_t m, std::int64_t k,
                 const std::int8_t* w, std::int64_t n,
                 const std::uint8_t* negate,
                 std::int32_t* out) const override {
    matmul_i8_avx2(a, m, k, w, n, negate, out);
  }
};

}  // namespace

std::unique_ptr<core::ComputeBackend> make_avx2_backend() {
  return std::make_unique<Avx2Backend>();
}

}  // namespace hpnn::ops

#endif  // HPNN_SIMD_AVX2 && __x86_64__
