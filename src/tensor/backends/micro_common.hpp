// Helpers shared by the backend microkernel implementations: the edge-tile
// merge (beta policy applied once at store time) and the scalar int8
// datapath, which the SIMD tiers reuse for remainder columns so every
// element follows the same modular-accumulation semantics.
#pragma once

#include <cstdint>

namespace hpnn::ops::backends {

/// Writes one microkernel tile held in `tile` (row stride `tile_stride`)
/// into C with the beta policy: beta == 0 overwrites without reading
/// (NaN garbage in C must not propagate), beta == 1 accumulates, anything
/// else scales then adds.
inline void merge_tile(const float* tile, std::int64_t tile_stride, float* c,
                       std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                       float beta) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const float* t = tile + r * tile_stride;
    float* crow = c + r * ldc;
    if (beta == 0.0f) {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = t[j];
      }
    } else if (beta == 1.0f) {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] += t[j];
      }
    } else {
      for (std::int64_t j = 0; j < nr; ++j) {
        crow[j] = beta * crow[j] + t[j];
      }
    }
  }
}

/// Scalar fast-fidelity int8 datapath over columns [j0, j1) of row i.
/// 32-bit wrap-around accumulation is modular arithmetic, so any
/// evaluation order produces identical bits — this is the semantics every
/// SIMD variant must reproduce exactly.
inline void matmul_i8_row_scalar(const std::int8_t* a, std::int64_t i,
                                 std::int64_t k, const std::int8_t* w,
                                 std::int64_t n, std::int64_t j0,
                                 std::int64_t j1, std::int32_t* out) {
  for (std::int64_t j = j0; j < j1; ++j) {
    std::uint32_t acc = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const auto product = static_cast<std::int32_t>(a[i * k + p]) *
                           static_cast<std::int32_t>(w[p * n + j]);
      acc += static_cast<std::uint32_t>(product);
    }
    out[i * n + j] = static_cast<std::int32_t>(acc);
  }
}

/// Keyed negation applied as a second pass over a finished output row:
/// Σ(-p) == -(Σp) in two's complement, so the keyed accumulator's
/// per-product subtraction collapses to one negation here.
inline void negate_row(const std::uint8_t* negate, std::int64_t i,
                       std::int64_t n, std::int32_t* out) {
  if (negate == nullptr) {
    return;
  }
  for (std::int64_t j = 0; j < n; ++j) {
    if (negate[i * n + j] != 0) {
      out[i * n + j] = static_cast<std::int32_t>(
          0u - static_cast<std::uint32_t>(out[i * n + j]));
    }
  }
}

}  // namespace hpnn::ops::backends
