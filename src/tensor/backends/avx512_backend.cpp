// The AVX-512/VNNI tier: an 8 x 32 float microtile (16 zmm accumulators),
// 16-lane elementwise ops, and a vpdpbusd int8 MMU datapath. Everything
// is compiled behind per-function target attributes so one binary carries
// this tier alongside the AVX2 and scalar ones; supported() gates
// execution on the CPUID probes.
//
// Int8 exactness: vpdpbusd multiplies unsigned-by-signed bytes, so the
// signed activations are biased by +128 (a XOR 0x80) before the dot and
// the result is corrected by subtracting 128 * colsum(W) afterwards:
//   sum(a * w) == sum((a + 128) * w) - 128 * sum(w)   (mod 2^32).
// Every intermediate product (a+128)*w fits int16 (max |value| 32640),
// vpdpbusd's int32 accumulation is non-saturating (modular), and the
// correction is a modular subtraction — so the result is bit-identical to
// the scalar uint32 wrap-around datapath, not approximately equal.
#include <algorithm>

#include "core/aligned_buffer.hpp"
#include "tensor/backends/backends.hpp"
#include "tensor/backends/micro_common.hpp"

#if defined(HPNN_SIMD_AVX512) && defined(__x86_64__)

// GCC's AVX-512 intrinsic headers seed "undefined" vectors with
// `__Y = __Y`, which trips spurious -Wuninitialized through casts and
// broadcasts (GCC PR105593). Clang does not have the pattern.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

#define HPNN_AVX512_TARGET \
  __attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni")))

namespace hpnn::ops {

namespace {

constexpr std::int64_t kAvx512MR = 8;
constexpr std::int64_t kAvx512NR = 32;

/// AVX-512 microkernel: 8 x 32 tile in 16 zmm accumulators, two aligned
/// B-vector loads and eight A broadcasts per k step. No data-dependent
/// branches — the instruction stream is a pure function of k/mr/nr/beta.
HPNN_AVX512_TARGET void micro_avx512(const float* ap, const float* bp,
                                     std::int64_t k, float* c,
                                     std::int64_t ldc, std::int64_t mr,
                                     std::int64_t nr, float beta) {
  __m512 acc[kAvx512MR][2];
  for (std::int64_t r = 0; r < kAvx512MR; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (std::int64_t p = 0; p < k; ++p) {
    // B panel rows are kAvx512NR floats (128 bytes) from a 64-byte-aligned
    // arena block, so aligned loads are safe.
    const __m512 b0 = _mm512_load_ps(bp + p * kAvx512NR);
    const __m512 b1 = _mm512_load_ps(bp + p * kAvx512NR + 16);
    const float* arow = ap + p * kAvx512MR;
    for (std::int64_t r = 0; r < kAvx512MR; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (mr == kAvx512MR && nr == kAvx512NR) {
    if (beta == 0.0f) {
      for (std::int64_t r = 0; r < kAvx512MR; ++r) {
        _mm512_storeu_ps(c + r * ldc, acc[r][0]);
        _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
      }
    } else if (beta == 1.0f) {
      for (std::int64_t r = 0; r < kAvx512MR; ++r) {
        float* crow = c + r * ldc;
        _mm512_storeu_ps(crow,
                         _mm512_add_ps(_mm512_loadu_ps(crow), acc[r][0]));
        _mm512_storeu_ps(
            crow + 16, _mm512_add_ps(_mm512_loadu_ps(crow + 16), acc[r][1]));
      }
    } else {
      const __m512 bv = _mm512_set1_ps(beta);
      for (std::int64_t r = 0; r < kAvx512MR; ++r) {
        float* crow = c + r * ldc;
        _mm512_storeu_ps(
            crow, _mm512_fmadd_ps(bv, _mm512_loadu_ps(crow), acc[r][0]));
        _mm512_storeu_ps(
            crow + 16,
            _mm512_fmadd_ps(bv, _mm512_loadu_ps(crow + 16), acc[r][1]));
      }
    }
    return;
  }
  alignas(64) float tile[kAvx512MR * kAvx512NR];
  for (std::int64_t r = 0; r < kAvx512MR; ++r) {
    _mm512_store_ps(tile + r * kAvx512NR, acc[r][0]);
    _mm512_store_ps(tile + r * kAvx512NR + 16, acc[r][1]);
  }
  backends::merge_tile(tile, kAvx512NR, c, ldc, mr, nr, beta);
}

HPNN_AVX512_TARGET void relu_avx512(const float* x, float* y,
                                    std::int64_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_max_ps(_mm512_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) {
    y[i] = std::max(x[i], 0.0f);
  }
}

HPNN_AVX512_TARGET void relu_mask_avx512(const float* x, float* g,
                                         std::int64_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 keep =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(x + i), zero, _CMP_GT_OQ);
    _mm512_storeu_ps(g + i, _mm512_maskz_mov_ps(keep, _mm512_loadu_ps(g + i)));
  }
  for (; i < n; ++i) {
    g[i] = x[i] > 0.0f ? g[i] : 0.0f;
  }
}

HPNN_AVX512_TARGET void mul_avx512(const float* a, const float* b, float* y,
                                   std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_mul_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i)));
  }
  for (; i < n; ++i) {
    y[i] = a[i] * b[i];
  }
}

HPNN_AVX512_TARGET void axpy_avx512(float s, const float* x, float* y,
                                    std::int64_t n) {
  const __m512 sv = _mm512_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(sv, _mm512_loadu_ps(x + i),
                                            _mm512_loadu_ps(y + i)));
  }
  for (; i < n; ++i) {
    y[i] += s * x[i];
  }
}

HPNN_AVX512_TARGET void add_scalar_avx512(float s, float* y, std::int64_t n) {
  const __m512 sv = _mm512_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), sv));
  }
  for (; i < n; ++i) {
    y[i] += s;
  }
}

HPNN_AVX512_TARGET float dot_avx512(const float* a, const float* b,
                                    std::int64_t n) {
  __m512 acc = _mm512_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), acc);
  }
  // Fixed pairwise lane reduction: 16 -> 8 -> 4 -> 2 -> 1 (explicit, so the
  // reduction order is a property of this backend, not of the compiler's
  // reduce intrinsic lowering). The upper half is brought down with an
  // f32x4 shuffle + cast: the 256-bit extract needs avx512dq, which is not
  // in this tier's target set, and GCC's 128-bit extract trips a spurious
  // -Wuninitialized through _mm_undefined_ps.
  const __m256 half = _mm256_add_ps(
      _mm512_castps512_ps256(acc),
      _mm512_castps512_ps256(_mm512_shuffle_f32x4(acc, acc, 0xEE)));
  const __m128 lo = _mm256_castps256_ps128(half);
  const __m128 hi = _mm256_extractf128_ps(half, 1);
  const __m128 s4 = _mm_add_ps(lo, hi);
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x1));
  float sum = _mm_cvtss_f32(s1);
  for (; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

HPNN_AVX512_TARGET void lock_relu_grad_avx512(const float* g, const float* z,
                                              const float* lock, float* gx,
                                              std::int64_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __mmask16 keep =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(z + i), zero, _CMP_GT_OQ);
    const __m512 gl =
        _mm512_mul_ps(_mm512_loadu_ps(g + i), _mm512_loadu_ps(lock + i));
    _mm512_storeu_ps(gx + i, _mm512_maskz_mov_ps(keep, gl));
  }
  for (; i < n; ++i) {
    gx[i] = z[i] > 0.0f ? g[i] * lock[i] : 0.0f;
  }
}

/// VNNI int8 datapath. W is repacked once per call into per-16-column
/// stripes of [k/4][16 cols][4 k] bytes (zero-padded in k — a zero weight
/// contributes zero to both the biased dot and the column sum, so padding
/// is exact), the signed activations are biased to unsigned row by row,
/// and the +128 bias is removed with one modular subtraction per output.
HPNN_AVX512_TARGET void matmul_i8_avx512(const std::int8_t* a, std::int64_t m,
                                         std::int64_t k, const std::int8_t* w,
                                         std::int64_t n,
                                         const std::uint8_t* negate,
                                         std::int32_t* out) {
  const std::int64_t stripes = n / 16;  // full 16-column stripes
  const std::int64_t kq = (k + 3) / 4;  // k groups of 4, zero-padded
  core::ScratchArena::Scope scope;
  // Packed W: per stripe, kq groups of 64 bytes (16 cols x 4 k each).
  std::int8_t* wp =
      reinterpret_cast<std::int8_t*>(scope.bytes(
          static_cast<std::size_t>(std::max<std::int64_t>(
              stripes * kq * 64, 1))));
  // Column sums for the bias correction, full stripes only.
  std::int32_t* colsum = reinterpret_cast<std::int32_t*>(scope.bytes(
      static_cast<std::size_t>(std::max<std::int64_t>(stripes * 16, 1)) *
      sizeof(std::int32_t)));
  // One row of biased activations, zero-padded to kq * 4.
  std::uint8_t* au = reinterpret_cast<std::uint8_t*>(
      scope.bytes(static_cast<std::size_t>(kq * 4)));

  for (std::int64_t s = 0; s < stripes; ++s) {
    const std::int64_t j0 = s * 16;
    std::int8_t* sp = wp + s * kq * 64;
    for (std::int64_t q = 0; q < kq; ++q) {
      std::int8_t* gp = sp + q * 64;
      for (std::int64_t c = 0; c < 16; ++c) {
        for (std::int64_t r = 0; r < 4; ++r) {
          const std::int64_t p = q * 4 + r;
          gp[c * 4 + r] = p < k ? w[p * n + j0 + c] : 0;
        }
      }
    }
    for (std::int64_t c = 0; c < 16; ++c) {
      std::int32_t sum = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        sum += static_cast<std::int32_t>(w[p * n + j0 + c]);
      }
      colsum[s * 16 + c] = sum;
    }
  }

  for (std::int64_t i = 0; i < m; ++i) {
    // Bias the row to unsigned: a + 128 == a XOR 0x80 in two's complement.
    // Padded tail bytes multiply zero weights, so their value is free.
    for (std::int64_t p = 0; p < k; ++p) {
      au[p] = static_cast<std::uint8_t>(
          static_cast<std::uint8_t>(a[i * k + p]) ^ 0x80u);
    }
    for (std::int64_t p = k; p < kq * 4; ++p) {
      au[p] = 0;
    }
    for (std::int64_t s = 0; s < stripes; ++s) {
      const std::int8_t* sp = wp + s * kq * 64;
      __m512i acc = _mm512_setzero_si512();
      for (std::int64_t q = 0; q < kq; ++q) {
        std::uint32_t aword;
        __builtin_memcpy(&aword, au + q * 4, 4);
        const __m512i av = _mm512_set1_epi32(static_cast<std::int32_t>(aword));
        const __m512i wv = _mm512_load_si512(
            reinterpret_cast<const void*>(sp + q * 64));
        acc = _mm512_dpbusd_epi32(acc, av, wv);
      }
      // Remove the +128 bias: subtract 128 * colsum (modular).
      const __m512i cs = _mm512_load_si512(
          reinterpret_cast<const void*>(colsum + s * 16));
      acc = _mm512_sub_epi32(acc, _mm512_slli_epi32(cs, 7));
      _mm512_storeu_si512(
          reinterpret_cast<void*>(out + i * n + s * 16), acc);
    }
    // Column remainder: identical scalar accumulation.
    backends::matmul_i8_row_scalar(a, i, k, w, n, stripes * 16, n, out);
    backends::negate_row(negate, i, n, out);
  }
}

class Avx512Backend final : public core::ComputeBackend {
 public:
  std::string name() const override { return "avx512"; }
  std::string description() const override {
    return "AVX-512/VNNI kernels: 8x32 GEMM microtile, 16-lane elementwise, "
           "vpdpbusd int8 MMU path";
  }
  bool supported() const override {
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vl") &&
           __builtin_cpu_supports("avx512vnni");
  }
  int priority() const override { return 20; }

  std::int64_t gemm_mr() const override { return kAvx512MR; }
  std::int64_t gemm_nr() const override { return kAvx512NR; }

  void gemm_micro(const float* ap, const float* bp, std::int64_t k, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  float beta) const override {
    micro_avx512(ap, bp, k, c, ldc, mr, nr, beta);
  }

  void relu(const float* x, float* y, std::int64_t n) const override {
    relu_avx512(x, y, n);
  }
  void relu_mask(const float* x, float* g, std::int64_t n) const override {
    relu_mask_avx512(x, g, n);
  }
  void mul(const float* a, const float* b, float* y,
           std::int64_t n) const override {
    mul_avx512(a, b, y, n);
  }
  void axpy(float s, const float* x, float* y, std::int64_t n) const override {
    axpy_avx512(s, x, y, n);
  }
  void add_scalar(float s, float* y, std::int64_t n) const override {
    add_scalar_avx512(s, y, n);
  }
  float dot(const float* a, const float* b, std::int64_t n) const override {
    return dot_avx512(a, b, n);
  }
  void lock_relu_grad(const float* g, const float* z, const float* lock,
                      float* gx, std::int64_t n) const override {
    lock_relu_grad_avx512(g, z, lock, gx, n);
  }

  void matmul_i8(const std::int8_t* a, std::int64_t m, std::int64_t k,
                 const std::int8_t* w, std::int64_t n,
                 const std::uint8_t* negate,
                 std::int32_t* out) const override {
    matmul_i8_avx512(a, m, k, w, n, negate, out);
  }
};

}  // namespace

std::unique_ptr<core::ComputeBackend> make_avx512_backend() {
  return std::make_unique<Avx512Backend>();
}

}  // namespace hpnn::ops

#endif  // HPNN_SIMD_AVX512 && __x86_64__
