// The scalar reference backend: portable C++ kernels with the identical
// blocking, loop structure, and per-element accumulation order as the SIMD
// tiers (the float paths differ from them only in FMA rounding). This is
// the tier every conformance contract is stated against, and the fallback
// auto-pick on CPUs without AVX2.
#include <algorithm>

#include "tensor/backends/backends.hpp"
#include "tensor/backends/micro_common.hpp"

namespace hpnn::ops {

namespace {

/// Microtile matching the AVX2 tier's 6x16 so the two share packed-panel
/// geometry (a property the thread-pool chunking tests rely on when
/// comparing the tiers' partitions, not their bits).
constexpr std::int64_t kScalarMR = 6;
constexpr std::int64_t kScalarNR = 16;

class ScalarBackend final : public core::ComputeBackend {
 public:
  std::string name() const override { return "scalar"; }
  std::string description() const override {
    return "portable scalar reference kernels (always supported)";
  }
  bool supported() const override { return true; }
  int priority() const override { return 0; }

  std::int64_t gemm_mr() const override { return kScalarMR; }
  std::int64_t gemm_nr() const override { return kScalarNR; }

  void gemm_micro(const float* ap, const float* bp, std::int64_t k, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr,
                  float beta) const override {
    float acc[kScalarMR][kScalarNR] = {};
    for (std::int64_t p = 0; p < k; ++p) {
      const float* brow = bp + p * kScalarNR;
      const float* arow = ap + p * kScalarMR;
      for (std::int64_t r = 0; r < kScalarMR; ++r) {
        const float av = arow[r];
        for (std::int64_t j = 0; j < kScalarNR; ++j) {
          acc[r][j] += av * brow[j];
        }
      }
    }
    backends::merge_tile(&acc[0][0], kScalarNR, c, ldc, mr, nr, beta);
  }

  void relu(const float* x, float* y, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      y[i] = std::max(x[i], 0.0f);
    }
  }

  void relu_mask(const float* x, float* g, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      g[i] = x[i] > 0.0f ? g[i] : 0.0f;
    }
  }

  void mul(const float* a, const float* b, float* y,
           std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      y[i] = a[i] * b[i];
    }
  }

  void axpy(float s, const float* x, float* y, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      y[i] += s * x[i];
    }
  }

  void add_scalar(float s, float* y, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      y[i] += s;
    }
  }

  float dot(const float* a, const float* b, std::int64_t n) const override {
    float sum = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) {
      sum += a[i] * b[i];
    }
    return sum;
  }

  void lock_relu_grad(const float* g, const float* z, const float* lock,
                      float* gx, std::int64_t n) const override {
    for (std::int64_t i = 0; i < n; ++i) {
      gx[i] = z[i] > 0.0f ? g[i] * lock[i] : 0.0f;
    }
  }

  void matmul_i8(const std::int8_t* a, std::int64_t m, std::int64_t k,
                 const std::int8_t* w, std::int64_t n,
                 const std::uint8_t* negate,
                 std::int32_t* out) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      backends::matmul_i8_row_scalar(a, i, k, w, n, 0, n, out);
      backends::negate_row(negate, i, n, out);
    }
  }
};

}  // namespace

std::unique_ptr<core::ComputeBackend> make_scalar_backend() {
  return std::make_unique<ScalarBackend>();
}

}  // namespace hpnn::ops
