// Factories for the built-in compute-backend tiers. Each factory returns
// the tier's registry instance; a factory only exists when its kernels are
// compiled into this binary (HPNN_SIMD + x86-64 for the SIMD tiers), and
// ops::backend() registers whatever is compiled in on first use. CPU
// capability is a separate, runtime question answered by supported().
#pragma once

#include <memory>

#include "core/compute_backend.hpp"

namespace hpnn::ops {

/// The reference tier: portable scalar kernels, priority 0, always
/// supported. Every contract in the conformance kit is stated relative to
/// this backend.
std::unique_ptr<core::ComputeBackend> make_scalar_backend();

#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)
/// AVX2/FMA tier: 6x16 float microtile, 8-lane elementwise ops, widening
/// int8 MMU path. Supported when CPUID reports avx2+fma.
std::unique_ptr<core::ComputeBackend> make_avx2_backend();
#endif

#if defined(HPNN_SIMD_AVX512) && defined(__x86_64__)
/// AVX-512/VNNI tier: 8x32 float microtile, 16-lane elementwise ops, and a
/// vpdpbusd int8 MMU path (bit-identical to the scalar datapath — see the
/// unsigned-bias compensation note in avx512_backend.cpp). Supported when
/// CPUID reports avx512f+avx512bw+avx512vl+avx512vnni.
std::unique_ptr<core::ComputeBackend> make_avx512_backend();
#endif

}  // namespace hpnn::ops
