#include "tensor/shape.hpp"

#include <sstream>

#include "core/error.hpp"

namespace hpnn {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {
  for (const auto d : dims_) {
    HPNN_CHECK(d >= 0, "shape dims must be non-negative, got " + to_string());
  }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (const auto d : dims_) {
    HPNN_CHECK(d >= 0, "shape dims must be non-negative, got " + to_string());
  }
}

std::int64_t Shape::dim(std::int64_t i) const {
  const auto r = static_cast<std::int64_t>(rank());
  if (i < 0) {
    i += r;
  }
  HPNN_CHECK(i >= 0 && i < r,
             "dim index " + std::to_string(i) + " out of range for rank " +
                 std::to_string(r));
  return dims_[static_cast<std::size_t>(i)];
}

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (const auto d : dims_) {
    n *= d;
  }
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(rank(), 1);
  for (std::size_t i = rank(); i-- > 1;) {
    s[i - 1] = s[i] * dims_[i];
  }
  return s;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      os << ", ";
    }
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace hpnn
