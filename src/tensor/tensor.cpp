#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn {

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float value)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), value) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  HPNN_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
             "value count " + std::to_string(data_.size()) +
                 " does not match shape " + shape_.to_string());
}

float& Tensor::at(std::int64_t i) {
  HPNN_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float Tensor::at(std::int64_t i) const {
  HPNN_CHECK(i >= 0 && i < numel(), "flat index out of range");
  return data_[static_cast<std::size_t>(i)];
}

float& Tensor::at(std::int64_t i, std::int64_t j) {
  HPNN_CHECK(rank() == 2, "2-d at() on tensor of shape " + shape_.to_string());
  HPNN_CHECK(i >= 0 && i < dim(0) && j >= 0 && j < dim(1),
             "2-d index out of range");
  return data_[static_cast<std::size_t>(i * dim(1) + j)];
}

float Tensor::at(std::int64_t i, std::int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  HPNN_CHECK(rank() == 4, "4-d at() on tensor of shape " + shape_.to_string());
  HPNN_CHECK(n >= 0 && n < dim(0) && c >= 0 && c < dim(1) && h >= 0 &&
                 h < dim(2) && w >= 0 && w < dim(3),
             "4-d index out of range");
  const std::int64_t idx = ((n * dim(1) + c) * dim(2) + h) * dim(3) + w;
  return data_[static_cast<std::size_t>(idx)];
}

float Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                 std::int64_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  HPNN_CHECK(new_shape.numel() == numel(),
             "reshape " + shape_.to_string() + " -> " + new_shape.to_string() +
                 " changes element count");
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  HPNN_CHECK(shape_ == other.shape_,
             std::string(op) + ": shape mismatch " + shape_.to_string() +
                 " vs " + other.shape_.to_string());
}

void Tensor::add_(const Tensor& other) {
  check_same_shape(other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Tensor::sub_(const Tensor& other) {
  check_same_shape(other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] -= other.data_[i];
  }
}

void Tensor::mul_(const Tensor& other) {
  check_same_shape(other, "mul_");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] *= other.data_[i];
  }
}

void Tensor::scale_(float s) {
  for (auto& v : data_) {
    v *= s;
  }
}

void Tensor::axpy_(float s, const Tensor& other) {
  check_same_shape(other, "axpy_");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += s * other.data_[i];
  }
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(const Tensor& other) const {
  Tensor out = *this;
  out.mul_(other);
  return out;
}

Tensor Tensor::operator*(float s) const {
  Tensor out = *this;
  out.scale_(s);
  return out;
}

Tensor Tensor::operator-() const {
  Tensor out = *this;
  out.scale_(-1.0f);
  return out;
}

float Tensor::sum() const {
  // Kahan summation: reductions feed accuracy metrics and gradient checks.
  double s = 0.0;
  for (const auto v : data_) {
    s += static_cast<double>(v);
  }
  return static_cast<float>(s);
}

float Tensor::mean() const {
  HPNN_CHECK(!data_.empty(), "mean of empty tensor");
  return sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  HPNN_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  HPNN_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  HPNN_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

float Tensor::squared_norm() const {
  double s = 0.0;
  for (const auto v : data_) {
    s += static_cast<double>(v) * static_cast<double>(v);
  }
  return static_cast<float>(s);
}

bool Tensor::allclose(const Tensor& other, float rtol, float atol) const {
  if (shape_ != other.shape_) {
    return false;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const float diff = std::fabs(data_[i] - other.data_[i]);
    if (diff > atol + rtol * std::fabs(other.data_[i])) {
      return false;
    }
  }
  return true;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::arange(Shape shape) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.data_.size(); ++i) {
    t.data_[i] = static_cast<float>(i);
  }
  return t;
}

Tensor operator*(float s, const Tensor& t) {
  return t * s;
}

}  // namespace hpnn
