// Vectorized elementwise primitives shared by the layers and kernels.
//
// Each function has an explicit AVX2 implementation (compiled when
// HPNN_SIMD is ON on x86-64) and a scalar fallback with identical
// per-element semantics; the choice is made once at startup from CPUID and
// the HPNN_SIMD environment variable, together with the GEMM microkernel
// dispatch (gemm_kernel.hpp). Every function is branch-free in the data —
// ReLU and mask selection compile to max/blend, never to a data-dependent
// jump — and processes elements in ascending index order, so outputs are
// deterministic for a fixed dispatch and safe to split across the thread
// pool at any chunk boundary.
#pragma once

#include <cstdint>

namespace hpnn::ops {

/// True when the AVX2 elementwise/microkernel paths are active (same
/// dispatch decision as detail::gemm_simd_active()).
bool simd_active();

/// y[i] = max(x[i], 0). In-place (y == x) allowed.
void vec_relu(const float* x, float* y, std::int64_t n);

/// g[i] = x[i] > 0 ? g[i] : 0  — ReLU backward mask applied in place.
void vec_relu_mask(const float* x, float* g, std::int64_t n);

/// y[i] = a[i] * b[i]. Any aliasing among a, b, y allowed.
void vec_mul(const float* a, const float* b, float* y, std::int64_t n);

/// y[i] += s * x[i]  (axpy).
void vec_axpy(float s, const float* x, float* y, std::int64_t n);

/// y[i] += s.
void vec_add_scalar(float s, float* y, std::int64_t n);

/// Dot product with a fixed lane-reduction order (8 partial lanes summed
/// pairwise), deterministic for a fixed dispatch.
float vec_dot(const float* a, const float* b, std::int64_t n);

/// gx[i] = g[i] * lock[i] when z[i] > 0, else 0 — the locked-ReLU delta
/// rule gx = g * f'(z) * L with f = ReLU fused into one pass.
void vec_lock_relu_grad(const float* g, const float* z, const float* lock,
                        float* gx, std::int64_t n);

}  // namespace hpnn::ops
