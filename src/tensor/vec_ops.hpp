// Vectorized elementwise primitives shared by the layers and kernels.
//
// These are thin convenience wrappers over the active
// core::ComputeBackend (tensor/backend.hpp): each call dispatches to the
// backend's implementation of the same primitive, whose per-element
// semantics are fixed by the scalar reference tier. Every implementation
// is branch-free in the data — ReLU and mask selection compile to
// max/blend, never to a data-dependent jump — and processes elements in
// ascending index order, so outputs are deterministic for a fixed backend
// and safe to split across the thread pool at any chunk boundary.
#pragma once

#include <cstdint>

namespace hpnn::ops {

/// True when the active compute backend is a SIMD tier (anything but the
/// scalar reference). Kept for call sites that predate the backend layer;
/// prefer ops::backend().name() for anything new.
bool simd_active();

/// y[i] = max(x[i], 0). In-place (y == x) allowed.
void vec_relu(const float* x, float* y, std::int64_t n);

/// g[i] = x[i] > 0 ? g[i] : 0  — ReLU backward mask applied in place.
void vec_relu_mask(const float* x, float* g, std::int64_t n);

/// y[i] = a[i] * b[i]. Any aliasing among a, b, y allowed.
void vec_mul(const float* a, const float* b, float* y, std::int64_t n);

/// y[i] += s * x[i]  (axpy).
void vec_axpy(float s, const float* x, float* y, std::int64_t n);

/// y[i] += s.
void vec_add_scalar(float s, float* y, std::int64_t n);

/// Dot product with a backend-fixed lane-reduction order, deterministic
/// for a fixed backend.
float vec_dot(const float* a, const float* b, std::int64_t n);

/// gx[i] = g[i] * lock[i] when z[i] > 0, else 0 — the locked-ReLU delta
/// rule gx = g * f'(z) * L with f = ReLU fused into one pass.
void vec_lock_relu_grad(const float* g, const float* z, const float* lock,
                        float* gx, std::int64_t n);

}  // namespace hpnn::ops
