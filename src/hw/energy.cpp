#include "hw/energy.hpp"

#include "hw/adder.hpp"

namespace hpnn::hw {

EnergyReport estimate_energy(const MmuStats& stats, const EnergyModel& m) {
  EnergyReport r;
  const double macs = static_cast<double>(stats.mac_ops);
  r.mac_pj = macs * (m.mult_8b_pj + m.add_32b_pj);

  // Each weight tile load moves kArrayRows x kArrayCols int8 weights
  // through the on-chip buffer.
  const double tile_bytes = static_cast<double>(Mmu::kArrayRows) *
                            static_cast<double>(Mmu::kArrayCols);
  r.weight_traffic_pj = static_cast<double>(stats.weight_tile_loads) *
                        tile_bytes * m.sram_byte_pj;

  // Locking activity: the XOR bank (16 gates) toggles once per product
  // flowing into a locked output.
  const double locked_fraction =
      stats.outputs > 0 ? static_cast<double>(stats.locked_outputs) /
                              static_cast<double>(stats.outputs)
                        : 0.0;
  const double locked_macs = macs * locked_fraction;
  r.locking_pj =
      locked_macs * static_cast<double>(kXorGatesPerAccumulator) *
      m.xor_bit_pj;
  return r;
}

}  // namespace hpnn::hw
