// The key-dependent accumulator unit (Fig. 4a of the paper).
//
// Each of the device's 256 accumulator units owns one HPNN key bit. A unit
// collects 16-bit multiplier products into a 32-bit register; its key bit
// selects accumulate-vs-subtract through the XOR bank (see adder.hpp), so a
// neuron scheduled onto a k=1 unit produces -MAC with no cycle overhead.
#pragma once

#include <cstdint>

namespace hpnn::hw {

/// Datapath fidelity: kBitAccurate walks the full-adder chain gate by gate
/// (slow; used by tests and tiny demos); kFast uses native integer
/// arithmetic, proven equivalent by the property tests in
/// tests/hw/accumulator_test.cpp.
enum class Fidelity { kBitAccurate, kFast };

class KeyedAccumulator {
 public:
  static constexpr int kWidth = 32;  // accumulator register width (bits)

  explicit KeyedAccumulator(bool key_bit, Fidelity fidelity = Fidelity::kFast)
      : key_bit_(key_bit), fidelity_(fidelity) {}

  /// Feeds one 16-bit multiplier product into the unit.
  void accumulate(std::int16_t product);

  /// Current accumulator value (two's complement interpretation).
  std::int32_t value() const { return static_cast<std::int32_t>(acc_); }

  /// Clears the register for the next output neuron.
  void reset() { acc_ = 0; }

  bool key_bit() const { return key_bit_; }
  Fidelity fidelity() const { return fidelity_; }

 private:
  bool key_bit_;
  Fidelity fidelity_;
  std::uint32_t acc_ = 0;
};

}  // namespace hpnn::hw
