#include "hw/mmu.hpp"

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hw/fault.hpp"
#include "tensor/vec_ops.hpp"

#if defined(HPNN_SIMD_AVX2) && defined(__x86_64__)
#include <immintrin.h>
#define HPNN_HAVE_AVX2_KERNELS 1
#else
#define HPNN_HAVE_AVX2_KERNELS 0
#endif

namespace hpnn::hw {

namespace {

/// Fast-fidelity datapath, scalar form. 32-bit wrap-around accumulation is
/// modular arithmetic, so any evaluation order produces identical bits —
/// the SIMD variant below is exactly equivalent, not approximately.
void matmul_i8_fast_scalar(std::span<const std::int8_t> a, std::int64_t m,
                           std::int64_t k, std::span<const std::int8_t> w,
                           std::int64_t n,
                           std::span<const std::uint8_t> negate,
                           std::span<std::int32_t> out) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // 32-bit wrap-around semantics identical to the register model.
      std::uint32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const auto product = static_cast<std::int32_t>(a[i * k + p]) *
                             static_cast<std::int32_t>(w[p * n + j]);
        acc += static_cast<std::uint32_t>(product);
      }
      const bool key_bit = !negate.empty() && negate[i * n + j] != 0;
      // Σ(-p) == -(Σp) in two's complement, so the keyed accumulator's
      // per-product subtraction collapses to one negation here.
      out[i * n + j] = static_cast<std::int32_t>(key_bit ? 0u - acc : acc);
    }
  }
}

#if HPNN_HAVE_AVX2_KERNELS

/// AVX2 fast path: 16 output columns per stripe (two 8-lane int32
/// accumulators), activations broadcast, weights widened int8 -> int32.
/// add_epi32 wraps exactly like the scalar uint32 accumulation and the
/// per-element product order is unchanged, so results are bit-identical to
/// the scalar datapath.
__attribute__((target("avx2"))) void matmul_i8_fast_avx2(
    std::span<const std::int8_t> a, std::int64_t m, std::int64_t k,
    std::span<const std::int8_t> w, std::int64_t n,
    std::span<const std::uint8_t> negate, std::span<std::int32_t> out) {
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      for (std::int64_t p = 0; p < k; ++p) {
        const __m256i av =
            _mm256_set1_epi32(static_cast<std::int32_t>(a[i * k + p]));
        const __m128i w16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(w.data() + p * n + j));
        const __m256i w0 = _mm256_cvtepi8_epi32(w16);
        const __m256i w1 = _mm256_cvtepi8_epi32(_mm_srli_si128(w16, 8));
        acc0 = _mm256_add_epi32(acc0, _mm256_mullo_epi32(av, w0));
        acc1 = _mm256_add_epi32(acc1, _mm256_mullo_epi32(av, w1));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out.data() + i * n + j),
                          acc0);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out.data() + i * n + j + 8), acc1);
    }
    // Column remainder: identical scalar accumulation.
    for (; j < n; ++j) {
      std::uint32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const auto product = static_cast<std::int32_t>(a[i * k + p]) *
                             static_cast<std::int32_t>(w[p * n + j]);
        acc += static_cast<std::uint32_t>(product);
      }
      out[i * n + j] = static_cast<std::int32_t>(acc);
    }
    // Keyed negation applied as a second pass over the finished row
    // (Σ(-p) == -(Σp) in two's complement).
    if (!negate.empty()) {
      for (std::int64_t jj = 0; jj < n; ++jj) {
        if (negate[i * n + jj] != 0) {
          out[i * n + jj] = static_cast<std::int32_t>(
              0u - static_cast<std::uint32_t>(out[i * n + jj]));
        }
      }
    }
  }
}

#endif  // HPNN_HAVE_AVX2_KERNELS

}  // namespace

double MmuStats::utilization() const {
  if (cycles == 0) {
    return 0.0;
  }
  const double peak = static_cast<double>(cycles) *
                      static_cast<double>(Mmu::kArrayRows) *
                      static_cast<double>(Mmu::kArrayCols);
  return static_cast<double>(mac_ops) / peak;
}

void Mmu::matmul_i8(std::span<const std::int8_t> a, std::int64_t m,
                    std::int64_t k, std::span<const std::int8_t> w,
                    std::int64_t n, std::span<const std::uint8_t> negate,
                    std::span<std::int32_t> out) {
  HPNN_CHECK(m > 0 && k > 0 && n > 0, "MMU matmul with empty dims");
  HPNN_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
             "MMU: activation operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(w.size()) == k * n,
             "MMU: weight operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(out.size()) == m * n,
             "MMU: output size mismatch");
  HPNN_CHECK(negate.empty() ||
                 static_cast<std::int64_t>(negate.size()) == m * n,
             "MMU: negate mask size mismatch");

  if (fidelity_ == Fidelity::kBitAccurate) {
    // Gate-accurate: every product goes through the keyed FA-chain
    // accumulator. Slow; for tests and small demos only.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool key_bit = !negate.empty() && negate[i * n + j] != 0;
        KeyedAccumulator acc(key_bit, Fidelity::kBitAccurate);
        for (std::int64_t p = 0; p < k; ++p) {
          const auto product = static_cast<std::int16_t>(
              static_cast<std::int16_t>(a[i * k + p]) *
              static_cast<std::int16_t>(w[p * n + j]));
          acc.accumulate(product);
        }
        out[i * n + j] = acc.value();
      }
    }
  } else {
#if HPNN_HAVE_AVX2_KERNELS
    if (ops::simd_active()) {
      matmul_i8_fast_avx2(a, m, k, w, n, negate, out);
    } else {
      matmul_i8_fast_scalar(a, m, k, w, n, negate, out);
    }
#else
    matmul_i8_fast_scalar(a, m, k, w, n, negate, out);
#endif
  }

  if (fault_ != nullptr) {
    // SEUs strike the accumulator registers holding the partial sums,
    // after the keyed accumulation but before write-back to the unified
    // buffer.
    fault_->on_gemm();
    fault_->corrupt_accumulators(out);
  }

  // ---- pipeline cycle model -------------------------------------------
  // Weight-stationary tiling: each (kArrayRows x kArrayCols) weight tile is
  // loaded once (kArrayRows cycles, double-buffered in real silicon; we
  // charge it explicitly) and the M activation rows stream through with a
  // fill+drain latency of (rows + cols - 2). The XOR key gates sit inside
  // the accumulation stage and add zero cycles.
  const std::int64_t k_tiles = (k + kArrayRows - 1) / kArrayRows;
  const std::int64_t n_tiles = (n + kArrayCols - 1) / kArrayCols;
  const std::int64_t tiles = k_tiles * n_tiles;
  std::uint64_t locked = 0;
  if (!negate.empty()) {
    for (const auto b : negate) {
      locked += (b != 0);
    }
  }
  const auto cycles = static_cast<std::uint64_t>(
      tiles * (kArrayRows + m + (kArrayRows + kArrayCols - 2)));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.weight_tile_loads += static_cast<std::uint64_t>(tiles);
    stats_.cycles += cycles;
    stats_.mac_ops += static_cast<std::uint64_t>(m * k * n);
    stats_.gemm_calls += 1;
    stats_.outputs += static_cast<std::uint64_t>(m * n);
    stats_.locked_outputs += locked;
  }
  HPNN_METRIC_COUNT("hw.mmu.gemm_calls", 1);
  HPNN_METRIC_COUNT("hw.mmu.mac_ops", m * k * n);
  HPNN_METRIC_COUNT("hw.mmu.cycles", cycles);
  HPNN_METRIC_COUNT("hw.mmu.weight_tile_loads", tiles);
  HPNN_METRIC_COUNT("hw.mmu.outputs", m * n);
  HPNN_METRIC_COUNT("hw.mmu.locked_outputs", locked);
  // Each keyed output negates all k partial products through its FA-chain
  // XOR gates — the toggle count is the Fig. 4 dynamic-power proxy.
  HPNN_METRIC_COUNT("hw.mmu.xor_gate_toggles",
                    locked * static_cast<std::uint64_t>(k));
  // Unified-buffer traffic in bytes: int8 operand reads + int32 drains.
  HPNN_METRIC_COUNT("hw.mmu.buffer_bytes",
                    static_cast<std::uint64_t>(m * k + k * n + 4 * m * n));
}

}  // namespace hpnn::hw
