#include "hw/mmu.hpp"

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hw/fault.hpp"
#include "tensor/backend.hpp"

namespace hpnn::hw {

double MmuStats::utilization() const {
  if (cycles == 0) {
    return 0.0;
  }
  const double peak = static_cast<double>(cycles) *
                      static_cast<double>(Mmu::kArrayRows) *
                      static_cast<double>(Mmu::kArrayCols);
  return static_cast<double>(mac_ops) / peak;
}

void Mmu::matmul_i8(std::span<const std::int8_t> a, std::int64_t m,
                    std::int64_t k, std::span<const std::int8_t> w,
                    std::int64_t n, std::span<const std::uint8_t> negate,
                    std::span<std::int32_t> out) {
  HPNN_CHECK(m > 0 && k > 0 && n > 0, "MMU matmul with empty dims");
  HPNN_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
             "MMU: activation operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(w.size()) == k * n,
             "MMU: weight operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(out.size()) == m * n,
             "MMU: output size mismatch");
  HPNN_CHECK(negate.empty() ||
                 static_cast<std::int64_t>(negate.size()) == m * n,
             "MMU: negate mask size mismatch");

  if (fidelity_ == Fidelity::kBitAccurate) {
    // Gate-accurate: every product goes through the keyed FA-chain
    // accumulator. Slow; for tests and small demos only.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool key_bit = !negate.empty() && negate[i * n + j] != 0;
        KeyedAccumulator acc(key_bit, Fidelity::kBitAccurate);
        for (std::int64_t p = 0; p < k; ++p) {
          const auto product = static_cast<std::int16_t>(
              static_cast<std::int16_t>(a[i * k + p]) *
              static_cast<std::int16_t>(w[p * n + j]));
          acc.accumulate(product);
        }
        out[i * n + j] = acc.value();
      }
    }
  } else {
    // Fast-fidelity datapath: the active compute backend's int8 kernel.
    // 32-bit wrap-around accumulation is modular arithmetic, so every
    // backend (scalar, AVX2 widening, AVX-512 VNNI) produces identical
    // bits — the conformance kit enforces this, not just the tolerance.
    ops::backend().matmul_i8(a.data(), m, k, w.data(), n,
                             negate.empty() ? nullptr : negate.data(),
                             out.data());
  }

  if (fault_ != nullptr) {
    // SEUs strike the accumulator registers holding the partial sums,
    // after the keyed accumulation but before write-back to the unified
    // buffer.
    fault_->on_gemm();
    fault_->corrupt_accumulators(out);
  }

  // ---- pipeline cycle model -------------------------------------------
  // Weight-stationary tiling: each (kArrayRows x kArrayCols) weight tile is
  // loaded once (kArrayRows cycles, double-buffered in real silicon; we
  // charge it explicitly) and the M activation rows stream through with a
  // fill+drain latency of (rows + cols - 2). The XOR key gates sit inside
  // the accumulation stage and add zero cycles.
  const std::int64_t k_tiles = (k + kArrayRows - 1) / kArrayRows;
  const std::int64_t n_tiles = (n + kArrayCols - 1) / kArrayCols;
  const std::int64_t tiles = k_tiles * n_tiles;
  std::uint64_t locked = 0;
  if (!negate.empty()) {
    for (const auto b : negate) {
      locked += (b != 0);
    }
  }
  const auto cycles = static_cast<std::uint64_t>(
      tiles * (kArrayRows + m + (kArrayRows + kArrayCols - 2)));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stats_.weight_tile_loads += static_cast<std::uint64_t>(tiles);
    stats_.cycles += cycles;
    stats_.mac_ops += static_cast<std::uint64_t>(m * k * n);
    stats_.gemm_calls += 1;
    stats_.outputs += static_cast<std::uint64_t>(m * n);
    stats_.locked_outputs += locked;
  }
  HPNN_METRIC_COUNT("hw.mmu.gemm_calls", 1);
  HPNN_METRIC_COUNT("hw.mmu.mac_ops", m * k * n);
  HPNN_METRIC_COUNT("hw.mmu.cycles", cycles);
  HPNN_METRIC_COUNT("hw.mmu.weight_tile_loads", tiles);
  HPNN_METRIC_COUNT("hw.mmu.outputs", m * n);
  HPNN_METRIC_COUNT("hw.mmu.locked_outputs", locked);
  // Each keyed output negates all k partial products through its FA-chain
  // XOR gates — the toggle count is the Fig. 4 dynamic-power proxy.
  HPNN_METRIC_COUNT("hw.mmu.xor_gate_toggles",
                    locked * static_cast<std::uint64_t>(k));
  // Unified-buffer traffic in bytes: int8 operand reads + int32 drains.
  HPNN_METRIC_COUNT("hw.mmu.buffer_bytes",
                    static_cast<std::uint64_t>(m * k + k * n + 4 * m * n));
}

}  // namespace hpnn::hw
