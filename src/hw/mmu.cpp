#include "hw/mmu.hpp"

#include "core/error.hpp"
#include "hw/fault.hpp"

namespace hpnn::hw {

double MmuStats::utilization() const {
  if (cycles == 0) {
    return 0.0;
  }
  const double peak = static_cast<double>(cycles) *
                      static_cast<double>(Mmu::kArrayRows) *
                      static_cast<double>(Mmu::kArrayCols);
  return static_cast<double>(mac_ops) / peak;
}

void Mmu::matmul_i8(std::span<const std::int8_t> a, std::int64_t m,
                    std::int64_t k, std::span<const std::int8_t> w,
                    std::int64_t n, std::span<const std::uint8_t> negate,
                    std::span<std::int32_t> out) {
  HPNN_CHECK(m > 0 && k > 0 && n > 0, "MMU matmul with empty dims");
  HPNN_CHECK(static_cast<std::int64_t>(a.size()) == m * k,
             "MMU: activation operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(w.size()) == k * n,
             "MMU: weight operand size mismatch");
  HPNN_CHECK(static_cast<std::int64_t>(out.size()) == m * n,
             "MMU: output size mismatch");
  HPNN_CHECK(negate.empty() ||
                 static_cast<std::int64_t>(negate.size()) == m * n,
             "MMU: negate mask size mismatch");

  if (fidelity_ == Fidelity::kBitAccurate) {
    // Gate-accurate: every product goes through the keyed FA-chain
    // accumulator. Slow; for tests and small demos only.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool key_bit = !negate.empty() && negate[i * n + j] != 0;
        KeyedAccumulator acc(key_bit, Fidelity::kBitAccurate);
        for (std::int64_t p = 0; p < k; ++p) {
          const auto product = static_cast<std::int16_t>(
              static_cast<std::int16_t>(a[i * k + p]) *
              static_cast<std::int16_t>(w[p * n + j]));
          acc.accumulate(product);
        }
        out[i * n + j] = acc.value();
      }
    }
  } else {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        // 32-bit wrap-around semantics identical to the register model.
        std::uint32_t acc = 0;
        for (std::int64_t p = 0; p < k; ++p) {
          const auto product =
              static_cast<std::int32_t>(a[i * k + p]) *
              static_cast<std::int32_t>(w[p * n + j]);
          acc += static_cast<std::uint32_t>(product);
        }
        const bool key_bit = !negate.empty() && negate[i * n + j] != 0;
        // Σ(-p) == -(Σp) in two's complement, so the keyed accumulator's
        // per-product subtraction collapses to one negation here.
        out[i * n + j] = static_cast<std::int32_t>(key_bit ? 0u - acc : acc);
      }
    }
  }

  if (fault_ != nullptr) {
    // SEUs strike the accumulator registers holding the partial sums,
    // after the keyed accumulation but before write-back to the unified
    // buffer.
    fault_->on_gemm();
    fault_->corrupt_accumulators(out);
  }

  // ---- pipeline cycle model -------------------------------------------
  // Weight-stationary tiling: each (kArrayRows x kArrayCols) weight tile is
  // loaded once (kArrayRows cycles, double-buffered in real silicon; we
  // charge it explicitly) and the M activation rows stream through with a
  // fill+drain latency of (rows + cols - 2). The XOR key gates sit inside
  // the accumulation stage and add zero cycles.
  const std::int64_t k_tiles = (k + kArrayRows - 1) / kArrayRows;
  const std::int64_t n_tiles = (n + kArrayCols - 1) / kArrayCols;
  const std::int64_t tiles = k_tiles * n_tiles;
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  stats_.weight_tile_loads += static_cast<std::uint64_t>(tiles);
  stats_.cycles += static_cast<std::uint64_t>(
      tiles * (kArrayRows + m + (kArrayRows + kArrayCols - 2)));
  stats_.mac_ops += static_cast<std::uint64_t>(m * k * n);
  stats_.gemm_calls += 1;
  stats_.outputs += static_cast<std::uint64_t>(m * n);
  if (!negate.empty()) {
    for (const auto b : negate) {
      stats_.locked_outputs += (b != 0);
    }
  }
}

}  // namespace hpnn::hw
