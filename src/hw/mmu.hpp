// Matrix-multiply unit (MMU) model of the TPU-like trusted device.
//
// A 256x256 weight-stationary systolic array of 8-bit MACs feeding 256
// key-dependent accumulator units (Sec. III-D of the paper). The model
// computes exact int8 x int8 -> int32 GEMMs and tracks a cycle/utilization
// estimate of the pipelined execution; the XOR key gates add zero cycles.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>

#include "hw/accumulator.hpp"

namespace hpnn::hw {

class FaultInjector;

struct MmuStats {
  std::uint64_t mac_ops = 0;          // int multiply-accumulates performed
  std::uint64_t cycles = 0;           // modeled pipeline cycles
  std::uint64_t weight_tile_loads = 0;
  std::uint64_t gemm_calls = 0;
  std::uint64_t outputs = 0;          // output elements produced
  std::uint64_t locked_outputs = 0;   // outputs accumulated with key bit 1

  /// Fraction of peak MAC throughput achieved (256*256 MACs per cycle).
  double utilization() const;

  void reset() { *this = MmuStats{}; }
};

class Mmu {
 public:
  /// Systolic array geometry (rows = contraction dim, cols = accumulators).
  static constexpr std::int64_t kArrayRows = 256;
  static constexpr std::int64_t kArrayCols = 256;

  explicit Mmu(Fidelity fidelity = Fidelity::kFast) : fidelity_(fidelity) {}

  /// out[M*N] = a[M*K] @ w[K*N] in int8 -> int32, with optional key-driven
  /// negation: negate[i*N+j] != 0 means output element (i, j) is accumulated
  /// through a k=1 unit and yields -Σ a·w (two's-complement wrap semantics).
  /// `negate` may be empty (all positive).
  void matmul_i8(std::span<const std::int8_t> a, std::int64_t m,
                 std::int64_t k, std::span<const std::int8_t> w,
                 std::int64_t n, std::span<const std::uint8_t> negate,
                 std::span<std::int32_t> out);

  const MmuStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }
  Fidelity fidelity() const { return fidelity_; }

  /// Wires a fault injector into the accumulator bank (nullptr detaches).
  /// With no injector attached the hook is a single null-pointer test per
  /// GEMM — the normal datapath is untouched.
  void attach_fault_injector(FaultInjector* injector) { fault_ = injector; }

 private:
  Fidelity fidelity_;
  MmuStats stats_;
  // Guards stats_ when the device fans sample tiles out across the thread
  // pool. The counters are order-independent sums, so concurrent GEMMs
  // still produce exact totals. (Makes Mmu non-copyable, which it should
  // be anyway: it models one physical unit.)
  std::mutex stats_mutex_;
  FaultInjector* fault_ = nullptr;
};

}  // namespace hpnn::hw
