#include "hw/adder.hpp"

#include "core/error.hpp"

namespace hpnn::hw {

bool full_adder(bool a, bool b, bool carry_in, bool& carry_out) {
  const bool axb = a != b;                      // XOR
  const bool sum = axb != carry_in;             // XOR
  carry_out = (a && b) || (axb && carry_in);    // 2 AND + 1 OR
  return sum;
}

std::uint64_t ripple_add(std::uint64_t a, std::uint64_t b, bool carry_in,
                         int width) {
  HPNN_CHECK(width > 0 && width <= 64, "ripple_add width out of range");
  std::uint64_t sum = 0;
  bool carry = carry_in;
  for (int i = 0; i < width; ++i) {
    bool carry_out = false;
    const bool s = full_adder((a >> i) & 1, (b >> i) & 1, carry, carry_out);
    sum |= static_cast<std::uint64_t>(s) << i;
    carry = carry_out;
  }
  return sum;
}

std::uint64_t keyed_accumulate_bitlevel(std::uint64_t acc,
                                        std::int16_t product, bool key_bit,
                                        int width) {
  HPNN_CHECK(width >= 17 && width <= 64,
             "accumulator must be wider than the 16-bit product");
  // Sign-extend the 16-bit product to the accumulator width (the hardware
  // replicates the MSB — or, after the XOR bank, the inverted MSB — into the
  // upper adder inputs).
  std::uint64_t operand =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(product));
  if (key_bit) {
    operand = ~operand;  // the 16 XOR gates (+ sign-extension replication)
  }
  if (width < 64) {
    operand &= (std::uint64_t{1} << width) - 1;
  }
  // key_bit doubles as the chain's carry-in, completing two's complement.
  return ripple_add(acc, operand, key_bit, width);
}

}  // namespace hpnn::hw
