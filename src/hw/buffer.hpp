// On-chip unified buffer model (the TPU's activation/weight staging SRAM).
//
// Tracks capacity, live allocations and read/write traffic so deployments
// can check that a published model's tensors actually fit the device and
// estimate memory energy (energy.hpp charges per byte moved). Allocation
// failures throw — a model too large for the buffer is a deployment error,
// not a silent slowdown.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace hpnn::hw {

class UnifiedBuffer {
 public:
  /// The TPU v1 unified buffer is 24 MiB; default to that.
  explicit UnifiedBuffer(std::int64_t capacity_bytes = 24ll << 20);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t in_use() const { return in_use_; }
  std::int64_t peak_usage() const { return peak_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Reserves `bytes` under `name`. Throws InvariantError if the name is
  /// taken or capacity would be exceeded.
  void alloc(const std::string& name, std::int64_t bytes);

  /// Releases a reservation; throws InvariantError for unknown names.
  void free(const std::string& name);

  bool has(const std::string& name) const { return regions_.count(name) > 0; }
  std::int64_t size_of(const std::string& name) const;

  /// Traffic accounting (reads/writes may exceed the region size — tensors
  /// are streamed repeatedly).
  void record_read(const std::string& name, std::uint64_t bytes);
  void record_write(const std::string& name, std::uint64_t bytes);

  /// Frees everything and clears traffic counters.
  void reset();

 private:
  const std::map<std::string, std::int64_t>::const_iterator find_checked(
      const std::string& name) const;

  std::int64_t capacity_;
  std::int64_t in_use_ = 0;
  std::int64_t peak_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::map<std::string, std::int64_t> regions_;
};

}  // namespace hpnn::hw
