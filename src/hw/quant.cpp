#include "hw/quant.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn::hw {

QuantizedTensor quantize(const Tensor& x) {
  QuantizedTensor q;
  q.shape = x.shape();
  q.values.resize(static_cast<std::size_t>(x.numel()));
  float max_abs = 0.0f;
  for (const auto v : x.span()) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  q.scale = (max_abs > 0.0f) ? max_abs / 127.0f : 1.0f;
  const float inv = 1.0f / q.scale;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float scaled = std::nearbyint(x.data()[i] * inv);
    q.values[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(
        std::clamp(scaled, -127.0f, 127.0f));
  }
  return q;
}

QuantizedTensor quantize_with_scale(const Tensor& x, float scale) {
  HPNN_CHECK(scale > 0.0f, "quantization scale must be positive");
  QuantizedTensor q;
  q.shape = x.shape();
  q.scale = scale;
  q.values.resize(static_cast<std::size_t>(x.numel()));
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float scaled = std::nearbyint(x.data()[i] * inv);
    q.values[static_cast<std::size_t>(i)] =
        static_cast<std::int8_t>(std::clamp(scaled, -127.0f, 127.0f));
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor x(q.shape);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x.data()[i] =
        static_cast<float>(q.values[static_cast<std::size_t>(i)]) * q.scale;
  }
  return x;
}

float max_quantization_error(const Tensor& x) {
  const QuantizedTensor q = quantize(x);
  const Tensor back = dequantize(q);
  float err = 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    err = std::max(err, std::fabs(x.data()[i] - back.data()[i]));
  }
  return err;
}

}  // namespace hpnn::hw
