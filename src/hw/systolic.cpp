#include "hw/systolic.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace hpnn::hw {

SystolicArray::SystolicArray(std::int64_t rows, std::int64_t cols)
    : rows_(rows), cols_(cols) {
  HPNN_CHECK(rows > 0 && cols > 0, "systolic array dims must be positive");
  weights_.assign(static_cast<std::size_t>(rows_ * cols_), 0);
}

void SystolicArray::load_weights(std::span<const std::int8_t> w,
                                 std::int64_t k, std::int64_t n) {
  HPNN_CHECK(k > 0 && k <= rows_ && n > 0 && n <= cols_,
             "weight tile does not fit the array");
  HPNN_CHECK(static_cast<std::int64_t>(w.size()) == k * n,
             "weight tile size mismatch");
  std::fill(weights_.begin(), weights_.end(), 0);
  for (std::int64_t r = 0; r < k; ++r) {
    std::copy(w.begin() + r * n, w.begin() + (r + 1) * n,
              weights_.begin() + r * cols_);
  }
  loaded_k_ = k;
  loaded_n_ = n;
  // One weight row shifts into the grid per cycle (double-buffered designs
  // hide this behind the previous tile's streaming; we charge it).
  pending_load_cycles_ = static_cast<std::uint64_t>(k);
}

SystolicArray::Result SystolicArray::run(
    std::span<const std::int8_t> a, std::int64_t m,
    std::span<const std::uint8_t> column_key_bits) {
  HPNN_CHECK(loaded_k_ > 0, "run() before load_weights()");
  HPNN_CHECK(m > 0, "no activation rows to stream");
  HPNN_CHECK(static_cast<std::int64_t>(a.size()) == m * loaded_k_,
             "activation operand size mismatch");
  HPNN_CHECK(column_key_bits.empty() ||
                 static_cast<std::int64_t>(column_key_bits.size()) ==
                     loaded_n_,
             "column key-bit count mismatch");

  const std::int64_t k = loaded_k_;
  const std::int64_t n = loaded_n_;

  // Per-PE pipeline registers, latched at the end of each cycle.
  std::vector<std::int8_t> act(static_cast<std::size_t>(k * n), 0);
  std::vector<std::int32_t> psum(static_cast<std::size_t>(k * n), 0);
  std::vector<std::int8_t> act_next(act.size(), 0);
  std::vector<std::int32_t> psum_next(psum.size(), 0);

  Result result;
  result.out.assign(static_cast<std::size_t>(m * n), 0);
  result.load_cycles = pending_load_cycles_;
  pending_load_cycles_ = 0;

  // Activation row `mi` enters grid row r at cycle mi + r; the finished
  // partial sum for (mi, c) leaves PE(k-1, c) at the end of cycle
  // mi + (k-1) + c. Total stream latency: m + k + n - 2 cycles.
  const std::int64_t total = m + k + n - 2;
  for (std::int64_t t = 0; t < total; ++t) {
    for (std::int64_t r = 0; r < k; ++r) {
      for (std::int64_t c = 0; c < n; ++c) {
        // Activation input: from the left edge (skewed feed) or neighbor.
        std::int8_t act_in = 0;
        if (c == 0) {
          const std::int64_t mi = t - r;
          if (mi >= 0 && mi < m) {
            act_in = a[mi * k + r];
          }
        } else {
          act_in = act[r * n + (c - 1)];
        }
        // Partial-sum input: from above (or zero at the top row).
        const std::int32_t psum_in = (r == 0) ? 0 : psum[(r - 1) * n + c];
        act_next[r * n + c] = act_in;
        psum_next[r * n + c] =
            psum_in + static_cast<std::int32_t>(weights_[r * cols_ + c]) *
                          static_cast<std::int32_t>(act_in);
      }
    }
    act.swap(act_next);
    psum.swap(psum_next);

    // Column exits: PE(k-1, c) has just latched the finished sum for
    // activation row mi = t - (k-1) - c; it enters the column's keyed
    // accumulator unit. A k=1 unit negates what it ingests (Fig. 4's XOR
    // bank applied per incoming word; Σ(-x) == -(Σx) in two's complement —
    // the product-level bit path is covered by Mmu's bit-accurate mode and
    // the KeyedAccumulator tests).
    for (std::int64_t c = 0; c < n; ++c) {
      const std::int64_t mi = t - (k - 1) - c;
      if (mi >= 0 && mi < m) {
        const bool key_bit =
            !column_key_bits.empty() && column_key_bits[c] != 0;
        const std::int32_t value = psum[(k - 1) * n + c];
        result.out[mi * n + c] = key_bit ? -value : value;
      }
    }
  }
  result.stream_cycles = static_cast<std::uint64_t>(total);
  return result;
}

}  // namespace hpnn::hw
