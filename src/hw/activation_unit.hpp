// The on-chip activation module (Sec. III-D1 mentions the TPU's activation
// module implementing "standard nonlinear operations such as ReLU, sigmoid,
// etc."). Hardware does not evaluate exp(); it interpolates a piecewise-
// linear lookup table in fixed point. This component models that: a
// 256-entry LUT over a clamped input range, evaluated with integer-friendly
// linear interpolation.
//
// The zoo networks are ReLU-based (exact in hardware); the LUT path exists
// for sigmoid/tanh locked activations (LockedActivation's other kinds) and
// is validated against the float functions by property tests.
#pragma once

#include <array>
#include <cstdint>

#include "hpnn/locked_activation.hpp"

namespace hpnn::hw {

class ActivationUnit {
 public:
  static constexpr int kLutSize = 256;

  /// Builds the LUT for the given function over [-input_range, input_range]
  /// (inputs outside the range clamp to the edge values).
  explicit ActivationUnit(obf::ActivationKind kind, float input_range = 8.0f);

  obf::ActivationKind kind() const { return kind_; }
  float input_range() const { return range_; }

  /// Evaluates the nonlinearity via LUT + linear interpolation.
  float apply(float x) const;

  /// Worst-case absolute error of the LUT vs the exact function, probed on
  /// a dense grid (used by tests and reported by the hw bench).
  float max_error(int probes = 10000) const;

 private:
  static float exact(obf::ActivationKind kind, float x);

  obf::ActivationKind kind_;
  float range_;
  std::array<float, kLutSize + 1> table_;
};

}  // namespace hpnn::hw
