// Bit-level datapath primitives of the key-dependent accumulator (Fig. 4b).
//
// The trusted device's accumulator is a full-adder chain. To lock neuron j,
// 16 XOR gates are inserted between the multiplier's 16-bit product and the
// adder chain; key bit k_j drives every XOR and the chain's carry-in. With
// k_j = 0 the product passes through and is accumulated; with k_j = 1 the
// product is bitwise inverted and incremented (two's complement), so the
// chain accumulates -product: MAC_j becomes -MAC_j with zero extra clock
// cycles (the XORs are combinational).
//
// These functions model the datapath gate by gate; they exist so tests can
// prove the XOR trick computes exactly ±Σ a_i·w_ji over the full operand
// range. The fast integer path (accumulator.hpp) is verified against them.
#pragma once

#include <cstdint>

namespace hpnn::hw {

/// One-bit full adder: returns sum bit, writes carry-out.
bool full_adder(bool a, bool b, bool carry_in, bool& carry_out);

/// N-bit ripple-carry add (two's complement, wrap-around) built from
/// full_adder. `width` <= 64.
std::uint64_t ripple_add(std::uint64_t a, std::uint64_t b, bool carry_in,
                         int width);

/// The Fig. 4(b) keyed adder stage: adds `product` (16-bit two's complement,
/// sign-extended to `width`) into `acc` through the XOR gate bank.
/// key_bit=0: acc + product. key_bit=1: acc + ~product + 1 = acc - product.
/// Gate-accurate; returns the new accumulator value (width-bit wrap).
std::uint64_t keyed_accumulate_bitlevel(std::uint64_t acc,
                                        std::int16_t product, bool key_bit,
                                        int width);

/// Number of XOR gates the keyed stage adds per accumulator unit (16: one
/// per product bit, as in the paper).
inline constexpr int kXorGatesPerAccumulator = 16;

}  // namespace hpnn::hw
