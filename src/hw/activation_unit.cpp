#include "hw/activation_unit.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn::hw {

float ActivationUnit::exact(obf::ActivationKind kind, float x) {
  switch (kind) {
    case obf::ActivationKind::kRelu:
      return std::max(x, 0.0f);
    case obf::ActivationKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case obf::ActivationKind::kTanh:
      return std::tanh(x);
  }
  return x;
}

ActivationUnit::ActivationUnit(obf::ActivationKind kind, float input_range)
    : kind_(kind), range_(input_range) {
  HPNN_CHECK(input_range > 0.0f, "activation LUT range must be positive");
  for (int i = 0; i <= kLutSize; ++i) {
    const float x = -range_ + 2.0f * range_ * static_cast<float>(i) /
                                 static_cast<float>(kLutSize);
    table_[static_cast<std::size_t>(i)] = exact(kind, x);
  }
}

float ActivationUnit::apply(float x) const {
  if (kind_ == obf::ActivationKind::kRelu) {
    // ReLU is exact in hardware (a mux on the sign bit), no LUT involved.
    return std::max(x, 0.0f);
  }
  const float clamped = std::clamp(x, -range_, range_);
  const float pos = (clamped + range_) * static_cast<float>(kLutSize) /
                    (2.0f * range_);
  const auto idx = static_cast<int>(pos);
  const int lo = std::clamp(idx, 0, kLutSize - 1);
  const float frac = pos - static_cast<float>(lo);
  const float a = table_[static_cast<std::size_t>(lo)];
  const float b = table_[static_cast<std::size_t>(lo + 1)];
  return a + (b - a) * frac;
}

float ActivationUnit::max_error(int probes) const {
  HPNN_CHECK(probes > 1, "need at least two probes");
  float worst = 0.0f;
  for (int i = 0; i < probes; ++i) {
    // Probe slightly beyond the table range to cover the clamped region.
    const float x = -1.25f * range_ +
                    2.5f * range_ * static_cast<float>(i) /
                        static_cast<float>(probes - 1);
    // ReLU bypasses the LUT (and its clamp); LUT kinds saturate at ±range.
    const float ref = kind_ == obf::ActivationKind::kRelu
                          ? exact(kind_, x)
                          : exact(kind_, std::clamp(x, -range_, range_));
    worst = std::max(worst, std::fabs(apply(x) - ref));
  }
  return worst;
}

}  // namespace hpnn::hw
