// Gate-count and cycle-overhead model of the key-dependent MMU
// modification (Sec. III-D3 of the paper).
//
// The paper's claims: 16 XOR gates per accumulator unit, 256 x 16 = 4096
// XOR gates total; against an MMU implementation of ~10^6 gates [Lin et al.,
// TCAS 2017] the overhead is < 0.5%; and the modification adds zero clock
// cycles (purely combinational). This model makes every term explicit so
// the Fig. 4 bench can print the breakdown.
#pragma once

#include <cstdint>
#include <string>

namespace hpnn::hw {

/// Gate-equivalent cost constants (classic static-CMOS gate equivalents).
struct GateModel {
  std::int64_t gates_per_xor = 1;
  std::int64_t gates_per_full_adder = 5;   // 2 XOR + 2 AND + 1 OR
  std::int64_t gates_per_flipflop = 6;
  std::int64_t multiplier_width = 8;       // 8x8 signed multiply
  std::int64_t product_width = 16;
  std::int64_t accumulator_width = 32;
};

struct MmuOverheadReport {
  // Baseline MMU cost
  std::int64_t mac_count = 0;              // systolic array MACs
  std::int64_t accumulator_units = 0;      // keyed accumulators (= key bits)
  std::int64_t gates_per_mac = 0;
  std::int64_t gates_per_accumulator = 0;
  std::int64_t baseline_gates = 0;         // full array + accumulators

  // HPNN additions
  std::int64_t xor_gates_added = 0;        // 16 per accumulator unit
  std::int64_t cycle_overhead = 0;         // always 0 (combinational)

  /// Overhead relative to our full-array estimate.
  double overhead_vs_full_array() const;
  /// Overhead relative to a reference MMU gate count (the paper uses ~1e6).
  double overhead_vs_reference(std::int64_t reference_gates) const;

  std::string to_string() const;
};

/// Computes the report for an `array_dim` x `array_dim` MMU (256 for the
/// TPU-like device) under the given gate model.
MmuOverheadReport mmu_overhead(std::int64_t array_dim,
                               const GateModel& model = {});

}  // namespace hpnn::hw
