// Secure on-chip key storage (TPM-style root of trust, refs [5],[25] of the
// paper).
//
// The HPNN key and the private scheduling seed are provisioned once (e.g. at
// device manufacturing / license issuance) and then sealed. After sealing,
// no public API can read them back — only the TrustedDevice's internal
// datapath wiring (modeled as friendship) can consume individual key bits.
#pragma once

#include <memory>

#include "hpnn/key.hpp"
#include "hpnn/scheduler.hpp"

namespace hpnn::hw {

class TrustedDevice;

class SecureKeyStore {
 public:
  SecureKeyStore() = default;

  /// Writes the secrets. Throws KeyError if already provisioned.
  void provision(const obf::HpnnKey& key, std::uint64_t schedule_seed,
                 obf::SchedulePolicy policy =
                     obf::SchedulePolicy::kInterleaved);

  /// Irreversibly forbids export of the secrets.
  void seal() { sealed_ = true; }

  bool provisioned() const { return provisioned_; }
  bool sealed() const { return sealed_; }

  /// Reads back the key — only possible before seal() (e.g. for the model
  /// owner's own provisioning flow). Throws KeyError once sealed.
  obf::HpnnKey export_key() const;

  /// Reads back the schedule seed — same sealing rules.
  std::uint64_t export_schedule_seed() const;

 private:
  friend class TrustedDevice;  // on-chip wiring to the accumulators

  bool key_bit(std::size_t i) const;
  const obf::Scheduler& scheduler() const;

  bool provisioned_ = false;
  bool sealed_ = false;
  obf::HpnnKey key_;
  std::unique_ptr<obf::Scheduler> scheduler_;
};

}  // namespace hpnn::hw
