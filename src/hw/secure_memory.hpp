// Secure on-chip key storage (TPM-style root of trust, refs [5],[25] of the
// paper).
//
// The HPNN key and the private scheduling seed are provisioned once (e.g. at
// device manufacturing / license issuance) and then sealed. After sealing,
// no public API can read them back — only the TrustedDevice's internal
// datapath wiring (modeled as friendship) can consume individual key bits.
#pragma once

#include <memory>

#include "core/sha256.hpp"
#include "hpnn/key.hpp"
#include "hpnn/scheduler.hpp"

namespace hpnn::hw {

class TrustedDevice;
class FaultInjector;

class SecureKeyStore {
 public:
  SecureKeyStore() = default;

  /// Writes the secrets. Throws KeyError if already provisioned or sealed
  /// (a sealed store can never be re-keyed, even when empty).
  void provision(const obf::HpnnKey& key, std::uint64_t schedule_seed,
                 obf::SchedulePolicy policy =
                     obf::SchedulePolicy::kInterleaved);

  /// Irreversibly forbids export of the secrets.
  void seal() { sealed_ = true; }

  bool provisioned() const { return provisioned_; }
  bool sealed() const { return sealed_; }

  /// Reads back the key — only possible before seal() (e.g. for the model
  /// owner's own provisioning flow). Throws KeyError once sealed.
  obf::HpnnKey export_key() const;

  /// Reads back the schedule seed — same sealing rules.
  std::uint64_t export_schedule_seed() const;

  /// SEU detection: recomputes the integrity digest taken at provisioning
  /// time over the stored secrets and compares. An unprovisioned store is
  /// trivially intact. A fault injector flips key bits *without* updating
  /// the digest, so single-event upsets are observable here.
  bool integrity_ok() const;

  /// Throws KeyError when the stored secrets no longer match their
  /// provisioning-time digest (fail fast instead of computing garbage).
  void check_integrity() const;

 private:
  friend class TrustedDevice;  // on-chip wiring to the accumulators
  friend class FaultInjector;  // physical fault model, not an API consumer

  bool key_bit(std::size_t i) const;
  const obf::Scheduler& scheduler() const;
  Sha256Digest compute_digest() const;

  bool provisioned_ = false;
  bool sealed_ = false;
  obf::HpnnKey key_;
  std::unique_ptr<obf::Scheduler> scheduler_;
  Sha256Digest digest_{};  // taken over the secrets at provisioning time
};

}  // namespace hpnn::hw
