#include "hw/fault.hpp"

#include <algorithm>
#include <ostream>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "hw/accumulator.hpp"
#include "hw/secure_memory.hpp"

namespace hpnn::hw {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {
  for (const auto bit : plan_.key_bits) {
    HPNN_CHECK(bit < obf::HpnnKey::kBits,
               "fault plan targets key bit " + std::to_string(bit) +
                   " beyond the " + std::to_string(obf::HpnnKey::kBits) +
                   "-bit key");
  }
  HPNN_CHECK(plan_.accumulator_flip_rate >= 0.0 &&
                 plan_.accumulator_flip_rate <= 1.0,
             "accumulator flip rate must be a probability");
  HPNN_CHECK(plan_.accumulator_bit >= 0 &&
                 plan_.accumulator_bit < KeyedAccumulator::kWidth,
             "accumulator fault bit outside the 32-bit register");
}

void FaultInjector::apply_key_faults(SecureKeyStore& store) {
  HPNN_CHECK(store.provisioned(),
             "cannot inject key faults into an unprovisioned store");
  for (const auto bit : plan_.key_bits) {
    store.key_.flip_bit(bit);
    ++stats_.key_bits_flipped;
  }
}

void FaultInjector::on_gemm() { ++stats_.gemms_observed; }

void FaultInjector::corrupt_accumulators(std::span<std::int32_t> partials) {
  if (plan_.accumulator_flip_rate <= 0.0 || !armed()) {
    return;
  }
  const std::int32_t mask = std::int32_t{1} << plan_.accumulator_bit;
  for (auto& value : partials) {
    if (rng_.bernoulli(plan_.accumulator_flip_rate)) {
      value ^= mask;
      ++stats_.accumulator_faults;
    }
  }
}

float FaultInjector::corrupt_scale(float scale, std::int64_t mac_layer) {
  if (plan_.scale_relative_error == 0.0) {
    return scale;
  }
  if (!plan_.scale_layers.empty() &&
      std::find(plan_.scale_layers.begin(), plan_.scale_layers.end(),
                mac_layer) == plan_.scale_layers.end()) {
    return scale;
  }
  ++stats_.scale_faults;
  return scale * (1.0f + static_cast<float>(plan_.scale_relative_error));
}

// ---- campaign driver ----------------------------------------------------

double evaluate_device_accuracy(TrustedDevice& device, const Tensor& images,
                                const std::vector<std::int64_t>& labels) {
  HPNN_CHECK(images.rank() == 4, "campaign images must be NCHW");
  const std::int64_t n = images.dim(0);
  HPNN_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "campaign labels do not match the image batch");
  const std::int64_t sample = images.numel() / n;
  constexpr std::int64_t kBatch = 64;
  std::int64_t correct = 0;
  for (std::int64_t at = 0; at < n; at += kBatch) {
    const std::int64_t count = std::min<std::int64_t>(kBatch, n - at);
    std::vector<std::int64_t> dims = images.shape().dims();
    dims[0] = count;
    const Tensor batch(
        Shape{dims},
        std::vector<float>(images.data() + at * sample,
                           images.data() + (at + count) * sample));
    const auto pred = device.classify(batch);
    for (std::int64_t i = 0; i < count; ++i) {
      correct += (pred[static_cast<std::size_t>(i)] ==
                  labels[static_cast<std::size_t>(at + i)]);
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

FaultTrialResult run_fault_trial(const obf::HpnnKey& key,
                                 std::uint64_t schedule_seed,
                                 const obf::PublishedModel& artifact,
                                 const Tensor& images,
                                 const std::vector<std::int64_t>& labels,
                                 const FaultPlan& plan,
                                 const DeviceConfig& config) {
  TrustedDevice device(key, schedule_seed, config);
  device.load_model(artifact);  // integrity checks run on a healthy device
  FaultInjector injector(plan);
  device.attach_fault_injector(&injector);
  FaultTrialResult result;
  result.accuracy = evaluate_device_accuracy(device, images, labels);
  result.integrity_detected = !device.key_store().integrity_ok();
  result.stats = injector.stats();
  HPNN_METRIC_COUNT("hw.fault.trials", 1);
  HPNN_METRIC_COUNT("hw.fault.key_bits_flipped", result.stats.key_bits_flipped);
  HPNN_METRIC_COUNT("hw.fault.accumulator_faults",
                    result.stats.accumulator_faults);
  HPNN_METRIC_COUNT("hw.fault.scale_faults", result.stats.scale_faults);
  HPNN_METRIC_COUNT("hw.fault.detections", result.integrity_detected ? 1 : 0);
  return result;
}

std::vector<KeyFlipCampaignPoint> run_key_flip_campaign(
    const obf::HpnnKey& key, std::uint64_t schedule_seed,
    const obf::PublishedModel& artifact, const Tensor& images,
    const std::vector<std::int64_t>& labels,
    const std::vector<std::size_t>& bit_counts, int trials,
    std::uint64_t campaign_seed, const DeviceConfig& config) {
  HPNN_CHECK(trials > 0, "key-flip campaign needs at least one trial");
  metrics::TraceSpan span("hw.fault.key_flip_campaign");
  HPNN_METRIC_COUNT("hw.fault.campaigns", 1);
  Rng rng(campaign_seed);

  // Draw every trial's fault plan up front, serially, in the exact RNG call
  // order of the original single-threaded campaign — campaign_seed must map
  // to the same bit draws at any thread count.
  std::vector<FaultPlan> plans;
  std::vector<int> runs_per_point;
  runs_per_point.reserve(bit_counts.size());
  for (const std::size_t bits : bit_counts) {
    HPNN_CHECK(bits <= obf::HpnnKey::kBits,
               "cannot flip more bits than the key holds");
    // A zero-bit point is deterministic; do not repeat it.
    const int runs = bits == 0 ? 1 : trials;
    runs_per_point.push_back(runs);
    for (int t = 0; t < runs; ++t) {
      FaultPlan plan;
      const auto perm = rng.permutation(obf::HpnnKey::kBits);
      plan.key_bits.assign(perm.begin(),
                           perm.begin() + static_cast<std::ptrdiff_t>(bits));
      plans.push_back(std::move(plan));
    }
  }

  // Each trial builds its own device + injector, so trials fan out across
  // the pool into pre-sized result slots; a trial's own per-sample loop is
  // serialized by the device while its injector is attached. Aggregating in
  // the original trial order below keeps every campaign statistic
  // bit-identical to the serial run.
  std::vector<FaultTrialResult> results(plans.size());
  core::parallel_for(
      0, static_cast<std::int64_t>(plans.size()), 1,
      [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
          results[static_cast<std::size_t>(s)] =
              run_fault_trial(key, schedule_seed, artifact, images, labels,
                              plans[static_cast<std::size_t>(s)], config);
        }
      });

  std::vector<KeyFlipCampaignPoint> points;
  points.reserve(bit_counts.size());
  std::size_t cursor = 0;
  for (std::size_t bi = 0; bi < bit_counts.size(); ++bi) {
    KeyFlipCampaignPoint point;
    point.bits_flipped = bit_counts[bi];
    point.min_accuracy = 1.0;
    const int runs = runs_per_point[bi];
    for (int t = 0; t < runs; ++t) {
      const FaultTrialResult& trial = results[cursor++];
      point.mean_accuracy += trial.accuracy;
      point.min_accuracy = std::min(point.min_accuracy, trial.accuracy);
      // A detected corruption fails closed: the device serves nothing.
      point.mean_served_accuracy +=
          trial.integrity_detected ? 0.0 : trial.accuracy;
      point.detection_rate += trial.integrity_detected ? 1.0 : 0.0;
    }
    point.mean_accuracy /= runs;
    point.mean_served_accuracy /= runs;
    point.detection_rate /= runs;
    points.push_back(point);
  }
  return points;
}

void write_campaign_json(std::ostream& os, const std::string& model_label,
                         double baseline_accuracy,
                         const std::vector<KeyFlipCampaignPoint>& points) {
  os << "{\"bench\":\"fault_campaign\",\"model\":\"" << model_label
     << "\",\"baseline_accuracy\":" << baseline_accuracy
     << ",\"key_bit_flips\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    os << (i ? "," : "") << "{\"bits\":" << p.bits_flipped
       << ",\"mean_accuracy\":" << p.mean_accuracy
       << ",\"min_accuracy\":" << p.min_accuracy
       << ",\"served_accuracy\":" << p.mean_served_accuracy
       << ",\"detection_rate\":" << p.detection_rate << "}";
  }
  os << "]}";
}

}  // namespace hpnn::hw
