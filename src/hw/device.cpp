#include "hw/device.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "hpnn/lock_scheme.hpp"
#include "hw/fault.hpp"
#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/residual.hpp"
#include "tensor/ops.hpp"

namespace hpnn::hw {

TrustedDevice::TrustedDevice(const obf::HpnnKey& key,
                             std::uint64_t schedule_seed, DeviceConfig config)
    : config_(config), mmu_(config.fidelity) {
  key_store_.provision(key, schedule_seed, config.schedule_policy);
  key_store_.seal();  // end-user hardware never exposes the secrets
}

void TrustedDevice::load_model(const obf::PublishedModel& artifact) {
  key_store_.check_integrity();
  // Resolve the artifact's locking scheme first: an unknown tag fails
  // closed (SerializationError) before any state changes.
  const obf::LockScheme& scheme = obf::scheme_by_tag(artifact.scheme_tag);
  scheme.validate_payload(artifact.scheme_payload);
  // Stage every fallible step before touching device state: a corrupt
  // artifact that throws partway (bad weights, shape mismatch, allocation
  // failure) must leave the previously loaded model — and the caches and
  // static-quant scales that belong to it — fully intact.
  std::unique_ptr<nn::Sequential> net;
  if (scheme.transforms_weights()) {
    // On-chip decryption at load: invert the published transform with the
    // sealed secrets, mirroring the owner's keychain derivation. A wrong
    // key decodes to garbage weights — degraded accuracy, not an error.
    obf::PublishedModel unlocked = artifact;
    const obf::SchemeSecrets secrets{key_store_.key_,
                                     key_store_.scheduler().seed(),
                                     key_store_.scheduler().policy()};
    scheme.unlock_payload(unlocked, secrets);
    net = obf::instantiate_baseline(unlocked);
  } else {
    net = obf::instantiate_baseline(artifact);
  }
  net->set_training(false);
  std::vector<float> scales = artifact.activation_scales;
  // Commit point: nothing below throws.
  net_ = std::move(net);
  weight_cache_.clear();
  lock_cache_.clear();
  activation_scales_ = std::move(scales);
  activation_locks_ = scheme.uses_activation_locks();
  in_channels_ = artifact.in_channels;
  image_size_ = artifact.image_size;
}

obf::AttestationResult TrustedDevice::self_test(
    const obf::AttestationChallenge& challenge) {
  key_store_.check_integrity();
  HPNN_CHECK(net_ != nullptr, "no model loaded for device self-test");
  return obf::check_response(challenge, classify(challenge.probes));
}

void TrustedDevice::attach_fault_injector(FaultInjector* injector) {
  fault_ = injector;
  mmu_.attach_fault_injector(injector);
  if (injector != nullptr) {
    injector->apply_key_faults(key_store_);
    // Lock masks derive from the (now possibly faulted) key bits.
    lock_cache_.clear();
  }
}

QuantizedTensor TrustedDevice::quantize_mac_input(const Tensor& x) {
  const std::int64_t idx = mac_cursor_++;
  if (idx < static_cast<std::int64_t>(activation_scales_.size())) {
    float scale = activation_scales_[static_cast<std::size_t>(idx)];
    if (fault_ != nullptr) {
      scale = fault_->corrupt_scale(scale, idx);
    }
    return quantize_with_scale(x, scale);
  }
  QuantizedTensor q = quantize(x);  // dynamic fallback
  if (fault_ != nullptr) {
    // The fault hits the scale register after quantization: the int8
    // values are consistent, but the dequantization factor read back by
    // the accumulator drain path is wrong.
    q.scale = fault_->corrupt_scale(q.scale, idx);
  }
  return q;
}

const QuantizedTensor& TrustedDevice::quantized_weights(
    const nn::Module* layer, const Tensor& weights) {
  auto it = weight_cache_.find(layer);
  if (it == weight_cache_.end()) {
    it = weight_cache_.emplace(layer, quantize(weights)).first;
  }
  return it->second;
}

const TrustedDevice::LockInfo& TrustedDevice::lock_for_activation(
    std::int64_t activation_index, const Shape& act_shape) {
  auto it = lock_cache_.find(activation_index);
  if (it == lock_cache_.end()) {
    // On-chip expansion of the sealed key through the private scheduler —
    // the same derivation the owner used at training time.
    obf::LockSpec spec{"device_act", activation_index, act_shape};
    LockInfo info;
    info.mask = key_store_.scheduler().lock_mask(spec, key_store_.key_);
    info.negate.resize(static_cast<std::size_t>(info.mask.numel()));
    for (std::int64_t i = 0; i < info.mask.numel(); ++i) {
      info.negate[static_cast<std::size_t>(i)] = info.mask.at(i) < 0.0f;
    }
    it = lock_cache_.emplace(activation_index, std::move(info)).first;
  }
  HPNN_CHECK(it->second.mask.shape() == act_shape,
             "device lock mask shape mismatch at activation " +
                 std::to_string(activation_index));
  return it->second;
}

Tensor TrustedDevice::exec_conv(nn::Conv2d& conv, Tensor x,
                                const LockInfo* lock) {
  const auto& g = conv.geometry();
  const std::int64_t batch = x.dim(0);
  const std::int64_t filters = conv.out_channels();
  const std::int64_t oh = g.out_h();
  const std::int64_t ow = g.out_w();
  const std::int64_t ckk = g.in_channels * g.kernel * g.kernel;

  const QuantizedTensor& wq = quantized_weights(&conv, conv.weight().value);
  const QuantizedTensor xq = quantize_mac_input(x);
  const float out_scale = wq.scale * xq.scale;

  Tensor out(Shape{batch, filters, oh, ow});
  const std::int64_t in_sample = g.in_channels * g.in_h * g.in_w;
  const std::int64_t out_sample = filters * oh * ow;
  const std::span<const std::uint8_t> negate =
      lock ? std::span<const std::uint8_t>(lock->negate)
           : std::span<const std::uint8_t>();

  const nn::Parameter* bias = conv.bias();
  // Per-sample MMU tiles are independent, so the batch fans out over the
  // pool with per-chunk im2col/accumulator scratch. Integer arithmetic is
  // exact, so results don't depend on the partition. With a fault injector
  // attached the loop stays serial: fault draws consume the injector's RNG
  // in GEMM issue order, which must match the single-threaded campaigns.
  auto sample_range = [&](std::int64_t n0, std::int64_t n1) {
    std::vector<std::int8_t> cols(static_cast<std::size_t>(ckk * oh * ow));
    std::vector<std::int32_t> acc(
        static_cast<std::size_t>(filters * oh * ow));
    for (std::int64_t nidx = n0; nidx < n1; ++nidx) {
      ops::im2col(xq.values.data() + nidx * in_sample, g, cols.data());
      mmu_.matmul_i8(std::span<const std::int8_t>(wq.values), filters, ckk,
                     std::span<const std::int8_t>(cols), oh * ow, negate,
                     std::span<std::int32_t>(acc));
      float* dst = out.data() + nidx * out_sample;
      for (std::int64_t f = 0; f < filters; ++f) {
        const float b = bias ? bias->value.at(f) : 0.0f;
        for (std::int64_t i = 0; i < oh * ow; ++i) {
          const std::int64_t idx = f * oh * ow + i;
          // Bias is preloaded into the same keyed accumulator on real
          // hardware, so the lock sign applies to it as well.
          const float sign =
              (lock && lock->negate[static_cast<std::size_t>(idx)]) ? -1.0f
                                                                    : 1.0f;
          dst[idx] = static_cast<float>(acc[static_cast<std::size_t>(idx)]) *
                         out_scale +
                     sign * b;
        }
      }
    }
  };
  if (fault_ != nullptr || batch == 1) {
    sample_range(0, batch);
  } else {
    core::parallel_for(0, batch, 1, sample_range);
  }
  return out;
}

Tensor TrustedDevice::exec_linear(nn::Linear& fc, Tensor x,
                                  const LockInfo* lock) {
  const std::int64_t batch = x.dim(0);
  const std::int64_t in_f = fc.in_features();
  const std::int64_t out_f = fc.out_features();

  // Cache the transposed int8 weights ([in, out] layout for the MMU).
  auto it = weight_cache_.find(&fc);
  if (it == weight_cache_.end()) {
    QuantizedTensor wq = quantize(fc.weight().value);  // [out, in]
    QuantizedTensor wt;
    wt.scale = wq.scale;
    wt.shape = Shape{in_f, out_f};
    wt.values.resize(wq.values.size());
    for (std::int64_t o = 0; o < out_f; ++o) {
      for (std::int64_t i = 0; i < in_f; ++i) {
        wt.values[static_cast<std::size_t>(i * out_f + o)] =
            wq.values[static_cast<std::size_t>(o * in_f + i)];
      }
    }
    it = weight_cache_.emplace(&fc, std::move(wt)).first;
  }
  const QuantizedTensor& wt = it->second;
  const QuantizedTensor xq = quantize_mac_input(x);
  const float out_scale = wt.scale * xq.scale;

  // Per-sample lock mask tiled across the batch rows.
  std::vector<std::uint8_t> negate;
  if (lock) {
    negate.resize(static_cast<std::size_t>(batch * out_f));
    for (std::int64_t n = 0; n < batch; ++n) {
      std::copy(lock->negate.begin(), lock->negate.end(),
                negate.begin() + n * out_f);
    }
  }

  std::vector<std::int32_t> acc(static_cast<std::size_t>(batch * out_f));
  mmu_.matmul_i8(std::span<const std::int8_t>(xq.values), batch, in_f,
                 std::span<const std::int8_t>(wt.values), out_f,
                 std::span<const std::uint8_t>(negate),
                 std::span<std::int32_t>(acc));

  Tensor out(Shape{batch, out_f});
  const nn::Parameter* bias = fc.bias();
  for (std::int64_t n = 0; n < batch; ++n) {
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float b = bias ? bias->value.at(o) : 0.0f;
      const float sign =
          (lock && lock->negate[static_cast<std::size_t>(o)]) ? -1.0f : 1.0f;
      out.at(n, o) =
          static_cast<float>(acc[static_cast<std::size_t>(n * out_f + o)]) *
              out_scale +
          sign * b;
    }
  }
  return out;
}

Tensor TrustedDevice::exec_module(nn::Module& m, nn::Module* next, Tensor x,
                                  bool& fused_activation) {
  if (auto* seq = dynamic_cast<nn::Sequential*>(&m)) {
    return exec_sequential(*seq, std::move(x));
  }
  if (auto* res = dynamic_cast<nn::Residual*>(&m)) {
    Tensor main_out = exec_module(res->main(), nullptr, x, fused_activation);
    Tensor skip = res->shortcut()
                      ? exec_module(*res->shortcut(), nullptr, x,
                                    fused_activation)
                      : std::move(x);
    main_out.add_(skip);  // vector-unit elementwise add
    if (res->post() != nullptr) {
      bool no_fuse = false;
      main_out = exec_module(*res->post(), nullptr, std::move(main_out),
                             no_fuse);
    }
    return main_out;
  }
  if (auto* conv = dynamic_cast<nn::Conv2d*>(&m)) {
    const LockInfo* lock = nullptr;
    if (activation_locks_ && dynamic_cast<nn::ReLU*>(next) != nullptr) {
      const Shape act_shape{conv->out_channels(), conv->geometry().out_h(),
                            conv->geometry().out_w()};
      lock = &lock_for_activation(activation_cursor_, act_shape);
      fused_activation = true;
    }
    return exec_conv(*conv, std::move(x), lock);
  }
  if (auto* fc = dynamic_cast<nn::Linear*>(&m)) {
    const LockInfo* lock = nullptr;
    if (activation_locks_ && dynamic_cast<nn::ReLU*>(next) != nullptr) {
      lock = &lock_for_activation(activation_cursor_,
                                  Shape{fc->out_features()});
      fused_activation = true;
    }
    return exec_linear(*fc, std::move(x), lock);
  }
  if (dynamic_cast<nn::ReLU*>(&m) != nullptr) {
    const std::int64_t per_sample = x.numel() / x.dim(0);
    if (activation_locks_ && !fused_activation) {
      // Activation fed by a vector-unit op: apply the lock sign at the
      // activation-unit input.
      std::vector<std::int64_t> dims(x.shape().dims().begin() + 1,
                                     x.shape().dims().end());
      const LockInfo& lock =
          lock_for_activation(activation_cursor_, Shape(dims));
      const float* mask = lock.mask.data();
      for (std::int64_t n = 0; n < x.dim(0); ++n) {
        float* row = x.data() + n * per_sample;
        for (std::int64_t i = 0; i < per_sample; ++i) {
          row[i] *= mask[i];
        }
      }
    }
    fused_activation = false;
    ++activation_cursor_;
    for (auto& v : x.span()) {
      v = std::max(v, 0.0f);  // the on-chip activation module
    }
    return x;
  }
  if (auto* bn = dynamic_cast<nn::BatchNorm2d*>(&m)) {
    // Stateless running-stats normalization owned by nn::BatchNorm2d; the
    // device no longer carries its own copy of the formula.
    return bn->eval_forward(x);
  }
  if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&m)) {
    return pool->forward(x);  // host op, stateless at inference
  }
  if (auto* apool = dynamic_cast<nn::AvgPool2d*>(&m)) {
    return ops::avgpool2d_forward(x, apool->kernel(), apool->stride());
  }
  if (dynamic_cast<nn::Flatten*>(&m) != nullptr) {
    const std::int64_t n = x.dim(0);
    return x.reshaped(Shape{n, x.numel() / n});
  }
  if (dynamic_cast<nn::GlobalAvgPool*>(&m) != nullptr) {
    return ops::global_avgpool_forward(x);
  }
  if (dynamic_cast<nn::Dropout*>(&m) != nullptr) {
    return x;  // identity at inference
  }
  HPNN_CHECK(false, "trusted device cannot execute module '" + m.name() + "'");
}

Tensor TrustedDevice::exec_sequential(nn::Sequential& seq, Tensor x) {
  bool fused = false;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    nn::Module* next = (i + 1 < seq.size()) ? &seq.at(i + 1) : nullptr;
    x = exec_module(seq.at(i), next, std::move(x), fused);
  }
  return x;
}

namespace {

/// Zeroes the per-inference traversal cursors on construction and again on
/// scope exit — including exception unwinding — so a request that dies
/// mid-batch cannot leave the *next* request reading misaligned lock masks
/// or static quantization scales.
class CursorGuard {
 public:
  CursorGuard(std::int64_t& activation_cursor, std::int64_t& mac_cursor)
      : activation_cursor_(activation_cursor), mac_cursor_(mac_cursor) {
    activation_cursor_ = 0;
    mac_cursor_ = 0;
  }
  ~CursorGuard() {
    activation_cursor_ = 0;
    mac_cursor_ = 0;
  }
  CursorGuard(const CursorGuard&) = delete;
  CursorGuard& operator=(const CursorGuard&) = delete;

 private:
  std::int64_t& activation_cursor_;
  std::int64_t& mac_cursor_;
};

}  // namespace

Tensor TrustedDevice::infer(const Tensor& images) {
  HPNN_CHECK(net_ != nullptr, "no model loaded on the trusted device");
  if (images.rank() != 4 || images.dim(1) != in_channels_ ||
      images.dim(2) != image_size_ || images.dim(3) != image_size_) {
    throw ShapeError(
        "device input must be [N, " + std::to_string(in_channels_) + ", " +
        std::to_string(image_size_) + ", " + std::to_string(image_size_) +
        "], got " + images.shape().to_string());
  }
  // Batched-serving latency: one histogram sample per infer() request, so
  // the snapshot's p50/p95/p99 describe request latency and its count
  // equals requests served (asserted by the serving integration test).
  metrics::Histogram* latency = nullptr;
  if (metrics::enabled()) {
    static metrics::Histogram& hist =
        metrics::MetricsRegistry::instance().histogram(
            "hw.device.infer.latency_us");
    latency = &hist;
  }
  metrics::TraceSpan span("hw.device.infer", latency);
  HPNN_METRIC_COUNT("hw.device.infer.requests", 1);
  HPNN_METRIC_COUNT("hw.device.infer.samples", images.dim(0));
  CursorGuard cursors(activation_cursor_, mac_cursor_);
  return exec_sequential(*net_, images);
}

std::vector<std::int64_t> TrustedDevice::classify(const Tensor& images) {
  return ops::argmax_rows(infer(images));
}

}  // namespace hpnn::hw
