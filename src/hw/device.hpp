// The trusted hardware device (Fig. 1, right): a TPU-like inference
// accelerator with the HPNN key in sealed on-chip storage.
//
// The device downloads a published (obfuscated) model artifact and runs
// inference on its integer datapath:
//   - conv/FC MACs execute on the MMU in int8 with 32-bit keyed accumulators;
//     when a MAC layer feeds a nonlinear activation directly (all Table I
//     networks), the lock factor is applied *inside the accumulator* via the
//     Fig. 4 XOR bank — the paper's mechanism, with zero cycle overhead;
//   - pooling / batch-norm / residual adds run on the host/vector unit in
//     float (as on a real TPU);
//   - for activations fed by vector-unit ops (ResNet's post-BN and
//     post-residual-add ReLUs), the sign is applied at the activation unit
//     input instead — mathematically identical, since our LockedModel also
//     places those locks after the vector ops.
//
// The per-neuron lock factors are derived on-chip from the sealed key and
// the private scheduling algorithm — independently from, but identically
// to, the owner's training-time derivation (the correctness contract
// verified by tests/hw/device_test.cpp).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "hpnn/attestation.hpp"
#include "hpnn/model_io.hpp"
#include "hw/mmu.hpp"
#include "hw/quant.hpp"
#include "hw/secure_memory.hpp"

namespace hpnn::hw {

class FaultInjector;

struct DeviceConfig {
  Fidelity fidelity = Fidelity::kFast;
  /// Must match the owner's training-time scheduling policy.
  obf::SchedulePolicy schedule_policy = obf::SchedulePolicy::kInterleaved;
};

class TrustedDevice {
 public:
  /// Provisions and seals the device with the owner's secrets. After
  /// construction the key can no longer be exported (models license
  /// hardware handed to an end-user).
  TrustedDevice(const obf::HpnnKey& key, std::uint64_t schedule_seed,
                DeviceConfig config = {});

  /// Loads a model-zoo artifact (weights are quantized lazily per layer).
  /// The artifact's scheme tag selects the registered LockScheme: unknown
  /// tags fail closed with SerializationError, weight-transforming schemes
  /// (weight-stream) are decrypted on load with the sealed secrets, and
  /// activation lock masks are applied only for schemes that use them
  /// (sign-lock). Fails fast with KeyError if the sealed key store no
  /// longer passes its integrity check — a corrupted device must not serve
  /// predictions. Strong exception safety: if instantiating the artifact
  /// throws partway (corrupt weights, shape mismatch), the previously
  /// loaded model and all derived caches remain fully intact and keep
  /// serving.
  void load_model(const obf::PublishedModel& artifact);
  bool has_model() const { return net_ != nullptr; }

  /// Post-load health check: verifies key-store integrity (KeyError on
  /// mismatch) and replays an attestation challenge bundled with the
  /// artifact, so a silently corrupted device degrades to a detected
  /// error instead of confidently wrong predictions.
  obf::AttestationResult self_test(
      const obf::AttestationChallenge& challenge);

  /// Attaches a fault-injection engine (nullptr detaches). Planned key-bit
  /// SEUs are applied immediately and persist for the device's lifetime;
  /// transient accumulator/scale faults fire during subsequent inference.
  /// Without an injector every hook reduces to a null-pointer test.
  void attach_fault_injector(FaultInjector* injector);

  /// Runs inference on a batch [N, C, H, W]; returns logits [N, classes].
  /// Throws ShapeError if the batch does not match the loaded artifact's
  /// input geometry (serving inputs are untrusted). The per-inference
  /// traversal cursors are managed by a scope guard, so an exception
  /// unwinding mid-inference (shape error, injected fault) cannot leave the
  /// device with misaligned lock masks or quantization scales for the next
  /// request.
  Tensor infer(const Tensor& images);

  /// Argmax class per sample.
  std::vector<std::int64_t> classify(const Tensor& images);

  const MmuStats& mmu_stats() const { return mmu_.stats(); }
  void reset_stats() { mmu_.reset_stats(); }
  const SecureKeyStore& key_store() const { return key_store_; }

 private:
  struct LockInfo {
    Tensor mask;                         // per-sample {+1,-1}
    std::vector<std::uint8_t> negate;    // mask < 0, flattened
  };

  /// Walks a module subtree, executing layers on the modeled datapath.
  /// `next` peeks at the module following `m` within its parent Sequential
  /// (nullptr at the end) for MAC+activation fusion.
  Tensor exec_module(nn::Module& m, nn::Module* next, Tensor x,
                     bool& fused_activation);
  Tensor exec_sequential(nn::Sequential& seq, Tensor x);
  Tensor exec_conv(nn::Conv2d& conv, Tensor x, const LockInfo* lock);
  Tensor exec_linear(nn::Linear& fc, Tensor x, const LockInfo* lock);

  const QuantizedTensor& quantized_weights(const nn::Module* layer,
                                           const Tensor& weights);
  const LockInfo& lock_for_activation(std::int64_t activation_index,
                                      const Shape& act_shape);

  /// Quantizes a MAC-layer input: with the artifact's calibrated static
  /// scale when available, dynamically otherwise. Advances mac_cursor_.
  QuantizedTensor quantize_mac_input(const Tensor& x);

  SecureKeyStore key_store_;
  DeviceConfig config_;
  Mmu mmu_;
  FaultInjector* fault_ = nullptr;
  std::unique_ptr<nn::Sequential> net_;  // structure + published weights
  std::map<const nn::Module*, QuantizedTensor> weight_cache_;
  std::map<std::int64_t, LockInfo> lock_cache_;
  std::vector<float> activation_scales_;  // static quant (may be empty)
  /// Whether the loaded artifact's scheme locks activations (sign-lock).
  /// Weight-transforming schemes protect at load time instead, so the lock
  /// fetch/XOR sites are skipped entirely for them.
  bool activation_locks_ = true;
  std::int64_t in_channels_ = 0;          // artifact input geometry
  std::int64_t image_size_ = 0;
  std::int64_t activation_cursor_ = 0;  // per-inference traversal counter
  std::int64_t mac_cursor_ = 0;         // per-inference MAC-layer counter
};

}  // namespace hpnn::hw
