#include "hw/overhead.hpp"

#include <sstream>

#include "core/error.hpp"
#include "hw/adder.hpp"

namespace hpnn::hw {

double MmuOverheadReport::overhead_vs_full_array() const {
  return baseline_gates > 0
             ? static_cast<double>(xor_gates_added) /
                   static_cast<double>(baseline_gates)
             : 0.0;
}

double MmuOverheadReport::overhead_vs_reference(
    std::int64_t reference_gates) const {
  HPNN_CHECK(reference_gates > 0, "reference gate count must be positive");
  return static_cast<double>(xor_gates_added) /
         static_cast<double>(reference_gates);
}

std::string MmuOverheadReport::to_string() const {
  std::ostringstream os;
  os << "MACs: " << mac_count << " (" << gates_per_mac << " gates each), "
     << accumulator_units << " accumulators (" << gates_per_accumulator
     << " gates each); baseline " << baseline_gates << " gates; +"
     << xor_gates_added << " XOR gates, +" << cycle_overhead << " cycles";
  return os.str();
}

MmuOverheadReport mmu_overhead(std::int64_t array_dim, const GateModel& g) {
  HPNN_CHECK(array_dim > 0, "array dim must be positive");
  MmuOverheadReport r;
  r.mac_count = array_dim * array_dim;
  r.accumulator_units = array_dim;

  // One 8x8 array multiplier: 64 partial-product ANDs + 56 full adders,
  // plus a 16-bit pipeline register.
  const std::int64_t mult_gates =
      g.multiplier_width * g.multiplier_width +
      (g.multiplier_width * (g.multiplier_width - 1)) *
          g.gates_per_full_adder / 1;
  const std::int64_t pipe_reg_gates = g.product_width * g.gates_per_flipflop;
  r.gates_per_mac = mult_gates + pipe_reg_gates;

  // One 32-bit accumulator: FA chain + register.
  r.gates_per_accumulator =
      g.accumulator_width * (g.gates_per_full_adder + g.gates_per_flipflop);

  r.baseline_gates = r.mac_count * r.gates_per_mac +
                     r.accumulator_units * r.gates_per_accumulator;

  // The HPNN modification: 16 XOR gates per accumulator unit (Fig. 4b),
  // zero clock-cycle overhead (combinational only).
  r.xor_gates_added =
      r.accumulator_units * kXorGatesPerAccumulator * g.gates_per_xor;
  r.cycle_overhead = 0;
  return r;
}

}  // namespace hpnn::hw
