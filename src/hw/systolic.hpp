// Cycle-level weight-stationary systolic array simulation.
//
// The Mmu class (mmu.hpp) computes results functionally and *models* cycles
// with a closed-form formula. This module actually simulates the dataflow,
// PE by PE and cycle by cycle: weights parked in the grid, activations
// streamed in skewed from the left edge, partial sums flowing down each
// column into the key-dependent accumulator bank at the bottom (which is
// where the paper's Fig. 4 XOR gates live — one key bit per column/unit).
//
// It exists to validate the closed-form model: tests check that the
// simulated results equal the functional GEMM and that the simulated
// latency matches the Mmu's fill+stream+drain formula.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hw/accumulator.hpp"

namespace hpnn::hw {

class SystolicArray {
 public:
  /// rows = contraction dimension capacity, cols = output-neuron capacity
  /// (= accumulator units = key bits for this tile).
  SystolicArray(std::int64_t rows, std::int64_t cols);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Parks a k x n int8 weight tile in the grid (k <= rows, n <= cols).
  /// Costs k cycles (one row shifted in per cycle), tracked in the result
  /// of the next run().
  void load_weights(std::span<const std::int8_t> w, std::int64_t k,
                    std::int64_t n);

  struct Result {
    std::vector<std::int32_t> out;  // [m x n], row-major
    std::uint64_t load_cycles = 0;  // weight-load cost
    std::uint64_t stream_cycles = 0;  // fill + stream + drain
    std::uint64_t total_cycles() const { return load_cycles + stream_cycles; }
  };

  /// Streams m activation rows (each of length k, int8, row-major) through
  /// the parked weights. `column_key_bits` holds one HPNN key bit per output
  /// column (empty = all zero); a set bit makes that column's accumulator
  /// negate its partial sums (the Fig. 4 mechanism). Returns the [m x n]
  /// outputs and the exact simulated cycle counts.
  Result run(std::span<const std::int8_t> a, std::int64_t m,
             std::span<const std::uint8_t> column_key_bits = {});

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::int64_t loaded_k_ = 0;
  std::int64_t loaded_n_ = 0;
  std::uint64_t pending_load_cycles_ = 0;
  std::vector<std::int8_t> weights_;  // rows_ x cols_, row-major
};

}  // namespace hpnn::hw
