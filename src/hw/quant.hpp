// Symmetric int8 quantization for the TPU-like integer datapath.
//
// The Google TPU's MMU multiplies 8-bit operands; we use per-tensor
// symmetric dynamic quantization: q = round(x / scale), scale = max|x|/127.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hpnn::hw {

struct QuantizedTensor {
  std::vector<std::int8_t> values;
  float scale = 1.0f;       // x ≈ q * scale
  Shape shape;

  std::int64_t numel() const {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Quantizes a float tensor to int8 with per-tensor symmetric scale.
/// An all-zero tensor quantizes with scale 1.
QuantizedTensor quantize(const Tensor& x);

/// Quantizes with a fixed (calibrated) scale; values outside ±127*scale
/// saturate. Used by the static-quantization path, where the owner ships
/// per-layer activation scales inside the published artifact.
QuantizedTensor quantize_with_scale(const Tensor& x, float scale);

/// Reconstructs the float tensor (q * scale).
Tensor dequantize(const QuantizedTensor& q);

/// Max absolute quantization error for a given tensor (scale/2 bound check).
float max_quantization_error(const Tensor& x);

}  // namespace hpnn::hw
