// Fault-injection subsystem for the trusted device.
//
// The paper's security argument rests on the integrity of the sealed key
// and the keyed datapath: a single wrong key bit should collapse accuracy
// to near-chance. This module makes that assumption measurable under a
// realistic hardware fault model:
//
//   - persistent SEUs in the sealed key store (bit flips in the key words
//     that survive until the next power cycle);
//   - transient bit flips in the keyed-accumulator partial sums of the MMU;
//   - corruption of the quantization-scale registers feeding the MAC units.
//
// A seeded, deterministic FaultInjector executes a FaultPlan and reports
// FaultStats per campaign. The hardware model (SecureKeyStore, Mmu,
// TrustedDevice) carries injection hooks that reduce to a null-pointer test
// when no injector is attached, so the fault machinery costs nothing in
// normal operation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/rng.hpp"
#include "hw/device.hpp"

namespace hpnn::hw {

class SecureKeyStore;

/// Which faults to inject, where, and when. Default-constructed plans
/// inject nothing.
struct FaultPlan {
  /// Persistent SEUs in sealed key storage: indices of HPNN key bits to
  /// flip (applied once, when the injector is attached to a device).
  std::vector<std::size_t> key_bits;

  /// Transient accumulator faults: once armed, every output element of a
  /// keyed GEMM flips bit `accumulator_bit` of its 32-bit partial sum with
  /// this per-element probability.
  double accumulator_flip_rate = 0.0;
  int accumulator_bit = 30;

  /// Number of GEMM calls to observe before transient faults arm (0 =
  /// armed from the first GEMM). Selects the inference step under attack.
  std::uint64_t arm_after_gemms = 0;

  /// Quantization-scale corruption: affected scale registers read back
  /// scale * (1 + scale_relative_error).
  double scale_relative_error = 0.0;
  /// MAC-layer indices (device execution order) whose scale registers are
  /// corrupted; empty = every MAC layer.
  std::vector<std::int64_t> scale_layers;

  /// Seed of the transient-fault randomness (campaigns are reproducible).
  std::uint64_t seed = 0;
};

/// Per-campaign accounting of what the injector actually did.
struct FaultStats {
  std::uint64_t key_bits_flipped = 0;
  std::uint64_t accumulator_faults = 0;
  std::uint64_t scale_faults = 0;
  std::uint64_t gemms_observed = 0;

  void reset() { *this = FaultStats{}; }
};

/// Deterministic fault-injection engine. Attach to a TrustedDevice via
/// TrustedDevice::attach_fault_injector; the device wires it through to its
/// key store and MMU. Key-bit SEUs are applied once at attach time and are
/// irreversible for the lifetime of the device (as on real silicon until a
/// re-provision); transient faults fire during inference.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  // ---- hooks called by the hardware model ------------------------------

  /// Flips the planned key bits inside the (sealed) store, bypassing the
  /// provisioning interface — this is physics, not API. The store's
  /// integrity digest is deliberately NOT updated, so detection logic can
  /// observe the corruption.
  void apply_key_faults(SecureKeyStore& store);

  /// Counts a GEMM issue (arms transient faults after `arm_after_gemms`).
  void on_gemm();

  /// Flips accumulator bits in a GEMM output tile according to the plan.
  void corrupt_accumulators(std::span<std::int32_t> partials);

  /// Returns the (possibly corrupted) value a scale register reads back
  /// for the given MAC layer.
  float corrupt_scale(float scale, std::int64_t mac_layer);

 private:
  bool armed() const { return stats_.gemms_observed > plan_.arm_after_gemms; }

  FaultPlan plan_;
  FaultStats stats_;
  Rng rng_;
};

// ---- campaign driver ----------------------------------------------------

/// Outcome of evaluating one faulted device over a labeled dataset.
struct FaultTrialResult {
  double accuracy = 0.0;
  /// True when the key store's integrity digest no longer matches — i.e.
  /// the parity/CRC logic would have caught this fault before inference.
  bool integrity_detected = false;
  FaultStats stats;
};

/// Classification accuracy of a device over [N, C, H, W] images (batched
/// internally; the device's fault hooks stay attached throughout).
double evaluate_device_accuracy(TrustedDevice& device, const Tensor& images,
                                const std::vector<std::int64_t>& labels);

/// Builds a fresh device (key + schedule sealed on-chip), loads the
/// artifact, attaches an injector for `plan` and evaluates accuracy.
FaultTrialResult run_fault_trial(const obf::HpnnKey& key,
                                 std::uint64_t schedule_seed,
                                 const obf::PublishedModel& artifact,
                                 const Tensor& images,
                                 const std::vector<std::int64_t>& labels,
                                 const FaultPlan& plan,
                                 const DeviceConfig& config = {});

/// One point of the accuracy-vs-flipped-key-bits curve.
///
/// `mean_accuracy`/`min_accuracy` describe the raw datapath: what the device
/// would predict if it kept serving on a corrupted key. Each key bit drives
/// only a slice of the per-neuron locks, so this decays gradually with the
/// flip count (the key-distance ablation seen from the fault side).
/// `mean_served_accuracy` is the deployed behavior: the integrity digest
/// detects the corruption and the device fails closed, serving nothing —
/// so it collapses to 0 as soon as a single bit is flipped.
struct KeyFlipCampaignPoint {
  std::size_t bits_flipped = 0;
  double mean_accuracy = 0.0;
  double min_accuracy = 0.0;
  double mean_served_accuracy = 0.0;
  /// Fraction of trials where the key-store digest detected the corruption
  /// (1.0 whenever bits_flipped > 0 — the digest covers every key word).
  double detection_rate = 0.0;
};

/// Monte-Carlo key-SEU campaign: for each entry of `bit_counts`, runs
/// `trials` independent trials flipping that many uniformly drawn distinct
/// key bits, and aggregates accuracy. `campaign_seed` fixes the drawn bit
/// positions.
std::vector<KeyFlipCampaignPoint> run_key_flip_campaign(
    const obf::HpnnKey& key, std::uint64_t schedule_seed,
    const obf::PublishedModel& artifact, const Tensor& images,
    const std::vector<std::int64_t>& labels,
    const std::vector<std::size_t>& bit_counts, int trials,
    std::uint64_t campaign_seed, const DeviceConfig& config = {});

/// Serializes a key-flip campaign as a JSON object:
/// {"bench":"fault_campaign","model":<label>,"baseline_accuracy":...,
///  "key_bit_flips":[{"bits":...,"mean_accuracy":...,...},...]}
void write_campaign_json(std::ostream& os, const std::string& model_label,
                         double baseline_accuracy,
                         const std::vector<KeyFlipCampaignPoint>& points);

}  // namespace hpnn::hw
