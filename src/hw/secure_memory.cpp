#include "hw/secure_memory.hpp"

#include "core/error.hpp"

namespace hpnn::hw {

void SecureKeyStore::provision(const obf::HpnnKey& key,
                               std::uint64_t schedule_seed,
                               obf::SchedulePolicy policy) {
  if (sealed_) {
    throw KeyError("secure key store is sealed; provisioning forbidden");
  }
  if (provisioned_) {
    throw KeyError("secure key store is already provisioned");
  }
  key_ = key;
  scheduler_ = std::make_unique<obf::Scheduler>(schedule_seed, policy);
  provisioned_ = true;
  digest_ = compute_digest();
}

Sha256Digest SecureKeyStore::compute_digest() const {
  // Domain-separated digest over everything the datapath derives from:
  // the key words, the schedule seed and the tiling policy.
  return Sha256::hash("hpnn-keystore-v1:" + key_.to_hex() + ":" +
                      std::to_string(scheduler_->seed()) + ":" +
                      std::to_string(static_cast<int>(scheduler_->policy())));
}

bool SecureKeyStore::integrity_ok() const {
  return !provisioned_ || compute_digest() == digest_;
}

void SecureKeyStore::check_integrity() const {
  if (!integrity_ok()) {
    throw KeyError(
        "secure key store failed its integrity check (corrupted key or "
        "schedule state)");
  }
}

obf::HpnnKey SecureKeyStore::export_key() const {
  if (!provisioned_) {
    throw KeyError("secure key store is not provisioned");
  }
  if (sealed_) {
    throw KeyError("secure key store is sealed; key export forbidden");
  }
  return key_;
}

std::uint64_t SecureKeyStore::export_schedule_seed() const {
  if (!provisioned_) {
    throw KeyError("secure key store is not provisioned");
  }
  if (sealed_) {
    throw KeyError("secure key store is sealed; schedule export forbidden");
  }
  return scheduler_->seed();
}

bool SecureKeyStore::key_bit(std::size_t i) const {
  HPNN_CHECK(provisioned_, "key store not provisioned");
  return key_.bit(i);
}

const obf::Scheduler& SecureKeyStore::scheduler() const {
  HPNN_CHECK(provisioned_, "key store not provisioned");
  return *scheduler_;
}

}  // namespace hpnn::hw
