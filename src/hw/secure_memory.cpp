#include "hw/secure_memory.hpp"

#include "core/error.hpp"

namespace hpnn::hw {

void SecureKeyStore::provision(const obf::HpnnKey& key,
                               std::uint64_t schedule_seed,
                               obf::SchedulePolicy policy) {
  if (provisioned_) {
    throw KeyError("secure key store is already provisioned");
  }
  key_ = key;
  scheduler_ = std::make_unique<obf::Scheduler>(schedule_seed, policy);
  provisioned_ = true;
}

obf::HpnnKey SecureKeyStore::export_key() const {
  if (!provisioned_) {
    throw KeyError("secure key store is not provisioned");
  }
  if (sealed_) {
    throw KeyError("secure key store is sealed; key export forbidden");
  }
  return key_;
}

std::uint64_t SecureKeyStore::export_schedule_seed() const {
  if (!provisioned_) {
    throw KeyError("secure key store is not provisioned");
  }
  if (sealed_) {
    throw KeyError("secure key store is sealed; schedule export forbidden");
  }
  return scheduler_->seed();
}

bool SecureKeyStore::key_bit(std::size_t i) const {
  HPNN_CHECK(provisioned_, "key store not provisioned");
  return key_.bit(i);
}

const obf::Scheduler& SecureKeyStore::scheduler() const {
  HPNN_CHECK(provisioned_, "key store not provisioned");
  return *scheduler_;
}

}  // namespace hpnn::hw
