// Energy model of the keyed MMU (companion to the gate/cycle overhead model
// of overhead.hpp).
//
// Constants follow the widely used 45 nm estimates of Horowitz, "Computing's
// energy problem (and what we can do about it)", ISSCC 2014: an 8-bit
// multiply ~0.2 pJ, a 32-bit add ~0.1 pJ, SRAM access ~1.25 pJ/byte for
// small arrays. An XOR gate toggling costs a small fraction of a full-adder
// bit; the headline result is that the locking energy is a vanishing
// fraction of inference energy — the energy-side counterpart of the paper's
// < 0.5% area and zero-cycle claims.
#pragma once

#include "hw/mmu.hpp"

namespace hpnn::hw {

struct EnergyModel {
  double mult_8b_pj = 0.2;     // one int8 x int8 multiply
  double add_32b_pj = 0.1;     // one 32-bit accumulate
  double sram_byte_pj = 1.25;  // on-chip buffer access per byte
  /// One XOR gate toggle. Derived from Horowitz's 8-bit add (0.03 pJ over
  /// ~50 gate equivalents -> ~0.6 fJ/gate).
  double xor_bit_pj = 0.0006;
};

struct EnergyReport {
  double mac_pj = 0.0;          // multiplies + accumulates
  double weight_traffic_pj = 0.0;  // weight tile loads from the buffer
  double locking_pj = 0.0;      // the 16-XOR bank + carry-in activity

  double total_pj() const {
    return mac_pj + weight_traffic_pj + locking_pj;
  }
  /// Locking energy as a fraction of everything else.
  double locking_overhead() const {
    const double base = mac_pj + weight_traffic_pj;
    return base > 0.0 ? locking_pj / base : 0.0;
  }
};

/// Estimates inference energy from MMU counters. The locked-MAC count is
/// approximated as mac_ops * (locked_outputs / outputs) — exact when every
/// GEMM call has a uniform contraction depth, which holds for our layer-
/// by-layer execution.
EnergyReport estimate_energy(const MmuStats& stats,
                             const EnergyModel& model = {});

}  // namespace hpnn::hw
