#include "hw/accumulator.hpp"

#include "hw/adder.hpp"

namespace hpnn::hw {

void KeyedAccumulator::accumulate(std::int16_t product) {
  if (fidelity_ == Fidelity::kBitAccurate) {
    acc_ = static_cast<std::uint32_t>(keyed_accumulate_bitlevel(
        acc_, product, key_bit_, kWidth));
    return;
  }
  // Fast path: same arithmetic with native ops (wrap-around on overflow,
  // matching the 32-bit register). Verified equivalent to the bit-level
  // path by tests.
  const auto p = static_cast<std::int32_t>(product);
  const auto cur = static_cast<std::int32_t>(acc_);
  const std::int32_t next =
      key_bit_ ? static_cast<std::int32_t>(
                     static_cast<std::uint32_t>(cur) -
                     static_cast<std::uint32_t>(p))
               : static_cast<std::int32_t>(
                     static_cast<std::uint32_t>(cur) +
                     static_cast<std::uint32_t>(p));
  acc_ = static_cast<std::uint32_t>(next);
}

}  // namespace hpnn::hw
