#include "hw/buffer.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace hpnn::hw {

UnifiedBuffer::UnifiedBuffer(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  HPNN_CHECK(capacity_bytes > 0, "buffer capacity must be positive");
}

const std::map<std::string, std::int64_t>::const_iterator
UnifiedBuffer::find_checked(const std::string& name) const {
  const auto it = regions_.find(name);
  HPNN_CHECK(it != regions_.end(), "buffer: unknown region '" + name + "'");
  return it;
}

void UnifiedBuffer::alloc(const std::string& name, std::int64_t bytes) {
  HPNN_CHECK(bytes > 0, "buffer: allocation must be positive");
  HPNN_CHECK(regions_.count(name) == 0,
             "buffer: region '" + name + "' already allocated");
  HPNN_CHECK(in_use_ + bytes <= capacity_,
             "buffer: out of capacity allocating '" + name + "' (" +
                 std::to_string(bytes) + " bytes, " +
                 std::to_string(capacity_ - in_use_) + " free)");
  regions_[name] = bytes;
  in_use_ += bytes;
  peak_ = std::max(peak_, in_use_);
}

void UnifiedBuffer::free(const std::string& name) {
  const auto it = find_checked(name);
  in_use_ -= it->second;
  regions_.erase(name);
}

std::int64_t UnifiedBuffer::size_of(const std::string& name) const {
  return find_checked(name)->second;
}

void UnifiedBuffer::record_read(const std::string& name,
                                std::uint64_t bytes) {
  (void)find_checked(name);
  bytes_read_ += bytes;
}

void UnifiedBuffer::record_write(const std::string& name,
                                 std::uint64_t bytes) {
  (void)find_checked(name);
  bytes_written_ += bytes;
}

void UnifiedBuffer::reset() {
  regions_.clear();
  in_use_ = 0;
  peak_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
}

}  // namespace hpnn::hw
