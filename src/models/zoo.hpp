// Network builders for the paper's Table I architectures and ResNet18.
//
// Channel counts are chosen so the number of neurons in nonlinear (ReLU)
// layers matches Table I exactly at the native image resolutions:
//   CNN1 @ 28x28: conv(6,5x5) + conv(14,5x5)        -> 3456 + 896   = 4352
//   CNN2 @ 32x32: VGG-ish 64/64/96/96/128/128 + FCs -> 196608 + 1536 = 198144
//   CNN3 @ 32x32: conv 24/16/14 + FC128             -> 29568 + 128  = 29696
//
// Every nonlinear activation is created through an ActivationFactory, which
// is how the HPNN framework swaps plain ReLUs for key-locked activations
// without touching the builders.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "nn/residual.hpp"

namespace hpnn::models {

/// Creates the activation module for a nonlinear layer.
/// `name` is unique within the model; `act_shape` is the per-sample shape of
/// the activation ({C, H, W} after a conv, {F} after a linear layer).
using ActivationFactory = std::function<std::unique_ptr<nn::Module>(
    const std::string& name, const Shape& act_shape)>;

/// Factory producing plain (baseline) ReLUs.
ActivationFactory plain_relu_factory();

/// CNN1/CNN2/CNN3 and ResNet18 are the paper's evaluation networks; MLP and
/// LeNet5 are additional zoo members exercising the same locking machinery
/// (fully-connected-only and classic-CNN topologies respectively).
enum class Architecture { kCnn1, kCnn2, kCnn3, kResNet18, kMlp, kLeNet5 };

/// "CNN1", "CNN2", "CNN3", "ResNet18", "MLP", "LeNet5".
std::string arch_name(Architecture arch);

/// Parses an arch_name() string; throws Error on unknown names.
Architecture arch_from_name(const std::string& name);

/// All architectures in the zoo (for parameterized tests / CLI listings).
std::vector<Architecture> all_architectures();

struct ModelConfig {
  std::int64_t in_channels = 1;
  std::int64_t image_size = 28;
  std::int64_t num_classes = 10;
  std::uint64_t init_seed = 1;
  /// Scales every channel/feature count (floor, min 1). The default CPU-scale
  /// benches use < 1.0; 1.0 matches the paper-neuron-count topologies.
  double width_mult = 1.0;
  /// Activation factory; nullptr selects plain ReLU.
  ActivationFactory activation;
};

/// Builds the requested architecture. Throws ShapeError if image_size is too
/// small for the architecture's pooling pyramid.
std::unique_ptr<nn::Sequential> build(Architecture arch,
                                      const ModelConfig& config);

/// Total neurons in nonlinear layers (what Table I column 3 counts) for a
/// given architecture/config, without building the network.
std::int64_t locked_neuron_count(Architecture arch, const ModelConfig& config);

/// Copies all parameter values from `src` into `dst`; the two models must
/// have identical parameter lists (same architecture/config). This is how
/// the attacker loads stolen weights into the baseline architecture.
void copy_parameters(nn::Module& src, nn::Module& dst);

}  // namespace hpnn::models
