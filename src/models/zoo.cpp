#include "models/zoo.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn::models {

namespace {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::Linear;
using nn::MaxPool2d;
using nn::ReLU;
using nn::Residual;
using nn::Sequential;

std::unique_ptr<nn::Module> default_act(const std::string& name,
                                        const Shape&) {
  return std::make_unique<ReLU>(name);
}

/// Tracks spatial geometry while stacking layers into a Sequential.
struct Builder {
  Sequential& net;
  const ModelConfig& cfg;
  Rng rng;
  std::int64_t c;
  std::int64_t h;
  std::int64_t w;
  int act_index = 0;

  Builder(Sequential& n, const ModelConfig& config)
      : net(n),
        cfg(config),
        rng(config.init_seed),
        c(config.in_channels),
        h(config.image_size),
        w(config.image_size) {}

  std::int64_t scaled(std::int64_t base) const {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(base * cfg.width_mult));
  }

  void conv(std::int64_t out_ch, std::int64_t kernel, std::int64_t stride,
            std::int64_t padding, const std::string& name, bool bias = true) {
    ops::Conv2dGeometry g{c, h, w, kernel, stride, padding};
    const std::int64_t oh = g.out_h();
    const std::int64_t ow = g.out_w();
    if (oh <= 0 || ow <= 0) {
      throw ShapeError("image too small for " + name + " at " +
                       std::to_string(h) + "x" + std::to_string(w));
    }
    net.add(std::make_unique<Conv2d>(g, out_ch, rng, name, bias));
    c = out_ch;
    h = oh;
    w = ow;
  }

  void act() {
    const std::string name = "act" + std::to_string(++act_index);
    const auto& factory = cfg.activation ? cfg.activation : default_act;
    net.add(factory(name, Shape{c, h, w}));
  }

  void act_flat(std::int64_t features) {
    const std::string name = "act" + std::to_string(++act_index);
    const auto& factory = cfg.activation ? cfg.activation : default_act;
    net.add(factory(name, Shape{features}));
  }

  void pool(std::int64_t kernel, std::int64_t stride,
            const std::string& name) {
    if (h < kernel || w < kernel) {
      throw ShapeError("image too small for " + name + " at " +
                       std::to_string(h) + "x" + std::to_string(w));
    }
    const std::int64_t oh = (h - kernel) / stride + 1;
    const std::int64_t ow = (w - kernel) / stride + 1;
    net.add(std::make_unique<MaxPool2d>(kernel, stride, name));
    h = oh;
    w = ow;
  }

  void flatten() {
    net.add(std::make_unique<Flatten>());
    c = c * h * w;
    h = w = 1;
  }

  void fc(std::int64_t out_features, const std::string& name) {
    net.add(std::make_unique<Linear>(c, out_features, rng, name));
    c = out_features;
  }

  void bn(const std::string& name) {
    net.add(std::make_unique<BatchNorm2d>(c, name));
  }
};

void build_cnn1(Builder& b) {
  b.conv(b.scaled(6), 5, 1, 0, "conv1");
  b.act();
  b.pool(2, 2, "pool1");
  b.conv(b.scaled(14), 5, 1, 0, "conv2");
  b.act();
  b.pool(2, 2, "pool2");
  b.flatten();
  b.fc(b.cfg.num_classes, "fc1");
}

void build_cnn2(Builder& b) {
  const std::int64_t widths[3] = {b.scaled(64), b.scaled(96), b.scaled(128)};
  int conv_id = 0;
  for (int stage = 0; stage < 3; ++stage) {
    for (int rep = 0; rep < 2; ++rep) {
      b.conv(widths[stage], 3, 1, 1, "conv" + std::to_string(++conv_id));
      b.act();
    }
    b.pool(2, 2, "pool" + std::to_string(stage + 1));
  }
  b.flatten();
  b.fc(b.scaled(1024), "fc1");
  b.act_flat(b.c);
  b.fc(b.scaled(512), "fc2");
  b.act_flat(b.c);
  b.fc(b.cfg.num_classes, "fc3");
}

void build_cnn3(Builder& b) {
  const std::int64_t widths[3] = {b.scaled(24), b.scaled(16), b.scaled(14)};
  for (int stage = 0; stage < 3; ++stage) {
    b.conv(widths[stage], 3, 1, 1, "conv" + std::to_string(stage + 1));
    b.act();
    b.pool(2, 2, "pool" + std::to_string(stage + 1));
  }
  b.flatten();
  b.fc(b.scaled(128), "fc1");
  b.act_flat(b.c);
  b.fc(b.cfg.num_classes, "fc2");
}

/// 3-hidden-layer multilayer perceptron (all nonlinearities locked).
void build_mlp(Builder& b) {
  b.flatten();
  const std::int64_t widths[3] = {b.scaled(256), b.scaled(128), b.scaled(64)};
  for (int i = 0; i < 3; ++i) {
    b.fc(widths[i], "fc" + std::to_string(i + 1));
    b.act_flat(b.c);
  }
  b.fc(b.cfg.num_classes, "fc4");
}

/// Classic LeNet-5 (ReLU variant): C5x6 -> pool -> C5x16 -> pool ->
/// FC120 -> FC84 -> FC10.
void build_lenet5(Builder& b) {
  b.conv(b.scaled(6), 5, 1, 2, "conv1");
  b.act();
  b.pool(2, 2, "pool1");
  b.conv(b.scaled(16), 5, 1, 0, "conv2");
  b.act();
  b.pool(2, 2, "pool2");
  b.flatten();
  b.fc(b.scaled(120), "fc1");
  b.act_flat(b.c);
  b.fc(b.scaled(84), "fc2");
  b.act_flat(b.c);
  b.fc(b.cfg.num_classes, "fc3");
}

/// CIFAR-style ResNet18: 3x3 stem (no initial maxpool), 4 stages of 2 basic
/// blocks with widths 64/128/256/512, global average pooling head.
void build_resnet18(Builder& b) {
  const auto& factory = b.cfg.activation ? b.cfg.activation : default_act;
  b.conv(b.scaled(64), 3, 1, 1, "stem.conv", /*bias=*/false);
  b.bn("stem.bn");
  b.act();

  const std::int64_t stage_width[4] = {b.scaled(64), b.scaled(128),
                                       b.scaled(256), b.scaled(512)};
  const std::int64_t stage_stride[4] = {1, 2, 2, 2};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      const std::int64_t stride = (block == 0) ? stage_stride[stage] : 1;
      const std::int64_t out_ch = stage_width[stage];
      const std::string prefix =
          "s" + std::to_string(stage + 1) + "b" + std::to_string(block + 1);

      const std::int64_t in_ch = b.c;
      const std::int64_t in_h = b.h;
      const std::int64_t in_w = b.w;
      const std::int64_t out_h = (in_h + 2 - 3) / stride + 1;
      const std::int64_t out_w = (in_w + 2 - 3) / stride + 1;
      if (out_h <= 0 || out_w <= 0) {
        throw ShapeError("image too small for ResNet18 block " + prefix);
      }

      auto main = std::make_unique<Sequential>(prefix + ".main");
      main->add(std::make_unique<Conv2d>(
          ops::Conv2dGeometry{in_ch, in_h, in_w, 3, stride, 1}, out_ch, b.rng,
          prefix + ".conv1", false));
      main->add(std::make_unique<BatchNorm2d>(out_ch, prefix + ".bn1"));
      main->add(factory("act" + std::to_string(++b.act_index),
                        Shape{out_ch, out_h, out_w}));
      main->add(std::make_unique<Conv2d>(
          ops::Conv2dGeometry{out_ch, out_h, out_w, 3, 1, 1}, out_ch, b.rng,
          prefix + ".conv2", false));
      main->add(std::make_unique<BatchNorm2d>(out_ch, prefix + ".bn2"));

      std::unique_ptr<nn::Module> shortcut;
      if (stride != 1 || in_ch != out_ch) {
        auto sc = std::make_unique<Sequential>(prefix + ".shortcut");
        sc->add(std::make_unique<Conv2d>(
            ops::Conv2dGeometry{in_ch, in_h, in_w, 1, stride, 0}, out_ch,
            b.rng, prefix + ".proj", false));
        sc->add(std::make_unique<BatchNorm2d>(out_ch, prefix + ".proj_bn"));
        shortcut = std::move(sc);
      }

      auto post = factory("act" + std::to_string(++b.act_index),
                          Shape{out_ch, out_h, out_w});
      b.net.add(std::make_unique<Residual>(std::move(main),
                                           std::move(shortcut),
                                           std::move(post), prefix));
      b.c = out_ch;
      b.h = out_h;
      b.w = out_w;
    }
  }
  b.net.add(std::make_unique<GlobalAvgPool>());
  b.h = b.w = 1;
  b.fc(b.cfg.num_classes, "fc");
}

}  // namespace

ActivationFactory plain_relu_factory() {
  return [](const std::string& name, const Shape&) {
    return std::make_unique<ReLU>(name);
  };
}

std::string arch_name(Architecture arch) {
  switch (arch) {
    case Architecture::kCnn1:
      return "CNN1";
    case Architecture::kCnn2:
      return "CNN2";
    case Architecture::kCnn3:
      return "CNN3";
    case Architecture::kResNet18:
      return "ResNet18";
    case Architecture::kMlp:
      return "MLP";
    case Architecture::kLeNet5:
      return "LeNet5";
  }
  return "unknown";
}

Architecture arch_from_name(const std::string& name) {
  for (const auto arch : all_architectures()) {
    if (arch_name(arch) == name) {
      return arch;
    }
  }
  throw Error("unknown architecture name: " + name);
}

std::vector<Architecture> all_architectures() {
  return {Architecture::kCnn1, Architecture::kCnn2,  Architecture::kCnn3,
          Architecture::kResNet18, Architecture::kMlp, Architecture::kLeNet5};
}

std::unique_ptr<nn::Sequential> build(Architecture arch,
                                      const ModelConfig& config) {
  HPNN_CHECK(config.in_channels > 0 && config.image_size > 0 &&
                 config.num_classes > 0,
             "invalid model config");
  auto net = std::make_unique<nn::Sequential>(arch_name(arch));
  Builder b(*net, config);
  switch (arch) {
    case Architecture::kCnn1:
      build_cnn1(b);
      break;
    case Architecture::kCnn2:
      build_cnn2(b);
      break;
    case Architecture::kCnn3:
      build_cnn3(b);
      break;
    case Architecture::kResNet18:
      build_resnet18(b);
      break;
    case Architecture::kMlp:
      build_mlp(b);
      break;
    case Architecture::kLeNet5:
      build_lenet5(b);
      break;
  }
  return net;
}

std::int64_t locked_neuron_count(Architecture arch,
                                 const ModelConfig& config) {
  std::int64_t total = 0;
  ModelConfig counting = config;
  counting.activation = [&total](const std::string& name, const Shape& s) {
    total += s.numel();
    return std::make_unique<ReLU>(name);
  };
  (void)build(arch, counting);
  return total;
}

void copy_parameters(nn::Module& src, nn::Module& dst) {
  const auto sp = nn::parameters_of(src);
  const auto dp = nn::parameters_of(dst);
  HPNN_CHECK(sp.size() == dp.size(),
             "copy_parameters: parameter count mismatch (" +
                 std::to_string(sp.size()) + " vs " +
                 std::to_string(dp.size()) + ")");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    HPNN_CHECK(sp[i]->value.shape() == dp[i]->value.shape(),
               "copy_parameters: shape mismatch at " + sp[i]->name);
    dp[i]->assign_value(sp[i]->value);
  }
  const auto sb = nn::buffers_of(src);
  const auto db = nn::buffers_of(dst);
  HPNN_CHECK(sb.size() == db.size(), "copy_parameters: buffer count mismatch");
  for (std::size_t i = 0; i < sb.size(); ++i) {
    HPNN_CHECK(sb[i].second->shape() == db[i].second->shape(),
               "copy_parameters: buffer shape mismatch at " + sb[i].first);
    *db[i].second = *sb[i].second;
  }
}

}  // namespace hpnn::models
