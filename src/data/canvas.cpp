#include "data/canvas.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn::data {

Canvas::Canvas(std::int64_t channels, std::int64_t height, std::int64_t width,
               const Color& background)
    : c_(channels), h_(height), w_(width) {
  HPNN_CHECK(channels == 1 || channels == 3,
             "Canvas supports 1 or 3 channels");
  HPNN_CHECK(height > 0 && width > 0, "Canvas dims must be positive");
  pix_.assign(static_cast<std::size_t>(c_ * h_ * w_), 0.0f);
  const float bg[3] = {background.r, background.g, background.b};
  for (std::int64_t ch = 0; ch < c_; ++ch) {
    std::fill(pix_.begin() + ch * h_ * w_, pix_.begin() + (ch + 1) * h_ * w_,
              bg[ch]);
  }
}

float& Canvas::at(std::int64_t ch, std::int64_t y, std::int64_t x) {
  return pix_[static_cast<std::size_t>((ch * h_ + y) * w_ + x)];
}

void Canvas::blend_pixel(std::int64_t y, std::int64_t x, const Color& color,
                         float intensity) {
  if (y < 0 || y >= h_ || x < 0 || x >= w_) {
    return;
  }
  const float v[3] = {color.r * intensity, color.g * intensity,
                      color.b * intensity};
  for (std::int64_t ch = 0; ch < c_; ++ch) {
    float& p = at(ch, y, x);
    p = std::clamp(std::max(p, v[ch]), 0.0f, 1.0f);
  }
}

void Canvas::set_pixel(std::int64_t y, std::int64_t x, const Color& color) {
  if (y < 0 || y >= h_ || x < 0 || x >= w_) {
    return;
  }
  const float v[3] = {color.r, color.g, color.b};
  for (std::int64_t ch = 0; ch < c_; ++ch) {
    at(ch, y, x) = std::clamp(v[ch], 0.0f, 1.0f);
  }
}

void Canvas::fill_rect(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                       std::int64_t x1, const Color& color, float intensity) {
  for (std::int64_t y = std::max<std::int64_t>(y0, 0);
       y < std::min(y1, h_); ++y) {
    for (std::int64_t x = std::max<std::int64_t>(x0, 0);
         x < std::min(x1, w_); ++x) {
      blend_pixel(y, x, color, intensity);
    }
  }
}

void Canvas::fill_ellipse(double cy, double cx, double ry, double rx,
                          const Color& color, float intensity) {
  if (ry <= 0.0 || rx <= 0.0) {
    return;
  }
  const auto y0 = static_cast<std::int64_t>(std::floor(cy - ry));
  const auto y1 = static_cast<std::int64_t>(std::ceil(cy + ry));
  const auto x0 = static_cast<std::int64_t>(std::floor(cx - rx));
  const auto x1 = static_cast<std::int64_t>(std::ceil(cx + rx));
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      const double dy = (y - cy) / ry;
      const double dx = (x - cx) / rx;
      if (dy * dy + dx * dx <= 1.0) {
        blend_pixel(y, x, color, intensity);
      }
    }
  }
}

void Canvas::fill_ring(double cy, double cx, double ry, double rx,
                       double inner, const Color& color, float intensity) {
  if (ry <= 0.0 || rx <= 0.0) {
    return;
  }
  const auto y0 = static_cast<std::int64_t>(std::floor(cy - ry));
  const auto y1 = static_cast<std::int64_t>(std::ceil(cy + ry));
  const auto x0 = static_cast<std::int64_t>(std::floor(cx - rx));
  const auto x1 = static_cast<std::int64_t>(std::ceil(cx + rx));
  const double inner2 = inner * inner;
  for (std::int64_t y = y0; y <= y1; ++y) {
    for (std::int64_t x = x0; x <= x1; ++x) {
      const double dy = (y - cy) / ry;
      const double dx = (x - cx) / rx;
      const double d2 = dy * dy + dx * dx;
      if (d2 <= 1.0 && d2 >= inner2) {
        blend_pixel(y, x, color, intensity);
      }
    }
  }
}

void Canvas::fill_triangle(std::array<double, 3> ys, std::array<double, 3> xs,
                           const Color& color, float intensity) {
  const double ymin = std::min({ys[0], ys[1], ys[2]});
  const double ymax = std::max({ys[0], ys[1], ys[2]});
  const double xmin = std::min({xs[0], xs[1], xs[2]});
  const double xmax = std::max({xs[0], xs[1], xs[2]});
  const auto edge = [](double ay, double ax, double by, double bx, double py,
                       double px) {
    return (bx - ax) * (py - ay) - (by - ay) * (px - ax);
  };
  for (auto y = static_cast<std::int64_t>(std::floor(ymin));
       y <= static_cast<std::int64_t>(std::ceil(ymax)); ++y) {
    for (auto x = static_cast<std::int64_t>(std::floor(xmin));
         x <= static_cast<std::int64_t>(std::ceil(xmax)); ++x) {
      const double py = y + 0.5;
      const double px = x + 0.5;
      const double e0 = edge(ys[0], xs[0], ys[1], xs[1], py, px);
      const double e1 = edge(ys[1], xs[1], ys[2], xs[2], py, px);
      const double e2 = edge(ys[2], xs[2], ys[0], xs[0], py, px);
      const bool all_nonneg = e0 >= 0 && e1 >= 0 && e2 >= 0;
      const bool all_nonpos = e0 <= 0 && e1 <= 0 && e2 <= 0;
      if (all_nonneg || all_nonpos) {
        blend_pixel(y, x, color, intensity);
      }
    }
  }
}

void Canvas::draw_line(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                       std::int64_t x1, const Color& color, float intensity) {
  const std::int64_t dy = std::abs(y1 - y0);
  const std::int64_t dx = std::abs(x1 - x0);
  const std::int64_t sy = (y0 < y1) ? 1 : -1;
  const std::int64_t sx = (x0 < x1) ? 1 : -1;
  std::int64_t err = dx - dy;
  std::int64_t y = y0;
  std::int64_t x = x0;
  while (true) {
    blend_pixel(y, x, color, intensity);
    if (y == y1 && x == x1) {
      break;
    }
    const std::int64_t e2 = 2 * err;
    if (e2 > -dy) {
      err -= dy;
      x += sx;
    }
    if (e2 < dx) {
      err += dx;
      y += sy;
    }
  }
}

void Canvas::fill_stripes(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                          std::int64_t x1, std::int64_t period, bool vertical,
                          const Color& color, float intensity) {
  HPNN_CHECK(period >= 2, "stripe period must be >= 2");
  for (std::int64_t y = std::max<std::int64_t>(y0, 0);
       y < std::min(y1, h_); ++y) {
    for (std::int64_t x = std::max<std::int64_t>(x0, 0);
         x < std::min(x1, w_); ++x) {
      const std::int64_t phase = vertical ? x : y;
      if ((phase % period) < period / 2) {
        blend_pixel(y, x, color, intensity);
      }
    }
  }
}

}  // namespace hpnn::data
