#include "data/augment.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace hpnn::data {

namespace {

/// Shifts a CHW image by (dy, dx) with zero fill.
void shift_image(Tensor& img, std::int64_t dy, std::int64_t dx) {
  if (dy == 0 && dx == 0) {
    return;
  }
  const std::int64_t c = img.dim(0);
  const std::int64_t h = img.dim(1);
  const std::int64_t w = img.dim(2);
  Tensor out(img.shape());
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = y - dy;
      if (sy < 0 || sy >= h) {
        continue;
      }
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = x - dx;
        if (sx >= 0 && sx < w) {
          out.at((ch * h + y) * w + x) = img.at((ch * h + sy) * w + sx);
        }
      }
    }
  }
  img = std::move(out);
}

void hflip_image(Tensor& img) {
  const std::int64_t c = img.dim(0);
  const std::int64_t h = img.dim(1);
  const std::int64_t w = img.dim(2);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w / 2; ++x) {
        std::swap(img.at((ch * h + y) * w + x),
                  img.at((ch * h + y) * w + (w - 1 - x)));
      }
    }
  }
}

void erase_patch(Tensor& img, double fraction, Rng& rng) {
  const std::int64_t c = img.dim(0);
  const std::int64_t h = img.dim(1);
  const std::int64_t w = img.dim(2);
  const auto ph = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(fraction * static_cast<double>(h)));
  const auto pw = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(fraction * static_cast<double>(w)));
  const auto y0 = static_cast<std::int64_t>(
      rng.uniform_index(static_cast<std::uint64_t>(h - ph + 1)));
  const auto x0 = static_cast<std::int64_t>(
      rng.uniform_index(static_cast<std::uint64_t>(w - pw + 1)));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t y = y0; y < y0 + ph; ++y) {
      for (std::int64_t x = x0; x < x0 + pw; ++x) {
        img.at((ch * h + y) * w + x) = 0.0f;
      }
    }
  }
}

}  // namespace

void augment_sample(Tensor& sample, const AugmentConfig& config, Rng& rng) {
  HPNN_CHECK(sample.rank() == 3, "augment_sample expects a CHW image");
  if (config.shift_pixels > 0) {
    const std::int64_t range = 2 * config.shift_pixels + 1;
    const auto dy = static_cast<std::int64_t>(rng.uniform_index(
                        static_cast<std::uint64_t>(range))) -
                    config.shift_pixels;
    const auto dx = static_cast<std::int64_t>(rng.uniform_index(
                        static_cast<std::uint64_t>(range))) -
                    config.shift_pixels;
    shift_image(sample, dy, dx);
  }
  if (config.hflip_prob > 0.0 && rng.bernoulli(config.hflip_prob)) {
    hflip_image(sample);
  }
  if (config.erase_prob > 0.0 && rng.bernoulli(config.erase_prob)) {
    erase_patch(sample, config.erase_fraction, rng);
  }
  if (config.noise_stddev > 0.0) {
    for (auto& v : sample.span()) {
      v += static_cast<float>(rng.normal(0.0, config.noise_stddev));
    }
  }
}

Dataset augment_dataset(const Dataset& d, const AugmentConfig& config,
                        std::uint64_t seed) {
  d.validate();
  Rng rng(seed);
  Dataset out;
  out.name = d.name + "-aug";
  out.num_classes = d.num_classes;
  out.labels = d.labels;
  out.images = d.images;
  const std::int64_t n = d.size();
  const std::int64_t c = d.channels();
  const std::int64_t h = d.height();
  const std::int64_t w = d.width();
  const std::int64_t sample = c * h * w;
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor img(Shape{c, h, w},
               std::vector<float>(out.images.data() + i * sample,
                                  out.images.data() + (i + 1) * sample));
    augment_sample(img, config, rng);
    std::copy(img.data(), img.data() + sample,
              out.images.data() + i * sample);
  }
  return out;
}

Dataset concat(const Dataset& a, const Dataset& b) {
  a.validate();
  b.validate();
  HPNN_CHECK(a.num_classes == b.num_classes && a.channels() == b.channels() &&
                 a.height() == b.height() && a.width() == b.width(),
             "concat: dataset shape mismatch");
  Dataset out;
  out.name = a.name + "+" + b.name;
  out.num_classes = a.num_classes;
  std::vector<std::int64_t> dims = a.images.shape().dims();
  dims[0] = a.size() + b.size();
  out.images = Tensor{Shape(dims)};
  std::copy(a.images.data(), a.images.data() + a.images.numel(),
            out.images.data());
  std::copy(b.images.data(), b.images.data() + b.images.numel(),
            out.images.data() + a.images.numel());
  out.labels = a.labels;
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

}  // namespace hpnn::data
