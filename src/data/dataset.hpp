// Labeled image dataset container and sampling utilities.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace hpnn::data {

/// An in-memory labeled image set. Images are NCHW float32 in roughly
/// [-0.5, 0.5] (generator-standardized).
struct Dataset {
  std::string name;
  Tensor images;                        // [N, C, H, W]
  std::vector<std::int64_t> labels;     // N entries in [0, num_classes)
  std::int64_t num_classes = 0;

  std::int64_t size() const { return images.rank() > 0 ? images.dim(0) : 0; }
  std::int64_t channels() const { return images.dim(1); }
  std::int64_t height() const { return images.dim(2); }
  std::int64_t width() const { return images.dim(3); }

  /// Throws InvariantError if labels/images are inconsistent.
  void validate() const;
};

/// Train/test pair produced by the generators.
struct SplitDataset {
  Dataset train;
  Dataset test;
};

/// Returns the subset of `d` at the given sample indices.
Dataset subset(const Dataset& d, const std::vector<std::size_t>& indices);

/// The attacker's *thief* dataset: a class-stratified random fraction
/// `alpha` (0 < alpha <= 1) of the training data (Sec. IV-B of the paper).
/// alpha == 0 returns an empty dataset (the paper's α=0% point in Fig. 7).
Dataset thief_subset(const Dataset& d, double alpha, Rng& rng);

/// Per-class sample counts (length num_classes).
std::vector<std::int64_t> class_histogram(const Dataset& d);

/// Binary dataset serialization (".hpds"): magic + name + classes + image
/// tensor + labels. Read paths validate and throw SerializationError on
/// corruption.
void save_dataset(std::ostream& os, const Dataset& d);
Dataset load_dataset(std::istream& is);
void save_dataset_file(const std::string& path, const Dataset& d);
Dataset load_dataset_file(const std::string& path);

}  // namespace hpnn::data
