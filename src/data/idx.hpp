// IDX-format loader (the MNIST/Fashion-MNIST file format).
//
// The repository ships synthetic stand-ins because the real datasets cannot
// be redistributed — but if you have the original files
// (train-images-idx3-ubyte / train-labels-idx1-ubyte etc.), this loader
// turns them into a Dataset so every experiment can be repeated on the real
// Fashion-MNIST. Handles the standard big-endian IDX header, ubyte pixel
// data (normalized and per-sample standardized like the synthetic
// pipeline), and validates sizes throughout.
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace hpnn::data {

/// Parses an IDX3 (images) + IDX1 (labels) pair into a Dataset.
/// `limit` > 0 caps the number of samples read (for quick experiments).
/// Throws SerializationError on malformed input.
Dataset load_idx(std::istream& images, std::istream& labels,
                 const std::string& name, std::int64_t num_classes = 10,
                 std::int64_t limit = 0);

/// File-path convenience.
Dataset load_idx_files(const std::string& images_path,
                       const std::string& labels_path,
                       const std::string& name,
                       std::int64_t num_classes = 10, std::int64_t limit = 0);

/// Writes a Dataset back out as an IDX3/IDX1 pair (grayscale only; pixels
/// are de-standardized to 0-255). Useful for tests and for exporting
/// synthetic data to other toolchains.
void save_idx(std::ostream& images, std::ostream& labels, const Dataset& d);

}  // namespace hpnn::data
