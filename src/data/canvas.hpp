// Tiny software rasterizer used by the synthetic dataset generators.
//
// A Canvas is a C×H×W float image in [0, 1]; drawing primitives blend by
// max (additive light) per channel so overlapping shapes stay in range.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hpnn::data {

/// RGB (or broadcast-gray) color in [0, 1].
struct Color {
  float r = 1.0f, g = 1.0f, b = 1.0f;
  static Color gray(float v) { return {v, v, v}; }
};

class Canvas {
 public:
  Canvas(std::int64_t channels, std::int64_t height, std::int64_t width,
         const Color& background = Color::gray(0.0f));

  std::int64_t channels() const { return c_; }
  std::int64_t height() const { return h_; }
  std::int64_t width() const { return w_; }

  /// Sets a pixel to max(current, color) per channel. Out-of-bounds is a
  /// no-op so primitives can draw partially off-canvas (SVHN-style edge
  /// distractors rely on this).
  void blend_pixel(std::int64_t y, std::int64_t x, const Color& color,
                   float intensity = 1.0f);

  /// Overwrites a pixel (clamped to [0,1]); out-of-bounds is a no-op.
  void set_pixel(std::int64_t y, std::int64_t x, const Color& color);

  /// Axis-aligned filled rectangle [y0, y1) x [x0, x1).
  void fill_rect(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                 std::int64_t x1, const Color& color, float intensity = 1.0f);

  /// Filled ellipse centered at (cy, cx) with radii (ry, rx).
  void fill_ellipse(double cy, double cx, double ry, double rx,
                    const Color& color, float intensity = 1.0f);

  /// Ellipse ring (annulus) with outer radii (ry, rx) and relative inner
  /// radius `inner` in (0, 1).
  void fill_ring(double cy, double cx, double ry, double rx, double inner,
                 const Color& color, float intensity = 1.0f);

  /// Filled triangle with vertices (y_i, x_i).
  void fill_triangle(std::array<double, 3> ys, std::array<double, 3> xs,
                     const Color& color, float intensity = 1.0f);

  /// 1-pixel-wide line from (y0, x0) to (y1, x1) (Bresenham-style).
  void draw_line(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                 std::int64_t x1, const Color& color, float intensity = 1.0f);

  /// Horizontal stripes of given period/duty over the whole canvas region.
  void fill_stripes(std::int64_t y0, std::int64_t x0, std::int64_t y1,
                    std::int64_t x1, std::int64_t period, bool vertical,
                    const Color& color, float intensity = 1.0f);

  /// Raw CHW pixel buffer.
  const std::vector<float>& pixels() const { return pix_; }
  std::vector<float>& pixels() { return pix_; }

 private:
  float& at(std::int64_t ch, std::int64_t y, std::int64_t x);
  std::int64_t c_, h_, w_;
  std::vector<float> pix_;
};

}  // namespace hpnn::data
