// Synthetic stand-ins for the paper's benchmark datasets.
//
// The paper evaluates on Fashion-MNIST, CIFAR-10 and SVHN, none of which can
// be redistributed with this repository. HPNN's claims are about *relative*
// accuracy (locked vs unlocked vs fine-tuned), so any learnable 10-class
// image task with matching tensor shapes exercises the same code paths. We
// provide three procedural generators that mirror the originals' shape and
// flavor (see DESIGN.md §5):
//
//  - FashionSynth  (1×28×28):  grayscale garment-like silhouettes
//  - ColorShapes   (3×32×32):  colored textured objects on cluttered
//                              backgrounds (CIFAR-10 stand-in; hardest)
//  - DigitSynth    (3×32×32):  house-number-style digits with edge
//                              distractors (SVHN stand-in)
//
// All generators are fully deterministic given the config seed.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace hpnn::data {

enum class SyntheticFamily { kFashionSynth, kColorShapes, kDigitSynth };

/// Human-readable name ("FashionSynth", ...).
std::string family_name(SyntheticFamily family);

/// Paper dataset each family stands in for ("Fashion-MNIST", ...).
std::string family_stands_for(SyntheticFamily family);

struct SyntheticConfig {
  std::int64_t train_per_class = 200;
  std::int64_t test_per_class = 40;
  /// 0 selects the family default (28 for FashionSynth, 32 for the others).
  std::int64_t image_size = 0;
  /// Additive pixel-noise standard deviation (difficulty knob). Negative
  /// selects the family default, calibrated so a full-data baseline CNN
  /// lands near the paper's ~89% accuracy: FashionSynth 0.25,
  /// ColorShapes 0.32, DigitSynth 0.15.
  double noise_stddev = -1.0;
  /// Max translation jitter as a fraction of image size. Negative selects
  /// the family default (0.15 / 0.16 / 0.12).
  double jitter = -1.0;
  std::uint64_t seed = 42;
};

/// Number of classes for every family (fixed to match the originals).
inline constexpr std::int64_t kSyntheticClasses = 10;

/// Generates a train/test split for the given family.
SplitDataset make_dataset(SyntheticFamily family,
                          const SyntheticConfig& config);

/// Renders a single sample of `family` class `label` (exposed for tests and
/// the examples; images from make_dataset go through the same path).
Tensor render_sample(SyntheticFamily family, std::int64_t label,
                     std::int64_t image_size, const SyntheticConfig& config,
                     Rng& rng);

}  // namespace hpnn::data
