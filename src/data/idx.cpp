#include "data/idx.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>

#include "core/error.hpp"

namespace hpnn::data {

namespace {

std::uint32_t read_be32(std::istream& is) {
  std::uint8_t bytes[4];
  is.read(reinterpret_cast<char*>(bytes), 4);
  if (is.gcount() != 4) {
    throw SerializationError("IDX: truncated header");
  }
  return (static_cast<std::uint32_t>(bytes[0]) << 24) |
         (static_cast<std::uint32_t>(bytes[1]) << 16) |
         (static_cast<std::uint32_t>(bytes[2]) << 8) |
         static_cast<std::uint32_t>(bytes[3]);
}

void write_be32(std::ostream& os, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  os.write(reinterpret_cast<const char*>(bytes), 4);
}

/// Per-sample standardization matching the synthetic pipeline (zero mean,
/// 0.25 target stddev) so models transfer between real and synthetic data
/// preprocessing.
void standardize(float* sample, std::int64_t n) {
  double mean = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    mean += sample[i];
  }
  mean /= n;
  double var = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    var += (sample[i] - mean) * (sample[i] - mean);
  }
  const auto stddev =
      static_cast<float>(std::sqrt(var / static_cast<double>(n)) + 1e-4);
  for (std::int64_t i = 0; i < n; ++i) {
    sample[i] = (sample[i] - static_cast<float>(mean)) / stddev * 0.25f;
  }
}

}  // namespace

Dataset load_idx(std::istream& images, std::istream& labels,
                 const std::string& name, std::int64_t num_classes,
                 std::int64_t limit) {
  // Image header: 0x00000803 (ubyte, 3 dims), count, rows, cols.
  const std::uint32_t img_magic = read_be32(images);
  if (img_magic != 0x00000803u) {
    throw SerializationError("IDX: bad image magic (expected 0x803)");
  }
  const auto img_count = static_cast<std::int64_t>(read_be32(images));
  const auto rows = static_cast<std::int64_t>(read_be32(images));
  const auto cols = static_cast<std::int64_t>(read_be32(images));
  if (img_count <= 0 || rows <= 0 || cols <= 0 || rows > 4096 ||
      cols > 4096) {
    throw SerializationError("IDX: implausible image dimensions");
  }

  // Label header: 0x00000801 (ubyte, 1 dim), count.
  const std::uint32_t lab_magic = read_be32(labels);
  if (lab_magic != 0x00000801u) {
    throw SerializationError("IDX: bad label magic (expected 0x801)");
  }
  const auto lab_count = static_cast<std::int64_t>(read_be32(labels));
  if (lab_count != img_count) {
    throw SerializationError("IDX: image/label count mismatch");
  }

  const std::int64_t n =
      (limit > 0) ? std::min(limit, img_count) : img_count;
  const std::int64_t sample = rows * cols;

  Dataset d;
  d.name = name;
  d.num_classes = num_classes;
  d.images = Tensor{Shape{n, 1, rows, cols}};
  d.labels.resize(static_cast<std::size_t>(n));

  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(sample));
  for (std::int64_t i = 0; i < n; ++i) {
    images.read(reinterpret_cast<char*>(buffer.data()),
                static_cast<std::streamsize>(buffer.size()));
    if (images.gcount() != static_cast<std::streamsize>(buffer.size())) {
      throw SerializationError("IDX: truncated image data at sample " +
                               std::to_string(i));
    }
    float* dst = d.images.data() + i * sample;
    for (std::int64_t p = 0; p < sample; ++p) {
      dst[p] = static_cast<float>(buffer[static_cast<std::size_t>(p)]) /
               255.0f;
    }
    standardize(dst, sample);

    std::uint8_t label = 0;
    labels.read(reinterpret_cast<char*>(&label), 1);
    if (labels.gcount() != 1) {
      throw SerializationError("IDX: truncated label data at sample " +
                               std::to_string(i));
    }
    if (label >= num_classes) {
      throw SerializationError("IDX: label " + std::to_string(label) +
                               " out of range");
    }
    d.labels[static_cast<std::size_t>(i)] = label;
  }
  d.validate();
  return d;
}

Dataset load_idx_files(const std::string& images_path,
                       const std::string& labels_path,
                       const std::string& name, std::int64_t num_classes,
                       std::int64_t limit) {
  std::ifstream images(images_path, std::ios::binary);
  if (!images) {
    throw SerializationError("cannot open " + images_path);
  }
  std::ifstream labels(labels_path, std::ios::binary);
  if (!labels) {
    throw SerializationError("cannot open " + labels_path);
  }
  return load_idx(images, labels, name, num_classes, limit);
}

void save_idx(std::ostream& images, std::ostream& labels, const Dataset& d) {
  d.validate();
  HPNN_CHECK(d.channels() == 1, "IDX export supports grayscale only");
  const std::int64_t n = d.size();
  const std::int64_t rows = d.height();
  const std::int64_t cols = d.width();
  write_be32(images, 0x00000803u);
  write_be32(images, static_cast<std::uint32_t>(n));
  write_be32(images, static_cast<std::uint32_t>(rows));
  write_be32(images, static_cast<std::uint32_t>(cols));
  write_be32(labels, 0x00000801u);
  write_be32(labels, static_cast<std::uint32_t>(n));

  const std::int64_t sample = rows * cols;
  std::vector<std::uint8_t> buffer(static_cast<std::size_t>(sample));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* src = d.images.data() + i * sample;
    // De-standardize into 0-255 by min-max over the sample (lossy — IDX is
    // ubyte; round-tripping exactly is not a goal, plausibility is).
    float lo = src[0];
    float hi = src[0];
    for (std::int64_t p = 1; p < sample; ++p) {
      lo = std::min(lo, src[p]);
      hi = std::max(hi, src[p]);
    }
    const float range = std::max(hi - lo, 1e-6f);
    for (std::int64_t p = 0; p < sample; ++p) {
      buffer[static_cast<std::size_t>(p)] = static_cast<std::uint8_t>(
          std::clamp((src[p] - lo) / range * 255.0f, 0.0f, 255.0f));
    }
    images.write(reinterpret_cast<const char*>(buffer.data()),
                 static_cast<std::streamsize>(buffer.size()));
    const auto label =
        static_cast<std::uint8_t>(d.labels[static_cast<std::size_t>(i)]);
    labels.write(reinterpret_cast<const char*>(&label), 1);
  }
}

}  // namespace hpnn::data
