#include "data/dataset.hpp"

#include <algorithm>
#include <fstream>

#include "core/error.hpp"
#include "core/serialize.hpp"

namespace hpnn::data {

void Dataset::validate() const {
  HPNN_CHECK(images.rank() == 4, name + ": images must be NCHW");
  HPNN_CHECK(images.dim(0) == static_cast<std::int64_t>(labels.size()),
             name + ": image/label count mismatch");
  HPNN_CHECK(num_classes > 0, name + ": num_classes must be positive");
  for (const auto l : labels) {
    HPNN_CHECK(l >= 0 && l < num_classes, name + ": label out of range");
  }
}

Dataset subset(const Dataset& d, const std::vector<std::size_t>& indices) {
  const std::int64_t sample = d.images.numel() / std::max<std::int64_t>(
                                                     d.images.dim(0), 1);
  std::vector<std::int64_t> dims = d.images.shape().dims();
  dims[0] = static_cast<std::int64_t>(indices.size());

  Dataset out;
  out.name = d.name;
  out.num_classes = d.num_classes;
  out.images = Tensor{Shape(dims)};
  out.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    HPNN_CHECK(indices[i] < d.labels.size(), "subset: index out of range");
    std::copy(
        d.images.data() + static_cast<std::int64_t>(indices[i]) * sample,
        d.images.data() + static_cast<std::int64_t>(indices[i] + 1) * sample,
        out.images.data() + static_cast<std::int64_t>(i) * sample);
    out.labels[i] = d.labels[indices[i]];
  }
  return out;
}

Dataset thief_subset(const Dataset& d, double alpha, Rng& rng) {
  HPNN_CHECK(alpha >= 0.0 && alpha <= 1.0,
             "thief fraction must be within [0, 1]");
  d.validate();

  // Group indices per class, shuffle each group, take ceil(alpha * |group|).
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(d.num_classes));
  for (std::size_t i = 0; i < d.labels.size(); ++i) {
    per_class[static_cast<std::size_t>(d.labels[i])].push_back(i);
  }
  std::vector<std::size_t> chosen;
  for (auto& group : per_class) {
    const auto perm = rng.permutation(group.size());
    const auto take = static_cast<std::size_t>(
        alpha * static_cast<double>(group.size()) + 0.5);
    for (std::size_t i = 0; i < take; ++i) {
      chosen.push_back(group[perm[i]]);
    }
  }
  std::sort(chosen.begin(), chosen.end());
  Dataset out = subset(d, chosen);
  out.name = d.name + "-thief";
  return out;
}

std::vector<std::int64_t> class_histogram(const Dataset& d) {
  std::vector<std::int64_t> hist(static_cast<std::size_t>(d.num_classes), 0);
  for (const auto l : d.labels) {
    ++hist[static_cast<std::size_t>(l)];
  }
  return hist;
}

namespace {
constexpr std::uint32_t kDatasetMagic = 0x4850'4453u;  // "HPDS"
}

void save_dataset(std::ostream& os, const Dataset& d) {
  d.validate();
  BinaryWriter w(os);
  w.write_u32(kDatasetMagic);
  w.write_string(d.name);
  w.write_i64(d.num_classes);
  w.write_i64_vector(d.images.shape().dims());
  w.write_f32_vector(std::vector<float>(
      d.images.data(), d.images.data() + d.images.numel()));
  w.write_i64_vector(d.labels);
}

Dataset load_dataset(std::istream& is) {
  BinaryReader r(is);
  if (r.read_u32() != kDatasetMagic) {
    throw SerializationError("not an HPNN dataset file (bad magic)");
  }
  Dataset d;
  d.name = r.read_string();
  d.num_classes = r.read_i64();
  const Shape shape{r.read_i64_vector()};
  auto values = r.read_f32_vector();
  if (shape.rank() != 4 ||
      static_cast<std::int64_t>(values.size()) != shape.numel()) {
    throw SerializationError("corrupt dataset image tensor");
  }
  d.images = Tensor(shape, std::move(values));
  d.labels = r.read_i64_vector();
  try {
    d.validate();
  } catch (const Error& e) {
    throw SerializationError(std::string("corrupt dataset: ") + e.what());
  }
  return d;
}

void save_dataset_file(const std::string& path, const Dataset& d) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw SerializationError("cannot open " + path + " for writing");
  }
  save_dataset(os, d);
}

Dataset load_dataset_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SerializationError("cannot open " + path);
  }
  return load_dataset(is);
}

}  // namespace hpnn::data
