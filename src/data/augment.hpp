// Training-time data augmentation.
//
// The owner trains with far more compute and data than the attacker; the
// augmentation pipeline widens that gap (and is the standard tool DL model
// owners use on Fashion-MNIST/CIFAR-class data). Used by the examples and
// available to the benches via OwnerTrainOptions-style wiring.
#pragma once

#include <cstdint>

#include "core/rng.hpp"
#include "data/dataset.hpp"

namespace hpnn::data {

struct AugmentConfig {
  /// Max shift of the random crop, in pixels (0 disables).
  std::int64_t shift_pixels = 2;
  /// Probability of horizontal mirroring (set 0 for digit datasets!).
  double hflip_prob = 0.5;
  /// Stddev of additive pixel noise (0 disables).
  double noise_stddev = 0.02;
  /// Probability of erasing a random small rectangle (cutout-style).
  double erase_prob = 0.25;
  /// Erased patch size as a fraction of the image side.
  double erase_fraction = 0.25;
};

/// Augments a single CHW sample in place.
void augment_sample(Tensor& sample, const AugmentConfig& config, Rng& rng);

/// Returns an augmented copy of a whole dataset (labels unchanged).
/// Deterministic given `seed`.
Dataset augment_dataset(const Dataset& d, const AugmentConfig& config,
                        std::uint64_t seed);

/// Concatenates two datasets with identical shapes/classes (e.g. the
/// original training set plus an augmented replica).
Dataset concat(const Dataset& a, const Dataset& b);

}  // namespace hpnn::data
