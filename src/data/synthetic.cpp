#include "data/synthetic.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/error.hpp"
#include "data/canvas.hpp"

namespace hpnn::data {

namespace {

// ------------------------------------------------------------------ shared

/// 5x7 bitmap glyphs for digits 0-9 (1 = lit). Used by DigitSynth.
constexpr std::array<std::array<std::uint8_t, 7>, 10> kDigitFont = {{
    // each row is a 5-bit mask, MSB = leftmost column
    {{0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110}},  // 0
    {{0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110}},  // 1
    {{0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111}},  // 2
    {{0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110}},  // 3
    {{0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010}},  // 4
    {{0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110}},  // 5
    {{0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110}},  // 6
    {{0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000}},  // 7
    {{0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110}},  // 8
    {{0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100}},  // 9
}};

struct Jitter {
  double dy = 0.0;   // translation, fraction of image size
  double dx = 0.0;
  double scale = 1.0;
  float intensity = 1.0f;
};

/// Difficulty defaults per family (see SyntheticConfig doc comment).
struct Difficulty {
  double noise;
  double jitter;
};

Difficulty family_difficulty(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kFashionSynth:
      return {0.25, 0.15};
    case SyntheticFamily::kColorShapes:
      return {0.32, 0.16};
    case SyntheticFamily::kDigitSynth:
      return {0.15, 0.12};
  }
  return {0.25, 0.15};
}

double effective_noise(SyntheticFamily family, const SyntheticConfig& cfg) {
  return cfg.noise_stddev >= 0.0 ? cfg.noise_stddev
                                 : family_difficulty(family).noise;
}

double effective_jitter(SyntheticFamily family, const SyntheticConfig& cfg) {
  return cfg.jitter >= 0.0 ? cfg.jitter : family_difficulty(family).jitter;
}

Jitter sample_jitter(double jitter, Rng& rng) {
  Jitter j;
  j.dy = rng.uniform(-jitter, jitter);
  j.dx = rng.uniform(-jitter, jitter);
  j.scale = rng.uniform(0.85, 1.1);
  j.intensity = static_cast<float>(rng.uniform(0.7, 1.0));
  return j;
}

/// Converts canvas pixels [0,1] to a noisy, per-sample standardized tensor.
/// Per-sample standardization removes global-brightness class cues — without
/// it a sign-corrupted (locked, no key) network can still classify on DC
/// content, which would understate the obfuscation strength the paper
/// measures on the real datasets.
Tensor finalize(const Canvas& canvas, double noise_stddev, Rng& rng) {
  Tensor img(Shape{canvas.channels(), canvas.height(), canvas.width()});
  const auto& pix = canvas.pixels();
  for (std::size_t i = 0; i < pix.size(); ++i) {
    float v = pix[i];
    if (noise_stddev > 0.0) {
      v += static_cast<float>(rng.normal(0.0, noise_stddev));
    }
    img.data()[i] = std::clamp(v, 0.0f, 1.0f);
  }
  const float mean = img.mean();
  double var = 0.0;
  for (const auto v : img.span()) {
    var += static_cast<double>(v - mean) * (v - mean);
  }
  const float stddev = static_cast<float>(
      std::sqrt(var / static_cast<double>(img.numel())) + 1e-4);
  for (auto& v : img.span()) {
    v = (v - mean) / stddev * 0.25f;
  }
  return img;
}

// ------------------------------------------------------------ FashionSynth

/// Grayscale garment-ish silhouettes; relative coordinates scale with the
/// canvas so any image_size works. Class index mirrors Fashion-MNIST's
/// ordering loosely (t-shirt, trouser, pullover, dress, coat, sandal,
/// shirt, sneaker, bag, ankle boot).
void draw_fashion(Canvas& c, std::int64_t label, const Jitter& j, Rng& rng) {
  const double s = static_cast<double>(c.height());
  const auto Y = [&](double f) {
    return static_cast<std::int64_t>((f * j.scale + j.dy) * s);
  };
  const auto X = [&](double f) {
    return static_cast<std::int64_t>((f * j.scale + j.dx) * s);
  };
  const Color fg = Color::gray(j.intensity);
  const Color mid = Color::gray(j.intensity * 0.55f);

  switch (label) {
    case 0:  // t-shirt: torso + short horizontal sleeves
      c.fill_rect(Y(0.30), X(0.32), Y(0.80), X(0.68), fg);
      c.fill_rect(Y(0.30), X(0.12), Y(0.45), X(0.88), fg);
      break;
    case 1:  // trouser: two legs joined at waist
      c.fill_rect(Y(0.18), X(0.32), Y(0.32), X(0.68), fg);
      c.fill_rect(Y(0.32), X(0.32), Y(0.88), X(0.46), fg);
      c.fill_rect(Y(0.32), X(0.54), Y(0.88), X(0.68), fg);
      break;
    case 2:  // pullover: torso + long straight sleeves + dim collar
      c.fill_rect(Y(0.28), X(0.30), Y(0.82), X(0.70), fg);
      c.fill_rect(Y(0.28), X(0.08), Y(0.75), X(0.24), fg);
      c.fill_rect(Y(0.28), X(0.76), Y(0.75), X(0.92), fg);
      c.fill_rect(Y(0.24), X(0.42), Y(0.30), X(0.58), mid);
      break;
    case 3:  // dress: widening trapezoid body
      c.fill_triangle({static_cast<double>(Y(0.22)),
                       static_cast<double>(Y(0.88)),
                       static_cast<double>(Y(0.88))},
                      {static_cast<double>(X(0.50)),
                       static_cast<double>(X(0.18)),
                       static_cast<double>(X(0.82))},
                      fg);
      c.fill_rect(Y(0.18), X(0.40), Y(0.34), X(0.60), fg);
      break;
    case 4:  // coat: long torso, long sleeves, center opening seam
      c.fill_rect(Y(0.22), X(0.28), Y(0.90), X(0.72), fg);
      c.fill_rect(Y(0.22), X(0.08), Y(0.80), X(0.24), fg);
      c.fill_rect(Y(0.22), X(0.76), Y(0.80), X(0.92), fg);
      c.draw_line(Y(0.24), X(0.50), Y(0.88), X(0.50), Color::gray(0.1f));
      break;
    case 5:  // sandal: sole bar + thin straps
      c.fill_rect(Y(0.68), X(0.12), Y(0.78), X(0.88), fg);
      c.draw_line(Y(0.68), X(0.25), Y(0.45), X(0.45), mid);
      c.draw_line(Y(0.68), X(0.55), Y(0.45), X(0.45), mid);
      c.draw_line(Y(0.68), X(0.75), Y(0.50), X(0.62), mid);
      break;
    case 6: {  // shirt: torso + sleeves + button dots
      c.fill_rect(Y(0.26), X(0.30), Y(0.84), X(0.70), fg);
      c.fill_rect(Y(0.26), X(0.10), Y(0.60), X(0.26), fg);
      c.fill_rect(Y(0.26), X(0.74), Y(0.60), X(0.90), fg);
      for (int i = 0; i < 4; ++i) {
        c.set_pixel(Y(0.34 + 0.12 * i), X(0.50), Color::gray(0.05f));
      }
      break;
    }
    case 7:  // sneaker: low blob + bright sole stripe
      c.fill_ellipse(Y(0.60), X(0.45), 0.14 * s * j.scale,
                     0.32 * s * j.scale, fg);
      c.fill_rect(Y(0.68), X(0.10), Y(0.76), X(0.85), Color::gray(1.0f),
                  j.intensity);
      break;
    case 8: {  // bag: box + handle arc
      c.fill_rect(Y(0.42), X(0.22), Y(0.84), X(0.78), fg);
      const double cy = Y(0.42);
      const double cx = X(0.50);
      c.fill_ring(cy, cx, 0.18 * s * j.scale, 0.22 * s * j.scale, 0.7, mid);
      // erase ring part below the bag top edge by re-drawing the box
      c.fill_rect(Y(0.42), X(0.22), Y(0.84), X(0.78), fg);
      break;
    }
    case 9:  // ankle boot: L-shaped silhouette + heel
      c.fill_rect(Y(0.30), X(0.30), Y(0.74), X(0.55), fg);
      c.fill_rect(Y(0.58), X(0.30), Y(0.74), X(0.85), fg);
      c.fill_rect(Y(0.74), X(0.30), Y(0.80), X(0.42), mid);
      break;
    default:
      HPNN_CHECK(false, "FashionSynth label out of range");
  }
  // Light random occlusion to avoid trivially separable classes.
  if (rng.bernoulli(0.3)) {
    const auto oy = static_cast<std::int64_t>(rng.uniform(0.2, 0.7) * s);
    const auto ox = static_cast<std::int64_t>(rng.uniform(0.2, 0.7) * s);
    const auto len = static_cast<std::int64_t>(0.15 * s);
    c.fill_rect(oy, ox, oy + 2, ox + len, Color::gray(0.0f), 0.0f);
  }
}

// ------------------------------------------------------------- ColorShapes

Color random_tint(Rng& rng, float base_r, float base_g, float base_b) {
  const auto jig = [&](float v) {
    return std::clamp(v + static_cast<float>(rng.uniform(-0.25, 0.25)), 0.1f,
                      1.0f);
  };
  return {jig(base_r), jig(base_g), jig(base_b)};
}

/// Draws one ColorShapes object of class `label` centered at (cy, cx) with
/// radius r. Used for the dominant (class-defining) object and, at smaller
/// scale, for distractor objects of other classes.
void draw_color_object(Canvas& c, std::int64_t label, double cy, double cx,
                       double r, double s, const Jitter& j, Rng& rng) {
  switch (label) {
    case 0:  // red disc
      c.fill_ellipse(cy, cx, r, r, random_tint(rng, 0.95f, 0.15f, 0.15f));
      break;
    case 1:  // blue square
      c.fill_rect(static_cast<std::int64_t>(cy - r),
                  static_cast<std::int64_t>(cx - r),
                  static_cast<std::int64_t>(cy + r),
                  static_cast<std::int64_t>(cx + r),
                  random_tint(rng, 0.15f, 0.25f, 0.95f));
      break;
    case 2:  // green triangle
      c.fill_triangle({cy - r, cy + r, cy + r}, {cx, cx - r, cx + r},
                      random_tint(rng, 0.15f, 0.9f, 0.2f));
      break;
    case 3:  // yellow ring
      c.fill_ring(cy, cx, r, r, 0.55, random_tint(rng, 0.95f, 0.9f, 0.15f));
      break;
    case 4:  // magenta horizontal stripes patch
      c.fill_stripes(static_cast<std::int64_t>(cy - r),
                     static_cast<std::int64_t>(cx - r),
                     static_cast<std::int64_t>(cy + r),
                     static_cast<std::int64_t>(cx + r), 4, false,
                     random_tint(rng, 0.9f, 0.2f, 0.9f));
      break;
    case 5:  // cyan vertical stripes patch
      c.fill_stripes(static_cast<std::int64_t>(cy - r),
                     static_cast<std::int64_t>(cx - r),
                     static_cast<std::int64_t>(cy + r),
                     static_cast<std::int64_t>(cx + r), 4, true,
                     random_tint(rng, 0.15f, 0.9f, 0.9f));
      break;
    case 6: {  // orange cross
      const Color col = random_tint(rng, 0.95f, 0.55f, 0.1f);
      const double t = 0.12 * s * j.scale;
      c.fill_rect(static_cast<std::int64_t>(cy - r),
                  static_cast<std::int64_t>(cx - t),
                  static_cast<std::int64_t>(cy + r),
                  static_cast<std::int64_t>(cx + t), col);
      c.fill_rect(static_cast<std::int64_t>(cy - t),
                  static_cast<std::int64_t>(cx - r),
                  static_cast<std::int64_t>(cy + t),
                  static_cast<std::int64_t>(cx + r), col);
      break;
    }
    case 7: {  // white twin discs
      const Color col = random_tint(rng, 0.9f, 0.9f, 0.9f);
      c.fill_ellipse(cy, cx - 0.45 * r * 2, 0.5 * r, 0.5 * r, col);
      c.fill_ellipse(cy, cx + 0.45 * r * 2, 0.5 * r, 0.5 * r, col);
      break;
    }
    case 8: {  // purple diamond (rotated square)
      const Color col = random_tint(rng, 0.6f, 0.2f, 0.85f);
      c.fill_triangle({cy - r, cy, cy}, {cx, cx - r, cx + r}, col);
      c.fill_triangle({cy + r, cy, cy}, {cx, cx - r, cx + r}, col);
      break;
    }
    case 9: {  // teal checkerboard patch
      const Color col = random_tint(rng, 0.1f, 0.65f, 0.6f);
      const auto y0 = static_cast<std::int64_t>(cy - r);
      const auto x0 = static_cast<std::int64_t>(cx - r);
      const auto cell = std::max<std::int64_t>(
          2, static_cast<std::int64_t>(0.25 * r));
      for (std::int64_t y = 0; y < static_cast<std::int64_t>(2 * r); ++y) {
        for (std::int64_t x = 0; x < static_cast<std::int64_t>(2 * r); ++x) {
          if (((y / cell) + (x / cell)) % 2 == 0) {
            c.blend_pixel(y0 + y, x0 + x, col);
          }
        }
      }
      break;
    }
    default:
      HPNN_CHECK(false, "ColorShapes label out of range");
  }
}

/// CIFAR-10 stand-in: 10 object classes defined by (shape, texture, hue)
/// combos. The class is carried by the *dominant central* object; smaller
/// distractor objects of other classes litter the periphery, and dim blobs
/// clutter the background. The distractors are what give this family a
/// CIFAR-like sample complexity — with few training samples a network
/// cannot tell the dominant object from the clutter. Deliberately the
/// hardest family.
void draw_color_shape(Canvas& c, std::int64_t label, const Jitter& j,
                      Rng& rng) {
  const double s = static_cast<double>(c.height());
  const double cy = (0.5 + j.dy) * s;
  const double cx = (0.5 + j.dx) * s;
  const double r = 0.30 * s * j.scale;

  // Cluttered background: two random dim blobs.
  for (int b = 0; b < 2; ++b) {
    const Color bg = random_tint(rng, 0.25f, 0.25f, 0.25f);
    c.fill_ellipse(rng.uniform(0.0, 1.0) * s, rng.uniform(0.0, 1.0) * s,
                   0.25 * s, 0.25 * s, bg, 0.5f);
  }

  // Distractors: 2-4 small objects of *other* classes near the periphery.
  const int distractors = 2 + static_cast<int>(rng.uniform_index(3));
  for (int d = 0; d < distractors; ++d) {
    std::int64_t other =
        static_cast<std::int64_t>(rng.uniform_index(kSyntheticClasses));
    if (other == label) {
      other = (other + 1) % kSyntheticClasses;
    }
    // Place on a ring around the center so the dominant object stays
    // dominant but the clutter often touches it.
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double dist = rng.uniform(0.33, 0.48) * s;
    const double dy = cy + dist * std::sin(angle);
    const double dx = cx + dist * std::cos(angle);
    const double dr = rng.uniform(0.10, 0.16) * s;
    draw_color_object(c, other, dy, dx, dr, s, j, rng);
  }

  draw_color_object(c, label, cy, cx, r, s, j, rng);
}

// -------------------------------------------------------------- DigitSynth

void draw_glyph(Canvas& c, std::int64_t digit, double top, double left,
                double cell, const Color& color, float intensity) {
  const auto& glyph = kDigitFont[static_cast<std::size_t>(digit)];
  for (std::int64_t gy = 0; gy < 7; ++gy) {
    for (std::int64_t gx = 0; gx < 5; ++gx) {
      if ((glyph[static_cast<std::size_t>(gy)] >> (4 - gx)) & 1) {
        const auto y0 = static_cast<std::int64_t>(top + gy * cell);
        const auto x0 = static_cast<std::int64_t>(left + gx * cell);
        const auto y1 = static_cast<std::int64_t>(top + (gy + 1) * cell);
        const auto x1 = static_cast<std::int64_t>(left + (gx + 1) * cell);
        c.fill_rect(y0, x0, std::max(y1, y0 + 1), std::max(x1, x0 + 1), color,
                    intensity);
      }
    }
  }
}

/// SVHN stand-in: a centered digit in a random color over a random
/// background, flanked by partial distractor digits at the edges (house
/// numbers crop neighbours in SVHN).
void draw_digit(Canvas& c, std::int64_t label, const Jitter& j, Rng& rng) {
  const double s = static_cast<double>(c.height());
  // Digit colors: keep contrast against the background.
  const float bg_lum = static_cast<float>(rng.uniform(0.05, 0.45));
  const Color fg = random_tint(rng, 1.0f - bg_lum, 1.0f - bg_lum * 0.8f,
                               1.0f - bg_lum * 0.6f);
  const double cell = (0.10 + 0.02 * (j.scale - 1.0)) * s;
  const double top = (0.18 + j.dy) * s;
  const double left = (0.28 + j.dx) * s;

  draw_glyph(c, label, top, left, cell, fg, j.intensity);

  // Edge distractors: random digits partially off-canvas.
  if (rng.bernoulli(0.7)) {
    const auto d = static_cast<std::int64_t>(rng.uniform_index(10));
    draw_glyph(c, d, top, left - 0.55 * s, cell, fg, j.intensity * 0.8f);
  }
  if (rng.bernoulli(0.7)) {
    const auto d = static_cast<std::int64_t>(rng.uniform_index(10));
    draw_glyph(c, d, top, left + 0.55 * s, cell, fg, j.intensity * 0.8f);
  }
}

Canvas background_for(SyntheticFamily family, std::int64_t channels,
                      std::int64_t size, Rng& rng) {
  switch (family) {
    case SyntheticFamily::kFashionSynth:
      return Canvas(channels, size, size, Color::gray(0.0f));
    case SyntheticFamily::kColorShapes: {
      Canvas c(channels, size, size,
               Color{static_cast<float>(rng.uniform(0.0, 0.3)),
                     static_cast<float>(rng.uniform(0.0, 0.3)),
                     static_cast<float>(rng.uniform(0.0, 0.3))});
      return c;
    }
    case SyntheticFamily::kDigitSynth: {
      const auto lum = static_cast<float>(rng.uniform(0.05, 0.45));
      return Canvas(channels, size, size,
                    Color{lum, lum * 0.9f, lum * 0.8f});
    }
  }
  HPNN_CHECK(false, "unknown synthetic family");
}

}  // namespace

std::string family_name(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kFashionSynth:
      return "FashionSynth";
    case SyntheticFamily::kColorShapes:
      return "ColorShapes";
    case SyntheticFamily::kDigitSynth:
      return "DigitSynth";
  }
  return "unknown";
}

std::string family_stands_for(SyntheticFamily family) {
  switch (family) {
    case SyntheticFamily::kFashionSynth:
      return "Fashion-MNIST";
    case SyntheticFamily::kColorShapes:
      return "CIFAR-10";
    case SyntheticFamily::kDigitSynth:
      return "SVHN";
  }
  return "unknown";
}

Tensor render_sample(SyntheticFamily family, std::int64_t label,
                     std::int64_t image_size, const SyntheticConfig& config,
                     Rng& rng) {
  HPNN_CHECK(label >= 0 && label < kSyntheticClasses,
             "synthetic label out of range");
  const std::int64_t channels =
      (family == SyntheticFamily::kFashionSynth) ? 1 : 3;
  Canvas canvas = background_for(family, channels, image_size, rng);
  const Jitter j = sample_jitter(effective_jitter(family, config), rng);
  switch (family) {
    case SyntheticFamily::kFashionSynth:
      draw_fashion(canvas, label, j, rng);
      break;
    case SyntheticFamily::kColorShapes:
      draw_color_shape(canvas, label, j, rng);
      break;
    case SyntheticFamily::kDigitSynth:
      draw_digit(canvas, label, j, rng);
      break;
  }
  return finalize(canvas, effective_noise(family, config), rng);
}

namespace {

Dataset generate(SyntheticFamily family, std::int64_t per_class,
                 std::int64_t image_size, const SyntheticConfig& config,
                 Rng& rng, const std::string& tag) {
  const std::int64_t channels =
      (family == SyntheticFamily::kFashionSynth) ? 1 : 3;
  const std::int64_t n = per_class * kSyntheticClasses;
  Dataset out;
  out.name = family_name(family) + "-" + tag;
  out.num_classes = kSyntheticClasses;
  out.images = Tensor{Shape{n, channels, image_size, image_size}};
  out.labels.resize(static_cast<std::size_t>(n));

  const std::int64_t sample = channels * image_size * image_size;
  // Interleave classes so any prefix is roughly balanced.
  std::int64_t idx = 0;
  for (std::int64_t i = 0; i < per_class; ++i) {
    for (std::int64_t cls = 0; cls < kSyntheticClasses; ++cls, ++idx) {
      const Tensor img = render_sample(family, cls, image_size, config, rng);
      std::copy(img.data(), img.data() + sample,
                out.images.data() + idx * sample);
      out.labels[static_cast<std::size_t>(idx)] = cls;
    }
  }
  return out;
}

}  // namespace

SplitDataset make_dataset(SyntheticFamily family,
                          const SyntheticConfig& config) {
  HPNN_CHECK(config.train_per_class > 0 && config.test_per_class > 0,
             "synthetic config needs positive sample counts");
  const std::int64_t size =
      config.image_size > 0
          ? config.image_size
          : (family == SyntheticFamily::kFashionSynth ? 28 : 32);
  HPNN_CHECK(size >= 12, "synthetic images must be at least 12x12");

  Rng rng(config.seed ^ (static_cast<std::uint64_t>(family) << 32));
  SplitDataset split;
  split.train =
      generate(family, config.train_per_class, size, config, rng, "train");
  split.test =
      generate(family, config.test_per_class, size, config, rng, "test");
  split.train.validate();
  split.test.validate();
  return split;
}

}  // namespace hpnn::data
