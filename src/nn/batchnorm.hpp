// 2-d batch normalization (per-channel, NCHW), needed for ResNet18.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace hpnn::nn {

/// BatchNorm over the (N, H, W) axes of an NCHW tensor.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates; eval mode uses the running estimates. gamma/beta learnable.
class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::int64_t channels, std::string name = "bn",
              float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Stateless eval-mode forward using the running statistics: touches no
  /// caches, so it is safe from const contexts and concurrent callers (the
  /// trusted device's serving path normalizes through this).
  Tensor eval_forward(const Tensor& x) const;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(
      std::vector<std::pair<std::string, Tensor*>>& out) override;
  std::string name() const override { return name_; }

  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  /// Overwrites running statistics (used by model deserialization).
  void set_running_stats(Tensor mean, Tensor var);

 private:
  std::string name_;
  std::int64_t channels_;
  float momentum_;
  float eps_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // forward cache (training mode)
  Tensor cached_xhat_;
  Tensor cached_inv_std_;   // [C]
  Shape cached_input_shape_;
  bool cached_used_batch_stats_ = false;
};

}  // namespace hpnn::nn
