// Optimizers and learning-rate schedules.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace hpnn::nn {

/// Abstract optimizer over a fixed parameter set.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients, then the caller
  /// typically zeroes the gradients for the next step.
  virtual void step() = 0;

  /// Current learning rate.
  virtual double lr() const = 0;
  /// Overrides the learning rate (used by schedules and lr sweeps).
  virtual void set_lr(double lr) = 0;

 protected:
  std::vector<Parameter*> params_;
};

/// SGD with optional momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  struct Options {
    double lr = 0.01;
    double momentum = 0.0;
    double weight_decay = 0.0;
  };

  Sgd(std::vector<Parameter*> params, const Options& opts);

  void step() override;
  double lr() const override { return opts_.lr; }
  void set_lr(double lr) override { opts_.lr = lr; }

 private:
  Options opts_;
  std::vector<Tensor> velocity_;
};

/// Adam optimizer (used by the attacker's hyper-parameter sweeps).
class Adam : public Optimizer {
 public:
  struct Options {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
  };

  Adam(std::vector<Parameter*> params, const Options& opts);

  void step() override;
  double lr() const override { return opts_.lr; }
  void set_lr(double lr) override { opts_.lr = lr; }

 private:
  Options opts_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t t_ = 0;
};

/// Multiplies the lr by `gamma` every `step_size` epochs.
class StepLr {
 public:
  StepLr(Optimizer& opt, std::int64_t step_size, double gamma)
      : opt_(opt), step_size_(step_size), gamma_(gamma) {}

  /// Call once at the end of each epoch.
  void epoch_end();

 private:
  Optimizer& opt_;
  std::int64_t step_size_;
  double gamma_;
  std::int64_t epoch_ = 0;
};

/// Cosine annealing from the initial lr down to `min_lr` over
/// `total_epochs` (the modern default for from-scratch CNN training).
class CosineLr {
 public:
  CosineLr(Optimizer& opt, std::int64_t total_epochs, double min_lr = 0.0);

  /// Call once at the end of each epoch.
  void epoch_end();

 private:
  Optimizer& opt_;
  std::int64_t total_epochs_;
  double base_lr_;
  double min_lr_;
  std::int64_t epoch_ = 0;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. Call between backward() and step().
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace hpnn::nn
