#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace hpnn::nn {

namespace {

std::vector<std::int64_t> coords_to_check(std::int64_t numel,
                                          const GradCheckOptions& opts,
                                          Rng& rng) {
  std::vector<std::int64_t> coords;
  if (opts.max_coords <= 0 || numel <= opts.max_coords) {
    coords.resize(static_cast<std::size_t>(numel));
    for (std::int64_t i = 0; i < numel; ++i) {
      coords[static_cast<std::size_t>(i)] = i;
    }
  } else {
    coords.reserve(static_cast<std::size_t>(opts.max_coords));
    for (std::int64_t i = 0; i < opts.max_coords; ++i) {
      coords.push_back(static_cast<std::int64_t>(
          rng.uniform_index(static_cast<std::uint64_t>(numel))));
    }
  }
  return coords;
}

void update(GradCheckResult& r, double analytic, double numeric,
            double tolerance) {
  const double abs_err = std::fabs(analytic - numeric);
  const double denom =
      std::max({std::fabs(analytic), std::fabs(numeric), 1e-4});
  const double rel_err = abs_err / denom;
  r.max_abs_err = std::max(r.max_abs_err, abs_err);
  r.max_rel_err = std::max(r.max_rel_err, rel_err);
  ++r.coords_checked;
  r.coords_failed += (rel_err > tolerance);
}

void finalize(GradCheckResult& r, const GradCheckOptions& opts) {
  r.ok = r.coords_checked > 0 &&
         static_cast<double>(r.coords_failed) <=
             opts.outlier_fraction * static_cast<double>(r.coords_checked);
}

}  // namespace

GradCheckResult check_input_gradient(Module& model, Loss& loss,
                                     const Tensor& input,
                                     const std::vector<std::int64_t>& labels,
                                     const GradCheckOptions& opts) {
  Rng rng(opts.seed);
  zero_grads(model);
  Tensor scores = model.forward(input);
  (void)loss.forward(scores, labels);
  const Tensor analytic = model.backward(loss.backward());

  GradCheckResult result;
  Tensor x = input;
  for (const auto c : coords_to_check(x.numel(), opts, rng)) {
    const float orig = x.at(c);
    x.at(c) = orig + static_cast<float>(opts.epsilon);
    const double plus = loss.forward(model.forward(x), labels);
    x.at(c) = orig - static_cast<float>(opts.epsilon);
    const double minus = loss.forward(model.forward(x), labels);
    x.at(c) = orig;
    update(result, analytic.at(c), (plus - minus) / (2.0 * opts.epsilon),
           opts.tolerance);
  }
  finalize(result, opts);
  return result;
}

GradCheckResult check_parameter_gradients(
    Module& model, Loss& loss, const Tensor& input,
    const std::vector<std::int64_t>& labels, const GradCheckOptions& opts) {
  Rng rng(opts.seed);
  zero_grads(model);
  Tensor scores = model.forward(input);
  (void)loss.forward(scores, labels);
  (void)model.backward(loss.backward());

  GradCheckResult result;
  for (Parameter* p : parameters_of(model)) {
    for (const auto c : coords_to_check(p->value.numel(), opts, rng)) {
      const float orig = p->value.at(c);
      p->value.at(c) = orig + static_cast<float>(opts.epsilon);
      p->mark_value_updated();
      const double plus = loss.forward(model.forward(input), labels);
      p->value.at(c) = orig - static_cast<float>(opts.epsilon);
      p->mark_value_updated();
      const double minus = loss.forward(model.forward(input), labels);
      p->value.at(c) = orig;
      p->mark_value_updated();
      update(result, p->grad.at(c), (plus - minus) / (2.0 * opts.epsilon),
             opts.tolerance);
    }
  }
  finalize(result, opts);
  return result;
}

}  // namespace hpnn::nn
