#include "nn/layers.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "nn/init.hpp"
#include "tensor/vec_ops.hpp"

namespace hpnn::nn {

// ---------------------------------------------------------------- Linear

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               std::string name, bool bias)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weight_(name_ + ".weight", Tensor(Shape{out_features, in_features})) {
  he_normal(weight_.value, in_features_, rng);
  if (bias) {
    bias_.emplace(name_ + ".bias", Tensor(Shape{out_features}));
  }
}

Tensor Linear::forward(const Tensor& x) {
  HPNN_CHECK(x.rank() == 2 && x.dim(1) == in_features_,
             name_ + ": input shape " + x.shape().to_string() +
                 " incompatible with in_features " +
                 std::to_string(in_features_));
  cached_input_ = x;
  // y = x @ W^T
  Tensor y = ops::matmul(x, weight_.value, ops::Trans::kNo, ops::Trans::kYes);
  if (bias_) {
    const std::int64_t n = y.dim(0);
    const float* b = bias_->value.data();
    for (std::int64_t i = 0; i < n; ++i) {
      ops::vec_axpy(1.0f, b, y.data() + i * out_features_, out_features_);
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  HPNN_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_features_,
             name_ + ": grad shape mismatch");
  HPNN_CHECK(cached_input_.numel() > 0, name_ + ": backward before forward");
  // dW += dY^T @ X ; dX = dY @ W
  ops::gemm(grad_out, ops::Trans::kYes, cached_input_, ops::Trans::kNo,
            weight_.grad, 1.0f, 1.0f);
  if (bias_) {
    const std::int64_t n = grad_out.dim(0);
    float* bg = bias_->grad.data();
    for (std::int64_t i = 0; i < n; ++i) {
      ops::vec_axpy(1.0f, grad_out.data() + i * out_features_, bg,
                    out_features_);
    }
  }
  return ops::matmul(grad_out, weight_.value, ops::Trans::kNo, ops::Trans::kNo);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) {
    out.push_back(&*bias_);
  }
}

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(const ops::Conv2dGeometry& geometry, std::int64_t out_channels,
               Rng& rng, std::string name, bool bias)
    : name_(std::move(name)),
      geometry_(geometry),
      out_channels_(out_channels),
      weight_(name_ + ".weight",
              Tensor(Shape{out_channels, geometry.in_channels, geometry.kernel,
                           geometry.kernel})) {
  const std::int64_t fan_in =
      geometry_.in_channels * geometry_.kernel * geometry_.kernel;
  he_normal(weight_.value, fan_in, rng);
  if (bias) {
    bias_.emplace(name_ + ".bias", Tensor(Shape{out_channels}));
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  cached_input_ = x;
  static const Tensor kNoBias;
  const std::int64_t cols_rows =
      geometry_.in_channels * geometry_.kernel * geometry_.kernel;
  // Training mutates the weights every step, so the panels must be
  // re-packed (into the retained buffer — no allocation). In eval mode the
  // packing is reused until the parameter's mutation counter moves; the
  // pointer-identity matches() check alone cannot detect staleness, since
  // optimizer steps and checkpoint loads rewrite the weights in place
  // without changing the data pointer (see Parameter::version()). matches()
  // does, however, catch a compute-backend switch between calls: panels
  // record the backend that packed them, so a stale-tile-geometry panel is
  // re-packed here rather than replayed through the wrong microkernel.
  if (training() || packed_weight_version_ != weight_.version() ||
      !packed_weight_.matches(weight_.value.data(), false, out_channels_,
                              cols_rows)) {
    packed_weight_.pack(weight_.value.data(), false, out_channels_,
                        cols_rows);
    packed_weight_version_ = weight_.version();
  }
  return ops::conv2d_forward(x, packed_weight_,
                             bias_ ? bias_->value : kNoBias, geometry_);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  HPNN_CHECK(cached_input_.numel() > 0, name_ + ": backward before forward");
  static Tensor no_bias_grad;
  return ops::conv2d_backward(cached_input_, weight_.value, grad_out,
                              geometry_, weight_.grad,
                              bias_ ? bias_->grad : no_bias_grad);
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (bias_) {
    out.push_back(&*bias_);
  }
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  ops::vec_relu(y.data(), y.data(), y.numel());
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  HPNN_CHECK(grad_out.shape() == cached_input_.shape(),
             name_ + ": grad shape mismatch");
  Tensor gx = grad_out;
  ops::vec_relu_mask(cached_input_.data(), gx.data(), gx.numel());
  return gx;
}

// ---------------------------------------------------------------- MaxPool2d

Tensor MaxPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  auto res = ops::maxpool2d_forward(x, kernel_, stride_);
  cached_argmax_ = std::move(res.argmax);
  return std::move(res.output);
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  HPNN_CHECK(!cached_argmax_.empty(), name_ + ": backward before forward");
  return ops::maxpool2d_backward(grad_out, cached_input_shape_,
                                 cached_argmax_);
}

// ---------------------------------------------------------------- AvgPool2d

Tensor AvgPool2d::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return ops::avgpool2d_forward(x, kernel_, stride_);
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  HPNN_CHECK(cached_input_shape_.rank() == 4,
             name_ + ": backward before forward");
  return ops::avgpool2d_backward(grad_out, cached_input_shape_, kernel_,
                                 stride_);
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x) {
  HPNN_CHECK(x.rank() >= 2, name_ + ": input must have batch dim");
  cached_input_shape_ = x.shape();
  const std::int64_t n = x.dim(0);
  return x.reshaped(Shape{n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(cached_input_shape_);
}

// ------------------------------------------------------------ GlobalAvgPool

Tensor GlobalAvgPool::forward(const Tensor& x) {
  cached_input_shape_ = x.shape();
  return ops::global_avgpool_forward(x);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  return ops::global_avgpool_backward(grad_out, cached_input_shape_);
}

// ---------------------------------------------------------------- Dropout

Dropout::Dropout(double p, std::uint64_t seed, std::string name)
    : name_(std::move(name)), p_(p), rng_(seed) {
  HPNN_CHECK(p >= 0.0 && p < 1.0, name_ + ": dropout p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training() || p_ == 0.0) {
    cached_mask_ = Tensor();
    return x;
  }
  cached_mask_ = Tensor(x.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (auto& m : cached_mask_.span()) {
    m = rng_.bernoulli(p_) ? 0.0f : scale;
  }
  Tensor y = x;
  y.mul_(cached_mask_);
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (cached_mask_.numel() == 0) {
    return grad_out;
  }
  Tensor gx = grad_out;
  gx.mul_(cached_mask_);
  return gx;
}

}  // namespace hpnn::nn
