// Classification metrics beyond plain accuracy: confusion matrix,
// per-class accuracy/precision/recall, top-k accuracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.hpp"

namespace hpnn::nn {

/// Row = true class, column = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::int64_t num_classes);

  /// Adds one (true, predicted) observation.
  void add(std::int64_t truth, std::int64_t predicted);

  /// Adds a whole scored batch.
  void add_batch(const Tensor& scores,
                 const std::vector<std::int64_t>& labels);

  std::int64_t num_classes() const { return classes_; }
  std::int64_t count(std::int64_t truth, std::int64_t predicted) const;
  std::int64_t total() const { return total_; }

  /// Overall accuracy (trace / total); 0 when empty.
  double accuracy() const;
  /// Recall of one class (diagonal / row sum); 0 for empty rows.
  double recall(std::int64_t cls) const;
  /// Precision of one class (diagonal / column sum); 0 for empty columns.
  double precision(std::int64_t cls) const;
  /// Mean of per-class recalls over non-empty classes (balanced accuracy).
  double balanced_accuracy() const;

  /// Multi-line ASCII rendering (for examples / CLI output).
  std::string to_string() const;

 private:
  std::int64_t classes_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> cells_;  // classes_ x classes_
};

/// Fraction of rows whose true label is within the k highest scores.
double topk_accuracy(const Tensor& scores,
                     const std::vector<std::int64_t>& labels, std::int64_t k);

/// Evaluates a model over a dataset into a confusion matrix (eval mode,
/// batched; restores the previous training flag).
ConfusionMatrix evaluate_confusion(Module& model, const Tensor& images,
                                   const std::vector<std::int64_t>& labels,
                                   std::int64_t num_classes,
                                   std::int64_t batch_size = 64);

}  // namespace hpnn::nn
