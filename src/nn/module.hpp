// Module: the building block of networks, with explicit manual backprop.
//
// Each module caches whatever it needs during forward() and consumes the
// cache in backward(). This "explicit tape" style is what allows HPNN's
// key-dependent backpropagation (Sec. III-C of the paper) to be expressed
// exactly as written: the LockedActivation module injects the lock factor
// L_j into both the forward response and the delta rule.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace hpnn::nn {

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  /// Monotonic mutation counter for `value`. Neither the data pointer nor
  /// the shape can signal a rewrite: optimizer steps mutate the weights in
  /// place (axpy on the same storage), and tensor copy-assignment reuses
  /// the existing allocation when capacity suffices, so a checkpoint load
  /// leaves the pointer unchanged too. Every code path that rewrites
  /// `value` outside the layer's own forward (optimizer step, weight
  /// load/copy, gradcheck perturbation) must call mark_value_updated() or
  /// assign_value(); consumers holding a derived image of the weights
  /// (e.g. Conv2d's packed GEMM panels) compare version() to invalidate.
  std::uint64_t version() const { return version_; }

  /// Records an in-place mutation of `value`.
  void mark_value_updated() { ++version_; }

  /// Replaces `value` (same allocation when capacity suffices) and records
  /// the mutation.
  void assign_value(const Tensor& v) {
    value = v;
    ++version_;
  }

 private:
  std::uint64_t version_ = 0;
};

/// Abstract network layer with explicit forward/backward.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output; caches anything backward() needs.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Given dE/d(output), returns dE/d(input) and accumulates parameter
  /// gradients. Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends raw pointers to this module's parameters (stable addresses).
  virtual void collect_parameters(std::vector<Parameter*>& out);

  /// Appends named non-learnable state (e.g. batch-norm running statistics)
  /// that must survive model serialization and weight copying.
  virtual void collect_buffers(
      std::vector<std::pair<std::string, Tensor*>>& out);

  /// Switches train/eval behaviour (batch-norm statistics, dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Short diagnostic name, e.g. "conv1" or "locked_relu2".
  virtual std::string name() const = 0;

 protected:
  bool training_ = true;
};

/// Ordered container of modules; forward chains them, backward reverses.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  /// Appends a module; returns a reference for further configuration.
  Module& add(std::unique_ptr<Module> m);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(
      std::vector<std::pair<std::string, Tensor*>>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i);
  const Module& at(std::size_t i) const;

 private:
  std::string name_ = "sequential";
  std::vector<std::unique_ptr<Module>> modules_;
};

/// All parameters of a module tree.
std::vector<Parameter*> parameters_of(Module& m);

/// All named buffers of a module tree.
std::vector<std::pair<std::string, Tensor*>> buffers_of(Module& m);

/// Total scalar parameter count of a module tree.
std::int64_t parameter_count(Module& m);

/// Zeroes every parameter gradient in the tree.
void zero_grads(Module& m);

}  // namespace hpnn::nn
