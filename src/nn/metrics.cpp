#include "nn/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace hpnn::nn {

ConfusionMatrix::ConfusionMatrix(std::int64_t num_classes)
    : classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes * num_classes), 0) {
  HPNN_CHECK(num_classes > 0, "ConfusionMatrix needs at least one class");
}

void ConfusionMatrix::add(std::int64_t truth, std::int64_t predicted) {
  HPNN_CHECK(truth >= 0 && truth < classes_ && predicted >= 0 &&
                 predicted < classes_,
             "confusion matrix index out of range");
  ++cells_[static_cast<std::size_t>(truth * classes_ + predicted)];
  ++total_;
}

void ConfusionMatrix::add_batch(const Tensor& scores,
                                const std::vector<std::int64_t>& labels) {
  const auto pred = ops::argmax_rows(scores);
  HPNN_CHECK(pred.size() == labels.size(), "batch size mismatch");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    add(labels[i], pred[i]);
  }
}

std::int64_t ConfusionMatrix::count(std::int64_t truth,
                                    std::int64_t predicted) const {
  HPNN_CHECK(truth >= 0 && truth < classes_ && predicted >= 0 &&
                 predicted < classes_,
             "confusion matrix index out of range");
  return cells_[static_cast<std::size_t>(truth * classes_ + predicted)];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) {
    return 0.0;
  }
  std::int64_t diag = 0;
  for (std::int64_t c = 0; c < classes_; ++c) {
    diag += count(c, c);
  }
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::recall(std::int64_t cls) const {
  std::int64_t row = 0;
  for (std::int64_t p = 0; p < classes_; ++p) {
    row += count(cls, p);
  }
  return row == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(row);
}

double ConfusionMatrix::precision(std::int64_t cls) const {
  std::int64_t col = 0;
  for (std::int64_t t = 0; t < classes_; ++t) {
    col += count(t, cls);
  }
  return col == 0 ? 0.0
                  : static_cast<double>(count(cls, cls)) /
                        static_cast<double>(col);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  std::int64_t nonempty = 0;
  for (std::int64_t c = 0; c < classes_; ++c) {
    std::int64_t row = 0;
    for (std::int64_t p = 0; p < classes_; ++p) {
      row += count(c, p);
    }
    if (row > 0) {
      sum += recall(c);
      ++nonempty;
    }
  }
  return nonempty == 0 ? 0.0 : sum / static_cast<double>(nonempty);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "true\\pred";
  for (std::int64_t p = 0; p < classes_; ++p) {
    os << '\t' << p;
  }
  os << '\n';
  for (std::int64_t t = 0; t < classes_; ++t) {
    os << t;
    for (std::int64_t p = 0; p < classes_; ++p) {
      os << '\t' << count(t, p);
    }
    os << '\n';
  }
  return os.str();
}

double topk_accuracy(const Tensor& scores,
                     const std::vector<std::int64_t>& labels,
                     std::int64_t k) {
  HPNN_CHECK(scores.rank() == 2, "topk_accuracy expects [N, C]");
  HPNN_CHECK(k >= 1 && k <= scores.dim(1), "invalid k");
  HPNN_CHECK(static_cast<std::int64_t>(labels.size()) == scores.dim(0),
             "label count mismatch");
  const std::int64_t n = scores.dim(0);
  const std::int64_t c = scores.dim(1);
  std::int64_t hits = 0;
  std::vector<std::int64_t> order(static_cast<std::size_t>(c));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = scores.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) {
      order[static_cast<std::size_t>(j)] = j;
    }
    std::partial_sort(order.begin(), order.begin() + k, order.end(),
                      [row](std::int64_t a, std::int64_t b) {
                        return row[a] > row[b];
                      });
    for (std::int64_t j = 0; j < k; ++j) {
      if (order[static_cast<std::size_t>(j)] ==
          labels[static_cast<std::size_t>(i)]) {
        ++hits;
        break;
      }
    }
  }
  return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
}

ConfusionMatrix evaluate_confusion(Module& model, const Tensor& images,
                                   const std::vector<std::int64_t>& labels,
                                   std::int64_t num_classes,
                                   std::int64_t batch_size) {
  ConfusionMatrix cm(num_classes);
  const std::size_t n = labels.size();
  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    identity[i] = i;
  }
  const bool was_training = model.training();
  model.set_training(false);
  for (std::size_t at = 0; at < n; at += batch_size) {
    const std::size_t count = std::min<std::size_t>(batch_size, n - at);
    auto [batch, batch_labels] =
        gather_batch(images, labels, identity, at, count);
    cm.add_batch(model.forward(batch), batch_labels);
  }
  model.set_training(was_training);
  return cm;
}

}  // namespace hpnn::nn
