#include "nn/module.hpp"

#include "core/error.hpp"

namespace hpnn::nn {

void Module::collect_parameters(std::vector<Parameter*>&) {}

void Module::collect_buffers(std::vector<std::pair<std::string, Tensor*>>&) {}

Module& Sequential::add(std::unique_ptr<Module> m) {
  HPNN_CHECK(m != nullptr, "Sequential::add(nullptr)");
  modules_.push_back(std::move(m));
  return *modules_.back();
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (auto& m : modules_) {
    cur = m->forward(cur);
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& m : modules_) {
    m->collect_parameters(out);
  }
}

void Sequential::collect_buffers(
    std::vector<std::pair<std::string, Tensor*>>& out) {
  for (auto& m : modules_) {
    m->collect_buffers(out);
  }
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& m : modules_) {
    m->set_training(training);
  }
}

Module& Sequential::at(std::size_t i) {
  HPNN_CHECK(i < modules_.size(), "Sequential::at out of range");
  return *modules_[i];
}

const Module& Sequential::at(std::size_t i) const {
  HPNN_CHECK(i < modules_.size(), "Sequential::at out of range");
  return *modules_[i];
}

std::vector<Parameter*> parameters_of(Module& m) {
  std::vector<Parameter*> out;
  m.collect_parameters(out);
  return out;
}

std::vector<std::pair<std::string, Tensor*>> buffers_of(Module& m) {
  std::vector<std::pair<std::string, Tensor*>> out;
  m.collect_buffers(out);
  return out;
}

std::int64_t parameter_count(Module& m) {
  std::int64_t n = 0;
  for (const auto* p : parameters_of(m)) {
    n += p->value.numel();
  }
  return n;
}

void zero_grads(Module& m) {
  for (auto* p : parameters_of(m)) {
    p->grad.zero();
  }
}

}  // namespace hpnn::nn
