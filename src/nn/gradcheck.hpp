// Central-difference gradient checking, used by the test suite to verify
// every layer's backward() against its forward().
#pragma once

#include <functional>

#include "nn/losses.hpp"
#include "nn/module.hpp"

namespace hpnn::nn {

struct GradCheckResult {
  double max_abs_err = 0.0;    // worst |analytic - numeric|
  double max_rel_err = 0.0;    // worst relative error (guarded denominator)
  std::int64_t coords_checked = 0;
  std::int64_t coords_failed = 0;  // rel err above tolerance
  bool ok = false;
};

struct GradCheckOptions {
  double epsilon = 1e-3;       // central-difference step
  double tolerance = 2e-2;     // max allowed relative error per coordinate
  /// Fraction of coordinates allowed to exceed the tolerance. Non-zero
  /// because ReLU/maxpool kinks make central differences locally wrong when
  /// a perturbation crosses an activation boundary — those outliers say
  /// nothing about the analytic gradient.
  double outlier_fraction = 0.05;
  /// Check at most this many randomly chosen coordinates per tensor
  /// (0 = all). Keeps conv checks fast without losing coverage.
  std::int64_t max_coords = 64;
  std::uint64_t seed = 7;
};

/// Checks d(loss)/d(input) of `model` via backward() against central
/// differences of the scalar loss. The model must be deterministic
/// (set_training(false) for dropout; batchnorm in train mode is fine since
/// it is deterministic given the batch).
GradCheckResult check_input_gradient(Module& model, Loss& loss,
                                     const Tensor& input,
                                     const std::vector<std::int64_t>& labels,
                                     const GradCheckOptions& opts = {});

/// Checks d(loss)/d(theta) for every parameter of `model`.
GradCheckResult check_parameter_gradients(
    Module& model, Loss& loss, const Tensor& input,
    const std::vector<std::int64_t>& labels, const GradCheckOptions& opts = {});

}  // namespace hpnn::nn
