// Residual block: out = post( main(x) + shortcut(x) ).
//
// Used by the ResNet18 builder; `post` is the activation applied to the sum
// (a plain ReLU in the baseline, a LockedActivation in HPNN networks).
#pragma once

#include <memory>
#include <string>

#include "nn/module.hpp"

namespace hpnn::nn {

class Residual : public Module {
 public:
  /// `shortcut` may be null for an identity skip connection.
  /// `post` may be null to omit the post-sum activation.
  Residual(std::unique_ptr<Module> main, std::unique_ptr<Module> shortcut,
           std::unique_ptr<Module> post, std::string name = "residual");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(
      std::vector<std::pair<std::string, Tensor*>>& out) override;
  void set_training(bool training) override;
  std::string name() const override { return name_; }

  /// Structural access for external interpreters (e.g. the trusted-device
  /// executor in src/hw); shortcut()/post() may be null.
  Module& main() { return *main_; }
  Module* shortcut() { return shortcut_.get(); }
  Module* post() { return post_.get(); }

 private:
  std::string name_;
  std::unique_ptr<Module> main_;
  std::unique_ptr<Module> shortcut_;  // null => identity
  std::unique_ptr<Module> post_;      // null => identity
};

}  // namespace hpnn::nn
