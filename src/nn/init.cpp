#include "nn/init.hpp"

#include <cmath>

#include "core/error.hpp"

namespace hpnn::nn {

void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng) {
  HPNN_CHECK(fan_in > 0, "he_normal requires fan_in > 0");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (auto& v : w.span()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
}

void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng) {
  HPNN_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform requires fans > 0");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : w.span()) {
    v = static_cast<float>(rng.uniform(-a, a));
  }
}

void small_uniform(Tensor& w, float bound, Rng& rng) {
  for (auto& v : w.span()) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace hpnn::nn
