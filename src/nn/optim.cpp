#include "nn/optim.hpp"

#include <cmath>

#include "core/error.hpp"

namespace hpnn::nn {

Sgd::Sgd(std::vector<Parameter*> params, const Options& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  HPNN_CHECK(opts_.lr > 0.0, "Sgd: lr must be positive");
  if (opts_.momentum != 0.0) {
    velocity_.reserve(params_.size());
    for (const auto* p : params_) {
      velocity_.emplace_back(p->value.shape());
    }
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(opts_.lr);
  const auto wd = static_cast<float>(opts_.weight_decay);
  const auto mom = static_cast<float>(opts_.momentum);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    if (mom == 0.0f) {
      if (wd != 0.0f) {
        p.value.axpy_(-lr * wd, p.value);
      }
      p.value.axpy_(-lr, p.grad);
    } else {
      Tensor& v = velocity_[i];
      // v = mom * v + (grad + wd * w); w -= lr * v
      v.scale_(mom);
      v.add_(p.grad);
      if (wd != 0.0f) {
        v.axpy_(wd, p.value);
      }
      p.value.axpy_(-lr, v);
    }
    p.mark_value_updated();
  }
}

Adam::Adam(std::vector<Parameter*> params, const Options& opts)
    : Optimizer(std::move(params)), opts_(opts) {
  HPNN_CHECK(opts_.lr > 0.0, "Adam: lr must be positive");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const double b1 = opts_.beta1;
  const double b2 = opts_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double alpha = opts_.lr * std::sqrt(bias2) / bias1;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      float gj = g[j];
      if (opts_.weight_decay != 0.0) {
        gj += static_cast<float>(opts_.weight_decay) * w[j];
      }
      m[j] = static_cast<float>(b1 * m[j] + (1.0 - b1) * gj);
      v[j] = static_cast<float>(b2 * v[j] + (1.0 - b2) * gj * gj);
      w[j] -= static_cast<float>(alpha * m[j] /
                                 (std::sqrt(static_cast<double>(v[j])) +
                                  opts_.eps));
    }
    p.mark_value_updated();
  }
}

void StepLr::epoch_end() {
  ++epoch_;
  if (step_size_ > 0 && epoch_ % step_size_ == 0) {
    opt_.set_lr(opt_.lr() * gamma_);
  }
}

CosineLr::CosineLr(Optimizer& opt, std::int64_t total_epochs, double min_lr)
    : opt_(opt),
      total_epochs_(total_epochs),
      base_lr_(opt.lr()),
      min_lr_(min_lr) {
  HPNN_CHECK(total_epochs > 0, "CosineLr needs a positive horizon");
  HPNN_CHECK(min_lr >= 0.0 && min_lr <= base_lr_,
             "CosineLr min_lr out of range");
}

void CosineLr::epoch_end() {
  epoch_ = std::min(epoch_ + 1, total_epochs_);
  const double t =
      static_cast<double>(epoch_) / static_cast<double>(total_epochs_);
  const double factor = 0.5 * (1.0 + std::cos(t * 3.14159265358979323846));
  opt_.set_lr(min_lr_ + (base_lr_ - min_lr_) * factor);
}

double clip_grad_norm(const std::vector<Parameter*>& params,
                      double max_norm) {
  HPNN_CHECK(max_norm > 0.0, "clip_grad_norm needs a positive bound");
  double total = 0.0;
  for (const auto* p : params) {
    total += static_cast<double>(p->grad.squared_norm());
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (auto* p : params) {
      p->grad.scale_(scale);
    }
  }
  return norm;
}

}  // namespace hpnn::nn
