#include "nn/trainer.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/metrics.hpp"
#include "tensor/ops.hpp"

namespace hpnn::nn {

std::pair<Tensor, std::vector<std::int64_t>> gather_batch(
    const Tensor& images, const std::vector<std::int64_t>& labels,
    const std::vector<std::size_t>& indices, std::size_t begin,
    std::size_t count) {
  HPNN_CHECK(images.rank() >= 2, "gather_batch: images need a batch dim");
  HPNN_CHECK(begin + count <= indices.size(), "gather_batch: range overflow");
  const std::int64_t sample = images.numel() / images.dim(0);
  std::vector<std::int64_t> dims = images.shape().dims();
  dims[0] = static_cast<std::int64_t>(count);

  Tensor batch{Shape(dims)};
  std::vector<std::int64_t> batch_labels(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = indices[begin + i];
    HPNN_CHECK(src < labels.size(), "gather_batch: index out of range");
    std::copy(images.data() + static_cast<std::int64_t>(src) * sample,
              images.data() + static_cast<std::int64_t>(src + 1) * sample,
              batch.data() + static_cast<std::int64_t>(i) * sample);
    batch_labels[i] = labels[src];
  }
  return {std::move(batch), std::move(batch_labels)};
}

TrainResult fit(Module& model, Loss& loss, Optimizer& opt,
                const Tensor& images, const std::vector<std::int64_t>& labels,
                const TrainConfig& config) {
  HPNN_CHECK(images.dim(0) == static_cast<std::int64_t>(labels.size()),
             "fit: image/label count mismatch");
  HPNN_CHECK(config.batch_size > 0 && config.epochs >= 0,
             "fit: invalid config");
  const std::size_t n = labels.size();
  Rng rng(config.shuffle_seed);
  StepLr schedule(opt, config.lr_step, config.lr_gamma);

  TrainResult result;
  const bool was_training = model.training();
  model.set_training(true);
  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    metrics::TraceSpan epoch_span("trainer.epoch");
    const auto order = rng.permutation(n);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t at = 0; at < n; at += config.batch_size) {
      const std::size_t count =
          std::min<std::size_t>(config.batch_size, n - at);
      HPNN_METRIC_OP_SCOPE("trainer.step");
      auto [batch, batch_labels] =
          gather_batch(images, labels, order, at, count);
      zero_grads(model);
      const Tensor scores = model.forward(batch);
      epoch_loss += loss.forward(scores, batch_labels);
      model.backward(loss.backward());
      opt.step();
      ++batches;
      HPNN_METRIC_COUNT("trainer.samples", count);
    }
    epoch_loss /= std::max<std::size_t>(batches, 1);
    result.epoch_loss.push_back(epoch_loss);
    HPNN_METRIC_COUNT("trainer.epochs", 1);
    HPNN_METRIC_GAUGE("trainer.last_epoch_loss", epoch_loss);
    if (config.on_epoch) {
      config.on_epoch(epoch, epoch_loss);
    }
    HPNN_LOG(Debug) << "epoch " << epoch << " loss " << epoch_loss;
    schedule.epoch_end();
  }
  model.set_training(was_training);
  result.final_loss =
      result.epoch_loss.empty() ? 0.0 : result.epoch_loss.back();
  return result;
}

double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<std::int64_t>& labels,
                         std::int64_t batch_size) {
  HPNN_CHECK(images.dim(0) == static_cast<std::int64_t>(labels.size()),
             "evaluate_accuracy: image/label count mismatch");
  HPNN_CHECK(batch_size > 0, "evaluate_accuracy: batch_size must be > 0");
  const std::size_t n = labels.size();
  if (n == 0) {
    return 0.0;
  }
  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) {
    identity[i] = i;
  }
  const bool was_training = model.training();
  model.set_training(false);
  std::int64_t correct = 0;
  for (std::size_t at = 0; at < n; at += batch_size) {
    const std::size_t count = std::min<std::size_t>(batch_size, n - at);
    auto [batch, batch_labels] =
        gather_batch(images, labels, identity, at, count);
    const Tensor scores = model.forward(batch);
    // Count exact correct predictions; deriving the count from the batch
    // accuracy ratio re-rounds and can be off by one on odd batch sizes.
    const auto predicted = ops::argmax_rows(scores);
    for (std::size_t i = 0; i < count; ++i) {
      if (predicted[i] == batch_labels[i]) {
        ++correct;
      }
    }
  }
  model.set_training(was_training);
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(n);
  HPNN_METRIC_COUNT("trainer.eval.samples", n);
  HPNN_METRIC_GAUGE("trainer.eval.last_accuracy", accuracy);
  return accuracy;
}

}  // namespace hpnn::nn
