#include "nn/summary.hpp"

#include <sstream>
#include <typeinfo>

#include "nn/batchnorm.hpp"
#include "nn/layers.hpp"
#include "nn/residual.hpp"

namespace hpnn::nn {

namespace {

std::string kind_of(Module& m) {
  if (dynamic_cast<Sequential*>(&m)) return "Sequential";
  if (dynamic_cast<Residual*>(&m)) return "Residual";
  if (dynamic_cast<Conv2d*>(&m)) return "Conv2d";
  if (dynamic_cast<Linear*>(&m)) return "Linear";
  if (dynamic_cast<BatchNorm2d*>(&m)) return "BatchNorm2d";
  if (dynamic_cast<ReLU*>(&m)) return "ReLU";
  if (dynamic_cast<MaxPool2d*>(&m)) return "MaxPool2d";
  if (dynamic_cast<AvgPool2d*>(&m)) return "AvgPool2d";
  if (dynamic_cast<GlobalAvgPool*>(&m)) return "GlobalAvgPool";
  if (dynamic_cast<Flatten*>(&m)) return "Flatten";
  if (dynamic_cast<Dropout*>(&m)) return "Dropout";
  return "Module";  // e.g. obf::LockedActivation (hpnn layers on top of nn)
}

std::int64_t own_parameters(Module& m) {
  std::vector<Parameter*> params;
  m.collect_parameters(params);
  std::int64_t n = 0;
  for (const auto* p : params) {
    n += p->value.numel();
  }
  return n;
}

void walk(Module& m, std::int64_t depth, std::vector<LayerInfo>& out) {
  LayerInfo info;
  info.name = m.name();
  info.kind = kind_of(m);
  info.depth = depth;

  if (auto* seq = dynamic_cast<Sequential*>(&m)) {
    info.parameters = own_parameters(m);
    out.push_back(info);
    for (std::size_t i = 0; i < seq->size(); ++i) {
      walk(seq->at(i), depth + 1, out);
    }
    return;
  }
  if (auto* res = dynamic_cast<Residual*>(&m)) {
    info.parameters = own_parameters(m);
    out.push_back(info);
    walk(res->main(), depth + 1, out);
    if (res->shortcut() != nullptr) {
      walk(*res->shortcut(), depth + 1, out);
    }
    if (res->post() != nullptr) {
      walk(*res->post(), depth + 1, out);
    }
    return;
  }
  info.parameters = own_parameters(m);
  out.push_back(info);
}

}  // namespace

std::vector<LayerInfo> summarize(Module& model) {
  std::vector<LayerInfo> out;
  walk(model, 0, out);
  return out;
}

std::string summary_table(Module& model) {
  const auto layers = summarize(model);
  std::ostringstream os;
  std::int64_t total = 0;
  for (const auto& layer : layers) {
    std::string indent(static_cast<std::size_t>(layer.depth) * 2, ' ');
    os << indent << layer.kind << " " << layer.name;
    // Only leaf layers report their own parameters (containers would
    // double-count).
    if (layer.kind != "Sequential" && layer.kind != "Residual") {
      if (layer.parameters > 0) {
        os << "  [" << layer.parameters << " params]";
      }
      total += layer.parameters;
    }
    os << '\n';
  }
  os << "total parameters: " << total << '\n';
  return os.str();
}

}  // namespace hpnn::nn
