// Loss functions. Each computes the mean loss over a batch in forward()
// and the gradient w.r.t. the network output in backward().
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace hpnn::nn {

/// Abstract loss over ([N, C] scores, N integer labels).
class Loss {
 public:
  virtual ~Loss() = default;
  /// Mean loss over the batch; caches what backward() needs.
  virtual float forward(const Tensor& scores,
                        const std::vector<std::int64_t>& labels) = 0;
  /// dE/dscores for the cached batch (already divided by batch size).
  virtual Tensor backward() = 0;
};

/// Softmax + cross-entropy, the standard classification loss.
class SoftmaxCrossEntropy : public Loss {
 public:
  float forward(const Tensor& scores,
                const std::vector<std::int64_t>& labels) override;
  Tensor backward() override;

 private:
  Tensor cached_probs_;
  std::vector<std::int64_t> cached_labels_;
};

/// Mean squared error against one-hot targets: E = 1/2N Σ_n Σ_j (t_j-out_j)^2.
/// This is the cost function the paper's key-dependent delta rule (Sec. III-C)
/// is derived for; we provide it so the Theorem 1 property tests use the
/// paper's exact formulation.
class MseOneHot : public Loss {
 public:
  float forward(const Tensor& scores,
                const std::vector<std::int64_t>& labels) override;
  Tensor backward() override;

 private:
  Tensor cached_scores_;
  std::vector<std::int64_t> cached_labels_;
};

/// Cross-entropy against *soft* target distributions at a distillation
/// temperature T: E = -1/N Σ_n Σ_j q_nj log softmax(z_n / T)_j.
/// (Knowledge-distillation loss; q rows must be probability vectors.)
class SoftTargetCrossEntropy {
 public:
  /// `teacher_probs` has the same [N, C] shape as `student_logits`.
  float forward(const Tensor& student_logits, const Tensor& teacher_probs,
                double temperature = 1.0);

  /// dE/d(student_logits) for the cached batch. Includes the customary T²
  /// factor so gradient magnitudes are temperature-independent.
  Tensor backward();

 private:
  Tensor cached_student_probs_;  // softmax(z/T)
  Tensor cached_teacher_probs_;
  double temperature_ = 1.0;
};

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& scores, const std::vector<std::int64_t>& labels);

}  // namespace hpnn::nn
