#include "nn/residual.hpp"

#include "core/error.hpp"

namespace hpnn::nn {

Residual::Residual(std::unique_ptr<Module> main,
                   std::unique_ptr<Module> shortcut,
                   std::unique_ptr<Module> post, std::string name)
    : name_(std::move(name)),
      main_(std::move(main)),
      shortcut_(std::move(shortcut)),
      post_(std::move(post)) {
  HPNN_CHECK(main_ != nullptr, name_ + ": main path is required");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor main_out = main_->forward(x);
  Tensor skip = shortcut_ ? shortcut_->forward(x) : x;
  HPNN_CHECK(main_out.shape() == skip.shape(),
             name_ + ": main/shortcut shape mismatch " +
                 main_out.shape().to_string() + " vs " +
                 skip.shape().to_string());
  main_out.add_(skip);
  return post_ ? post_->forward(main_out) : main_out;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g = post_ ? post_->backward(grad_out) : grad_out;
  // The sum node routes the same gradient to both branches.
  Tensor gx = main_->backward(g);
  if (shortcut_) {
    gx.add_(shortcut_->backward(g));
  } else {
    gx.add_(g);
  }
  return gx;
}

void Residual::collect_parameters(std::vector<Parameter*>& out) {
  main_->collect_parameters(out);
  if (shortcut_) {
    shortcut_->collect_parameters(out);
  }
  if (post_) {
    post_->collect_parameters(out);
  }
}

void Residual::collect_buffers(
    std::vector<std::pair<std::string, Tensor*>>& out) {
  main_->collect_buffers(out);
  if (shortcut_) {
    shortcut_->collect_buffers(out);
  }
  if (post_) {
    post_->collect_buffers(out);
  }
}

void Residual::set_training(bool training) {
  Module::set_training(training);
  main_->set_training(training);
  if (shortcut_) {
    shortcut_->set_training(training);
  }
  if (post_) {
    post_->set_training(training);
  }
}

}  // namespace hpnn::nn
