#include "nn/losses.hpp"

#include <cmath>

#include "core/error.hpp"
#include "tensor/ops.hpp"

namespace hpnn::nn {

namespace {

void check_batch(const Tensor& scores, const std::vector<std::int64_t>& labels,
                 const char* who) {
  HPNN_CHECK(scores.rank() == 2, std::string(who) + ": scores must be [N, C]");
  HPNN_CHECK(static_cast<std::int64_t>(labels.size()) == scores.dim(0),
             std::string(who) + ": label count mismatch");
  for (const auto l : labels) {
    HPNN_CHECK(l >= 0 && l < scores.dim(1),
               std::string(who) + ": label out of range");
  }
}

}  // namespace

float SoftmaxCrossEntropy::forward(const Tensor& scores,
                                   const std::vector<std::int64_t>& labels) {
  check_batch(scores, labels, "SoftmaxCrossEntropy");
  const Tensor logp = ops::log_softmax_rows(scores);
  cached_probs_ = ops::softmax_rows(scores);
  cached_labels_ = labels;
  const std::int64_t n = scores.dim(0);
  const std::int64_t c = scores.dim(1);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    loss -= logp.data()[i * c + labels[static_cast<std::size_t>(i)]];
  }
  return static_cast<float>(loss / n);
}

Tensor SoftmaxCrossEntropy::backward() {
  HPNN_CHECK(cached_probs_.numel() > 0,
             "SoftmaxCrossEntropy: backward before forward");
  const std::int64_t n = cached_probs_.dim(0);
  const std::int64_t c = cached_probs_.dim(1);
  Tensor grad = cached_probs_;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    grad.data()[i * c + cached_labels_[static_cast<std::size_t>(i)]] -= 1.0f;
  }
  grad.scale_(inv_n);
  return grad;
}

float MseOneHot::forward(const Tensor& scores,
                         const std::vector<std::int64_t>& labels) {
  check_batch(scores, labels, "MseOneHot");
  cached_scores_ = scores;
  cached_labels_ = labels;
  const std::int64_t n = scores.dim(0);
  const std::int64_t c = scores.dim(1);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const float t =
          (j == labels[static_cast<std::size_t>(i)]) ? 1.0f : 0.0f;
      const double d = t - scores.data()[i * c + j];
      loss += 0.5 * d * d;
    }
  }
  return static_cast<float>(loss / n);
}

Tensor MseOneHot::backward() {
  HPNN_CHECK(cached_scores_.numel() > 0, "MseOneHot: backward before forward");
  const std::int64_t n = cached_scores_.dim(0);
  const std::int64_t c = cached_scores_.dim(1);
  Tensor grad(cached_scores_.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const float t =
          (j == cached_labels_[static_cast<std::size_t>(i)]) ? 1.0f : 0.0f;
      // dE/dout = -(t - out) / N
      grad.data()[i * c + j] =
          (cached_scores_.data()[i * c + j] - t) * inv_n;
    }
  }
  return grad;
}

float SoftTargetCrossEntropy::forward(const Tensor& student_logits,
                                      const Tensor& teacher_probs,
                                      double temperature) {
  HPNN_CHECK(student_logits.rank() == 2 &&
                 student_logits.shape() == teacher_probs.shape(),
             "SoftTargetCrossEntropy: shape mismatch");
  HPNN_CHECK(temperature > 0.0, "distillation temperature must be positive");
  temperature_ = temperature;
  const Tensor scaled =
      student_logits * static_cast<float>(1.0 / temperature);
  cached_student_probs_ = ops::softmax_rows(scaled);
  cached_teacher_probs_ = teacher_probs;

  const Tensor logp = ops::log_softmax_rows(scaled);
  const std::int64_t n = student_logits.dim(0);
  double loss = 0.0;
  for (std::int64_t i = 0; i < logp.numel(); ++i) {
    loss -= static_cast<double>(teacher_probs.at(i)) * logp.at(i);
  }
  return static_cast<float>(loss / n);
}

Tensor SoftTargetCrossEntropy::backward() {
  HPNN_CHECK(cached_student_probs_.numel() > 0,
             "SoftTargetCrossEntropy: backward before forward");
  const std::int64_t n = cached_student_probs_.dim(0);
  Tensor grad = cached_student_probs_;
  grad.sub_(cached_teacher_probs_);
  // d/dz [-Σ q log softmax(z/T)] = (p - q)/T, times the conventional T²
  // compensation -> (p - q) * T / N.
  grad.scale_(static_cast<float>(temperature_ / static_cast<double>(n)));
  return grad;
}

double accuracy(const Tensor& scores,
                const std::vector<std::int64_t>& labels) {
  check_batch(scores, labels, "accuracy");
  const auto pred = ops::argmax_rows(scores);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) {
      ++correct;
    }
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

}  // namespace hpnn::nn
