// Core layers: Linear, Conv2d, ReLU, MaxPool2d, Flatten, GlobalAvgPool,
// Dropout. BatchNorm2d and Residual live in their own headers.
#pragma once

#include <optional>
#include <string>

#include "core/rng.hpp"
#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace hpnn::nn {

/// Fully-connected layer: y = x @ W^T + b, x: [N, in], W: [out, in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         std::string name = "linear", bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return bias_ ? &*bias_ : nullptr; }

 private:
  std::string name_;
  std::int64_t in_features_;
  std::int64_t out_features_;
  Parameter weight_;
  std::optional<Parameter> bias_;
  Tensor cached_input_;
};

/// 2-d convolution with square kernel, fixed spatial geometry.
class Conv2d : public Module {
 public:
  Conv2d(const ops::Conv2dGeometry& geometry, std::int64_t out_channels,
         Rng& rng, std::string name = "conv", bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  std::string name() const override { return name_; }

  const ops::Conv2dGeometry& geometry() const { return geometry_; }
  std::int64_t out_channels() const { return out_channels_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return bias_ ? &*bias_ : nullptr; }

 private:
  std::string name_;
  ops::Conv2dGeometry geometry_;
  std::int64_t out_channels_;
  Parameter weight_;
  std::optional<Parameter> bias_;
  Tensor cached_input_;
  // Packed weight panels for the im2col GEMM. In training mode they are
  // re-packed every forward (weights move every step) into the same
  // retained storage; in eval mode the packing is reused until the
  // parameter's mutation counter moves (optimizer step, checkpoint load —
  // see Parameter::version()).
  ops::PackedA packed_weight_;
  std::uint64_t packed_weight_version_ = 0;
};

/// Plain rectified linear unit. The HPNN LockedActivation (src/hpnn)
/// replaces this module in obfuscated networks.
class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_input_;
};

/// Max pooling with square window.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride,
            std::string name = "maxpool")
      : name_(std::move(name)), kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::int64_t kernel_;
  std::int64_t stride_;
  Shape cached_input_shape_;
  std::vector<std::int64_t> cached_argmax_;
};

/// Average pooling with square window.
class AvgPool2d : public Module {
 public:
  AvgPool2d(std::int64_t kernel, std::int64_t stride,
            std::string name = "avgpool")
      : name_(std::move(name)), kernel_(kernel), stride_(stride) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::string name_;
  std::int64_t kernel_;
  std::int64_t stride_;
  Shape cached_input_shape_;
};

/// Flattens [N, C, H, W] -> [N, C*H*W].
class Flatten : public Module {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C] (ResNet head).
class GlobalAvgPool : public Module {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_input_shape_;
};

/// Inverted dropout (train-time scaling); identity in eval mode.
class Dropout : public Module {
 public:
  Dropout(double p, std::uint64_t seed, std::string name = "dropout");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  double p_;
  Rng rng_;
  Tensor cached_mask_;
};

}  // namespace hpnn::nn
