#include "nn/batchnorm.hpp"

#include <cmath>

#include "core/error.hpp"
#include "core/threadpool.hpp"

namespace hpnn::nn {

namespace {

/// Channels are fully independent in every BatchNorm loop; fan out over
/// them when the tensor is big enough for the dispatch to pay off.
/// Per-channel results are unchanged by the partitioning, so outputs are
/// bit-identical at any thread count.
template <typename Fn>
void for_each_channel(std::int64_t channels, std::int64_t per_channel_work,
                      const Fn& fn) {
  constexpr std::int64_t kParallelWorkThreshold = 1 << 15;
  if (channels * per_channel_work < kParallelWorkThreshold) {
    for (std::int64_t c = 0; c < channels; ++c) {
      fn(c);
    }
  } else {
    core::parallel_for(0, channels, 1,
                       [&fn](std::int64_t c0, std::int64_t c1) {
                         for (std::int64_t c = c0; c < c1; ++c) {
                           fn(c);
                         }
                       });
  }
}

}  // namespace

BatchNorm2d::BatchNorm2d(std::int64_t channels, std::string name,
                         float momentum, float eps)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(name_ + ".gamma", Tensor::ones(Shape{channels})),
      beta_(name_ + ".beta", Tensor(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Shape{channels}, 1.0f) {}

Tensor BatchNorm2d::forward(const Tensor& x) {
  HPNN_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             name_ + ": expected NCHW with C=" + std::to_string(channels_) +
                 ", got " + x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  cached_input_shape_ = x.shape();

  Tensor mean(Shape{channels_});
  Tensor var(Shape{channels_});
  cached_used_batch_stats_ = training();
  if (training()) {
    for_each_channel(channels_, count, [&](std::int64_t c) {
      double s = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          s += p[j];
        }
      }
      mean.at(c) = static_cast<float>(s / count);
    });
    for_each_channel(channels_, count, [&](std::int64_t c) {
      double s = 0.0;
      const float m = mean.at(c);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          const double d = p[j] - m;
          s += d * d;
        }
      }
      var.at(c) = static_cast<float>(s / count);
    });
    // Update running statistics with the biased batch variance (PyTorch uses
    // unbiased for running stats; the distinction is immaterial here and the
    // biased form keeps eval()==train() for full-batch data).
    for (std::int64_t c = 0; c < channels_; ++c) {
      running_mean_.at(c) =
          (1.0f - momentum_) * running_mean_.at(c) + momentum_ * mean.at(c);
      running_var_.at(c) =
          (1.0f - momentum_) * running_var_.at(c) + momentum_ * var.at(c);
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  cached_inv_std_ = Tensor(Shape{channels_});
  for (std::int64_t c = 0; c < channels_; ++c) {
    cached_inv_std_.at(c) = 1.0f / std::sqrt(var.at(c) + eps_);
  }

  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  for_each_channel(channels_, count, [&](std::int64_t c) {
    const float m = mean.at(c);
    const float inv = cached_inv_std_.at(c);
    const float g = gamma_.value.at(c);
    const float b = beta_.value.at(c);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* px = x.data() + (i * channels_ + c) * plane;
      float* pxh = cached_xhat_.data() + (i * channels_ + c) * plane;
      float* py = y.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        const float xh = (px[j] - m) * inv;
        pxh[j] = xh;
        py[j] = g * xh + b;
      }
    }
  });
  return y;
}

Tensor BatchNorm2d::eval_forward(const Tensor& x) const {
  HPNN_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             name_ + ": expected NCHW with C=" + std::to_string(channels_) +
                 ", got " + x.shape().to_string());
  const std::int64_t n = x.dim(0);
  const std::int64_t plane = x.dim(2) * x.dim(3);
  Tensor y(x.shape());
  for_each_channel(channels_, n * plane, [&](std::int64_t c) {
    const float m = running_mean_.at(c);
    const float inv = 1.0f / std::sqrt(running_var_.at(c) + eps_);
    const float g = gamma_.value.at(c);
    const float b = beta_.value.at(c);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* px = x.data() + (i * channels_ + c) * plane;
      float* py = y.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        py[j] = g * ((px[j] - m) * inv) + b;
      }
    }
  });
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  HPNN_CHECK(grad_out.shape() == cached_input_shape_,
             name_ + ": grad shape mismatch");
  const std::int64_t n = grad_out.dim(0);
  const std::int64_t plane = grad_out.dim(2) * grad_out.dim(3);
  const std::int64_t count = n * plane;

  Tensor grad_x(grad_out.shape());
  for_each_channel(channels_, count, [&](std::int64_t c) {
    // Accumulate dgamma, dbeta and the two reduction terms of the batch-stat
    // chain rule in double for stability.
    double dgamma = 0.0;
    double dbeta = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* pg = grad_out.data() + (i * channels_ + c) * plane;
      const float* pxh = cached_xhat_.data() + (i * channels_ + c) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        dgamma += static_cast<double>(pg[j]) * pxh[j];
        dbeta += pg[j];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(dgamma);
    beta_.grad.at(c) += static_cast<float>(dbeta);

    const float g = gamma_.value.at(c);
    const float inv = cached_inv_std_.at(c);
    if (cached_used_batch_stats_) {
      const float mean_dy = static_cast<float>(dbeta / count);
      const float mean_dy_xhat = static_cast<float>(dgamma / count);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* pg = grad_out.data() + (i * channels_ + c) * plane;
        const float* pxh = cached_xhat_.data() + (i * channels_ + c) * plane;
        float* pgx = grad_x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          pgx[j] = g * inv * (pg[j] - mean_dy - pxh[j] * mean_dy_xhat);
        }
      }
    } else {
      // Eval mode: statistics are constants.
      for (std::int64_t i = 0; i < n; ++i) {
        const float* pg = grad_out.data() + (i * channels_ + c) * plane;
        float* pgx = grad_x.data() + (i * channels_ + c) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          pgx[j] = g * inv * pg[j];
        }
      }
    }
  });
  return grad_x;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(
    std::vector<std::pair<std::string, Tensor*>>& out) {
  out.emplace_back(name_ + ".running_mean", &running_mean_);
  out.emplace_back(name_ + ".running_var", &running_var_);
}

void BatchNorm2d::set_running_stats(Tensor mean, Tensor var) {
  HPNN_CHECK(mean.shape() == Shape({channels_}) &&
                 var.shape() == Shape({channels_}),
             name_ + ": running stats shape mismatch");
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
}

}  // namespace hpnn::nn
