// Mini-batch training loop and evaluation, shared by the owner's
// (key-dependent) training and the attacker's fine-tuning.
//
// The trainer is deliberately agnostic of HPNN: key-dependent
// backpropagation needs no trainer changes because the LockedActivation
// modules carry the lock factor through the ordinary chain rule — exactly
// the point of Sec. III-C of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/rng.hpp"
#include "nn/losses.hpp"
#include "nn/module.hpp"
#include "nn/optim.hpp"

namespace hpnn::nn {

/// Copies the sample rows at `indices` from (images, labels) into a batch.
/// images: [N, ...sample dims]; returns ([B, ...], B labels).
std::pair<Tensor, std::vector<std::int64_t>> gather_batch(
    const Tensor& images, const std::vector<std::int64_t>& labels,
    const std::vector<std::size_t>& indices, std::size_t begin,
    std::size_t count);

struct TrainConfig {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 32;
  std::uint64_t shuffle_seed = 1;
  /// lr decay: lr *= lr_gamma every lr_step epochs (0 disables).
  std::int64_t lr_step = 0;
  double lr_gamma = 1.0;
  /// Called after each epoch with (epoch index, mean train loss).
  std::function<void(std::int64_t, double)> on_epoch;
};

struct TrainResult {
  std::vector<double> epoch_loss;   // mean loss per epoch
  double final_loss = 0.0;
};

/// Runs mini-batch SGD-style training of `model` on (images, labels).
TrainResult fit(Module& model, Loss& loss, Optimizer& opt,
                const Tensor& images, const std::vector<std::int64_t>& labels,
                const TrainConfig& config);

/// Classification accuracy of `model` on (images, labels) in eval mode,
/// computed in mini-batches to bound memory.
double evaluate_accuracy(Module& model, const Tensor& images,
                         const std::vector<std::int64_t>& labels,
                         std::int64_t batch_size = 64);

}  // namespace hpnn::nn
