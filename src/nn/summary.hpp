// Model summary: a human-readable table of the module tree with parameter
// counts (what `print(model)` gives you in the big frameworks). Used by the
// CLI's `inspect` command and the examples.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace hpnn::nn {

struct LayerInfo {
  std::string name;
  std::string kind;          // "Conv2d", "Linear", "ReLU", ...
  std::int64_t depth = 0;    // nesting level in the module tree
  std::int64_t parameters = 0;
};

/// Flattens the module tree into per-layer records (depth-first).
std::vector<LayerInfo> summarize(Module& model);

/// Renders the summary as an aligned text table with a total row.
std::string summary_table(Module& model);

}  // namespace hpnn::nn
