// Weight initialization schemes.
#pragma once

#include "core/rng.hpp"
#include "tensor/tensor.hpp"

namespace hpnn::nn {

/// He (Kaiming) normal: N(0, sqrt(2/fan_in)). The paper's networks are
/// ReLU-based, so this is the default for conv/linear weights.
void he_normal(Tensor& w, std::int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
void xavier_uniform(Tensor& w, std::int64_t fan_in, std::int64_t fan_out,
                    Rng& rng);

/// Small uniform values, U(-bound, bound). Used for the "random small weight
/// parameters" initialization of the random fine-tuning attack (Sec. IV-C).
void small_uniform(Tensor& w, float bound, Rng& rng);

}  // namespace hpnn::nn
