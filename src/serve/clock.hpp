// The serving layer's clock is the core abstraction (core/clock.hpp); the
// aliases below keep the historical hpnn::serve spellings working. New code
// should prefer core::Clock directly.
#pragma once

#include "core/clock.hpp"

namespace hpnn::serve {

using Clock = core::Clock;
using SteadyClock = core::SteadyClock;
using SimulatedClock = core::SimulatedClock;

}  // namespace hpnn::serve
