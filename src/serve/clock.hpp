// Time source abstraction for the serving supervisor.
//
// Deadlines, breaker cooldowns and backoff sleeps all go through a Clock so
// the chaos harness and the unit tests can run on a SimulatedClock: sleeps
// advance a counter instead of blocking, which makes seeded chaos campaigns
// both fast and bit-reproducible (wall time never enters the control flow).
#pragma once

#include <atomic>
#include <cstdint>

namespace hpnn::serve {

/// Monotonic microsecond clock + sleep. Implementations must be safe to
/// call from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary (per-clock) epoch. Monotonic.
  virtual std::uint64_t now_us() = 0;

  /// Blocks the caller for `us` microseconds (or advances simulated time).
  virtual void sleep_us(std::uint64_t us) = 0;
};

/// Wall-clock implementation on std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  /// Process-wide instance (the default clock of a ServingSupervisor).
  static SteadyClock& instance();

  std::uint64_t now_us() override;
  void sleep_us(std::uint64_t us) override;
};

/// Deterministic virtual time: now_us() is a counter, sleep_us() advances
/// it atomically without blocking. Two runs of the same seeded scenario see
/// the exact same timestamps, so breaker cooldowns and deadlines fire
/// identically.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(std::uint64_t start_us = 0) : now_(start_us) {}

  std::uint64_t now_us() override {
    return now_.load(std::memory_order_relaxed);
  }
  void sleep_us(std::uint64_t us) override { advance(us); }

  /// Manually advances virtual time (tests stepping through cooldowns).
  void advance(std::uint64_t us) {
    now_.fetch_add(us, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> now_;
};

}  // namespace hpnn::serve
