// Replica attestation probe shared by pool maintenance and supervisor
// arbitration.
//
// A probe replays the artifact's attestation challenge on one device and
// applies *both* acceptance tests: class agreement against the owner's
// expectations (tolerant of int8-vs-float rounding) and — when the
// challenge carries one — the exact logit digest of a correctly keyed
// golden device. The digest is what catches deterministic datapath faults
// that preserve the argmax (the echo-mode blind spot documented in
// tests/serve/supervisor_test.cpp): every healthy replica reproduces the
// golden logits bit for bit, so a single differing bit is proof of fault.
#pragma once

#include "hpnn/attestation.hpp"
#include "hw/device.hpp"

namespace hpnn::serve {

struct ProbeResult {
  bool passed = false;      ///< class agreement *and* digest (when present)
  bool digest_match = true; ///< false only when a recorded digest differed
  double agreement = 0.0;
};

/// Runs the challenge probes on `device` (one inference). Throws KeyError
/// if the device's sealed key store fails its integrity check, exactly like
/// TrustedDevice::self_test; other device faults propagate as hpnn::Error.
ProbeResult attestation_probe(hw::TrustedDevice& device,
                              const obf::AttestationChallenge& challenge);

}  // namespace hpnn::serve
