// ServingSupervisor: fault-tolerant request orchestration over a
// DevicePool.
//
// The paper's device fails closed on a detected integrity fault; a serving
// fleet must additionally *stay up* while that happens. The supervisor
// turns per-device failures into pool-level resilience:
//
//   request -> [maintenance sweep] -> deadline check -> select replica
//           -> integrity pre-check -> infer -> integrity post-check
//           -> verify (echo / witness + attestation arbitration)
//           -> success, or: quarantine/penalize, seeded backoff, retry.
//
// Answer verification exploits the HPNN determinism contract: two healthy
// replicas sealed with the same diversified model key are bit-identical
// executors, so a single differing logit bit proves one of them is faulty,
// and replaying the artifact's attestation challenge on both identifies
// which. Deterministic datapath corruption (e.g. a stuck quantization-scale
// register) survives an echo on the same device but cannot survive a
// witness — which is why kWitness is the default.
//
// Every run is reproducible: backoff jitter comes from a seeded Rng, and
// all timing flows through the injected Clock (SimulatedClock in tests and
// chaos campaigns).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "serve/policy.hpp"
#include "serve/pool.hpp"

namespace hpnn::serve {

struct SupervisorConfig {
  std::size_t replicas = 4;
  RetryPolicy retry;
  DegradationPolicy degradation = DegradationPolicy::kDegradeToSubset;
  VerifyMode verify = VerifyMode::kWitness;
  /// Per-request latency budget in microseconds (0 = unbounded). Individual
  /// requests may override via RequestOptions.
  std::uint64_t default_deadline_us = 0;
  BreakerPolicy breaker;
  hw::DeviceConfig device;
  /// Seed of the backoff-jitter stream (fixed seed => reproducible retry
  /// timeline for a serial request sequence).
  std::uint64_t backoff_seed = 0x5e4e1ULL;
  /// Time source; null selects the process SteadyClock.
  Clock* clock = nullptr;
  /// Runs on every (re-)provisioned device (see ProvisionHook).
  ProvisionHook provision;
};

struct RequestOptions {
  /// Latency budget for this request (0 = use the config default).
  std::uint64_t deadline_us = 0;
};

struct RequestResult {
  Tensor logits;                      // [N, classes]
  std::vector<std::int64_t> classes;  // argmax per sample
  int attempts = 1;
  std::size_t replica = DevicePool::npos;  // replica that served the answer
  std::uint64_t latency_us = 0;            // includes retries and backoff
  /// True when part of the pool was unhealthy at completion time
  /// (DegradationPolicy::kDegradeToSubset serving on a subset).
  bool degraded = false;
};

class ServingSupervisor {
 public:
  /// Provisions `config.replicas` trusted devices from the owner's master
  /// key via keychain diversification and loads the published artifact.
  ServingSupervisor(const obf::HpnnKey& master_key,
                    const std::string& model_id,
                    const obf::PublishedModel& artifact,
                    obf::AttestationChallenge challenge,
                    SupervisorConfig config = {});

  /// Serves one inference request (images [N, C, H, W]).
  ///
  /// Throws:
  ///   - ShapeError            — malformed input (caller bug, never retried)
  ///   - TimeoutError          — deadline exceeded (before or between
  ///                             attempts; carries elapsed/budget)
  ///   - DeviceUnavailableError— pool refused per the degradation policy
  ///                             (kFailClosed: any replica unhealthy;
  ///                             kRejectWithRetryAfter: none healthy, with
  ///                             a retry_after_us backpressure hint)
  ///   - RetryExhaustedError   — all attempts failed; carries the per-
  ///                             attempt cause history
  RequestResult submit(const Tensor& images, const RequestOptions& options = {});

  DevicePool& pool() { return pool_; }
  const DevicePool& pool() const { return pool_; }
  const SupervisorConfig& config() const { return config_; }
  Clock& clock() { return *clock_; }

 private:
  /// Outcome of one attempt: served logits or a cause string.
  struct Attempt {
    bool ok = false;
    Tensor logits;
    std::size_t replica = DevicePool::npos;
    std::string cause;
  };

  Attempt try_once(const Tensor& images);
  Attempt run_verified(DevicePool::Lease& primary, const Tensor& images);
  Attempt echo_check(DevicePool::Lease& primary, Tensor logits,
                     const Tensor& images);
  Attempt digest_check(DevicePool::Lease& primary, Tensor logits,
                       const Tensor& images);

  std::uint64_t next_backoff_us(int failed_attempts);

  SupervisorConfig config_;
  core::Clock* clock_;  // resolved before pool_ so the pool can borrow it
  DevicePool pool_;
  std::mutex backoff_mutex_;
  Rng backoff_rng_;
};

/// True when two logit tensors are bit-identical (shape and every float's
/// bit pattern). The cross-replica agreement predicate.
bool bitwise_equal(const Tensor& a, const Tensor& b);

}  // namespace hpnn::serve
