#include "serve/supervisor.hpp"

#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "serve/attest.hpp"

namespace hpnn::serve {
namespace {

std::vector<std::int64_t> argmax_rows(const Tensor& logits) {
  const std::int64_t n = logits.dim(0);
  const std::int64_t classes = logits.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < classes; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) {
        best = j;
      }
    }
    out[static_cast<std::size_t>(i)] = best;
  }
  return out;
}

std::string replica_tag(std::size_t index) {
  return "replica " + std::to_string(index);
}

}  // namespace

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

ServingSupervisor::ServingSupervisor(const obf::HpnnKey& master_key,
                                     const std::string& model_id,
                                     const obf::PublishedModel& artifact,
                                     obf::AttestationChallenge challenge,
                                     SupervisorConfig config)
    : config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock
                                      : &core::SteadyClock::instance()),
      pool_(master_key, model_id, artifact, std::move(challenge),
            PoolConfig{config_.replicas, config_.device, config_.breaker},
            *clock_, config_.provision),
      backoff_rng_(config_.backoff_seed) {
  HPNN_CHECK(config_.retry.max_attempts >= 1,
             "retry policy must allow at least one attempt");
}

std::uint64_t ServingSupervisor::next_backoff_us(int failed_attempts) {
  std::lock_guard<std::mutex> lock(backoff_mutex_);
  return backoff_delay_us(config_.retry, failed_attempts, backoff_rng_);
}

RequestResult ServingSupervisor::submit(const Tensor& images,
                                        const RequestOptions& options) {
  const std::uint64_t start = clock_->now_us();
  const std::uint64_t budget = options.deadline_us != 0
                                   ? options.deadline_us
                                   : config_.default_deadline_us;
  HPNN_METRIC_COUNT("serve.requests", 1);
  std::vector<std::string> history;

  for (int attempt = 1;; ++attempt) {
    // Heal before routing: re-provision quarantined replicas and probe
    // tripped ones whose cooldown elapsed, so a retry can land on hardware
    // that was sick one attempt ago.
    pool_.run_maintenance(clock_->now_us());

    const std::uint64_t elapsed = clock_->now_us() - start;
    if (budget != 0 && elapsed >= budget) {
      HPNN_METRIC_COUNT("serve.fail.timeout", 1);
      throw TimeoutError("request deadline exceeded after " +
                             std::to_string(history.size()) +
                             " failed attempt(s)",
                         elapsed, budget);
    }

    const std::size_t admitting = pool_.admitting_count();
    if (config_.degradation == DegradationPolicy::kFailClosed &&
        admitting < pool_.size()) {
      HPNN_METRIC_COUNT("serve.fail.unavailable", 1);
      throw DeviceUnavailableError(
          "fail-closed policy: " +
          std::to_string(pool_.size() - admitting) + " of " +
          std::to_string(pool_.size()) + " replicas unhealthy");
    }

    Attempt attempt_result;
    if (admitting == 0) {
      if (config_.degradation == DegradationPolicy::kRejectWithRetryAfter) {
        const std::uint64_t now = clock_->now_us();
        const std::uint64_t due = pool_.next_maintenance_due_us(now);
        HPNN_METRIC_COUNT("serve.fail.unavailable", 1);
        throw DeviceUnavailableError("no healthy replica available",
                                     due > now ? due - now : 0);
      }
      HPNN_METRIC_COUNT("serve.attempts", 1);
      HPNN_METRIC_COUNT("serve.attempt_fail.unavailable", 1);
      attempt_result.cause = "no healthy replica available";
    } else {
      HPNN_METRIC_COUNT("serve.attempts", 1);
      attempt_result = try_once(images);
    }

    if (attempt_result.ok) {
      RequestResult result;
      result.logits = std::move(attempt_result.logits);
      result.classes = argmax_rows(result.logits);
      result.attempts = attempt;
      result.replica = attempt_result.replica;
      result.latency_us = clock_->now_us() - start;
      result.degraded = pool_.admitting_count() < pool_.size();
      HPNN_METRIC_COUNT("serve.success", 1);
      if (result.degraded) {
        HPNN_METRIC_COUNT("serve.degraded_success", 1);
      }
      HPNN_METRIC_OBSERVE("serve.request.latency_us", result.latency_us);
      if (metrics::enabled()) {
        static metrics::Histogram& attempts_hist =
            metrics::MetricsRegistry::instance().histogram(
                "serve.request.attempts",
                {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
        attempts_hist.observe(static_cast<double>(attempt));
      }
      return result;
    }

    history.push_back(std::move(attempt_result.cause));
    if (attempt >= config_.retry.max_attempts) {
      HPNN_METRIC_COUNT("serve.fail.retry_exhausted", 1);
      throw RetryExhaustedError("inference request failed", history);
    }

    const std::uint64_t delay = next_backoff_us(attempt);
    if (budget != 0 && (clock_->now_us() - start) + delay >= budget) {
      HPNN_METRIC_COUNT("serve.fail.timeout", 1);
      throw TimeoutError(
          "deadline would elapse during backoff (last cause: " +
              history.back() + ")",
          (clock_->now_us() - start) + delay, budget);
    }
    HPNN_METRIC_COUNT("serve.backoff.sleeps", 1);
    HPNN_METRIC_COUNT("serve.backoff.slept_us", delay);
    clock_->sleep_us(delay);
    HPNN_METRIC_COUNT("serve.retries", 1);
  }
}

ServingSupervisor::Attempt ServingSupervisor::try_once(const Tensor& images) {
  Attempt result;
  DevicePool::Lease primary = pool_.acquire();
  if (!primary.valid()) {
    // Raced to zero healthy replicas between the availability check and
    // the acquire; treated like any other unavailable attempt.
    HPNN_METRIC_COUNT("serve.attempt_fail.unavailable", 1);
    result.cause = "no healthy replica available";
    return result;
  }
  result.replica = primary.index;

  // Integrity pre-check: a key-store SEU must never reach the datapath.
  // infer() itself does not re-verify the digest (the paper's device fails
  // closed at load/self-test), so the supervisor gates every attempt.
  if (!primary.device->key_store().integrity_ok()) {
    pool_.quarantine(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.integrity", 1);
    result.cause = replica_tag(primary.index) +
                   ": key-store integrity check failed";
    return result;
  }

  try {
    return run_verified(primary, images);
  } catch (const ShapeError&) {
    throw;  // malformed request — a caller bug, never retried
  } catch (const KeyError& e) {
    pool_.quarantine(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.integrity", 1);
    result.cause = replica_tag(primary.index) + ": " + e.what();
    return result;
  } catch (const Error& e) {
    // Datapath malfunction mid-inference (e.g. a corrupted scale register
    // tripping a device invariant): penalize and retry elsewhere.
    pool_.report_failure(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.error", 1);
    result.cause = replica_tag(primary.index) + ": " + e.what();
    return result;
  }
}

ServingSupervisor::Attempt ServingSupervisor::run_verified(
    DevicePool::Lease& primary, const Tensor& images) {
  Attempt result;
  result.replica = primary.index;

  Tensor logits = primary.device->infer(images);

  // Post-check: catches an SEU that landed while the request was on the
  // datapath (long batches on real hardware).
  if (!primary.device->key_store().integrity_ok()) {
    pool_.quarantine(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.integrity", 1);
    result.cause = replica_tag(primary.index) +
                   ": key-store integrity check failed after inference";
    return result;
  }

  if (config_.verify == VerifyMode::kNone) {
    pool_.report_success(primary.index);
    result.ok = true;
    result.logits = std::move(logits);
    return result;
  }
  if (config_.verify == VerifyMode::kEcho) {
    return echo_check(primary, std::move(logits), images);
  }
  if (config_.verify == VerifyMode::kDigest) {
    return digest_check(primary, std::move(logits), images);
  }

  // kWitness: find a second replica whose key store is intact.
  DevicePool::Lease witness;
  for (std::size_t guard = 0; guard < pool_.size(); ++guard) {
    witness = pool_.acquire_witness(primary.index);
    if (!witness.valid()) {
      break;
    }
    if (witness.device->key_store().integrity_ok()) {
      break;
    }
    pool_.quarantine(witness.index);
    witness = {};  // quarantined replicas are not offered again
  }
  if (!witness.valid()) {
    // Single healthy replica (or all peers busy): degrade to the digest
    // self-witness (itself degrading to an echo when no digest exists).
    return digest_check(primary, std::move(logits), images);
  }

  HPNN_METRIC_COUNT("serve.witness.runs", 1);
  Tensor witness_logits;
  try {
    witness_logits = witness.device->infer(images);
  } catch (const KeyError&) {
    pool_.quarantine(witness.index);
    witness = {};
    return digest_check(primary, std::move(logits), images);
  } catch (const ShapeError&) {
    throw;
  } catch (const Error&) {
    pool_.report_failure(witness.index);
    witness = {};
    return digest_check(primary, std::move(logits), images);
  }

  if (bitwise_equal(logits, witness_logits)) {
    // Healthy replicas are bit-identical executors; exact agreement is the
    // expected case, not a lucky one.
    pool_.report_success(primary.index);
    pool_.report_success(witness.index);
    result.ok = true;
    result.logits = std::move(logits);
    return result;
  }

  // One of the two is faulty. Arbitrate by replaying the artifact's
  // attestation challenge on both replicas (class agreement plus the golden
  // logit digest when the challenge records one — the digest makes faults
  // that preserve the argmax, like a stuck bit 30, decisively attributable).
  HPNN_METRIC_COUNT("serve.witness.mismatches", 1);
  const auto attest = [this](DevicePool::Lease& lease) {
    try {
      return attestation_probe(*lease.device, pool_.challenge()).passed;
    } catch (const Error&) {
      return false;  // KeyError => integrity gone => failed attestation
    }
  };
  const bool primary_passed = attest(primary);
  const bool witness_passed = attest(witness);
  if (!primary_passed) {
    pool_.quarantine(primary.index);
  }
  if (!witness_passed) {
    pool_.quarantine(witness.index);
  }

  if (primary_passed && !witness_passed) {
    // The witness was the liar; the primary's answer stands.
    pool_.report_success(primary.index);
    result.ok = true;
    result.logits = std::move(logits);
    return result;
  }

  HPNN_METRIC_COUNT("serve.attempt_fail.mismatch", 1);
  if (primary_passed && witness_passed) {
    // Transient fault, cannot attribute: penalize both, retry elsewhere.
    pool_.report_failure(primary.index);
    pool_.report_failure(witness.index);
    result.cause = replica_tag(primary.index) + " and " +
                   replica_tag(witness.index) +
                   " disagreed; attestation inconclusive";
  } else {
    result.cause = replica_tag(primary.index) +
                   ": failed attestation after witness mismatch";
  }
  return result;
}

ServingSupervisor::Attempt ServingSupervisor::echo_check(
    DevicePool::Lease& primary, Tensor logits, const Tensor& images) {
  Attempt result;
  result.replica = primary.index;

  HPNN_METRIC_COUNT("serve.echo.runs", 1);
  const Tensor replay = primary.device->infer(images);
  if (bitwise_equal(logits, replay)) {
    pool_.report_success(primary.index);
    result.ok = true;
    result.logits = std::move(logits);
    return result;
  }

  // The device contradicted itself: a transient datapath fault fired in at
  // least one of the two runs.
  HPNN_METRIC_COUNT("serve.echo.mismatches", 1);
  HPNN_METRIC_COUNT("serve.attempt_fail.mismatch", 1);
  bool passed = false;
  try {
    passed = primary.device->self_test(pool_.challenge()).passed;
  } catch (const Error&) {
    passed = false;
  }
  if (passed) {
    pool_.report_failure(primary.index);
    result.cause = replica_tag(primary.index) +
                   ": echo mismatch (transient datapath fault suspected)";
  } else {
    pool_.quarantine(primary.index);
    result.cause = replica_tag(primary.index) +
                   ": echo mismatch and failed attestation";
  }
  return result;
}

ServingSupervisor::Attempt ServingSupervisor::digest_check(
    DevicePool::Lease& primary, Tensor logits, const Tensor& images) {
  if (pool_.challenge().logit_digest_hex.empty()) {
    // Artifact published before golden digests existed: the strongest
    // single-replica check left is the echo.
    return echo_check(primary, std::move(logits), images);
  }

  Attempt result;
  result.replica = primary.index;

  HPNN_METRIC_COUNT("serve.digest.runs", 1);
  ProbeResult probe;
  try {
    probe = attestation_probe(*primary.device, pool_.challenge());
  } catch (const KeyError& e) {
    pool_.quarantine(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.integrity", 1);
    result.cause = replica_tag(primary.index) + ": " + e.what();
    return result;
  } catch (const Error& e) {
    pool_.report_failure(primary.index);
    HPNN_METRIC_COUNT("serve.attempt_fail.error", 1);
    result.cause = replica_tag(primary.index) +
                   ": probe replay failed: " + e.what();
    return result;
  }

  if (probe.passed) {
    pool_.report_success(primary.index);
    result.ok = true;
    result.logits = std::move(logits);
    return result;
  }

  // The replica no longer reproduces the owner's golden probe logits: its
  // datapath (or key material) is corrupt right now, whether or not the
  // fault is deterministic. The answer it just served is not trustworthy.
  HPNN_METRIC_COUNT("serve.digest.mismatches", 1);
  HPNN_METRIC_COUNT("serve.attempt_fail.mismatch", 1);
  pool_.quarantine(primary.index);
  result.cause = replica_tag(primary.index) +
                 ": probe logits diverged from golden digest (class "
                 "agreement " +
                 std::to_string(probe.agreement) + ")";
  return result;
}

}  // namespace hpnn::serve
