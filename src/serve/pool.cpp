#include "serve/pool.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/threadpool.hpp"
#include "hpnn/keychain.hpp"
#include "serve/attest.hpp"

namespace hpnn::serve {

DevicePool::DevicePool(const obf::HpnnKey& master_key,
                       const std::string& model_id,
                       const obf::PublishedModel& artifact,
                       obf::AttestationChallenge challenge, PoolConfig config,
                       core::Clock& clock, ProvisionHook hook)
    : model_key_(obf::derive_model_key(master_key, model_id)),
      schedule_seed_(obf::derive_schedule_seed(master_key, model_id)),
      artifact_(artifact),
      challenge_(std::move(challenge)),
      config_(config),
      clock_(clock),
      hook_(std::move(hook)) {
  HPNN_CHECK(config_.replicas >= 1, "device pool needs at least one replica");
  replicas_.resize(config_.replicas);
  for (auto& replica : replicas_) {
    replica.mutex = std::make_unique<std::mutex>();
    replica.breaker = CircuitBreaker(config_.breaker);
  }
  // Initial provisioning fans out on the threadpool: each replica derives
  // the same sealed secrets independently, exactly like a device batch
  // programmed from one license record.
  core::parallel_for(
      0, static_cast<std::int64_t>(replicas_.size()), 1,
      [this](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          replicas_[static_cast<std::size_t>(i)].device =
              build_device(static_cast<std::size_t>(i), /*reprovision=*/false);
        }
      });
  HPNN_METRIC_GAUGE("serve.pool.size", replicas_.size());
  std::lock_guard<std::mutex> lock(mutex_);
  update_gauges_locked();
}

std::unique_ptr<hw::TrustedDevice> DevicePool::build_device(std::size_t index,
                                                            bool reprovision) {
  auto device = std::make_unique<hw::TrustedDevice>(model_key_, schedule_seed_,
                                                    config_.device);
  device->load_model(artifact_);
  if (hook_) {
    hook_(*device, index, reprovision);
  }
  return device;
}

std::size_t DevicePool::admitting_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& replica : replicas_) {
    n += replica.breaker.admits() ? 1 : 0;
  }
  return n;
}

BreakerState DevicePool::state(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_.at(index).breaker.state();
}

std::uint64_t DevicePool::reprovision_count(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_.at(index).reprovisions;
}

PoolStats DevicePool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<std::size_t> DevicePool::admitting_rotation_locked(
    bool advance_cursor) {
  std::vector<std::size_t> admitting;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].breaker.admits() && !replicas_[i].busy_maintenance) {
      admitting.push_back(i);
    }
  }
  if (admitting.empty()) {
    return admitting;
  }
  const std::size_t start = rr_cursor_ % admitting.size();
  if (advance_cursor) {
    ++rr_cursor_;
  }
  std::rotate(admitting.begin(),
              admitting.begin() + static_cast<std::ptrdiff_t>(start),
              admitting.end());
  return admitting;
}

DevicePool::Lease DevicePool::acquire() {
  std::vector<std::size_t> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    order = admitting_rotation_locked(/*advance_cursor=*/true);
  }
  if (order.empty()) {
    return {};
  }
  for (std::size_t index : order) {
    std::unique_lock<std::mutex> lease_lock(*replicas_[index].mutex,
                                            std::try_to_lock);
    if (lease_lock.owns_lock()) {
      return Lease{replicas_[index].device.get(), index,
                   std::move(lease_lock)};
    }
  }
  // Every admitting replica is busy: wait on the round-robin choice. The
  // caller holds no other replica lease here, so this cannot deadlock.
  const std::size_t index = order.front();
  std::unique_lock<std::mutex> lease_lock(*replicas_[index].mutex);
  return Lease{replicas_[index].device.get(), index, std::move(lease_lock)};
}

DevicePool::Lease DevicePool::acquire_witness(std::size_t exclude) {
  std::vector<std::size_t> order;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Deterministic witness choice: first admitting replica after the
    // primary in cyclic index order (independent of the round-robin
    // cursor, so witness selection never perturbs primary routing).
    for (std::size_t step = 1; step < replicas_.size() + 1; ++step) {
      const std::size_t i = (exclude + step) % replicas_.size();
      if (i != exclude && replicas_[i].breaker.admits() &&
          !replicas_[i].busy_maintenance) {
        order.push_back(i);
      }
    }
  }
  for (std::size_t index : order) {
    // Try-lock only: the caller already holds the primary's lease, and a
    // blocking second lock could deadlock against another request doing
    // the same dance in the opposite order.
    std::unique_lock<std::mutex> lease_lock(*replicas_[index].mutex,
                                            std::try_to_lock);
    if (lease_lock.owns_lock()) {
      return Lease{replicas_[index].device.get(), index,
                   std::move(lease_lock)};
    }
  }
  return {};
}

void DevicePool::report_success(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  replicas_.at(index).breaker.record_success();
  update_gauges_locked();
}

bool DevicePool::report_failure(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool tripped =
      replicas_.at(index).breaker.record_failure(clock_.now_us());
  if (tripped) {
    ++stats_.breaker_trips;
    HPNN_METRIC_COUNT("serve.breaker.trips", 1);
  }
  update_gauges_locked();
  return tripped;
}

void DevicePool::quarantine(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& replica = replicas_.at(index);
  if (replica.breaker.state() == BreakerState::kQuarantined) {
    return;  // already counted for this sick episode
  }
  replica.breaker.quarantine();
  ++stats_.quarantines;
  HPNN_METRIC_COUNT("serve.quarantines", 1);
  update_gauges_locked();
}

void DevicePool::run_maintenance(std::uint64_t now_us) {
  struct Claim {
    std::size_t index = 0;
    bool reprovision = false;
  };
  std::vector<Claim> claims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      auto& replica = replicas_[i];
      if (replica.busy_maintenance ||
          !replica.breaker.maintenance_due(now_us)) {
        continue;
      }
      replica.busy_maintenance = true;
      claims.push_back(
          {i, replica.breaker.state() == BreakerState::kQuarantined});
    }
  }
  if (claims.empty()) {
    return;
  }

  struct Outcome {
    bool success = false;
    bool integrity_fault = false;
  };
  std::vector<Outcome> outcomes(claims.size());
  // Probes and re-provisions for distinct replicas are independent, so the
  // claimed batch fans out on the threadpool. Outcomes land in per-claim
  // slots; breaker transitions are applied afterwards in claim order under
  // the pool mutex, so the resulting state is schedule-independent.
  core::parallel_for(
      0, static_cast<std::int64_t>(claims.size()), 1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t k = begin; k < end; ++k) {
          const Claim& claim = claims[static_cast<std::size_t>(k)];
          Outcome& out = outcomes[static_cast<std::size_t>(k)];
          auto& replica = replicas_[claim.index];
          if (claim.reprovision) {
            try {
              auto fresh = build_device(claim.index, /*reprovision=*/true);
              if (attestation_probe(*fresh, challenge_).passed) {
                std::lock_guard<std::mutex> lease(*replica.mutex);
                replica.device = std::move(fresh);
                out.success = true;
              }
            } catch (const Error&) {
              // Provisioning or attestation of the fresh device failed:
              // the replica stays quarantined until the next round.
            }
          } else {
            try {
              std::lock_guard<std::mutex> lease(*replica.mutex);
              out.success =
                  attestation_probe(*replica.device, challenge_).passed;
            } catch (const KeyError&) {
              out.integrity_fault = true;
            } catch (const Error&) {
              out.success = false;
            }
          }
        }
      });

  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t k = 0; k < claims.size(); ++k) {
    auto& replica = replicas_[claims[k].index];
    replica.busy_maintenance = false;
    if (claims[k].reprovision) {
      if (outcomes[k].success) {
        replica.breaker.reset();
        ++replica.reprovisions;
        ++stats_.reprovisions;
        HPNN_METRIC_COUNT("serve.reprovisions", 1);
      } else {
        ++stats_.reprovision_failures;
        HPNN_METRIC_COUNT("serve.reprovision_failures", 1);
      }
      continue;
    }
    ++stats_.probes;
    HPNN_METRIC_COUNT("serve.probes", 1);
    if (!outcomes[k].success) {
      ++stats_.probe_failures;
      HPNN_METRIC_COUNT("serve.probe_failures", 1);
    }
    if (outcomes[k].integrity_fault) {
      replica.breaker.quarantine();
      ++stats_.quarantines;
      HPNN_METRIC_COUNT("serve.quarantines", 1);
    } else {
      replica.breaker.record_probe(outcomes[k].success, now_us);
      if (replica.breaker.state() == BreakerState::kQuarantined) {
        // record_probe escalated: probe failures exceeded the limit.
        ++stats_.quarantines;
        HPNN_METRIC_COUNT("serve.quarantines", 1);
      }
    }
  }
  update_gauges_locked();
}

std::uint64_t DevicePool::next_maintenance_due_us(std::uint64_t now_us) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (const auto& replica : replicas_) {
    if (replica.breaker.admits()) {
      continue;
    }
    best = std::min(best, replica.breaker.maintenance_due_at(now_us));
  }
  return best == std::numeric_limits<std::uint64_t>::max() ? now_us : best;
}

void DevicePool::with_replica(
    std::size_t index, const std::function<void(hw::TrustedDevice&)>& fn) {
  auto& replica = replicas_.at(index);
  std::lock_guard<std::mutex> lease(*replica.mutex);
  fn(*replica.device);
}

void DevicePool::update_gauges_locked() {
  if (!metrics::enabled()) {
    return;
  }
  auto& registry = metrics::MetricsRegistry::instance();
  if (healthy_gauge_ == nullptr) {
    healthy_gauge_ = &registry.gauge("serve.pool.healthy");
    state_gauges_.resize(replicas_.size(), nullptr);
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      state_gauges_[i] = &registry.gauge("serve.replica." + std::to_string(i) +
                                         ".state");
    }
  }
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const BreakerState state = replicas_[i].breaker.state();
    healthy += replicas_[i].breaker.admits() ? 1 : 0;
    state_gauges_[i]->set(static_cast<double>(static_cast<int>(state)));
  }
  healthy_gauge_->set(static_cast<double>(healthy));
}

}  // namespace hpnn::serve
