#include "serve/breaker.hpp"

namespace hpnn::serve {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void CircuitBreaker::record_success() {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= policy_.half_open_successes) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        half_open_successes_ = 0;
        probe_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
    case BreakerState::kQuarantined:
      // Success reports can race a trip (another thread's failure tripped
      // the breaker while this request was in flight). Ignore them.
      break;
  }
}

bool CircuitBreaker::record_failure(std::uint64_t now_us) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        state_ = BreakerState::kOpen;
        opened_at_us_ = now_us;
        consecutive_failures_ = 0;
        return true;
      }
      return false;
    case BreakerState::kHalfOpen:
      // Any failure during trial traffic re-opens immediately.
      state_ = BreakerState::kOpen;
      opened_at_us_ = now_us;
      half_open_successes_ = 0;
      return true;
    case BreakerState::kOpen:
    case BreakerState::kQuarantined:
      return false;
  }
  return false;
}

void CircuitBreaker::quarantine() {
  state_ = BreakerState::kQuarantined;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_failures_ = 0;
}

bool CircuitBreaker::maintenance_due(std::uint64_t now_us) const {
  switch (state_) {
    case BreakerState::kQuarantined:
      return true;
    case BreakerState::kOpen:
      return now_us - opened_at_us_ >= policy_.open_cooldown_us;
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return false;
  }
  return false;
}

std::uint64_t CircuitBreaker::maintenance_due_at(std::uint64_t now_us) const {
  if (state_ != BreakerState::kOpen) {
    return now_us;
  }
  const std::uint64_t due = opened_at_us_ + policy_.open_cooldown_us;
  return due > now_us ? due : now_us;
}

void CircuitBreaker::record_probe(bool passed, std::uint64_t now_us) {
  if (state_ != BreakerState::kOpen) {
    return;
  }
  if (passed) {
    state_ = BreakerState::kHalfOpen;
    half_open_successes_ = 0;
    probe_failures_ = 0;
  } else if (++probe_failures_ >= policy_.probe_failure_limit) {
    quarantine();
  } else {
    // Restart the cooldown before the next probe.
    opened_at_us_ = now_us;
  }
}

void CircuitBreaker::reset() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_failures_ = 0;
  opened_at_us_ = 0;
}

}  // namespace hpnn::serve
