// Concurrent fleet provisioning: program N trusted devices from one owner
// master key and verify each one by attestation.
//
// This is the Fig. 1 deployment step at scale — a hardware vendor receives
// a license record for (master key, model id) and burns a batch of
// devices. Every device independently derives the same model key and
// schedule seed via keychain diversification (hpnn/keychain.hpp), loads
// the published artifact, and replays the owner's attestation challenge to
// prove it decodes the model before it ships. Provisioning fans out on the
// deterministic threadpool: per-device results land in pre-sized slots, so
// the report is bit-identical at any HPNN_THREADS setting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hpnn/attestation.hpp"
#include "hpnn/key.hpp"
#include "hpnn/model_io.hpp"
#include "hw/device.hpp"

namespace hpnn::serve {

struct FleetConfig {
  std::size_t devices = 16;
  hw::DeviceConfig device;
  /// Replay the attestation challenge on every provisioned device. Off =
  /// provisioning throughput only (devices still load the model).
  bool attest = true;
};

struct FleetDeviceReport {
  bool provisioned = false;  ///< device built and model loaded
  bool attested = false;     ///< challenge replay passed (if attempted)
  double agreement = 0.0;    ///< challenge agreement fraction
  std::string error;         ///< first failure, empty on success
};

struct FleetReport {
  std::string model_key_fingerprint;  // public: safe to log/store
  std::size_t provisioned = 0;
  std::size_t attested = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
  double devices_per_second = 0.0;
  std::vector<FleetDeviceReport> devices;

  /// Every device provisioned, and attested when attestation was on.
  bool all_ok(bool attest_required) const;
};

/// Provisions `config.devices` trusted devices for (master_key, model_id)
/// and loads `artifact` into each, attesting against `challenge` when
/// configured. Per-device failures are recorded, never thrown: a bad
/// device in a batch of thousands is a report row, not an abort.
FleetReport provision_fleet(const obf::HpnnKey& master_key,
                            const std::string& model_id,
                            const obf::PublishedModel& artifact,
                            const obf::AttestationChallenge& challenge,
                            const FleetConfig& config);

/// One-line-per-field JSON report (bench/CI artifact format).
void write_fleet_json(std::ostream& os, const FleetReport& report);

}  // namespace hpnn::serve
