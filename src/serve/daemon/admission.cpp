#include "serve/daemon/admission.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"
#include "core/metrics.hpp"

namespace hpnn::serve {

AdmissionController::AdmissionController(AdmissionConfig config,
                                         core::Clock& clock)
    : config_(config), clock_(clock) {
  HPNN_CHECK(config_.low_watermark <= config_.high_watermark,
             "low watermark must not exceed high watermark");
  HPNN_CHECK(config_.per_tenant.tokens_per_sec >= 0.0,
             "tokens_per_sec must be non-negative");
  HPNN_CHECK(config_.per_tenant.burst >= 1.0,
             "token bucket burst must be at least 1");
}

std::uint64_t AdmissionController::drain_hint_locked(
    std::size_t queue_depth) const {
  const double per_request =
      drain_seeded_
          ? drain_ewma_us_
          : static_cast<double>(config_.initial_drain_us_per_request);
  const std::size_t excess = queue_depth > config_.low_watermark
                                 ? queue_depth - config_.low_watermark
                                 : 0;
  return static_cast<std::uint64_t>(
      std::llround(per_request * static_cast<double>(excess + 1)));
}

void AdmissionController::refill_locked(Bucket& bucket,
                                        std::uint64_t now_us) const {
  const double rate = config_.per_tenant.tokens_per_sec;
  if (now_us > bucket.last_refill_us) {
    const double elapsed_s =
        static_cast<double>(now_us - bucket.last_refill_us) * 1e-6;
    bucket.tokens =
        std::min(config_.per_tenant.burst, bucket.tokens + elapsed_s * rate);
  }
  bucket.last_refill_us = now_us;
}

void AdmissionController::admit(const std::string& tenant,
                                std::size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mutex_);

  // Watermark hysteresis: flip the shedding latch on the band edges.
  if (!shedding_ && queue_depth >= config_.high_watermark) {
    shedding_ = true;
    HPNN_METRIC_COUNT("serve.daemon.shed.engaged", 1);
  } else if (shedding_ && queue_depth <= config_.low_watermark) {
    shedding_ = false;
    HPNN_METRIC_COUNT("serve.daemon.shed.released", 1);
  }
  if (shedding_) {
    ++stats_.shed_watermark;
    HPNN_METRIC_COUNT("serve.daemon.shed.watermark", 1);
    throw AdmissionRejectedError(
        "daemon shedding load: queue depth " + std::to_string(queue_depth) +
            " over high watermark " + std::to_string(config_.high_watermark),
        drain_hint_locked(queue_depth));
  }

  const double rate = config_.per_tenant.tokens_per_sec;
  if (rate > 0.0) {
    const std::uint64_t now = clock_.now_us();
    auto [it, fresh] = buckets_.try_emplace(tenant);
    Bucket& bucket = it->second;
    if (fresh) {
      bucket.tokens = config_.per_tenant.burst;  // new tenants start full
      bucket.last_refill_us = now;
    }
    refill_locked(bucket, now);
    if (bucket.tokens < 1.0) {
      ++stats_.shed_rate;
      HPNN_METRIC_COUNT("serve.daemon.shed.tenant_rate", 1);
      const auto wait_us = static_cast<std::uint64_t>(
          std::ceil((1.0 - bucket.tokens) / rate * 1e6));
      throw AdmissionRejectedError(
          "tenant " + tenant + " over sustained rate", wait_us);
    }
    bucket.tokens -= 1.0;
  }

  ++stats_.admitted;
  HPNN_METRIC_COUNT("serve.daemon.admitted", 1);
}

void AdmissionController::observe_drain(std::uint64_t us_per_request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto sample = static_cast<double>(us_per_request);
  if (!drain_seeded_) {
    drain_ewma_us_ = sample;
    drain_seeded_ = true;
    return;
  }
  drain_ewma_us_ += 0.2 * (sample - drain_ewma_us_);
}

bool AdmissionController::shedding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedding_;
}

std::uint64_t AdmissionController::watermark_retry_after_us(
    std::size_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return drain_hint_locked(queue_depth);
}

void AdmissionController::reload(const AdmissionConfig& config) {
  HPNN_CHECK(config.low_watermark <= config.high_watermark,
             "low watermark must not exceed high watermark");
  HPNN_CHECK(config.per_tenant.burst >= 1.0,
             "token bucket burst must be at least 1");
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  for (auto& [tenant, bucket] : buckets_) {
    bucket.tokens = std::min(bucket.tokens, config_.per_tenant.burst);
  }
}

AdmissionConfig AdmissionController::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hpnn::serve
