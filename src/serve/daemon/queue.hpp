// Bounded multi-producer request queue with per-tenant fairness.
//
// The daemon's front door: producers (protocol handlers, the load
// generator) push PendingRequests; the batcher pops them in tenant-fair
// order. Capacity is a hard bound — a full queue throws QueueFullError with
// the observed depth so callers can surface backpressure — and every
// request carries a queue-wait deadline so work that has already missed its
// SLO is expired *before* it wastes device time.
//
// Fairness: one FIFO lane per tenant, served round-robin over the sorted
// tenant names. A tenant flooding the queue delays only its own lane; the
// rotation order is a pure function of the lane contents, so pump-mode runs
// are deterministic.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/clock.hpp"
#include "tensor/tensor.hpp"

namespace hpnn::serve {

struct QueueConfig {
  /// Hard bound on queued requests; push beyond it throws QueueFullError.
  std::size_t capacity = 256;
  /// Per-request queue-wait budget (0 = unbounded): a request older than
  /// this is failed with TimeoutError instead of being served late.
  std::uint64_t max_queue_wait_us = 0;
};

/// What a completed daemon request resolves to. Logits stay batch-internal
/// (the correctness oracle verifies at coalesced-batch granularity via the
/// daemon's batch observer); clients get classes plus accounting.
struct Reply {
  std::vector<std::int64_t> classes;
  std::size_t replica = 0;
  int attempts = 1;
  /// Time spent queued before the batch was cut.
  std::uint64_t queue_wait_us = 0;
  /// Enqueue-to-completion latency (queue wait + batch service).
  std::uint64_t latency_us = 0;
  bool degraded = false;
  std::uint64_t batch_id = 0;
  std::int64_t batch_rows = 0;
  /// Fingerprint of the tenant's session key (SessionCache).
  std::string session_fingerprint;
};

/// One in-flight request: payload plus a single-assignment completion slot.
/// Shared between the producer (who waits on it) and the worker that
/// completes or fails it. All members are safe to call concurrently.
class PendingRequest {
 public:
  PendingRequest(std::string tenant, std::uint64_t id, Tensor images,
                 std::uint64_t enqueued_at_us)
      : tenant_(std::move(tenant)),
        id_(id),
        images_(std::move(images)),
        enqueued_at_us_(enqueued_at_us) {}

  const std::string& tenant() const { return tenant_; }
  std::uint64_t id() const { return id_; }
  const Tensor& images() const { return images_; }
  std::int64_t rows() const { return images_.dim(0); }
  std::uint64_t enqueued_at_us() const { return enqueued_at_us_; }

  /// Set once by the daemon before enqueue (session fingerprint at
  /// admission time); the queue's mutex orders it before any worker read.
  void set_session_fingerprint(std::string fingerprint) {
    session_fingerprint_ = std::move(fingerprint);
  }
  const std::string& session_fingerprint() const {
    return session_fingerprint_;
  }

  void complete(Reply reply);
  void fail(std::exception_ptr error);
  bool done() const;
  /// Blocks until complete()/fail() (threaded mode; pump mode never waits).
  void wait();
  /// Returns the reply or rethrows the failure. Requires done().
  Reply take();

 private:
  std::string tenant_;
  std::uint64_t id_ = 0;
  Tensor images_;
  std::uint64_t enqueued_at_us_ = 0;
  std::string session_fingerprint_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  Reply reply_;
  std::exception_ptr error_;
};

class RequestQueue {
 public:
  RequestQueue(QueueConfig config, core::Clock& clock);

  /// Enqueues into the tenant's lane. Throws QueueFullError at capacity and
  /// plain Error once the queue is closed (drain in progress).
  void push(std::shared_ptr<PendingRequest> request);

  /// Pops the next request in tenant-fair rotation whose row count is at
  /// most `max_rows` (so the batcher can fill a batch without push-back).
  /// Expires stale requests first. Returns nullptr when nothing fits.
  std::shared_ptr<PendingRequest> pop(std::uint64_t now_us,
                                      std::int64_t max_rows = INT64_MAX);

  /// Fails every request older than max_queue_wait_us with TimeoutError.
  /// Returns how many were expired. No-op when the budget is 0.
  std::size_t expire(std::uint64_t now_us);

  std::size_t depth() const;
  /// Total queued sample rows (sum of images.dim(0)).
  std::int64_t rows() const;
  bool empty() const { return depth() == 0; }
  /// Enqueue time of the oldest queued request; UINT64_MAX when empty.
  std::uint64_t oldest_enqueued_at_us() const;

  /// Closes the front door: subsequent pushes throw, pops keep draining.
  void close();
  bool closed() const;
  /// Fails everything still queued (hard stop). Returns the count.
  std::size_t fail_all(const std::string& reason);

  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);
  std::uint64_t max_queue_wait_us() const;
  std::uint64_t expired_total() const;

  /// Threaded mode: blocks up to timeout_us for the queue to be non-empty
  /// (or closed). Returns depth() > 0. Pump mode never calls this.
  bool wait_nonempty(std::uint64_t timeout_us);

 private:
  // All fields below guarded by mutex_.
  std::shared_ptr<PendingRequest> pop_locked(std::uint64_t now_us,
                                             std::int64_t max_rows);
  std::size_t expire_locked(std::uint64_t now_us);
  void remove_accounting_locked(const PendingRequest& request);

  QueueConfig config_;
  core::Clock& clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Per-tenant FIFO lanes, iterated in sorted-name order for fairness.
  std::map<std::string, std::deque<std::shared_ptr<PendingRequest>>> lanes_;
  /// Tenant served last; the rotation resumes strictly after it.
  std::string cursor_;
  std::size_t depth_ = 0;
  std::int64_t rows_ = 0;
  bool closed_ = false;
  std::uint64_t expired_total_ = 0;
};

}  // namespace hpnn::serve
