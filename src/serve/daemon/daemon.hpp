// ServeDaemon: the serving front-end tying queue, batcher, admission,
// sessions and the fault-tolerant ServingSupervisor into one request path:
//
//   submit -> admission gate (token bucket + watermarks, sheds with
//             retry_after) -> session ticket -> bounded fair queue
//          -> adaptive batcher cuts an MMU-sized coalesced batch
//          -> supervisor serves it (retries / witness / quarantine)
//          -> per-request replies; sessions of tenants whose batch
//             triggered an integrity quarantine are revoked.
//
// Two execution modes behind one API:
//   - pump mode (workers == 0): the caller drives pump()/pump_until_idle()
//     on a SimulatedClock — single-threaded, bit-deterministic; what every
//     overload test and the load generator use.
//   - threaded mode (workers >= 1): start() spawns workers that block on
//     the queue; what `hpnn serve` runs on a SteadyClock.
//
// Correctness note: dynamic int8 quantization scales depend on batch
// content, so co-batched requests are *not* bitwise-equivalent to serving
// them alone. The batch observer hook hands oracles the exact coalesced
// tensor + supervisor result, which is the granularity at which "zero wrong
// answers" is asserted.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/daemon/admission.hpp"
#include "serve/daemon/batcher.hpp"
#include "serve/daemon/queue.hpp"
#include "serve/daemon/session.hpp"
#include "serve/supervisor.hpp"

namespace hpnn::serve {

struct DaemonConfig {
  QueueConfig queue;
  BatcherConfig batcher;
  AdmissionConfig admission;
  SessionCacheConfig sessions;
  /// 0 = pump mode (caller drives); >= 1 spawns that many worker threads.
  std::size_t workers = 0;
  /// Simulated batch service time: when non-zero the daemon advances the
  /// clock by base + per_row * rows for every batch, which is what makes
  /// "sustainable load" well-defined on a SimulatedClock. Leave 0 on a
  /// SteadyClock (real inference time is the service time).
  std::uint64_t sim_service_base_us = 0;
  std::uint64_t sim_service_per_row_us = 0;
};

struct DaemonStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  std::uint64_t expired = 0;
  std::size_t queue_depth = 0;
  AdmissionController::Stats admission;
  SessionCache::Stats sessions;
};

class ServeDaemon {
 public:
  /// Observes every coalesced batch after the supervisor served it:
  /// (coalesced images, supervisor result, the batched requests in row
  /// order). Tests hang the reference-device oracle here.
  using BatchObserver = std::function<void(
      const Tensor&, const RequestResult&,
      const std::vector<std::shared_ptr<PendingRequest>>&)>;

  /// The daemon borrows the supervisor (and its clock); the master key is
  /// needed for session-key derivation and never leaves the SessionCache.
  ServeDaemon(ServingSupervisor& supervisor, const obf::HpnnKey& master_key,
              const std::string& model_id, DaemonConfig config = {});
  ~ServeDaemon();

  /// Admission gate + enqueue. Returns the pending handle on acceptance.
  /// Throws AdmissionRejectedError (shed, with retry_after_us hint),
  /// QueueFullError (bound hit before admission reacted), ShapeError
  /// (input does not match the model's input shape), or Error (draining).
  std::shared_ptr<PendingRequest> submit_async(const std::string& tenant,
                                               Tensor images);

  /// Convenience blocking submit: pump mode drives the scheduler until the
  /// request resolves; threaded mode waits on the completion slot.
  Reply submit(const std::string& tenant, Tensor images);

  /// Threaded mode: spawns config.workers workers. No-op in pump mode.
  void start();

  /// Pump mode: one scheduler step at the clock's current time — expire
  /// stale requests and, if a batch is due, cut and serve it. Returns the
  /// number of requests resolved (completed or failed) this step.
  std::size_t pump();

  /// Pump mode: advances virtual time through linger windows until the
  /// queue is empty. Returns requests resolved.
  std::size_t pump_until_idle();

  /// Graceful drain: closes the queue (new submits throw), then finishes
  /// everything already queued (pump mode inline; threaded mode waits for
  /// the workers, which exit once the queue runs dry).
  void drain();

  /// Hard stop: closes the queue, fails everything still queued, joins
  /// workers. Idempotent; the destructor calls it.
  void stop();

  /// SIGHUP-style config reload: swaps queue capacity, batcher, admission
  /// and session-cache policies in place. Queued requests and cached
  /// session keys survive; worker count and clock do not change.
  void reload(const DaemonConfig& config);

  void set_batch_observer(BatchObserver observer);

  RequestQueue& queue() { return queue_; }
  AdaptiveBatcher& batcher() { return batcher_; }
  AdmissionController& admission() { return admission_; }
  SessionCache& sessions() { return sessions_; }
  ServingSupervisor& supervisor() { return supervisor_; }

  DaemonStats stats() const;

 private:
  std::size_t run_batch(std::vector<std::shared_ptr<PendingRequest>> batch);
  void worker_loop();
  Tensor coalesce(
      const std::vector<std::shared_ptr<PendingRequest>>& batch) const;

  ServingSupervisor& supervisor_;
  core::Clock* clock_;
  DaemonConfig config_;
  RequestQueue queue_;
  AdaptiveBatcher batcher_;
  AdmissionController admission_;
  SessionCache sessions_;

  /// Serializes batch cutting so concurrent workers never interleave pops
  /// of one logical batch (and pump mode stays single-batch-at-a-time).
  std::mutex schedule_mutex_;
  std::mutex config_mutex_;  // guards config_ sim knobs across reload
  BatchObserver observer_;
  std::mutex observer_mutex_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_request_id_{0};
  std::atomic<std::uint64_t> next_batch_id_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> batches_{0};

  /// Input-shape template locked in by the first accepted request, so a
  /// malformed request is rejected at submit time instead of poisoning the
  /// whole coalesced batch it would ride in.
  mutable std::mutex shape_mutex_;
  Shape input_template_;
  bool input_template_set_ = false;
};

}  // namespace hpnn::serve
