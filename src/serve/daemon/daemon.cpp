#include "serve/daemon/daemon.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>
#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"

namespace hpnn::serve {

ServeDaemon::ServeDaemon(ServingSupervisor& supervisor,
                         const obf::HpnnKey& master_key,
                         const std::string& model_id, DaemonConfig config)
    : supervisor_(supervisor),
      clock_(&supervisor.clock()),
      config_(config),
      queue_(config.queue, *clock_),
      batcher_(config.batcher),
      admission_(config.admission, *clock_),
      sessions_(master_key, model_id, config.sessions, *clock_) {}

ServeDaemon::~ServeDaemon() { stop(); }

std::shared_ptr<PendingRequest> ServeDaemon::submit_async(
    const std::string& tenant, Tensor images) {
  if (images.shape().rank() != 4 || images.dim(0) < 1) {
    throw ShapeError("daemon requests must be [N >= 1, C, H, W] images");
  }
  {
    std::lock_guard<std::mutex> lock(shape_mutex_);
    if (!input_template_set_) {
      input_template_ = images.shape();
      input_template_set_ = true;
    } else {
      for (std::size_t d = 1; d < 4; ++d) {
        if (images.dim(static_cast<std::int64_t>(d)) !=
            input_template_.dim(static_cast<std::int64_t>(d))) {
          // Rejected here, synchronously: a shape mismatch inside a
          // coalesced batch would fail every co-batched request.
          throw ShapeError(
              "request sample shape differs from the model's input shape");
        }
      }
    }
  }

  admission_.admit(tenant, queue_.depth());
  const SessionTicket ticket = sessions_.ticket(tenant);
  const std::uint64_t id = next_request_id_.fetch_add(1) + 1;
  auto pending = std::make_shared<PendingRequest>(tenant, id,
                                                  std::move(images),
                                                  clock_->now_us());
  pending->set_session_fingerprint(ticket.fingerprint);
  queue_.push(pending);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  HPNN_METRIC_COUNT("serve.daemon.submitted", 1);
  return pending;
}

Reply ServeDaemon::submit(const std::string& tenant, Tensor images) {
  auto pending = submit_async(tenant, std::move(images));
  if (workers_.empty()) {
    while (!pending->done()) {
      if (pump() > 0) {
        continue;
      }
      const std::uint64_t now = clock_->now_us();
      const std::uint64_t due = batcher_.next_due_us(queue_, now);
      if (due == std::numeric_limits<std::uint64_t>::max()) {
        break;  // queue drained without resolving us (cannot happen solo)
      }
      clock_->sleep_us(due > now ? due - now : 1);
    }
  } else {
    pending->wait();
  }
  return pending->take();
}

void ServeDaemon::start() {
  std::size_t workers = 0;
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    workers = config_.workers;
  }
  if (workers == 0 || !workers_.empty()) {
    return;
  }
  stopping_.store(false);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t ServeDaemon::pump() {
  const std::uint64_t now = clock_->now_us();
  std::vector<std::shared_ptr<PendingRequest>> batch;
  std::size_t expired = 0;
  {
    std::lock_guard<std::mutex> lock(schedule_mutex_);
    expired = queue_.expire(now);
    if (batcher_.batch_ready(queue_, now)) {
      batch = batcher_.collect(queue_, now);
    }
  }
  if (batch.empty()) {
    return expired;
  }
  return expired + run_batch(std::move(batch));
}

std::size_t ServeDaemon::pump_until_idle() {
  std::size_t resolved = 0;
  while (queue_.depth() > 0) {
    const std::uint64_t now = clock_->now_us();
    if (!batcher_.batch_ready(queue_, now)) {
      const std::uint64_t due = batcher_.next_due_us(queue_, now);
      if (due == std::numeric_limits<std::uint64_t>::max()) {
        break;  // raced to empty
      }
      clock_->sleep_us(due > now ? due - now : 1);
    }
    resolved += pump();
  }
  return resolved;
}

void ServeDaemon::drain() {
  queue_.close();
  if (workers_.empty()) {
    pump_until_idle();
    return;
  }
  // Workers exit once the closed queue runs dry; joining them *is* the
  // drain barrier.
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
}

void ServeDaemon::stop() {
  stopping_.store(true);
  queue_.close();
  for (auto& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  const std::size_t dropped = queue_.fail_all("daemon stopped");
  failed_.fetch_add(dropped, std::memory_order_relaxed);
}

void ServeDaemon::reload(const DaemonConfig& config) {
  queue_.set_capacity(config.queue.capacity);
  batcher_.reload(config.batcher);
  admission_.reload(config.admission);
  sessions_.resize(config.sessions.capacity);
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    config_.queue = config.queue;
    config_.batcher = config.batcher;
    config_.admission = config.admission;
    config_.sessions = config.sessions;
    config_.sim_service_base_us = config.sim_service_base_us;
    config_.sim_service_per_row_us = config.sim_service_per_row_us;
    // config_.workers intentionally unchanged: thread topology is not
    // reloadable, only policy is.
  }
  HPNN_METRIC_COUNT("serve.daemon.reloads", 1);
}

void ServeDaemon::set_batch_observer(BatchObserver observer) {
  std::lock_guard<std::mutex> lock(observer_mutex_);
  observer_ = std::move(observer);
}

Tensor ServeDaemon::coalesce(
    const std::vector<std::shared_ptr<PendingRequest>>& batch) const {
  std::int64_t rows = 0;
  for (const auto& request : batch) {
    rows += request->rows();
  }
  const Shape& sample = batch.front()->images().shape();
  Tensor out(Shape{rows, sample.dim(1), sample.dim(2), sample.dim(3)});
  const std::size_t row_floats = static_cast<std::size_t>(
      sample.dim(1) * sample.dim(2) * sample.dim(3));
  float* dst = out.data();
  for (const auto& request : batch) {
    const std::size_t n =
        static_cast<std::size_t>(request->rows()) * row_floats;
    std::memcpy(dst, request->images().data(), n * sizeof(float));
    dst += n;
  }
  return out;
}

std::size_t ServeDaemon::run_batch(
    std::vector<std::shared_ptr<PendingRequest>> batch) {
  const std::uint64_t dequeued_at = clock_->now_us();
  const std::uint64_t batch_id = next_batch_id_.fetch_add(1) + 1;
  std::int64_t rows = 0;
  for (const auto& request : batch) {
    rows += request->rows();
  }
  const Tensor images = coalesce(batch);

  std::uint64_t sim_base = 0;
  std::uint64_t sim_per_row = 0;
  {
    std::lock_guard<std::mutex> lock(config_mutex_);
    sim_base = config_.sim_service_base_us;
    sim_per_row = config_.sim_service_per_row_us;
  }
  if (sim_base != 0 || sim_per_row != 0) {
    clock_->sleep_us(sim_base +
                     sim_per_row * static_cast<std::uint64_t>(rows));
  }

  const std::uint64_t quarantines_before =
      supervisor_.pool().stats().quarantines;
  RequestResult result;
  std::exception_ptr error;
  try {
    result = supervisor_.submit(images);
  } catch (const Error&) {
    error = std::current_exception();
  }
  if (supervisor_.pool().stats().quarantines > quarantines_before) {
    // Hardware that carried this batch tripped an integrity quarantine:
    // the session keys of every tenant aboard are revoked, so compromised
    // traffic cannot continue under the old session epoch.
    std::set<std::string> tenants;
    for (const auto& request : batch) {
      tenants.insert(request->tenant());
    }
    for (const auto& tenant : tenants) {
      sessions_.revoke(tenant);
    }
    HPNN_METRIC_COUNT("serve.daemon.sessions.fault_revocations",
                      tenants.size());
  }

  const std::uint64_t done_at = clock_->now_us();
  const std::uint64_t service_us = done_at - dequeued_at;
  batcher_.observe_service(service_us);
  admission_.observe_drain(
      std::max<std::uint64_t>(service_us / batch.size(), 1));
  batches_.fetch_add(1, std::memory_order_relaxed);
  HPNN_METRIC_COUNT("serve.daemon.batches", 1);
  HPNN_METRIC_OBSERVE("serve.daemon.batch.rows",
                      static_cast<double>(rows));

  if (error == nullptr) {
    BatchObserver observer;
    {
      std::lock_guard<std::mutex> lock(observer_mutex_);
      observer = observer_;
    }
    if (observer) {
      observer(images, result, batch);
    }
  }

  std::int64_t offset = 0;
  for (auto& request : batch) {
    const std::uint64_t queue_wait = dequeued_at - request->enqueued_at_us();
    HPNN_METRIC_OBSERVE("serve.daemon.queue_wait_us",
                        static_cast<double>(queue_wait));
    if (error != nullptr) {
      request->fail(error);
      failed_.fetch_add(1, std::memory_order_relaxed);
      HPNN_METRIC_COUNT("serve.daemon.failed", 1);
    } else {
      Reply reply;
      reply.classes.assign(
          result.classes.begin() + offset,
          result.classes.begin() + offset + request->rows());
      reply.replica = result.replica;
      reply.attempts = result.attempts;
      reply.degraded = result.degraded;
      reply.queue_wait_us = queue_wait;
      reply.latency_us = done_at - request->enqueued_at_us();
      reply.batch_id = batch_id;
      reply.batch_rows = rows;
      reply.session_fingerprint = request->session_fingerprint();
      HPNN_METRIC_OBSERVE("serve.daemon.request.latency_us",
                          static_cast<double>(reply.latency_us));
      request->complete(std::move(reply));
      completed_.fetch_add(1, std::memory_order_relaxed);
      HPNN_METRIC_COUNT("serve.daemon.completed", 1);
    }
    offset += request->rows();
  }
  return batch.size();
}

void ServeDaemon::worker_loop() {
  while (!stopping_.load()) {
    const std::uint64_t now = clock_->now_us();
    std::vector<std::shared_ptr<PendingRequest>> batch;
    {
      std::lock_guard<std::mutex> lock(schedule_mutex_);
      queue_.expire(now);
      if (batcher_.batch_ready(queue_, now)) {
        batch = batcher_.collect(queue_, now);
      }
    }
    if (!batch.empty()) {
      run_batch(std::move(batch));
      continue;
    }
    if (queue_.closed() && queue_.depth() == 0) {
      break;  // graceful drain complete
    }
    if (queue_.depth() == 0) {
      queue_.wait_nonempty(1'000);
      continue;
    }
    // Requests are lingering for co-travellers; sleep toward the window.
    const std::uint64_t due = batcher_.next_due_us(queue_, now);
    const std::uint64_t gap = due > now ? due - now : 1;
    clock_->sleep_us(std::min<std::uint64_t>(gap, 1'000));
  }
}

DaemonStats ServeDaemon::stats() const {
  DaemonStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.expired = queue_.expired_total();
  stats.queue_depth = queue_.depth();
  stats.admission = admission_.stats();
  stats.sessions = sessions_.stats();
  return stats;
}

}  // namespace hpnn::serve
