// Per-tenant session keys derived from the owner's keychain.
//
// Each tenant talking to the daemon gets a session subkey diversified from
// the master key: SHA-256 keychain derivation over
// "<model_id>/session/<tenant>#<epoch>". Only the public fingerprint ever
// leaves the cache — the key material itself stays sealed, exactly like the
// paper's device-side key handling. Entries are LRU-evicted at capacity and
// *revoked* (epoch bump, so the old key can never be re-derived into the
// cache) when serving detects an integrity violation on hardware that
// touched the tenant's traffic.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "core/clock.hpp"
#include "hpnn/key.hpp"

namespace hpnn::serve {

struct SessionCacheConfig {
  std::size_t capacity = 64;
};

struct SessionTicket {
  std::string tenant;
  /// Public fingerprint of the tenant's current session key.
  std::string fingerprint;
  /// Bumped on every revocation; part of the derivation string.
  std::uint64_t epoch = 0;
  std::uint64_t issued_at_us = 0;
};

class SessionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t revocations = 0;
  };

  SessionCache(const obf::HpnnKey& master_key, std::string model_id,
               SessionCacheConfig config, core::Clock& clock);

  /// Returns the tenant's current session ticket, deriving and caching it
  /// on miss (LRU eviction at capacity).
  SessionTicket ticket(const std::string& tenant);

  /// Drops the tenant's cached key and bumps its epoch: the next ticket()
  /// derives a fresh session key.
  void revoke(const std::string& tenant);

  /// Integrity-violation response: revokes every cached session at once.
  void revoke_all();

  std::size_t size() const;
  std::size_t capacity() const;
  /// Shrinks/grows capacity, LRU-evicting as needed (config reload). The
  /// cache contents otherwise survive reloads.
  void resize(std::size_t capacity);

  Stats stats() const;

 private:
  void evict_to_capacity_locked();

  struct Entry {
    SessionTicket ticket;
    std::list<std::string>::iterator lru_it;
  };

  obf::HpnnKey master_;
  std::string model_id_;
  SessionCacheConfig config_;
  core::Clock& clock_;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  /// Front = most recently used tenant.
  std::list<std::string> lru_;
  std::map<std::string, std::uint64_t> epochs_;
  Stats stats_;
};

}  // namespace hpnn::serve
