#include "serve/daemon/load_gen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hpnn/keychain.hpp"
#include "hw/fault.hpp"

namespace hpnn::serve {
namespace {

std::uint64_t percentile(std::vector<std::uint64_t>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(std::llround(
      p / 100.0 * static_cast<double>(samples.size() - 1)));
  return samples[idx];
}

}  // namespace

double sustainable_qps(const LoadScenario& scenario) {
  const std::uint64_t base = scenario.daemon.sim_service_base_us;
  const std::uint64_t per_row = scenario.daemon.sim_service_per_row_us;
  if (base == 0 && per_row == 0) {
    return 0.0;
  }
  const std::int64_t rows = scenario.daemon.batcher.max_batch_rows;
  const double service_us = static_cast<double>(
      base + per_row * static_cast<std::uint64_t>(rows));
  const double requests_per_batch =
      static_cast<double>(rows) / static_cast<double>(scenario.batch);
  return requests_per_batch / (service_us * 1e-6);
}

LoadReport run_load_scenario(const ChaosModelBundle& bundle,
                             const LoadScenario& scenario) {
  HPNN_CHECK(scenario.offered_qps > 0.0, "offered_qps must be positive");
  HPNN_CHECK(scenario.burst >= 1, "burst must be at least 1");
  HPNN_CHECK(scenario.tenants >= 1, "need at least one tenant");
  if (metrics::enabled()) {
    metrics::MetricsRegistry::instance().reset();
  }

  SimulatedClock clock(0);
  std::vector<std::unique_ptr<hw::FaultInjector>> injectors;
  std::mutex injectors_mutex;

  SupervisorConfig config = scenario.config;
  config.clock = &clock;
  config.provision = {};

  ServingSupervisor supervisor(bundle.master, bundle.model_id,
                               bundle.artifact, bundle.challenge, config);
  DaemonConfig daemon_config = scenario.daemon;
  daemon_config.workers = 0;  // pump mode: determinism is the contract here
  ServeDaemon daemon(supervisor, bundle.master, bundle.model_id,
                     daemon_config);

  // Batch-granular correctness oracle: an un-faulted reference device
  // infers the identical coalesced tensor (same dynamic int8 scales).
  hw::TrustedDevice reference(
      obf::derive_model_key(bundle.master, bundle.model_id),
      obf::derive_schedule_seed(bundle.master, bundle.model_id),
      config.device);
  reference.load_model(bundle.artifact);

  LoadReport report;
  daemon.set_batch_observer(
      [&](const Tensor& images, const RequestResult& result,
          const std::vector<std::shared_ptr<PendingRequest>>&) {
        if (reference.classify(images) != result.classes) {
          ++report.wrong;
        }
      });

  Rng input_rng(scenario.seed);
  Rng seu_rng(scenario.seed ^ 0x10adULL);
  DevicePool& pool = supervisor.pool();

  std::vector<std::shared_ptr<PendingRequest>> accepted;
  std::vector<std::uint64_t> hints;
  const double burst_gap_us =
      1e6 * static_cast<double>(scenario.burst) / scenario.offered_qps;

  for (int i = 0; i < scenario.requests; ++i) {
    const auto arrival = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(i / scenario.burst) * burst_gap_us));
    // Serve everything due before this arrival, then jump to it. The batch
    // service model advances the clock inside pump(), so arrivals in the
    // past (clock already beyond them) are submitted immediately.
    while (clock.now_us() < arrival) {
      const std::uint64_t now = clock.now_us();
      const std::uint64_t due =
          daemon.batcher().next_due_us(daemon.queue(), now);
      if (due > arrival) {
        clock.advance(arrival - now);
        break;
      }
      clock.advance(due - now);
      daemon.pump();
    }

    if (i == scenario.quarantine_at_request) {
      pool.quarantine(0);  // capacity loss mid-storm
    }
    if (scenario.key_seu_rate > 0.0 &&
        seu_rng.bernoulli(scenario.key_seu_rate)) {
      std::vector<std::size_t> closed;
      for (std::size_t r = 0; r < pool.size(); ++r) {
        if (pool.state(r) == BreakerState::kClosed) {
          closed.push_back(r);
        }
      }
      if (!closed.empty()) {
        const std::size_t target =
            closed[seu_rng.uniform_index(closed.size())];
        hw::FaultPlan seu;
        seu.key_bits = {static_cast<std::size_t>(seu_rng.uniform_index(256))};
        hw::FaultInjector* raw = nullptr;
        {
          std::lock_guard<std::mutex> lock(injectors_mutex);
          injectors.push_back(std::make_unique<hw::FaultInjector>(seu));
          raw = injectors.back().get();
        }
        pool.with_replica(target, [raw](hw::TrustedDevice& device) {
          device.attach_fault_injector(raw);
        });
        ++report.seus_injected;
      }
    }

    Tensor images = Tensor::normal(
        Shape{scenario.batch, bundle.artifact.in_channels,
              bundle.artifact.image_size, bundle.artifact.image_size},
        input_rng, 0.0f, 0.25f);
    const std::string tenant =
        "tenant-" + std::to_string(i % scenario.tenants);
    ++report.offered;
    try {
      accepted.push_back(daemon.submit_async(tenant, std::move(images)));
      ++report.accepted;
    } catch (const AdmissionRejectedError& e) {
      ++report.shed;
      hints.push_back(e.retry_after_us());
    } catch (const QueueFullError&) {
      ++report.queue_full;
    }
  }

  daemon.drain();

  std::vector<std::uint64_t> latencies;
  std::vector<std::uint64_t> waits;
  for (const auto& pending : accepted) {
    HPNN_CHECK(pending->done(), "drain left a request unresolved");
    try {
      const Reply reply = pending->take();
      ++report.completed;
      latencies.push_back(reply.latency_us);
      waits.push_back(reply.queue_wait_us);
    } catch (const TimeoutError&) {
      ++report.expired;
    } catch (const Error&) {
      ++report.failed;
    }
  }

  report.p50_latency_us = percentile(latencies, 50.0);
  report.p99_latency_us = percentile(latencies, 99.0);
  report.max_latency_us = latencies.empty() ? 0 : latencies.back();
  report.p50_queue_wait_us = percentile(waits, 50.0);
  report.p99_queue_wait_us = percentile(waits, 99.0);
  if (!hints.empty()) {
    report.min_retry_after_us =
        *std::min_element(hints.begin(), hints.end());
    report.max_retry_after_us =
        *std::max_element(hints.begin(), hints.end());
  }
  report.virtual_elapsed_us = clock.now_us();
  report.daemon = daemon.stats();
  report.pool = pool.stats();
  if (metrics::enabled()) {
    std::ostringstream os;
    metrics::write_json(os, metrics::MetricsRegistry::instance().snapshot(),
                        /*deterministic=*/true);
    report.metrics_json = os.str();
  }
  return report;
}

void write_overload_json(std::ostream& os, const LoadScenario& scenario,
                         const LoadReport& report) {
  os << "{\"bench\":\"serve_overload\""
     << ",\"offered_qps\":" << scenario.offered_qps
     << ",\"sustainable_qps\":" << sustainable_qps(scenario)
     << ",\"requests\":" << scenario.requests
     << ",\"batch\":" << scenario.batch
     << ",\"tenants\":" << scenario.tenants
     << ",\"burst\":" << scenario.burst
     << ",\"seed\":" << scenario.seed
     << ",\"key_seu_rate\":" << scenario.key_seu_rate
     << ",\"quarantine_at_request\":" << scenario.quarantine_at_request
     << ",\"max_batch_rows\":" << scenario.daemon.batcher.max_batch_rows
     << ",\"slo_p99_us\":" << scenario.daemon.batcher.slo_p99_us
     << ",\"queue_capacity\":" << scenario.daemon.queue.capacity
     << ",\"high_watermark\":" << scenario.daemon.admission.high_watermark
     << ",\"low_watermark\":" << scenario.daemon.admission.low_watermark
     << ",\"offered\":" << report.offered
     << ",\"accepted\":" << report.accepted
     << ",\"completed\":" << report.completed
     << ",\"shed\":" << report.shed
     << ",\"queue_full\":" << report.queue_full
     << ",\"expired\":" << report.expired
     << ",\"failed\":" << report.failed
     << ",\"wrong\":" << report.wrong
     << ",\"seus_injected\":" << report.seus_injected
     << ",\"p50_latency_us\":" << report.p50_latency_us
     << ",\"p99_latency_us\":" << report.p99_latency_us
     << ",\"max_latency_us\":" << report.max_latency_us
     << ",\"p50_queue_wait_us\":" << report.p50_queue_wait_us
     << ",\"p99_queue_wait_us\":" << report.p99_queue_wait_us
     << ",\"min_retry_after_us\":" << report.min_retry_after_us
     << ",\"max_retry_after_us\":" << report.max_retry_after_us
     << ",\"batches\":" << report.daemon.batches
     << ",\"quarantines\":" << report.pool.quarantines
     << ",\"reprovisions\":" << report.pool.reprovisions
     << ",\"virtual_elapsed_us\":" << report.virtual_elapsed_us
     << ",\"metrics\":"
     << (report.metrics_json.empty() ? "null" : report.metrics_json) << "}";
}

}  // namespace hpnn::serve
