#include "serve/daemon/session.hpp"

#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hpnn/keychain.hpp"

namespace hpnn::serve {

SessionCache::SessionCache(const obf::HpnnKey& master_key,
                           std::string model_id, SessionCacheConfig config,
                           core::Clock& clock)
    : master_(master_key),
      model_id_(std::move(model_id)),
      config_(config),
      clock_(clock) {
  HPNN_CHECK(config_.capacity >= 1, "session cache capacity must be >= 1");
}

SessionTicket SessionCache::ticket(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(tenant);
  if (it != entries_.end()) {
    ++stats_.hits;
    HPNN_METRIC_COUNT("serve.daemon.sessions.hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.ticket;
  }

  ++stats_.misses;
  HPNN_METRIC_COUNT("serve.daemon.sessions.misses", 1);
  const std::uint64_t epoch = epochs_[tenant];
  const obf::HpnnKey session_key = obf::derive_model_key(
      master_,
      model_id_ + "/session/" + tenant + "#" + std::to_string(epoch));
  SessionTicket ticket;
  ticket.tenant = tenant;
  ticket.fingerprint = obf::key_fingerprint(session_key);
  ticket.epoch = epoch;
  ticket.issued_at_us = clock_.now_us();

  lru_.push_front(tenant);
  entries_[tenant] = Entry{ticket, lru_.begin()};
  evict_to_capacity_locked();
  HPNN_METRIC_GAUGE("serve.daemon.sessions.size", entries_.size());
  return ticket;
}

void SessionCache::evict_to_capacity_locked() {
  while (entries_.size() > config_.capacity) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    HPNN_METRIC_COUNT("serve.daemon.sessions.evictions", 1);
  }
}

void SessionCache::revoke(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epochs_[tenant];
  ++stats_.revocations;
  HPNN_METRIC_COUNT("serve.daemon.sessions.revocations", 1);
  auto it = entries_.find(tenant);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  HPNN_METRIC_GAUGE("serve.daemon.sessions.size", entries_.size());
}

void SessionCache::revoke_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [tenant, entry] : entries_) {
    ++epochs_[tenant];
    ++stats_.revocations;
    HPNN_METRIC_COUNT("serve.daemon.sessions.revocations", 1);
  }
  entries_.clear();
  lru_.clear();
  HPNN_METRIC_GAUGE("serve.daemon.sessions.size", 0);
}

std::size_t SessionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SessionCache::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.capacity;
}

void SessionCache::resize(std::size_t capacity) {
  HPNN_CHECK(capacity >= 1, "session cache capacity must be >= 1");
  std::lock_guard<std::mutex> lock(mutex_);
  config_.capacity = capacity;
  evict_to_capacity_locked();
  HPNN_METRIC_GAUGE("serve.daemon.sessions.size", entries_.size());
}

SessionCache::Stats SessionCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace hpnn::serve
