#include "serve/daemon/protocol.hpp"

#include <sstream>

#include "core/error.hpp"

namespace hpnn::serve {
namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, const char* field) {
  try {
    std::size_t pos = 0;
    const std::uint64_t value = std::stoull(token, &pos);
    if (pos != token.size()) {
      throw Error("");
    }
    return value;
  } catch (const std::exception&) {
    throw Error(std::string("malformed ") + field + ": '" + token + "'");
  }
}

}  // namespace

ProtoRequest parse_request(const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) {
    throw Error("empty protocol line");
  }
  ProtoRequest request;
  const std::string& verb = tokens[0];
  if (verb == "INFER") {
    if (tokens.size() != 5) {
      throw Error("INFER expects: INFER <tenant> <id> <seed> <n>");
    }
    request.kind = ProtoRequest::Kind::kInfer;
    request.tenant = tokens[1];
    request.id = parse_u64(tokens[2], "id");
    request.seed = parse_u64(tokens[3], "seed");
    request.n = static_cast<std::int64_t>(parse_u64(tokens[4], "n"));
    if (request.n < 1) {
      throw Error("INFER needs n >= 1");
    }
    return request;
  }
  if (verb == "STATS") {
    request.kind = ProtoRequest::Kind::kStats;
    return request;
  }
  if (verb == "RELOAD") {
    request.kind = ProtoRequest::Kind::kReload;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= tokens[i].size()) {
        throw Error("RELOAD options must be key=value, got '" + tokens[i] +
                    "'");
      }
      request.options.emplace_back(tokens[i].substr(0, eq),
                                   tokens[i].substr(eq + 1));
    }
    return request;
  }
  if (verb == "DRAIN") {
    request.kind = ProtoRequest::Kind::kDrain;
    return request;
  }
  if (verb == "QUIT") {
    request.kind = ProtoRequest::Kind::kQuit;
    return request;
  }
  throw Error("unknown protocol verb '" + verb + "'");
}

std::string format_reply(std::uint64_t id, const Reply& reply) {
  std::ostringstream os;
  os << "OK " << id << " classes=";
  for (std::size_t i = 0; i < reply.classes.size(); ++i) {
    os << (i == 0 ? "" : ",") << reply.classes[i];
  }
  os << " replica=" << reply.replica << " attempts=" << reply.attempts
     << " queue_wait_us=" << reply.queue_wait_us
     << " latency_us=" << reply.latency_us << " batch=" << reply.batch_id
     << "/" << reply.batch_rows << " degraded=" << (reply.degraded ? 1 : 0)
     << " session=" << reply.session_fingerprint.substr(0, 12);
  return os.str();
}

std::string format_error(std::uint64_t id, const std::string& kind,
                         std::uint64_t retry_after_us,
                         const std::string& message) {
  std::ostringstream os;
  os << "ERR " << id << " " << kind << " retry_after_us=" << retry_after_us
     << " " << message;
  return os.str();
}

std::string format_stats(const DaemonStats& stats) {
  std::ostringstream os;
  os << "STATS depth=" << stats.queue_depth
     << " submitted=" << stats.submitted << " completed=" << stats.completed
     << " failed=" << stats.failed << " expired=" << stats.expired
     << " batches=" << stats.batches
     << " admitted=" << stats.admission.admitted
     << " shed_watermark=" << stats.admission.shed_watermark
     << " shed_rate=" << stats.admission.shed_rate
     << " session_hits=" << stats.sessions.hits
     << " session_misses=" << stats.sessions.misses
     << " session_revocations=" << stats.sessions.revocations;
  return os.str();
}

std::string format_exception(std::uint64_t id, std::exception_ptr error) {
  try {
    std::rethrow_exception(std::move(error));
  } catch (const AdmissionRejectedError& e) {
    return format_error(id, "admission_rejected", e.retry_after_us(),
                        e.what());
  } catch (const QueueFullError& e) {
    return format_error(id, "queue_full", 0, e.what());
  } catch (const TimeoutError& e) {
    return format_error(id, "timeout", 0, e.what());
  } catch (const DeviceUnavailableError& e) {
    return format_error(id, "unavailable", e.retry_after_us(), e.what());
  } catch (const RetryExhaustedError& e) {
    return format_error(id, "retry_exhausted", 0, e.what());
  } catch (const Error& e) {
    return format_error(id, "error", 0, e.what());
  } catch (const std::exception& e) {
    return format_error(id, "error", 0, e.what());
  }
}

}  // namespace hpnn::serve
