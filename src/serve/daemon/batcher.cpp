#include "serve/daemon/batcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace hpnn::serve {

AdaptiveBatcher::AdaptiveBatcher(BatcherConfig config) : config_(config) {
  HPNN_CHECK(config_.max_batch_rows >= 1, "batcher needs max_batch_rows >= 1");
  HPNN_CHECK(config_.min_linger_us <= config_.max_linger_us,
             "min_linger_us must not exceed max_linger_us");
  HPNN_CHECK(config_.service_ewma_alpha > 0.0 &&
                 config_.service_ewma_alpha <= 1.0,
             "service_ewma_alpha must be in (0, 1]");
}

std::uint64_t AdaptiveBatcher::linger_locked() const {
  if (!service_seeded_) {
    return config_.max_linger_us;
  }
  const auto service = static_cast<std::uint64_t>(
      std::llround(std::max(service_ewma_us_, 0.0)));
  const std::uint64_t budget =
      config_.slo_p99_us > service ? config_.slo_p99_us - service : 0;
  return std::clamp(budget, config_.min_linger_us, config_.max_linger_us);
}

std::uint64_t AdaptiveBatcher::linger_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return linger_locked();
}

bool AdaptiveBatcher::batch_ready(const RequestQueue& queue,
                                  std::uint64_t now_us) const {
  if (queue.depth() == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (queue.rows() >= config_.max_batch_rows) {
    return true;
  }
  if (queue.closed()) {
    return true;  // drain: ship partial batches immediately
  }
  const std::uint64_t oldest = queue.oldest_enqueued_at_us();
  return now_us >= oldest && now_us - oldest >= linger_locked();
}

std::vector<std::shared_ptr<PendingRequest>> AdaptiveBatcher::collect(
    RequestQueue& queue, std::uint64_t now_us) {
  std::int64_t max_rows = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_rows = config_.max_batch_rows;
  }
  std::vector<std::shared_ptr<PendingRequest>> batch;
  std::int64_t rows = 0;
  // First pop is unconstrained so an oversized request cannot starve.
  auto first = queue.pop(now_us);
  if (first == nullptr) {
    return batch;
  }
  rows = first->rows();
  batch.push_back(std::move(first));
  while (rows < max_rows) {
    auto next = queue.pop(now_us, max_rows - rows);
    if (next == nullptr) {
      break;
    }
    rows += next->rows();
    batch.push_back(std::move(next));
  }
  return batch;
}

void AdaptiveBatcher::observe_service(std::uint64_t service_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto sample = static_cast<double>(service_us);
  if (!service_seeded_) {
    service_ewma_us_ = sample;
    service_seeded_ = true;
    return;
  }
  service_ewma_us_ += config_.service_ewma_alpha * (sample - service_ewma_us_);
}

std::uint64_t AdaptiveBatcher::service_ewma_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint64_t>(
      std::llround(std::max(service_ewma_us_, 0.0)));
}

std::uint64_t AdaptiveBatcher::next_due_us(const RequestQueue& queue,
                                           std::uint64_t now_us) const {
  const std::uint64_t oldest = queue.oldest_enqueued_at_us();
  if (oldest == std::numeric_limits<std::uint64_t>::max()) {
    return oldest;  // empty queue: nothing is ever due
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t due = oldest + linger_locked();
  return std::max(due, now_us);
}

void AdaptiveBatcher::reload(const BatcherConfig& config) {
  AdaptiveBatcher validate(config);  // reuse ctor invariants
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
}

BatcherConfig AdaptiveBatcher::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

}  // namespace hpnn::serve
