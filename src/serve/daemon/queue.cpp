#include "serve/daemon/queue.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"

namespace hpnn::serve {

void PendingRequest::complete(Reply reply) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HPNN_CHECK(!done_, "request completed twice");
    reply_ = std::move(reply);
    done_ = true;
  }
  cv_.notify_all();
}

void PendingRequest::fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HPNN_CHECK(!done_, "request completed twice");
    error_ = std::move(error);
    done_ = true;
  }
  cv_.notify_all();
}

bool PendingRequest::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void PendingRequest::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
}

Reply PendingRequest::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  HPNN_CHECK(done_, "take() before completion");
  if (error_ != nullptr) {
    std::rethrow_exception(error_);
  }
  return reply_;
}

RequestQueue::RequestQueue(QueueConfig config, core::Clock& clock)
    : config_(config), clock_(clock) {
  HPNN_CHECK(config_.capacity >= 1, "queue capacity must be at least 1");
}

void RequestQueue::push(std::shared_ptr<PendingRequest> request) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      throw Error("request queue is closed (drain in progress)");
    }
    if (depth_ >= config_.capacity) {
      HPNN_METRIC_COUNT("serve.daemon.queue.full", 1);
      throw QueueFullError("request queue full", depth_, config_.capacity);
    }
    rows_ += request->rows();
    ++depth_;
    lanes_[request->tenant()].push_back(std::move(request));
    HPNN_METRIC_GAUGE("serve.daemon.queue.depth", depth_);
  }
  cv_.notify_one();
}

void RequestQueue::remove_accounting_locked(const PendingRequest& request) {
  --depth_;
  rows_ -= request.rows();
  HPNN_METRIC_GAUGE("serve.daemon.queue.depth", depth_);
}

std::size_t RequestQueue::expire_locked(std::uint64_t now_us) {
  if (config_.max_queue_wait_us == 0) {
    return 0;
  }
  std::size_t expired = 0;
  for (auto it = lanes_.begin(); it != lanes_.end();) {
    auto& lane = it->second;
    // Lanes are FIFO, so stale requests are a prefix of each lane.
    while (!lane.empty() &&
           now_us - lane.front()->enqueued_at_us() >=
               config_.max_queue_wait_us) {
      auto request = std::move(lane.front());
      lane.pop_front();
      remove_accounting_locked(*request);
      ++expired;
      request->fail(std::make_exception_ptr(TimeoutError(
          "queue-wait deadline exceeded for tenant " + request->tenant(),
          now_us - request->enqueued_at_us(), config_.max_queue_wait_us)));
    }
    it = lane.empty() ? lanes_.erase(it) : std::next(it);
  }
  if (expired > 0) {
    expired_total_ += expired;
    HPNN_METRIC_COUNT("serve.daemon.queue.expired", expired);
  }
  return expired;
}

std::size_t RequestQueue::expire(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  return expire_locked(now_us);
}

std::shared_ptr<PendingRequest> RequestQueue::pop_locked(
    std::uint64_t now_us, std::int64_t max_rows) {
  expire_locked(now_us);
  if (lanes_.empty()) {
    return nullptr;
  }
  // Fair rotation: first eligible lane strictly after the cursor tenant,
  // wrapping to the beginning. One full scan bounds the search.
  auto start = lanes_.upper_bound(cursor_);
  const std::size_t n = lanes_.size();
  auto it = start == lanes_.end() ? lanes_.begin() : start;
  for (std::size_t step = 0; step < n; ++step) {
    auto& lane = it->second;
    if (!lane.empty() && lane.front()->rows() <= max_rows) {
      auto request = std::move(lane.front());
      lane.pop_front();
      cursor_ = it->first;
      if (lane.empty()) {
        lanes_.erase(it);
      }
      remove_accounting_locked(*request);
      return request;
    }
    ++it;
    if (it == lanes_.end()) {
      it = lanes_.begin();
    }
  }
  return nullptr;
}

std::shared_ptr<PendingRequest> RequestQueue::pop(std::uint64_t now_us,
                                                  std::int64_t max_rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_locked(now_us, max_rows);
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

std::int64_t RequestQueue::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

std::uint64_t RequestQueue::oldest_enqueued_at_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  for (const auto& [tenant, lane] : lanes_) {
    if (!lane.empty()) {
      oldest = std::min(oldest, lane.front()->enqueued_at_us());
    }
  }
  return oldest;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::fail_all(const std::string& reason) {
  std::vector<std::shared_ptr<PendingRequest>> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [tenant, lane] : lanes_) {
      for (auto& request : lane) {
        victims.push_back(std::move(request));
      }
    }
    lanes_.clear();
    depth_ = 0;
    rows_ = 0;
    HPNN_METRIC_GAUGE("serve.daemon.queue.depth", 0);
  }
  for (auto& request : victims) {
    request->fail(std::make_exception_ptr(Error(reason)));
  }
  return victims.size();
}

std::size_t RequestQueue::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.capacity;
}

void RequestQueue::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  HPNN_CHECK(capacity >= 1, "queue capacity must be at least 1");
  // Shrinking below the current depth only gates new pushes; queued work
  // is never dropped by a reload.
  config_.capacity = capacity;
}

std::uint64_t RequestQueue::max_queue_wait_us() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.max_queue_wait_us;
}

std::uint64_t RequestQueue::expired_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expired_total_;
}

bool RequestQueue::wait_nonempty(std::uint64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [this] { return depth_ > 0 || closed_; });
  return depth_ > 0;
}

}  // namespace hpnn::serve
