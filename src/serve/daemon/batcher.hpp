// Adaptive micro-batching: coalesce queued requests into MMU-sized batches.
//
// The int8 datapath amortizes its per-dispatch cost over batch rows, so the
// daemon wants full batches — but a request must not linger past its
// latency SLO waiting for co-travellers. The batcher closes a batch when it
// is full *or* when the oldest queued request has lingered for the adaptive
// window:
//
//   linger = clamp(slo_p99 - service_ewma, min_linger, max_linger)
//
// As the observed batch service time (EWMA) grows toward the SLO, the
// linger window shrinks toward min_linger, trading batch efficiency for
// latency headroom; when the device is fast, requests may wait longer and
// batches fill. All timing is virtual-clock driven, so pump-mode runs are
// deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/daemon/queue.hpp"

namespace hpnn::serve {

struct BatcherConfig {
  /// Maximum sample rows per coalesced batch (the MMU-friendly size).
  std::int64_t max_batch_rows = 8;
  /// Target p99 enqueue-to-completion latency the linger window defends.
  std::uint64_t slo_p99_us = 50'000;
  /// Linger window clamp.
  std::uint64_t min_linger_us = 0;
  std::uint64_t max_linger_us = 5'000;
  /// EWMA weight of the newest batch service time observation.
  double service_ewma_alpha = 0.2;
};

class AdaptiveBatcher {
 public:
  explicit AdaptiveBatcher(BatcherConfig config);

  /// Current adaptive linger window (max_linger until service times are
  /// observed).
  std::uint64_t linger_us() const;

  /// True when a batch should be cut now: the queue holds a full batch of
  /// rows, the oldest request has lingered past the window, or the queue is
  /// closed (drain) and non-empty.
  bool batch_ready(const RequestQueue& queue, std::uint64_t now_us) const;

  /// Pops up to max_batch_rows rows in tenant-fair order. The first request
  /// is taken unconditionally (a single oversized request still ships as
  /// its own batch). Empty result iff the queue yielded nothing.
  std::vector<std::shared_ptr<PendingRequest>> collect(RequestQueue& queue,
                                                       std::uint64_t now_us);

  /// Feeds one coalesced-batch service time into the EWMA.
  void observe_service(std::uint64_t service_us);
  std::uint64_t service_ewma_us() const;

  /// Earliest time at which the linger window would force a batch closed;
  /// UINT64_MAX when the queue is empty. Drives the pump/event loop.
  std::uint64_t next_due_us(const RequestQueue& queue,
                            std::uint64_t now_us) const;

  /// Swaps the policy, keeping the learned service EWMA (config reload).
  void reload(const BatcherConfig& config);
  BatcherConfig config() const;

 private:
  std::uint64_t linger_locked() const;

  mutable std::mutex mutex_;
  BatcherConfig config_;
  double service_ewma_us_ = 0.0;
  bool service_seeded_ = false;
};

}  // namespace hpnn::serve
