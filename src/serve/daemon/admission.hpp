// Admission control: shed load *before* the queue saturates.
//
// Two gates, both resolved at submit time so a rejected request costs the
// daemon nothing downstream:
//
//   1. Per-tenant token bucket — a tenant above its sustained rate is
//      rejected with the exact time until its next token, independent of
//      everyone else's traffic.
//   2. Global watermark hysteresis — when queue depth crosses the high
//      watermark the daemon enters shedding and rejects *all* tenants until
//      depth falls back to the low watermark. The retry_after hint is the
//      estimated drain time of the excess depth (per-request drain EWMA fed
//      by the batcher), so hints shrink monotonically as the queue drains —
//      clients that honor them re-arrive exactly when capacity exists.
//
// Rejections carry AdmissionRejectedError with retry_after_us; everything
// runs on the injected Clock, so overload scenarios are deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/clock.hpp"

namespace hpnn::serve {

struct TokenBucketPolicy {
  /// Sustained per-tenant request rate (0 = no rate limit).
  double tokens_per_sec = 0.0;
  /// Bucket capacity: how many requests a tenant may burst above the
  /// sustained rate.
  double burst = 8.0;
};

struct AdmissionConfig {
  TokenBucketPolicy per_tenant;
  /// Queue depth at which shedding starts / stops (hysteresis band).
  std::size_t high_watermark = 224;
  std::size_t low_watermark = 128;
  /// Drain-time estimate per queued request before any batch has been
  /// observed (seeds the retry_after hint).
  std::uint64_t initial_drain_us_per_request = 1'000;
};

class AdmissionController {
 public:
  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t shed_watermark = 0;
    std::uint64_t shed_rate = 0;
  };

  AdmissionController(AdmissionConfig config, core::Clock& clock);

  /// Gate for one request at the current queue depth. Throws
  /// AdmissionRejectedError (with a retry_after_us hint) when shedding or
  /// when the tenant's bucket is empty; otherwise consumes one token.
  void admit(const std::string& tenant, std::size_t queue_depth);

  /// Feeds the observed per-request drain time (batch service / batch
  /// size) into the EWMA behind watermark retry_after hints.
  void observe_drain(std::uint64_t us_per_request);

  bool shedding() const;
  /// Estimated time until queue depth reaches the low watermark.
  std::uint64_t watermark_retry_after_us(std::size_t queue_depth) const;

  /// Swaps the policy, keeping current bucket levels (clamped to the new
  /// burst) and the shedding state (config reload).
  void reload(const AdmissionConfig& config);
  AdmissionConfig config() const;
  Stats stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t last_refill_us = 0;
  };

  std::uint64_t drain_hint_locked(std::size_t queue_depth) const;
  void refill_locked(Bucket& bucket, std::uint64_t now_us) const;

  mutable std::mutex mutex_;
  AdmissionConfig config_;
  core::Clock& clock_;
  std::map<std::string, Bucket> buckets_;
  bool shedding_ = false;
  double drain_ewma_us_ = 0.0;
  bool drain_seeded_ = false;
  Stats stats_;
};

}  // namespace hpnn::serve
