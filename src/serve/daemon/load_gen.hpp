// Open-loop load generator for overload experiments.
//
// Arrivals are scheduled on virtual time at a configured offered rate —
// open-loop, so the generator keeps offering load while the daemon sheds
// (closed-loop clients would politely slow down and hide the overload).
// Bursts model thundering herds: `burst` requests land back-to-back, then
// the lane goes quiet until the next burst boundary, keeping the long-run
// offered rate at offered_qps.
//
// Everything runs on a SimulatedClock in pump mode with seeded inputs, so
// a scenario is a pure function of its parameters: two runs produce
// byte-identical reports and metrics snapshots. The correctness oracle
// rides the daemon's batch observer — an un-faulted reference device
// re-infers every coalesced batch, the granularity at which int8
// quantization makes answers comparable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/chaos.hpp"
#include "serve/daemon/daemon.hpp"

namespace hpnn::serve {

struct LoadScenario {
  /// Long-run offered request rate on the virtual clock.
  double offered_qps = 2'000.0;
  int requests = 200;
  /// Sample rows per request.
  std::int64_t batch = 1;
  int tenants = 4;
  std::uint64_t seed = 1;
  /// Arrivals per burst (1 = evenly spaced open-loop arrivals).
  int burst = 1;
  /// Per-request probability of a key-bit SEU on a healthy replica
  /// (the chaos harness's weather, aimed at the daemon path).
  double key_seu_rate = 0.0;
  /// Request index at which replica 0 is forcibly quarantined (-1 = never):
  /// capacity loss in the middle of the storm.
  int quarantine_at_request = -1;
  DaemonConfig daemon;
  /// Supervisor configuration; clock and provision are harness-owned.
  SupervisorConfig config;
};

struct LoadReport {
  int offered = 0;
  int accepted = 0;
  int completed = 0;
  /// Rejected by admission control (with retry_after hints).
  int shed = 0;
  /// Rejected by the hard queue bound (admission reacted too slowly).
  int queue_full = 0;
  /// Accepted but expired in the queue past max_queue_wait_us.
  int expired = 0;
  /// Accepted but failed in serving (supervisor exhausted retries etc.).
  int failed = 0;
  /// Batch-oracle disagreements among completed requests. Must be zero.
  int wrong = 0;
  int seus_injected = 0;

  std::uint64_t p50_latency_us = 0;
  std::uint64_t p99_latency_us = 0;
  std::uint64_t max_latency_us = 0;
  std::uint64_t p50_queue_wait_us = 0;
  std::uint64_t p99_queue_wait_us = 0;
  /// Range of retry_after hints handed to shed requests.
  std::uint64_t min_retry_after_us = 0;
  std::uint64_t max_retry_after_us = 0;

  std::uint64_t virtual_elapsed_us = 0;
  DaemonStats daemon;
  PoolStats pool;
  /// Deterministic metrics snapshot (counters + histogram sample counts);
  /// empty when metrics are compiled out or disabled.
  std::string metrics_json;
};

/// Offered load the scenario's service model can sustain, in qps:
/// max_batch_rows / service(max_batch_rows) for the simulated service
/// time. 0 when the scenario has no simulated service model.
double sustainable_qps(const LoadScenario& scenario);

/// Runs the scenario to completion (arrivals, pumping, graceful drain) and
/// returns the report. Resets the process metrics registry first.
LoadReport run_load_scenario(const ChaosModelBundle& bundle,
                             const LoadScenario& scenario);

/// JSON report {"bench":"serve_overload",...} for bench sinks and CI.
void write_overload_json(std::ostream& os, const LoadScenario& scenario,
                         const LoadReport& report);

}  // namespace hpnn::serve
