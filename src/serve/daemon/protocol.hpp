// Text line protocol for `hpnn serve`: one request per line in, one
// response line out. Inputs are generated server-side from a seed (the
// devices consume locked activations, so clients exchanging raw tensors
// would add marshalling without exercising anything new):
//
//   INFER <tenant> <id> <seed> <n>   -> OK <id> classes=3,1 replica=0 ...
//                                    |  ERR <id> <kind> retry_after_us=..
//   STATS                            -> STATS depth=.. completed=.. ...
//   RELOAD key=value ...             -> OK reload
//   DRAIN                            -> OK drained
//   QUIT                             -> OK bye
//
// The codec is pure string <-> struct (no I/O, no daemon reference), so it
// unit-tests without a transport and both the stdin loop and --script files
// share one parser.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/daemon/daemon.hpp"

namespace hpnn::serve {

struct ProtoRequest {
  enum class Kind { kInfer, kStats, kReload, kDrain, kQuit };
  Kind kind = Kind::kInfer;
  // kInfer fields:
  std::string tenant;
  std::uint64_t id = 0;
  std::uint64_t seed = 0;
  std::int64_t n = 1;
  // kReload fields:
  std::vector<std::pair<std::string, std::string>> options;
};

/// Parses one protocol line. Throws Error on malformed input (unknown verb,
/// missing fields, non-numeric numbers). Callers skip blank lines and
/// '#' comments before parsing; empty input throws.
ProtoRequest parse_request(const std::string& line);

/// OK line for a completed inference.
std::string format_reply(std::uint64_t id, const Reply& reply);

/// ERR line. `kind` is a short stable token ("admission_rejected",
/// "queue_full", "timeout", "unavailable", "retry_exhausted", "error");
/// retry_after_us is 0 when the failure carries no hint.
std::string format_error(std::uint64_t id, const std::string& kind,
                         std::uint64_t retry_after_us,
                         const std::string& message);

/// STATS line from a daemon snapshot.
std::string format_stats(const DaemonStats& stats);

/// Maps a caught serving exception to its ERR line. Rethrows nothing;
/// returns the formatted line.
std::string format_exception(std::uint64_t id, std::exception_ptr error);

}  // namespace hpnn::serve
