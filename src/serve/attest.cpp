#include "serve/attest.hpp"

#include <vector>

#include "core/error.hpp"
#include "tensor/ops.hpp"

namespace hpnn::serve {

ProbeResult attestation_probe(hw::TrustedDevice& device,
                              const obf::AttestationChallenge& challenge) {
  if (!device.key_store().integrity_ok()) {
    throw KeyError("sealed key store failed integrity check during probe");
  }
  const Tensor logits = device.infer(challenge.probes);
  const std::vector<std::int64_t> classes = ops::argmax_rows(logits);
  const obf::AttestationResult classes_result =
      obf::check_response(challenge, classes);

  ProbeResult result;
  result.agreement = classes_result.agreement;
  if (!challenge.logit_digest_hex.empty()) {
    result.digest_match =
        obf::logit_digest_hex(logits) == challenge.logit_digest_hex;
  }
  result.passed = classes_result.passed && result.digest_match;
  return result;
}

}  // namespace hpnn::serve
