#include "serve/chaos.hpp"

#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "hpnn/attestation.hpp"
#include "hpnn/keychain.hpp"
#include "hpnn/locked_model.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::serve {

ChaosModelBundle make_chaos_model(std::uint64_t seed, std::int64_t num_probes,
                                  double min_agreement,
                                  bool with_logit_digest) {
  ChaosModelBundle bundle;
  Rng rng(seed);
  bundle.master = obf::HpnnKey::random(rng);
  bundle.model_id = "chaos-cnn1";

  const obf::HpnnKey model_key =
      obf::derive_model_key(bundle.master, bundle.model_id);
  const std::uint64_t schedule_seed =
      obf::derive_schedule_seed(bundle.master, bundle.model_id);

  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.init_seed = seed + 7;
  obf::Scheduler scheduler(schedule_seed);
  obf::LockedModel model(models::Architecture::kCnn1, cfg, model_key,
                         scheduler);

  std::stringstream ss;
  obf::publish_model(ss, model);
  bundle.artifact = obf::read_published_model(ss);

  Rng probe_rng = rng.split();
  bundle.challenge = obf::make_challenge(model, num_probes, probe_rng);
  bundle.challenge.min_agreement = min_agreement;
  if (with_logit_digest) {
    // The owner holds the master key, so it can provision a golden device
    // and record the exact int8 probe logits every healthy replica must
    // reproduce bit-for-bit (same key, schedule seed and DeviceConfig).
    hw::TrustedDevice golden(model_key, schedule_seed, hw::DeviceConfig{});
    golden.load_model(bundle.artifact);
    bundle.challenge.logit_digest_hex =
        obf::logit_digest_hex(golden.infer(bundle.challenge.probes));
  }
  return bundle;
}

ChaosReport run_chaos_scenario(const ChaosModelBundle& bundle,
                               const ChaosScenario& scenario) {
  if (metrics::enabled()) {
    metrics::MetricsRegistry::instance().reset();
  }

  SimulatedClock clock(0);
  // Injectors outlive the devices they are attached to; the hook may run
  // concurrently from maintenance workers, so appends are serialized.
  std::vector<std::unique_ptr<hw::FaultInjector>> injectors;
  std::mutex injectors_mutex;

  SupervisorConfig config = scenario.config;
  config.clock = &clock;
  config.provision = [&](hw::TrustedDevice& device, std::size_t replica,
                         bool reprovision) {
    if (replica >= scenario.plans.size()) {
      return;
    }
    const auto& slot = reprovision ? scenario.plans[replica].after_reprovision
                                   : scenario.plans[replica].initial;
    if (!slot.has_value()) {
      return;
    }
    std::lock_guard<std::mutex> lock(injectors_mutex);
    injectors.push_back(std::make_unique<hw::FaultInjector>(*slot));
    device.attach_fault_injector(injectors.back().get());
  };

  ServingSupervisor supervisor(bundle.master, bundle.model_id,
                               bundle.artifact, bundle.challenge, config);

  // Un-faulted oracle: same diversified key, same artifact, no injector.
  hw::TrustedDevice reference(
      obf::derive_model_key(bundle.master, bundle.model_id),
      obf::derive_schedule_seed(bundle.master, bundle.model_id),
      config.device);
  reference.load_model(bundle.artifact);

  Rng input_rng(scenario.seed);
  Rng seu_rng(scenario.seed ^ 0x5e05eedULL);

  ChaosReport report;
  report.requests = scenario.requests;
  DevicePool& pool = supervisor.pool();

  for (int r = 0; r < scenario.requests; ++r) {
    clock.advance(scenario.inter_request_us);

    // SEU weather: maybe flip one key bit on a random healthy replica.
    if (scenario.key_seu_rate > 0.0 &&
        seu_rng.bernoulli(scenario.key_seu_rate)) {
      std::vector<std::size_t> closed;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool.state(i) == BreakerState::kClosed) {
          closed.push_back(i);
        }
      }
      if (!closed.empty()) {
        const std::size_t target =
            closed[seu_rng.uniform_index(closed.size())];
        hw::FaultPlan seu;
        seu.key_bits = {static_cast<std::size_t>(seu_rng.uniform_index(256))};
        hw::FaultInjector* raw = nullptr;
        {
          std::lock_guard<std::mutex> lock(injectors_mutex);
          injectors.push_back(std::make_unique<hw::FaultInjector>(seu));
          raw = injectors.back().get();
        }
        pool.with_replica(target, [raw](hw::TrustedDevice& device) {
          device.attach_fault_injector(raw);
        });
        ++report.seus_injected;
      }
    }

    const Tensor batch = Tensor::normal(
        Shape{scenario.batch, bundle.artifact.in_channels,
              bundle.artifact.image_size, bundle.artifact.image_size},
        input_rng, 0.0f, 0.25f);
    const std::vector<std::int64_t> expected = reference.classify(batch);

    try {
      const RequestResult result = supervisor.submit(batch);
      ++report.succeeded;
      report.attempts += result.attempts;
      report.retries += result.attempts - 1;
      report.degraded += result.degraded ? 1 : 0;
      if (result.classes != expected) {
        ++report.wrong;
      }
    } catch (const TimeoutError&) {
      ++report.timeouts;
    } catch (const DeviceUnavailableError&) {
      ++report.unavailable;
    } catch (const RetryExhaustedError& e) {
      ++report.retry_exhausted;
      report.attempts += e.attempts();
      report.retries += e.attempts() - 1;
    }
  }

  // Final maintenance pump: give quarantined/tripped replicas enough
  // virtual time to finish healing, so end-of-run accounting closes the
  // loop (every quarantine should end in a successful re-provision when
  // replacement hardware is clean).
  for (int round = 0; round < 16; ++round) {
    bool sick = false;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const BreakerState s = pool.state(i);
      if (s == BreakerState::kOpen || s == BreakerState::kQuarantined) {
        sick = true;
      }
    }
    if (!sick) {
      break;
    }
    clock.advance(config.breaker.open_cooldown_us + 1);
    pool.run_maintenance(clock.now_us());
  }

  report.pool = pool.stats();
  report.virtual_elapsed_us = clock.now_us();
  if (metrics::enabled()) {
    std::ostringstream os;
    metrics::write_json(os, metrics::MetricsRegistry::instance().snapshot(),
                        /*deterministic=*/true);
    report.metrics_json = os.str();
  }
  return report;
}

void write_chaos_json(std::ostream& os, const ChaosScenario& scenario,
                      const ChaosReport& report) {
  os << "{\"bench\":\"serve_chaos\""
     << ",\"replicas\":" << scenario.config.replicas
     << ",\"requests\":" << report.requests
     << ",\"batch\":" << scenario.batch
     << ",\"seed\":" << scenario.seed
     << ",\"key_seu_rate\":" << scenario.key_seu_rate
     << ",\"degradation\":\""
     << degradation_policy_name(scenario.config.degradation) << "\""
     << ",\"verify\":\"" << verify_mode_name(scenario.config.verify) << "\""
     << ",\"succeeded\":" << report.succeeded
     << ",\"wrong\":" << report.wrong
     << ",\"timeouts\":" << report.timeouts
     << ",\"unavailable\":" << report.unavailable
     << ",\"retry_exhausted\":" << report.retry_exhausted
     << ",\"degraded\":" << report.degraded
     << ",\"attempts\":" << report.attempts
     << ",\"retries\":" << report.retries
     << ",\"seus_injected\":" << report.seus_injected
     << ",\"quarantines\":" << report.pool.quarantines
     << ",\"reprovisions\":" << report.pool.reprovisions
     << ",\"reprovision_failures\":" << report.pool.reprovision_failures
     << ",\"probes\":" << report.pool.probes
     << ",\"probe_failures\":" << report.pool.probe_failures
     << ",\"breaker_trips\":" << report.pool.breaker_trips
     << ",\"virtual_elapsed_us\":" << report.virtual_elapsed_us
     << ",\"metrics\":"
     << (report.metrics_json.empty() ? "null" : report.metrics_json) << "}";
}

}  // namespace hpnn::serve
