// Per-replica health gate: a circuit breaker with a quarantine tier.
//
// The classic closed/open/half-open breaker handles *transient* trouble
// (timeouts, stochastic datapath faults): trip after a run of failures,
// cool down, probe, readmit. HPNN adds a fourth, sticky state for
// *integrity* trouble: a KeyError or a failed attestation means the
// replica's key material or locked weights are corrupt, and no amount of
// waiting fixes that. Such replicas are quarantined and only return to
// service after the pool re-provisions them from the master key.
//
// The breaker is pure bookkeeping — it never touches a device and takes no
// locks. DevicePool guards each breaker with its pool mutex.
#pragma once

#include <cstdint>

#include "serve/clock.hpp"

namespace hpnn::serve {

enum class BreakerState : int {
  kClosed = 0,      ///< Healthy: admitting traffic.
  kHalfOpen = 1,    ///< Probe passed; trial traffic admitted.
  kOpen = 2,        ///< Tripped: no traffic until a probe passes.
  kQuarantined = 3  ///< Integrity failure: needs re-provisioning.
};

const char* breaker_state_name(BreakerState state);

struct BreakerPolicy {
  /// Consecutive request failures that trip kClosed -> kOpen.
  int failure_threshold = 3;
  /// Minimum time in kOpen before a maintenance probe is due.
  std::uint64_t open_cooldown_us = 2'000;
  /// Consecutive successes in kHalfOpen required to close again.
  int half_open_successes = 1;
  /// Failed probes tolerated in kOpen before escalating to quarantine
  /// (a replica that keeps failing self-test is treated as corrupt).
  int probe_failure_limit = 2;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = {}) : policy_(policy) {}

  BreakerState state() const { return state_; }

  /// True when the replica may serve requests (kClosed or kHalfOpen).
  bool admits() const {
    return state_ == BreakerState::kClosed || state_ == BreakerState::kHalfOpen;
  }

  /// Records a successful request attempt.
  void record_success();

  /// Records a failed request attempt at virtual time `now_us`.
  /// Returns true if this failure tripped the breaker (-> kOpen).
  bool record_failure(std::uint64_t now_us);

  /// Forces quarantine (integrity fault: KeyError / failed attestation).
  void quarantine();

  /// True when a maintenance action is due at `now_us`: a self-test probe
  /// (kOpen past cooldown) or a re-provision (kQuarantined).
  bool maintenance_due(std::uint64_t now_us) const;

  /// Earliest time maintenance becomes due, for retry-after hints.
  /// Returns `now_us` when already due or when the replica is healthy.
  std::uint64_t maintenance_due_at(std::uint64_t now_us) const;

  /// Records the outcome of a self-test probe while kOpen. A pass moves to
  /// kHalfOpen; repeated failures beyond probe_failure_limit escalate to
  /// kQuarantined (otherwise the cooldown restarts).
  void record_probe(bool passed, std::uint64_t now_us);

  /// Re-provisioning succeeded: back to kClosed with counters cleared.
  void reset();

 private:
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  int probe_failures_ = 0;
  std::uint64_t opened_at_us_ = 0;
};

}  // namespace hpnn::serve
