#include "serve/fleet.hpp"

#include <chrono>
#include <ostream>

#include "core/error.hpp"
#include "core/threadpool.hpp"
#include "hpnn/keychain.hpp"

namespace hpnn::serve {

bool FleetReport::all_ok(bool attest_required) const {
  if (failed > 0 || provisioned != devices.size()) {
    return false;
  }
  return !attest_required || attested == devices.size();
}

FleetReport provision_fleet(const obf::HpnnKey& master_key,
                            const std::string& model_id,
                            const obf::PublishedModel& artifact,
                            const obf::AttestationChallenge& challenge,
                            const FleetConfig& config) {
  HPNN_CHECK(config.devices >= 1, "fleet provisioning needs >= 1 device");
  // Diversify once; every device in the batch seals the same per-model
  // secrets, exactly like a production line programming from one license.
  const obf::HpnnKey model_key = obf::derive_model_key(master_key, model_id);
  const std::uint64_t schedule_seed =
      obf::derive_schedule_seed(master_key, model_id);

  FleetReport report;
  report.model_key_fingerprint = obf::key_fingerprint(model_key);
  report.devices.resize(config.devices);

  const auto start = std::chrono::steady_clock::now();
  core::parallel_for(
      0, static_cast<std::int64_t>(config.devices), 1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          FleetDeviceReport& slot =
              report.devices[static_cast<std::size_t>(i)];
          try {
            hw::TrustedDevice device(model_key, schedule_seed, config.device);
            device.load_model(artifact);
            slot.provisioned = true;
            if (config.attest) {
              const obf::AttestationResult result =
                  device.self_test(challenge);
              slot.agreement = result.agreement;
              slot.attested = result.passed;
              if (!result.passed) {
                slot.error = "attestation failed (agreement " +
                             std::to_string(result.agreement) + ")";
              }
            }
          } catch (const std::exception& e) {
            slot.error = e.what();
          }
        }
      });
  const auto elapsed = std::chrono::steady_clock::now() - start;

  for (const auto& slot : report.devices) {
    report.provisioned += slot.provisioned ? 1 : 0;
    report.attested += slot.attested ? 1 : 0;
    report.failed += slot.error.empty() ? 0 : 1;
  }
  report.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  report.devices_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(config.devices) / report.wall_seconds
          : 0.0;
  return report;
}

void write_fleet_json(std::ostream& os, const FleetReport& report) {
  os << "{\"fleet\":{"
     << "\"devices\":" << report.devices.size()
     << ",\"provisioned\":" << report.provisioned
     << ",\"attested\":" << report.attested
     << ",\"failed\":" << report.failed
     << ",\"wall_seconds\":" << report.wall_seconds
     << ",\"devices_per_second\":" << report.devices_per_second
     << ",\"model_key_fingerprint\":\"" << report.model_key_fingerprint
     << "\"}}";
}

}  // namespace hpnn::serve
