// A pool of TrustedDevice replicas provisioned from one owner master key.
//
// Every replica is sealed with the same keychain-diversified model key and
// schedule seed (hpnn/keychain.hpp), so healthy replicas are bit-identical
// executors of the published artifact — which is what lets the supervisor
// cross-check answers between replicas (VerifyMode::kWitness).
//
// Health is tracked per replica by a CircuitBreaker; sick replicas are
// routed around, probed with the artifact's attestation challenge during
// maintenance, and — when quarantined by an integrity fault — destroyed
// and re-provisioned from the master key (fresh SecureKeyStore, model
// reload, attestation replay). Maintenance work fans out on the
// deterministic threadpool.
//
// Locking protocol (deadlock-free by construction):
//   - pool mutex: breakers, round-robin cursor, maintenance claims, stats.
//     Never held while taking a replica mutex.
//   - one mutex per replica: serializes device use (infer / self_test /
//     injector attach) and the device swap during re-provisioning.
//     acquire() may block on at most one replica mutex while holding no
//     other lock; acquire_witness() only ever try-locks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hpnn/attestation.hpp"
#include "hpnn/model_io.hpp"
#include "hw/device.hpp"
#include "serve/breaker.hpp"
#include "serve/clock.hpp"

namespace hpnn::metrics {
class Gauge;
}

namespace hpnn::serve {

/// Called on every (re-)provisioned device after the model is loaded, with
/// the replica index and whether this is a re-provision. The chaos harness
/// uses it to attach fault injectors; production hooks could burn device
/// serial numbers or log license events.
using ProvisionHook =
    std::function<void(hw::TrustedDevice&, std::size_t, bool)>;

struct PoolConfig {
  std::size_t replicas = 4;
  hw::DeviceConfig device;
  BreakerPolicy breaker;
};

/// Plain (metrics-independent) transition accounting, exact under
/// concurrency: every field is mutated under the pool mutex.
struct PoolStats {
  std::uint64_t quarantines = 0;
  std::uint64_t reprovisions = 0;
  std::uint64_t reprovision_failures = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t breaker_trips = 0;
};

class DevicePool {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Exclusive access to one replica's device. The replica cannot be
  /// swapped out (re-provisioned) while the lease is held.
  struct Lease {
    hw::TrustedDevice* device = nullptr;
    std::size_t index = npos;
    std::unique_lock<std::mutex> lock;

    bool valid() const { return device != nullptr; }
  };

  /// Provisions `config.replicas` devices from (master_key, model_id) via
  /// keychain diversification and loads the artifact into each. The hook
  /// (if any) runs after every load. Initial provisioning does not
  /// self-test: factory-fresh devices are trusted until serving or
  /// maintenance observes otherwise.
  DevicePool(const obf::HpnnKey& master_key, const std::string& model_id,
             const obf::PublishedModel& artifact,
             obf::AttestationChallenge challenge, PoolConfig config,
             core::Clock& clock, ProvisionHook hook = {});

  std::size_t size() const { return replicas_.size(); }
  const obf::AttestationChallenge& challenge() const { return challenge_; }

  /// Replicas currently admitting traffic (breaker closed or half-open).
  std::size_t admitting_count() const;
  BreakerState state(std::size_t index) const;
  std::uint64_t reprovision_count(std::size_t index) const;
  PoolStats stats() const;

  /// Leases an admitting replica, round-robin. Blocks on at most one
  /// replica mutex (while holding no other lock). Returns an invalid lease
  /// when no replica admits traffic.
  Lease acquire();

  /// Leases an admitting replica other than `exclude` for witness
  /// execution. Never blocks: only try-locks, so it is safe to call while
  /// holding another replica's lease. Invalid lease when none is free.
  Lease acquire_witness(std::size_t exclude);

  /// Records a successful request attempt on a replica.
  void report_success(std::size_t index);

  /// Records a failed request attempt; returns true if this tripped the
  /// replica's breaker (closed/half-open -> open).
  bool report_failure(std::size_t index);

  /// Forces a replica into quarantine (integrity fault detected). Idempotent
  /// per sick episode: re-quarantining an already quarantined replica does
  /// not double-count.
  void quarantine(std::size_t index);

  /// Runs due maintenance at virtual time `now_us`: attestation probes for
  /// tripped replicas past cooldown, re-provisioning for quarantined ones.
  /// Claims are exclusive, so concurrent callers never double-service a
  /// replica; the claimed work fans out on the threadpool.
  void run_maintenance(std::uint64_t now_us);

  /// Earliest future time at which maintenance could heal a sick replica
  /// (retry-after hint). Returns `now_us` when a replica is already due or
  /// the pool is fully healthy.
  std::uint64_t next_maintenance_due_us(std::uint64_t now_us) const;

  /// Runs `fn` on replica `index`'s device under its lease (tests / chaos
  /// fault attachment).
  void with_replica(std::size_t index,
                    const std::function<void(hw::TrustedDevice&)>& fn);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

 private:
  struct Replica {
    std::unique_ptr<hw::TrustedDevice> device;
    CircuitBreaker breaker;
    std::unique_ptr<std::mutex> mutex;
    bool busy_maintenance = false;
    std::uint64_t reprovisions = 0;
  };

  std::unique_ptr<hw::TrustedDevice> build_device(std::size_t index,
                                                  bool reprovision);
  /// Admitting replica indices, rotated by the round-robin cursor.
  /// Caller must hold the pool mutex when `advance_cursor`.
  std::vector<std::size_t> admitting_rotation_locked(bool advance_cursor);
  void update_gauges_locked();

  obf::HpnnKey model_key_;
  std::uint64_t schedule_seed_ = 0;
  obf::PublishedModel artifact_;
  obf::AttestationChallenge challenge_;
  PoolConfig config_;
  core::Clock& clock_;
  ProvisionHook hook_;

  mutable std::mutex mutex_;
  std::vector<Replica> replicas_;
  std::size_t rr_cursor_ = 0;
  PoolStats stats_;
  // Lazily bound per-replica state gauges (null until metrics are enabled).
  std::vector<metrics::Gauge*> state_gauges_;
  metrics::Gauge* healthy_gauge_ = nullptr;
};

}  // namespace hpnn::serve
