// Serving policies: retry/backoff, degradation and verification knobs.
//
// Everything here is plain data so scenarios are trivially serializable and
// the chaos harness can sweep configurations. The backoff schedule is a
// pure function of (policy, attempt, rng draw) — under a fixed seed the
// whole retry timeline of a serial request stream is reproducible, exactly
// like the PR-1 fault campaigns.
#pragma once

#include <cstdint>

#include "core/rng.hpp"

namespace hpnn::serve {

/// Bounded retries with seeded exponential backoff + jitter.
struct RetryPolicy {
  /// Total tries per request (first attempt included). >= 1.
  int max_attempts = 4;
  /// Delay before retry k (1-based) is base * multiplier^(k-1), capped.
  std::uint64_t base_backoff_us = 500;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 50'000;
  /// Uniform jitter fraction in [0, 1): the delay is scaled by a factor
  /// drawn from [1 - jitter, 1 + jitter). 0 disables jitter.
  double jitter = 0.25;
};

/// Backoff delay before the retry following `failed_attempts` failures
/// (>= 1). Consumes exactly one rng draw when jitter is enabled.
std::uint64_t backoff_delay_us(const RetryPolicy& policy, int failed_attempts,
                               Rng& rng);

/// What the supervisor does when replicas are sick.
enum class DegradationPolicy {
  /// Strictest posture: a detected fault anywhere in the pool halts serving
  /// (every replica must be fully healthy). The paper's fail-closed story
  /// extended to the pool level.
  kFailClosed,
  /// Keep serving on the healthy subset; fail only when it is empty.
  kDegradeToSubset,
  /// Like kDegradeToSubset, but an empty healthy subset is reported as
  /// backpressure: DeviceUnavailableError carries retry_after_us (time
  /// until the next probe / re-provision is due) instead of a hard refusal.
  kRejectWithRetryAfter,
};

/// How a served result is cross-checked before it is returned.
enum class VerifyMode {
  /// Trust a single execution (integrity pre/post checks still run).
  kNone,
  /// Run the request twice on the same replica and require bit-identical
  /// logits. Catches stochastic datapath faults (transient accumulator
  /// flips); deterministic corruption repeats identically and slips by.
  kEcho,
  /// Replay the artifact's attestation probes on the serving replica after
  /// the request and require the exact logit digest recorded from the
  /// owner's golden device (AttestationChallenge::logit_digest_hex). A
  /// self-witness against a provision-time golden: unlike kEcho it catches
  /// *deterministic* single-replica corruption (a stuck accumulator bit
  /// reproduces on the probes and breaks the digest), and unlike kWitness
  /// it needs no second healthy replica. Falls back to kEcho when the
  /// challenge carries no digest.
  kDigest,
  /// Run the request on a second replica and require bit-identical logits
  /// (replicas share key + schedule, so healthy devices agree exactly).
  /// Catches deterministic single-replica corruption too. Falls back to
  /// kDigest (then kEcho) when only one replica is healthy.
  kWitness,
};

const char* degradation_policy_name(DegradationPolicy policy);
const char* verify_mode_name(VerifyMode mode);

}  // namespace hpnn::serve
