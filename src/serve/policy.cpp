#include "serve/policy.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace hpnn::serve {

std::uint64_t backoff_delay_us(const RetryPolicy& policy, int failed_attempts,
                               Rng& rng) {
  HPNN_CHECK(failed_attempts >= 1, "backoff requires at least one failure");
  double delay =
      static_cast<double>(policy.base_backoff_us) *
      std::pow(policy.backoff_multiplier, failed_attempts - 1);
  delay = std::min(delay, static_cast<double>(policy.max_backoff_us));
  if (policy.jitter > 0.0) {
    const double lo = 1.0 - policy.jitter;
    const double span = 2.0 * policy.jitter;
    delay *= lo + span * rng.uniform();
  }
  return static_cast<std::uint64_t>(std::llround(std::max(delay, 0.0)));
}

const char* degradation_policy_name(DegradationPolicy policy) {
  switch (policy) {
    case DegradationPolicy::kFailClosed:
      return "fail_closed";
    case DegradationPolicy::kDegradeToSubset:
      return "degrade_to_subset";
    case DegradationPolicy::kRejectWithRetryAfter:
      return "reject_with_retry_after";
  }
  return "unknown";
}

const char* verify_mode_name(VerifyMode mode) {
  switch (mode) {
    case VerifyMode::kNone:
      return "none";
    case VerifyMode::kEcho:
      return "echo";
    case VerifyMode::kDigest:
      return "digest";
    case VerifyMode::kWitness:
      return "witness";
  }
  return "unknown";
}

}  // namespace hpnn::serve
