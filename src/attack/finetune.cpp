#include "attack/finetune.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "hpnn/lock_scheme.hpp"
#include "nn/trainer.hpp"

namespace hpnn::attack {

const char* init_strategy_name(InitStrategy s) {
  switch (s) {
    case InitStrategy::kStolenWeights:
      return "HPNN fine-tuning";
    case InitStrategy::kRandomSmall:
      return "random fine-tuning";
  }
  return "unknown";
}

FineTuneReport finetune_attack(const obf::PublishedModel& artifact,
                               const data::Dataset& thief,
                               const data::Dataset& test, InitStrategy init,
                               const FineTuneOptions& options) {
  test.validate();
  if (thief.size() > 0) {
    thief.validate();
  }

  // The attacker instantiates the known baseline architecture ...
  std::unique_ptr<nn::Sequential> net;
  if (init == InitStrategy::kStolenWeights) {
    // ... and loads the stolen bits into it, as published by whatever
    // locking scheme protects this artifact (sign-locked weights, an
    // encrypted weight stream, ...). Routing through the registry instead
    // of assuming sign-locking means a campaign covering a new scheme
    // cannot silently fine-tune the wrong view; unknown tags fail closed.
    net = obf::scheme_by_tag(artifact.scheme_tag).attacker_view(artifact);
  } else {
    // ... and initializes it with fresh random small weights.
    auto cfg = artifact.model_config(/*init_seed=*/options.seed ^ 0x5eedULL);
    cfg.activation = models::plain_relu_factory();
    net = models::build(artifact.arch, cfg);
  }

  FineTuneReport report;
  report.thief_size = thief.size();

  nn::SoftmaxCrossEntropy loss;
  std::unique_ptr<nn::Optimizer> opt;
  if (options.optimizer == AttackOptimizer::kAdam) {
    nn::Adam::Options adam = options.adam;
    adam.lr = options.sgd.lr;
    opt = std::make_unique<nn::Adam>(nn::parameters_of(*net), adam);
  } else {
    opt = std::make_unique<nn::Sgd>(nn::parameters_of(*net), options.sgd);
  }
  nn::StepLr schedule(*opt, options.lr_step, options.lr_gamma);

  if (thief.size() == 0) {
    // No thief data: the attacker can only run the initialization as-is.
    report.final_accuracy =
        nn::evaluate_accuracy(*net, test.images, test.labels);
    report.best_accuracy = report.final_accuracy;
    return report;
  }

  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    nn::TrainConfig cfg;
    cfg.epochs = 1;
    cfg.batch_size = options.batch_size;
    cfg.shuffle_seed = options.seed + static_cast<std::uint64_t>(epoch);
    const auto result =
        nn::fit(*net, loss, *opt, thief.images, thief.labels, cfg);
    report.epoch_loss.push_back(result.final_loss);
    schedule.epoch_end();
    if (options.track_epoch_accuracy || epoch == options.epochs - 1) {
      const double acc =
          nn::evaluate_accuracy(*net, test.images, test.labels);
      if (options.track_epoch_accuracy) {
        report.epoch_accuracy.push_back(acc);
      }
      report.best_accuracy = std::max(report.best_accuracy, acc);
      if (epoch == options.epochs - 1) {
        report.final_accuracy = acc;
      }
    }
  }
  HPNN_LOG(Debug) << init_strategy_name(init) << " on " << thief.size()
                  << " thief samples: final acc " << report.final_accuracy;
  return report;
}

std::vector<LrSweepPoint> lr_sweep(const obf::PublishedModel& artifact,
                                   const data::Dataset& thief,
                                   const data::Dataset& test,
                                   const std::vector<double>& lrs,
                                   const FineTuneOptions& base_options) {
  std::vector<LrSweepPoint> out;
  out.reserve(lrs.size());
  for (const double lr : lrs) {
    FineTuneOptions opts = base_options;
    opts.sgd.lr = lr;
    opts.track_epoch_accuracy = true;
    LrSweepPoint point;
    point.lr = lr;
    point.report = finetune_attack(artifact, thief, test,
                                   InitStrategy::kStolenWeights, opts);
    out.push_back(std::move(point));
  }
  return out;
}

}  // namespace hpnn::attack
