#include "attack/distillation.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "hpnn/lock_scheme.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace hpnn::attack {

DistillationReport distill_student(const obf::PublishedModel& artifact,
                                   const TeacherOracle& teacher,
                                   const data::Dataset& transfer,
                                   const data::Dataset& test,
                                   const DistillationOptions& options) {
  HPNN_CHECK(teacher != nullptr, "distillation needs a teacher oracle");
  transfer.validate();
  test.validate();
  HPNN_CHECK(transfer.size() > 0, "distillation needs transfer inputs");

  // Fresh student on the known baseline topology.
  auto cfg = artifact.model_config(options.seed ^ 0x57F0ULL);
  cfg.activation = models::plain_relu_factory();
  auto student = models::build(artifact.arch, cfg);

  // Label the transfer set once: soft targets at temperature T.
  const Tensor teacher_logits = teacher(transfer.images);
  HPNN_CHECK(teacher_logits.rank() == 2 &&
                 teacher_logits.dim(0) == transfer.size(),
             "teacher oracle returned wrong shape");
  const Tensor soft_targets = ops::softmax_rows(
      teacher_logits * static_cast<float>(1.0 / options.temperature));

  DistillationReport report;
  report.transfer_size = transfer.size();
  report.oracle_queries = 1;

  nn::SoftTargetCrossEntropy loss;
  nn::Sgd opt(nn::parameters_of(*student), options.sgd);
  Rng shuffle_rng(options.seed);
  const std::size_t n = static_cast<std::size_t>(transfer.size());
  const std::int64_t classes = teacher_logits.dim(1);
  const std::int64_t sample = transfer.images.numel() / transfer.size();

  student->set_training(true);
  for (std::int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    const auto order = shuffle_rng.permutation(n);
    for (std::size_t at = 0; at < n; at += options.batch_size) {
      const std::size_t count =
          std::min<std::size_t>(options.batch_size, n - at);
      // Gather inputs and their soft targets by the same permutation.
      std::vector<std::int64_t> dims = transfer.images.shape().dims();
      dims[0] = static_cast<std::int64_t>(count);
      Tensor batch{Shape(dims)};
      Tensor targets(Shape{static_cast<std::int64_t>(count), classes});
      for (std::size_t i = 0; i < count; ++i) {
        const auto src = static_cast<std::int64_t>(order[at + i]);
        std::copy(transfer.images.data() + src * sample,
                  transfer.images.data() + (src + 1) * sample,
                  batch.data() + static_cast<std::int64_t>(i) * sample);
        std::copy(soft_targets.data() + src * classes,
                  soft_targets.data() + (src + 1) * classes,
                  targets.data() + static_cast<std::int64_t>(i) * classes);
      }
      nn::zero_grads(*student);
      const Tensor scores = student->forward(batch);
      (void)loss.forward(scores, targets, options.temperature);
      student->backward(loss.backward());
      opt.step();
    }
  }

  report.student_accuracy =
      nn::evaluate_accuracy(*student, test.images, test.labels);
  // The oracle's own quality, for reference.
  const Tensor test_logits = teacher(test.images);
  report.teacher_accuracy = nn::accuracy(test_logits, test.labels);
  return report;
}

DistillationReport distill_attack(const obf::PublishedModel& artifact,
                                  const data::Dataset& transfer,
                                  const data::Dataset& test,
                                  const DistillationOptions& options) {
  // The unauthorized attacker's best teacher: the published bits run with
  // no key, through the artifact's own scheme.
  const auto teacher_net =
      obf::scheme_by_tag(artifact.scheme_tag).attacker_view(artifact);
  const TeacherOracle teacher = [&teacher_net](const Tensor& images) {
    return teacher_net->forward(images);
  };
  return distill_student(artifact, teacher, transfer, test, options);
}

}  // namespace hpnn::attack
