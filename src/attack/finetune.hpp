// Model fine-tuning attack (Sec. IV-B/IV-C of the paper).
//
// The attacker holds the published (obfuscated) model artifact, knows the
// baseline DNN architecture (white-box setting), owns a small *thief*
// dataset (fraction alpha of the original training data), but has neither
// the HPNN key nor the trusted hardware. The attack retrains the baseline
// network on the thief data, starting either from the stolen weights
// ("HPNN fine-tuning") or from fresh random small weights ("random
// fine-tuning"); the two initializations performing alike is the paper's
// evidence that the obfuscated weights leak no useful information.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "hpnn/model_io.hpp"
#include "nn/optim.hpp"

namespace hpnn::attack {

/// Weight initialization for the attacker's baseline network.
enum class InitStrategy {
  kStolenWeights,  // "HPNN fine-tuning": start from the obfuscated weights
  kRandomSmall,    // "random fine-tuning": fresh random small weights
};

const char* init_strategy_name(InitStrategy s);

/// Optimizer the attacker uses for retraining. The paper's attacker uses
/// the owner's SGD hyperparameters; Adam models a better-resourced attacker
/// doing independent hyperparameter search.
enum class AttackOptimizer { kSgd, kAdam };

struct FineTuneOptions {
  nn::Sgd::Options sgd{0.01, 0.9, 5e-4};
  AttackOptimizer optimizer = AttackOptimizer::kSgd;
  /// Adam settings (lr is taken from sgd.lr for comparability).
  nn::Adam::Options adam{};
  std::int64_t epochs = 10;
  std::int64_t batch_size = 32;
  std::uint64_t seed = 77;
  /// Learning-rate decay: lr *= lr_gamma every lr_step epochs (0 = off).
  std::int64_t lr_step = 0;
  double lr_gamma = 1.0;
  /// Evaluate test accuracy after every epoch (needed for the Fig. 6
  /// accuracy-vs-epoch curves; costs one test pass per epoch).
  bool track_epoch_accuracy = false;
};

struct FineTuneReport {
  double final_accuracy = 0.0;          // test accuracy after the last epoch
  double best_accuracy = 0.0;           // best test accuracy seen
  std::vector<double> epoch_accuracy;   // per-epoch (if tracked)
  std::vector<double> epoch_loss;
  std::int64_t thief_size = 0;
};

/// Runs the fine-tuning attack and evaluates it against `test`.
/// An empty thief set (alpha = 0) skips training: the report then measures
/// what the initialization alone achieves (the paper's Fig. 7 alpha=0%
/// points).
FineTuneReport finetune_attack(const obf::PublishedModel& artifact,
                               const data::Dataset& thief,
                               const data::Dataset& test, InitStrategy init,
                               const FineTuneOptions& options);

/// Hyper-parameter exploration (Fig. 6): one fine-tuning run per learning
/// rate, tracking accuracy per epoch.
struct LrSweepPoint {
  double lr = 0.0;
  FineTuneReport report;
};
std::vector<LrSweepPoint> lr_sweep(const obf::PublishedModel& artifact,
                                   const data::Dataset& thief,
                                   const data::Dataset& test,
                                   const std::vector<double>& lrs,
                                   const FineTuneOptions& base_options);

}  // namespace hpnn::attack
