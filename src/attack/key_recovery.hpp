// Key-recovery attack: a security evaluation beyond the paper's threat
// model.
//
// The paper argues HPNN's security from the 2^256 key space and the privacy
// of the scheduling algorithm, and evaluates only fine-tuning attacks. This
// module asks the sharper question: if the attacker can *evaluate* key
// guesses (using the thief dataset's accuracy as an oracle), does greedy
// coordinate descent over the 256 key bits recover the key?
//
// Two attacker variants:
//  - kKnownSchedule: the attacker somehow learned the neuron->unit mapping
//    (the paper's secrecy assumption is violated). Each key bit controls a
//    coherent set of neurons, so per-bit accuracy signals exist.
//  - kUnknownSchedule: the attacker guesses a schedule seed. Bit flips then
//    toggle the *wrong* neuron sets, destroying the per-bit signal.
//
// The contrast between the two quantifies how much of HPNN's security rests
// on schedule secrecy rather than key length alone.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "hpnn/locked_model.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::attack {

enum class ScheduleKnowledge { kKnownSchedule, kUnknownSchedule };

/// What the attacker measures per key guess. Accuracy is a coarse, plateaued
/// signal; the cross-entropy loss is smooth and is what a competent attacker
/// would use.
enum class OracleMetric { kAccuracy, kLoss };

struct KeyRecoveryOptions {
  /// Full passes of greedy per-bit coordinate descent.
  std::int64_t sweeps = 2;
  OracleMetric metric = OracleMetric::kLoss;
  /// Accuracy is estimated on at most this many oracle samples per query
  /// (the attack makes 256 queries per sweep; keep the oracle cheap).
  std::int64_t oracle_samples = 256;
  /// Attacker's guess for the schedule seed in the kUnknownSchedule case.
  std::uint64_t guessed_schedule_seed = 0;
  std::uint64_t seed = 99;
};

struct KeyRecoveryReport {
  obf::HpnnKey recovered_key;
  double start_accuracy = 0.0;   // oracle accuracy of the initial guess
  double final_accuracy = 0.0;   // oracle accuracy of the recovered key
  double test_accuracy = 0.0;    // held-out accuracy of the recovered key
  std::size_t bits_matching = 0; // Hamming agreement with the true key
  std::int64_t oracle_queries = 0;
};

/// Runs greedy per-bit key recovery against a published model. Key guesses
/// are evaluated through the artifact's own LockScheme (resolved from its
/// scheme tag; unknown tags fail closed), so the same attack runs against
/// sign-locking, weight-stream encryption, or any registered scheme.
/// `oracle` is the attacker's labeled data (the thief set); `test` measures
/// what the recovered key is actually worth; `true_key` is used only for
/// reporting bits_matching. `true_schedule_seed` parameterizes the
/// kKnownSchedule attacker.
KeyRecoveryReport recover_key(const obf::PublishedModel& artifact,
                              const data::Dataset& oracle,
                              const data::Dataset& test,
                              const obf::HpnnKey& true_key,
                              std::uint64_t true_schedule_seed,
                              ScheduleKnowledge knowledge,
                              const KeyRecoveryOptions& options);

}  // namespace hpnn::attack
