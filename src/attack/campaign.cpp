#include "attack/campaign.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "attack/distillation.hpp"
#include "attack/finetune.hpp"
#include "attack/key_recovery.hpp"
#include "core/error.hpp"
#include "core/logging.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "nn/trainer.hpp"

namespace hpnn::attack {

namespace {

/// One scheme's prepared battlefield: the roundtripped protected artifact
/// plus the secrets the owner (not the attacker) holds.
struct SchemeSetup {
  obf::SchemeSecrets secrets;
  obf::PublishedModel artifact;
  std::int64_t locked_neurons = 0;
};

SchemeSetup prepare_scheme(const obf::LockScheme& scheme,
                           const obf::HpnnKey& master,
                           const data::SplitDataset& split,
                           const DefenseCampaignOptions& options) {
  SchemeSetup setup;
  // Per-scheme model id -> per-scheme key and schedule seed, the same
  // keychain derivation a provisioning flow would use.
  setup.secrets = obf::derive_scheme_secrets(
      master, options.model_id_prefix + ":" + scheme.tag());

  models::ModelConfig cfg;
  cfg.in_channels = split.train.channels();
  cfg.image_size = split.train.height();
  cfg.num_classes = split.train.num_classes;
  cfg.init_seed = options.init_seed;

  auto trainable = scheme.make_trainable(options.arch, cfg, setup.secrets);
  setup.locked_neurons = trainable->locked_neuron_count();

  obf::OwnerTrainOptions train_opts;
  train_opts.epochs = options.owner_epochs;
  train_opts.batch_size = options.batch_size;
  train_opts.sgd.lr = options.lr;
  train_opts.shuffle_seed = options.seed;
  (void)obf::train_locked_model(*trainable, split.train, split.test,
                                train_opts);

  // Publish and re-read through the real container format so the campaign
  // covers the serialization path (scheme tag + payload included).
  std::stringstream ss;
  obf::publish_protected_model(ss, scheme, *trainable, setup.secrets);
  setup.artifact = obf::read_published_model(ss);
  return setup;
}

DefenseCell run_attack_cell(const std::string& attack,
                            std::int64_t budget,
                            const SchemeSetup& setup,
                            const data::Dataset& thief,
                            const data::Dataset& test,
                            const DefenseCampaignOptions& options) {
  DefenseCell cell;
  cell.scheme = setup.artifact.scheme_tag;
  cell.attack = attack;
  cell.budget = budget;
  if (attack == kAttackFineTune) {
    FineTuneOptions ft;
    ft.epochs = budget;
    ft.batch_size = options.batch_size;
    ft.sgd.lr = options.lr;
    ft.seed = options.seed + 1;
    const FineTuneReport report = finetune_attack(
        setup.artifact, thief, test, InitStrategy::kStolenWeights, ft);
    cell.attacker_accuracy = report.final_accuracy;
    cell.work = budget;
  } else if (attack == kAttackKeyRecovery) {
    KeyRecoveryOptions kr;
    kr.sweeps = budget;
    kr.oracle_samples = options.oracle_samples;
    kr.seed = options.seed + 2;
    // The strongest key-recovery attacker: the schedule leaked. A defense
    // must bound even that one, so the campaign grants it.
    const KeyRecoveryReport report = recover_key(
        setup.artifact, thief, test, setup.secrets.key,
        setup.secrets.schedule_seed, ScheduleKnowledge::kKnownSchedule, kr);
    cell.attacker_accuracy = report.test_accuracy;
    cell.work = report.oracle_queries;
  } else if (attack == kAttackDistillation) {
    DistillationOptions kd;
    kd.epochs = budget;
    kd.batch_size = options.batch_size;
    kd.sgd.lr = options.lr;
    kd.seed = options.seed + 3;
    const DistillationReport report =
        distill_attack(setup.artifact, thief, test, kd);
    cell.attacker_accuracy = report.student_accuracy;
    cell.work = budget;
  } else {
    throw UsageError("unknown attack '" + attack +
                     "' (expected finetune | key-recovery | distillation)");
  }
  return cell;
}

}  // namespace

DefenseCampaignReport run_defense_campaign(
    const data::SplitDataset& split, const DefenseCampaignOptions& options) {
  split.train.validate();
  split.test.validate();
  HPNN_CHECK(!options.attacks.empty(), "defense campaign needs attacks");
  HPNN_CHECK(!options.budgets.empty(), "defense campaign needs budgets");
  for (const std::int64_t b : options.budgets) {
    HPNN_CHECK(b > 0, "attack budgets must be positive");
  }

  // Resolve every scheme up front: a campaign configured with a tag this
  // build does not register must fail loudly, not skip the scheme.
  std::vector<std::string> tags =
      options.schemes.empty() ? obf::registered_scheme_tags()
                              : options.schemes;
  std::vector<const obf::LockScheme*> schemes;
  schemes.reserve(tags.size());
  for (const std::string& tag : tags) {
    schemes.push_back(&obf::scheme_by_tag(tag));
  }

  DefenseCampaignReport report;
  report.arch = models::arch_name(options.arch);
  report.chance_accuracy =
      1.0 / static_cast<double>(split.train.num_classes);

  // One master key and one thief set shared by every scheme, so curves are
  // comparable across schemes.
  Rng key_rng(options.seed);
  const obf::HpnnKey master = obf::HpnnKey::random(key_rng);
  Rng thief_rng(options.seed ^ 0x7415EFULL);
  const data::Dataset thief =
      data::thief_subset(split.train, options.thief_alpha, thief_rng);
  HPNN_CHECK(thief.size() > 0,
             "defense campaign needs a non-empty thief set (alpha > 0)");
  report.thief_size = thief.size();

  for (const obf::LockScheme* scheme : schemes) {
    HPNN_LOG(Info) << "defend-bench: preparing scheme " << scheme->tag();
    const SchemeSetup setup =
        prepare_scheme(*scheme, master, split, options);

    SchemeBaseline baseline;
    baseline.scheme = scheme->tag();
    baseline.locked_neurons = setup.locked_neurons;
    {
      auto evaluator = scheme->make_evaluator(setup.artifact, setup.secrets);
      baseline.protected_accuracy = nn::evaluate_accuracy(
          evaluator->network(), split.test.images, split.test.labels);
      auto no_key = scheme->attacker_view(setup.artifact);
      baseline.no_key_accuracy = nn::evaluate_accuracy(
          *no_key, split.test.images, split.test.labels);
    }
    report.baselines.push_back(baseline);

    for (const std::string& attack : options.attacks) {
      for (const std::int64_t budget : options.budgets) {
        DefenseCell cell = run_attack_cell(attack, budget, setup, thief,
                                           split.test, options);
        HPNN_LOG(Info) << "defend-bench: " << cell.scheme << " x "
                       << cell.attack << " @ budget " << budget << " -> "
                       << cell.attacker_accuracy;
        report.cells.push_back(std::move(cell));
      }
    }
  }
  return report;
}

void write_defense_json(std::ostream& os,
                        const DefenseCampaignReport& report) {
  os << "{\"bench\":\"defense\",\"arch\":\"" << report.arch << "\""
     << ",\"chance_accuracy\":" << report.chance_accuracy
     << ",\"thief_size\":" << report.thief_size << ",\"baselines\":[";
  for (std::size_t i = 0; i < report.baselines.size(); ++i) {
    const SchemeBaseline& b = report.baselines[i];
    os << (i == 0 ? "" : ",") << "{\"scheme\":\"" << b.scheme << "\""
       << ",\"protected_accuracy\":" << b.protected_accuracy
       << ",\"no_key_accuracy\":" << b.no_key_accuracy
       << ",\"locked_neurons\":" << b.locked_neurons << "}";
  }
  os << "],\"curves\":[";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const DefenseCell& c = report.cells[i];
    os << (i == 0 ? "" : ",") << "{\"scheme\":\"" << c.scheme << "\""
       << ",\"attack\":\"" << c.attack << "\",\"budget\":" << c.budget
       << ",\"attacker_accuracy\":" << c.attacker_accuracy
       << ",\"work\":" << c.work << "}";
  }
  os << "]}\n";
}

}  // namespace hpnn::attack
