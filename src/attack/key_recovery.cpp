#include "attack/key_recovery.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "hpnn/lock_scheme.hpp"
#include "nn/trainer.hpp"

namespace hpnn::attack {

namespace {

/// Oracle bundle: a fixed prefix of the attacker's data, evaluated either
/// as accuracy (higher = better) or negative mean cross-entropy loss
/// (higher = better), so greedy maximization reads the same either way.
struct Oracle {
  Tensor images;
  std::vector<std::int64_t> labels;
  OracleMetric metric;

  double score(nn::Sequential& net) const {
    net.set_training(false);
    if (metric == OracleMetric::kAccuracy) {
      return nn::evaluate_accuracy(net, images, labels);
    }
    nn::SoftmaxCrossEntropy loss;
    const Tensor scores = net.forward(images);
    return -static_cast<double>(loss.forward(scores, labels));
  }
};

Oracle make_oracle(const data::Dataset& d, std::int64_t limit,
                   OracleMetric metric) {
  const std::int64_t n = std::min<std::int64_t>(d.size(), limit);
  HPNN_CHECK(n > 0, "key-recovery oracle has no samples");
  const std::int64_t sample = d.images.numel() / d.size();
  std::vector<std::int64_t> dims = d.images.shape().dims();
  dims[0] = n;
  return Oracle{Tensor(Shape{dims},
                       std::vector<float>(d.images.data(),
                                          d.images.data() + n * sample)),
                std::vector<std::int64_t>(d.labels.begin(),
                                          d.labels.begin() + n),
                metric};
}

}  // namespace

KeyRecoveryReport recover_key(const obf::PublishedModel& artifact,
                              const data::Dataset& oracle,
                              const data::Dataset& test,
                              const obf::HpnnKey& true_key,
                              std::uint64_t true_schedule_seed,
                              ScheduleKnowledge knowledge,
                              const KeyRecoveryOptions& options) {
  oracle.validate();
  test.validate();

  // The attack probes key guesses through the artifact's own locking
  // scheme (resolved from its tag, failing closed on unknown ones), so
  // the same coordinate descent runs against sign-locking, weight-stream
  // encryption, or any future registered scheme. The attacker's working
  // schedule seed: the real one if the schedule leaked, otherwise their
  // (almost surely wrong) guess.
  const obf::LockScheme& scheme = obf::scheme_by_tag(artifact.scheme_tag);
  obf::SchemeSecrets trial;
  trial.schedule_seed = knowledge == ScheduleKnowledge::kKnownSchedule
                            ? true_schedule_seed
                            : options.guessed_schedule_seed;

  // Start from the all-zero key (the baseline-architecture guess).
  obf::HpnnKey guess;
  trial.key = guess;
  auto evaluator = scheme.make_evaluator(artifact, trial);
  const Oracle oracle_set =
      make_oracle(oracle, options.oracle_samples, options.metric);

  KeyRecoveryReport report;
  report.start_accuracy =
      nn::evaluate_accuracy(evaluator->network(), oracle_set.images,
                            oracle_set.labels);
  double current = oracle_set.score(evaluator->network());
  report.oracle_queries = 1;

  for (std::int64_t sweep = 0; sweep < options.sweeps; ++sweep) {
    bool improved_any = false;
    for (std::size_t bit = 0; bit < obf::HpnnKey::kBits; ++bit) {
      guess.flip_bit(bit);
      evaluator->set_key(guess);
      const double flipped = oracle_set.score(evaluator->network());
      ++report.oracle_queries;
      if (flipped > current) {
        current = flipped;  // keep the flip
        improved_any = true;
      } else {
        guess.flip_bit(bit);  // revert
      }
    }
    HPNN_LOG(Debug) << "key-recovery sweep " << sweep << ": oracle score "
                    << current;
    if (!improved_any) {
      break;  // greedy descent has converged
    }
  }

  evaluator->set_key(guess);
  report.recovered_key = guess;
  report.final_accuracy = nn::evaluate_accuracy(
      evaluator->network(), oracle_set.images, oracle_set.labels);
  report.test_accuracy = nn::evaluate_accuracy(evaluator->network(),
                                               test.images, test.labels);
  report.bits_matching =
      obf::HpnnKey::kBits - guess.hamming_distance(true_key);
  return report;
}

}  // namespace hpnn::attack
