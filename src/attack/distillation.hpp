// Model extraction by knowledge distillation: the collusion bound.
//
// HPNN (like every DRM scheme) bounds *unauthorized* use. An authorized
// user — someone with a working trusted device — can always label a
// transfer set with the protected model's soft predictions and train an
// unlocked student from them. This module implements that extraction so its
// cost/quality can be measured, and so the contrast is explicit: the same
// distillation driven by a *locked* (no-key) teacher produces a useless
// student.
#pragma once

#include <functional>

#include "nn/optim.hpp"

#include "data/dataset.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::attack {

/// Soft-label oracle: returns [N, C] logits for a batch of inputs. Wraps
/// whatever the colluder has — the float locked model, a TrustedDevice, or
/// (for the control) the stolen weights run without a key.
using TeacherOracle = std::function<Tensor(const Tensor&)>;

struct DistillationOptions {
  double temperature = 4.0;
  std::int64_t epochs = 30;
  std::int64_t batch_size = 32;
  nn::Sgd::Options sgd{0.01, 0.9, 5e-4};
  std::uint64_t seed = 5;
};

struct DistillationReport {
  double student_accuracy = 0.0;  // on the held-out test set
  double teacher_accuracy = 0.0;  // oracle's own accuracy on the test set
  std::int64_t transfer_size = 0;
  std::int64_t oracle_queries = 0;  // batches sent to the oracle
};

/// Trains a fresh baseline-architecture student to mimic `teacher` on the
/// (label-free) `transfer` inputs; evaluates both on `test`.
DistillationReport distill_student(const obf::PublishedModel& artifact,
                                   const TeacherOracle& teacher,
                                   const data::Dataset& transfer,
                                   const data::Dataset& test,
                                   const DistillationOptions& options);

/// The campaign-peer distillation attacker: soft-label KD against the
/// *locked* model. The teacher is the scheme's no-key attacker view of the
/// artifact (resolved from its scheme tag; unknown tags fail closed) — an
/// unauthorized attacker has no working trusted device, so this is the
/// strongest distillation available to them. Its student staying at chance
/// is the defense claim the campaign measures; the authorized-colluder
/// bound is distill_student with a correctly keyed oracle.
DistillationReport distill_attack(const obf::PublishedModel& artifact,
                                  const data::Dataset& transfer,
                                  const data::Dataset& test,
                                  const DistillationOptions& options);

}  // namespace hpnn::attack
