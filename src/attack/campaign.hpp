// The defense-benchmark campaign: every registered locking scheme against
// every attacker, across an attack-budget sweep, from one harness.
//
// For each scheme the harness derives per-model secrets from one master
// key, trains the scheme's own trainable model on the same data, publishes
// and re-reads the protected artifact (so the campaign exercises the real
// serialization path, not an in-memory shortcut), records the correct-key /
// no-key accuracy baselines, and then runs each attacker at each budget.
// The result is the accuracy-vs-budget curve family `hpnn defend-bench`
// emits as BENCH_defense.json: how fast each attack closes the gap between
// chance and protected accuracy, per scheme.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "hpnn/lock_scheme.hpp"
#include "models/zoo.hpp"

namespace hpnn::attack {

/// Canonical attack names accepted by DefenseCampaignOptions::attacks.
inline constexpr const char* kAttackFineTune = "finetune";
inline constexpr const char* kAttackKeyRecovery = "key-recovery";
inline constexpr const char* kAttackDistillation = "distillation";

struct DefenseCampaignOptions {
  /// Scheme tags to benchmark; empty = every registered scheme. Unknown
  /// tags throw (a campaign must not silently skip a scheme).
  std::vector<std::string> schemes;
  /// Attack names; unknown names throw.
  std::vector<std::string> attacks{kAttackFineTune, kAttackKeyRecovery,
                                   kAttackDistillation};
  /// Budget units are per attack: training epochs for finetune and
  /// distillation, coordinate-descent sweeps for key recovery (each sweep
  /// is 256 oracle queries; the work column reports actual queries).
  std::vector<std::int64_t> budgets{1, 4, 16};

  models::Architecture arch = models::Architecture::kCnn1;
  /// Thief-set fraction of the training data available to every attacker.
  double thief_alpha = 0.25;
  std::int64_t owner_epochs = 6;
  std::int64_t batch_size = 32;
  double lr = 0.01;
  /// Oracle samples per key-recovery query.
  std::int64_t oracle_samples = 128;
  std::uint64_t seed = 2020;
  std::uint64_t init_seed = 7;
  /// Model-id prefix for keychain derivation; the scheme tag is appended so
  /// each scheme gets its own per-model key and schedule seed.
  std::string model_id_prefix = "defense-bench";
};

/// Per-scheme accuracy anchors the attack curves are read against.
struct SchemeBaseline {
  std::string scheme;
  double protected_accuracy = 0.0;  // correct-key evaluator on the test set
  double no_key_accuracy = 0.0;     // attacker view, no key
  std::int64_t locked_neurons = 0;
};

/// One point of one accuracy-vs-budget curve.
struct DefenseCell {
  std::string scheme;
  std::string attack;
  std::int64_t budget = 0;
  double attacker_accuracy = 0.0;
  /// Attack-specific work actually spent: oracle queries for key recovery,
  /// training epochs otherwise.
  std::int64_t work = 0;
};

struct DefenseCampaignReport {
  std::string arch;
  double chance_accuracy = 0.0;
  std::int64_t thief_size = 0;
  std::vector<SchemeBaseline> baselines;
  std::vector<DefenseCell> cells;  // scheme-major, attack, then budget order
};

/// Runs the full scheme × attack × budget campaign. Deterministic for fixed
/// options: all training, thief sampling, and attacks are seeded from
/// options.seed.
DefenseCampaignReport run_defense_campaign(
    const data::SplitDataset& split, const DefenseCampaignOptions& options);

/// Writes the BENCH_defense.json object (single line, deterministic field
/// order) for the curve-tracking convention shared by the other benches.
void write_defense_json(std::ostream& os,
                        const DefenseCampaignReport& report);

}  // namespace hpnn::attack
