#include "hpnn/key.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace hpnn::obf {
namespace {

TEST(KeyTest, DefaultIsAllZero) {
  HpnnKey key;
  for (std::size_t i = 0; i < HpnnKey::kBits; ++i) {
    EXPECT_FALSE(key.bit(i));
    EXPECT_EQ(key.lock_factor(i), 1.0f);
  }
  EXPECT_EQ(key.popcount(), 0u);
}

TEST(KeyTest, SetAndFlipBits) {
  HpnnKey key;
  key.set_bit(0, true);
  key.set_bit(255, true);
  EXPECT_TRUE(key.bit(0));
  EXPECT_TRUE(key.bit(255));
  EXPECT_EQ(key.popcount(), 2u);
  key.flip_bit(0);
  EXPECT_FALSE(key.bit(0));
  key.set_bit(255, false);
  EXPECT_EQ(key.popcount(), 0u);
}

TEST(KeyTest, LockFactorFollowsEq2) {
  HpnnKey key;
  key.set_bit(7, true);
  EXPECT_EQ(key.lock_factor(7), -1.0f);  // (-1)^1
  EXPECT_EQ(key.lock_factor(8), 1.0f);   // (-1)^0
}

TEST(KeyTest, BitIndexOutOfRangeThrows) {
  HpnnKey key;
  EXPECT_THROW(key.bit(256), InvariantError);
  EXPECT_THROW(key.set_bit(256, true), InvariantError);
  EXPECT_THROW(key.flip_bit(999), InvariantError);
}

TEST(KeyTest, RandomKeysDiffer) {
  Rng rng(1);
  const HpnnKey a = HpnnKey::random(rng);
  const HpnnKey b = HpnnKey::random(rng);
  EXPECT_NE(a, b);
  // A random key has roughly half its bits set.
  EXPECT_GT(a.popcount(), 90u);
  EXPECT_LT(a.popcount(), 166u);
}

TEST(KeyTest, HexRoundTrip) {
  Rng rng(2);
  const HpnnKey key = HpnnKey::random(rng);
  const std::string hex = key.to_hex();
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(HpnnKey::from_hex(hex), key);
}

TEST(KeyTest, HexKnownValue) {
  HpnnKey key;
  key.set_bit(0, true);  // lowest bit of lowest word
  const std::string hex = key.to_hex();
  EXPECT_EQ(hex.back(), '1');
  EXPECT_EQ(hex.substr(0, 63), std::string(63, '0'));
}

TEST(KeyTest, FromHexAcceptsUppercase) {
  const std::string hex(64, 'A');
  EXPECT_EQ(HpnnKey::from_hex(hex).to_hex(), std::string(64, 'a'));
}

TEST(KeyTest, FromHexRejectsBadInput) {
  EXPECT_THROW(HpnnKey::from_hex("abc"), KeyError);
  EXPECT_THROW(HpnnKey::from_hex(std::string(64, 'g')), KeyError);
}

TEST(KeyTest, HammingDistance) {
  HpnnKey a;
  HpnnKey b;
  EXPECT_EQ(a.hamming_distance(b), 0u);
  b.set_bit(3, true);
  b.set_bit(200, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(b.hamming_distance(a), 2u);
}

TEST(KeyTest, RandomKeysHaveHalfDistance) {
  Rng rng(3);
  const HpnnKey a = HpnnKey::random(rng);
  const HpnnKey b = HpnnKey::random(rng);
  const auto d = a.hamming_distance(b);
  EXPECT_GT(d, 90u);
  EXPECT_LT(d, 166u);
}

TEST(KeyTest, EqualityIsValueBased) {
  Rng rng(4);
  const HpnnKey a = HpnnKey::random(rng);
  HpnnKey b = a;
  EXPECT_EQ(a, b);
  b.flip_bit(17);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace hpnn::obf
