// Robustness fuzzing of the model-zoo artifact parser: random mutations of
// a valid artifact must either fail cleanly with SerializationError or
// still parse to a structurally valid model — never crash, hang, or OOM.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::obf {
namespace {

std::string make_valid_artifact() {
  Rng rng(3);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(9);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 2;
  LockedModel model(models::Architecture::kCnn1, mc, key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  return ss.str();
}

TEST(ArtifactFuzzTest, SingleByteFlips) {
  const std::string valid = make_valid_artifact();
  Rng rng(11);
  int clean_failures = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::string mutated = valid;
    const auto pos = rng.uniform_index(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.uniform_index(255));
    std::stringstream ss(mutated);
    try {
      (void)read_published_model(ss);
    } catch (const SerializationError&) {
      ++clean_failures;
    }
    // Any other exception type (or crash) fails the test via gtest.
  }
  // The SHA-256 trailer means essentially every mutation is detected.
  EXPECT_GE(clean_failures, kTrials - 1);
}

TEST(ArtifactFuzzTest, RandomTruncations) {
  const std::string valid = make_valid_artifact();
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    const auto len = rng.uniform_index(valid.size());
    std::stringstream ss(valid.substr(0, len));
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(ArtifactFuzzTest, RandomGarbageInputs) {
  Rng rng(17);
  for (int t = 0; t < 100; ++t) {
    const auto len = rng.uniform_index(4096);
    std::string garbage(len, '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.uniform_index(256));
    }
    std::stringstream ss(garbage);
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
}

TEST(ArtifactFuzzTest, TruncationAtEvery64ByteBoundary) {
  // Exhaustive (not sampled) truncation sweep: cut the artifact at every
  // 64-byte boundary. Each prefix must be rejected with SerializationError
  // — never a crash, hang, or a silently parsed model.
  const std::string valid = make_valid_artifact();
  for (std::size_t len = 0; len < valid.size(); len += 64) {
    std::stringstream ss(valid.substr(0, len));
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(ArtifactFuzzTest, ByteFlipAtEvery256ByteStride) {
  // Deterministic corruption sweep: flip one byte every 256 bytes across
  // the whole artifact (headers, shape tables, weight payload, digest).
  // The SHA-256 trailer guarantees detection of every flip.
  const std::string valid = make_valid_artifact();
  for (std::size_t pos = 0; pos < valid.size(); pos += 256) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "byte flip at offset " << pos << " parsed successfully";
  }
}

TEST(ArtifactFuzzTest, LengthFieldInflation) {
  // Corrupt the outer payload-length field specifically: the reader must
  // reject it via its container sanity bound, not attempt the allocation.
  std::string artifact = make_valid_artifact();
  for (int byte = 8; byte < 16; ++byte) {
    std::string mutated = artifact;
    mutated[static_cast<std::size_t>(byte)] = '\xFF';
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
}

}  // namespace
}  // namespace hpnn::obf
