// Robustness fuzzing of the model-zoo artifact parser: random mutations of
// a valid artifact must either fail cleanly with SerializationError or
// still parse to a structurally valid model — never crash, hang, or OOM.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "hpnn/lock_scheme.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::obf {
namespace {

std::string make_valid_artifact() {
  Rng rng(3);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(9);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 2;
  LockedModel model(models::Architecture::kCnn1, mc, key, sched);
  std::stringstream ss;
  publish_model(ss, model);
  return ss.str();
}

/// A small in-memory model for crafting artifacts with arbitrary scheme
/// fields (publish_artifact deliberately does not validate them; every
/// read path must).
PublishedModel make_snapshot() {
  Rng rng(5);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(9);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 12;
  mc.init_seed = 2;
  LockedModel model(models::Architecture::kMlp, mc, key, sched);
  return snapshot_model(model);
}

std::string serialize(const PublishedModel& artifact) {
  std::stringstream ss;
  publish_artifact(ss, artifact);
  return ss.str();
}

/// A weight-stream protected artifact (16-byte salt payload, encrypted
/// parameters): the scheme-tagged corpus for the sweeps below.
std::string make_weight_stream_artifact() {
  const LockScheme& scheme = scheme_by_tag(kWeightStreamTag);
  Rng rng(7);
  const HpnnKey master = HpnnKey::random(rng);
  const SchemeSecrets secrets = derive_scheme_secrets(master, "fuzz-ws");
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 12;
  mc.init_seed = 2;
  auto model =
      scheme.make_trainable(models::Architecture::kMlp, mc, secrets);
  std::stringstream ss;
  publish_protected_model(ss, scheme, *model, secrets);
  return ss.str();
}

TEST(ArtifactFuzzTest, SingleByteFlips) {
  const std::string valid = make_valid_artifact();
  Rng rng(11);
  int clean_failures = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    std::string mutated = valid;
    const auto pos = rng.uniform_index(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.uniform_index(255));
    std::stringstream ss(mutated);
    try {
      (void)read_published_model(ss);
    } catch (const SerializationError&) {
      ++clean_failures;
    }
    // Any other exception type (or crash) fails the test via gtest.
  }
  // The SHA-256 trailer means essentially every mutation is detected.
  EXPECT_GE(clean_failures, kTrials - 1);
}

TEST(ArtifactFuzzTest, RandomTruncations) {
  const std::string valid = make_valid_artifact();
  Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    const auto len = rng.uniform_index(valid.size());
    std::stringstream ss(valid.substr(0, len));
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(ArtifactFuzzTest, RandomGarbageInputs) {
  Rng rng(17);
  for (int t = 0; t < 100; ++t) {
    const auto len = rng.uniform_index(4096);
    std::string garbage(len, '\0');
    for (auto& c : garbage) {
      c = static_cast<char>(rng.uniform_index(256));
    }
    std::stringstream ss(garbage);
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
}

TEST(ArtifactFuzzTest, TruncationAtEvery64ByteBoundary) {
  // Exhaustive (not sampled) truncation sweep: cut the artifact at every
  // 64-byte boundary. Each prefix must be rejected with SerializationError
  // — never a crash, hang, or a silently parsed model.
  const std::string valid = make_valid_artifact();
  for (std::size_t len = 0; len < valid.size(); len += 64) {
    std::stringstream ss(valid.substr(0, len));
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(ArtifactFuzzTest, ByteFlipAtEvery256ByteStride) {
  // Deterministic corruption sweep: flip one byte every 256 bytes across
  // the whole artifact (headers, shape tables, weight payload, digest).
  // The SHA-256 trailer guarantees detection of every flip.
  const std::string valid = make_valid_artifact();
  for (std::size_t pos = 0; pos < valid.size(); pos += 256) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "byte flip at offset " << pos << " parsed successfully";
  }
}

TEST(ArtifactFuzzTest, UnknownSchemeTagFailsClosed) {
  // A well-formed artifact (valid digest, valid tensors) whose scheme tag
  // has no registered LockScheme must be rejected: a build that cannot
  // decode a scheme must not run the weights as if they were unprotected.
  PublishedModel artifact = make_snapshot();
  artifact.scheme_tag = "quantum-lock";
  std::stringstream ss(serialize(artifact));
  EXPECT_THROW((void)read_published_model(ss), SerializationError);
}

TEST(ArtifactFuzzTest, EmptySchemeTagFailsClosed) {
  PublishedModel artifact = make_snapshot();
  artifact.scheme_tag.clear();
  std::stringstream ss(serialize(artifact));
  EXPECT_THROW((void)read_published_model(ss), SerializationError);
}

TEST(ArtifactFuzzTest, OversizedSchemeTagFailsClosed) {
  // Just past the 64-byte tag bound: rejected by the container sanity
  // check before any registry lookup or allocation amplification.
  PublishedModel artifact = make_snapshot();
  artifact.scheme_tag = std::string(65, 'x');
  std::stringstream ss(serialize(artifact));
  EXPECT_THROW((void)read_published_model(ss), SerializationError);
}

TEST(ArtifactFuzzTest, TagPayloadMismatchFailsClosed) {
  // Valid tag, wrong payload for that tag — both directions.
  {
    // sign-lock requires an empty payload; smuggle 16 bytes in.
    PublishedModel artifact = make_snapshot();
    artifact.scheme_payload.assign(16, 0xAB);
    std::stringstream ss(serialize(artifact));
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
  {
    // weight-stream requires exactly a 16-byte salt; give it 8.
    PublishedModel artifact = make_snapshot();
    artifact.scheme_tag = kWeightStreamTag;
    artifact.scheme_payload.assign(8, 0x01);
    std::stringstream ss(serialize(artifact));
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
}

TEST(ArtifactFuzzTest, OversizedSchemePayloadFailsClosed) {
  PublishedModel artifact = make_snapshot();
  artifact.scheme_tag = kWeightStreamTag;
  artifact.scheme_payload.assign(4097, 0x01);  // past the 4 KiB bound
  std::stringstream ss(serialize(artifact));
  EXPECT_THROW((void)read_published_model(ss), SerializationError);
}

TEST(ArtifactFuzzTest, DenseFlipSweepOverHeaderRegion) {
  // Flip every byte in the first 256 bytes one at a time — the region
  // holding the magic, version, architecture header, and the v5 scheme
  // tag + payload fields. Every flip must be rejected (digest mismatch or
  // field validation), never accepted or crashing.
  const std::string valid = make_valid_artifact();
  ASSERT_GE(valid.size(), 256u);
  for (std::size_t pos = 0; pos < 256; ++pos) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "header byte flip at offset " << pos << " parsed successfully";
  }
}

TEST(ArtifactFuzzTest, WeightStreamByteFlipAtEvery256ByteStride) {
  // The scheme-tagged corpus under the same deterministic sweep the
  // sign-lock artifact gets: flips in the salt payload, the encrypted
  // weights, or the digest must all be detected.
  const std::string valid = make_weight_stream_artifact();
  for (std::size_t pos = 0; pos < valid.size(); pos += 256) {
    std::string mutated = valid;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5A);
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "byte flip at offset " << pos << " parsed successfully";
  }
}

TEST(ArtifactFuzzTest, WeightStreamTruncationAtEvery64ByteBoundary) {
  const std::string valid = make_weight_stream_artifact();
  for (std::size_t len = 0; len < valid.size(); len += 64) {
    std::stringstream ss(valid.substr(0, len));
    EXPECT_THROW((void)read_published_model(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(ArtifactFuzzTest, WeightStreamRoundTripsThroughEveryReadPath) {
  // Control for the negative tests above: the untampered weight-stream
  // artifact parses through both the streaming and the view paths, with
  // the scheme fields preserved.
  const std::string valid = make_weight_stream_artifact();
  std::stringstream ss(valid);
  const PublishedModel streamed = read_published_model(ss);
  EXPECT_EQ(streamed.scheme_tag, kWeightStreamTag);
  EXPECT_EQ(streamed.scheme_payload.size(), 16u);
  const ArtifactView view = view_published_model(core::ByteView(
      reinterpret_cast<const std::uint8_t*>(valid.data()), valid.size()));
  EXPECT_EQ(view.scheme_tag, kWeightStreamTag);
  EXPECT_EQ(view.scheme_payload, streamed.scheme_payload);
}

TEST(ArtifactFuzzTest, LengthFieldInflation) {
  // Corrupt the outer payload-length field specifically: the reader must
  // reject it via its container sanity bound, not attempt the allocation.
  std::string artifact = make_valid_artifact();
  for (int byte = 8; byte < 16; ++byte) {
    std::string mutated = artifact;
    mutated[static_cast<std::size_t>(byte)] = '\xFF';
    std::stringstream ss(mutated);
    EXPECT_THROW((void)read_published_model(ss), SerializationError);
  }
}

}  // namespace
}  // namespace hpnn::obf
