#include "hpnn/locked_activation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace hpnn::obf {
namespace {

Tensor mask_pm(std::initializer_list<float> vals) {
  std::vector<float> v(vals);
  return Tensor(Shape{static_cast<std::int64_t>(v.size())}, v);
}

TEST(LockedActivationTest, Eq1Semantics) {
  // out_j = f(L_j * MAC_j) with f = ReLU.
  LockedActivation act("act", mask_pm({1.0f, -1.0f}));
  Tensor x(Shape{1, 2}, std::vector<float>{3.0f, 3.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 3.0f);  // L=+1: relu(3)
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);  // L=-1: relu(-3)
}

TEST(LockedActivationTest, NegativeInputFlippedNeuron) {
  LockedActivation act("act", mask_pm({-1.0f}));
  Tensor x(Shape{1, 1}, std::vector<float>{-2.0f});
  EXPECT_FLOAT_EQ(act.forward(x).at(0), 2.0f);  // relu(+2)
}

TEST(LockedActivationTest, AllPositiveMaskIsPlainRelu) {
  LockedActivation act("act", Tensor(Shape{4}, 1.0f));
  Tensor x(Shape{2, 4},
           std::vector<float>{-1, 2, -3, 4, 5, -6, 7, -8});
  const Tensor y = act.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(y.at(i), std::max(x.at(i), 0.0f));
  }
}

TEST(LockedActivationTest, BackwardAppliesDeltaRule) {
  // dE/dMAC = dE/dout * f'(L*MAC) * L (Eq. 4/5).
  LockedActivation act("act", mask_pm({1.0f, -1.0f, -1.0f}));
  Tensor x(Shape{1, 3}, std::vector<float>{2.0f, -2.0f, 2.0f});
  (void)act.forward(x);  // signed: [2, 2, -2] -> relu' = [1, 1, 0]
  Tensor g(Shape{1, 3}, std::vector<float>{5.0f, 5.0f, 5.0f});
  const Tensor gx = act.backward(g);
  EXPECT_FLOAT_EQ(gx.at(0), 5.0f);    // L=+1, active
  EXPECT_FLOAT_EQ(gx.at(1), -5.0f);   // L=-1, active: gradient sign-flipped
  EXPECT_FLOAT_EQ(gx.at(2), 0.0f);    // inactive
}

TEST(LockedActivationTest, MaskBroadcastsOverBatch) {
  LockedActivation act("act", mask_pm({-1.0f, 1.0f}));
  Tensor x(Shape{3, 2}, 1.0f);
  const Tensor y = act.forward(x);
  for (std::int64_t n = 0; n < 3; ++n) {
    EXPECT_FLOAT_EQ(y.at(n * 2 + 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(n * 2 + 1), 1.0f);
  }
}

TEST(LockedActivationTest, WorksOn4dActivations) {
  Rng rng(1);
  Tensor mask(Shape{2, 3, 3});
  for (std::int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  LockedActivation act("act", mask);
  const Tensor x = Tensor::normal(Shape{4, 2, 3, 3}, rng);
  const Tensor y = act.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  for (std::int64_t n = 0; n < 4; ++n) {
    for (std::int64_t i = 0; i < 18; ++i) {
      const float expected = std::max(mask.at(i) * x.at(n * 18 + i), 0.0f);
      EXPECT_FLOAT_EQ(y.at(n * 18 + i), expected);
    }
  }
}

TEST(LockedActivationTest, RejectsNonSignMask) {
  EXPECT_THROW(LockedActivation("a", mask_pm({0.5f})), InvariantError);
  EXPECT_THROW(LockedActivation("a", mask_pm({0.0f})), InvariantError);
  EXPECT_THROW(LockedActivation("a", Tensor()), InvariantError);
}

TEST(LockedActivationTest, RejectsIncompatibleInput) {
  LockedActivation act("act", Tensor(Shape{4}, 1.0f));
  Tensor x(Shape{2, 5});
  EXPECT_THROW(act.forward(x), InvariantError);
}

TEST(LockedActivationTest, SetLockReplacesMask) {
  LockedActivation act("act", mask_pm({1.0f, 1.0f}));
  act.set_lock(mask_pm({-1.0f, -1.0f}));
  Tensor x(Shape{1, 2}, 1.0f);
  EXPECT_FLOAT_EQ(act.forward(x).at(0), 0.0f);
  EXPECT_THROW(act.set_lock(Tensor(Shape{3}, 1.0f)), InvariantError);
}

TEST(LockedActivationTest, ClearLockMakesBaseline) {
  LockedActivation act("act", mask_pm({-1.0f, -1.0f}));
  act.clear_lock();
  Tensor x(Shape{1, 2}, std::vector<float>{1.0f, -1.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 0.0f);
}

TEST(LockedActivationTest, NeuronCount) {
  LockedActivation act("act", Tensor(Shape{3, 4, 5}, 1.0f));
  EXPECT_EQ(act.neuron_count(), 60);
}

// ---- generic-f variants (Sec. III-C is stated for any differentiable f)

class LockedKindTest : public ::testing::TestWithParam<ActivationKind> {};

TEST_P(LockedKindTest, ForwardMatchesDefinition) {
  Tensor mask = mask_pm({1.0f, -1.0f});
  LockedActivation act("act", mask, GetParam());
  Tensor x(Shape{1, 2}, std::vector<float>{0.7f, 0.7f});
  const Tensor y = act.forward(x);
  const auto f = [&](float z) {
    switch (GetParam()) {
      case ActivationKind::kRelu:
        return std::max(z, 0.0f);
      case ActivationKind::kSigmoid:
        return 1.0f / (1.0f + std::exp(-z));
      case ActivationKind::kTanh:
        return std::tanh(z);
    }
    return z;
  };
  EXPECT_FLOAT_EQ(y.at(0), f(0.7f));
  EXPECT_FLOAT_EQ(y.at(1), f(-0.7f));
}

TEST_P(LockedKindTest, BackwardMatchesCentralDifference) {
  Rng rng(31);
  Tensor mask(Shape{6});
  for (std::int64_t i = 0; i < 6; ++i) {
    mask.at(i) = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  }
  LockedActivation act("act", mask, GetParam());
  // Keep inputs away from ReLU's kink so central differences are valid.
  Tensor x(Shape{2, 6});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float v = static_cast<float>(rng.uniform(-1.5, 1.5));
    if (std::fabs(v) < 0.1f) {
      v = 0.2f;
    }
    x.at(i) = v;
  }
  (void)act.forward(x);
  // Scalar objective: sum of outputs -> upstream gradient of ones.
  const Tensor analytic = act.backward(Tensor(x.shape(), 1.0f));
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp.at(i) += static_cast<float>(eps);
    Tensor xm = x;
    xm.at(i) -= static_cast<float>(eps);
    const double numeric =
        (static_cast<double>(act.forward(xp).sum()) -
         act.forward(xm).sum()) /
        (2 * eps);
    EXPECT_NEAR(analytic.at(i), numeric, 5e-3) << "coord " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, LockedKindTest,
                         ::testing::Values(ActivationKind::kRelu,
                                           ActivationKind::kSigmoid,
                                           ActivationKind::kTanh),
                         [](const auto& info) {
                           switch (info.param) {
                             case ActivationKind::kRelu:
                               return "Relu";
                             case ActivationKind::kSigmoid:
                               return "Sigmoid";
                             default:
                               return "Tanh";
                           }
                         });

}  // namespace
}  // namespace hpnn::obf
