#include "hpnn/locked_model.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/trainer.hpp"

namespace hpnn::obf {
namespace {

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.in_channels = 1;
  cfg.image_size = 16;
  cfg.num_classes = 10;
  cfg.init_seed = 5;
  return cfg;
}

TEST(LockedModelTest, BuildsWithLockedActivations) {
  Rng rng(1);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(11);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  EXPECT_EQ(model.activations().size(), 2u);  // CNN1 has 2 nonlinear layers
  EXPECT_EQ(model.lock_specs().size(), 2u);
  EXPECT_EQ(model.lock_specs()[0].layer_index, 0);
  EXPECT_EQ(model.lock_specs()[1].layer_index, 1);
}

TEST(LockedModelTest, NeuronCountMatchesZooCount) {
  Rng rng(2);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(13);
  auto cfg = small_cfg();
  LockedModel model(models::Architecture::kCnn1, cfg, key, sched);
  EXPECT_EQ(model.locked_neuron_count(),
            models::locked_neuron_count(models::Architecture::kCnn1, cfg));
}

TEST(LockedModelTest, MasksMatchSchedulerDerivation) {
  Rng rng(3);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(17);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  for (std::size_t i = 0; i < model.activations().size(); ++i) {
    const Tensor expected = sched.lock_mask(model.lock_specs()[i], key);
    EXPECT_TRUE(model.activations()[i]->lock().allclose(expected, 0.0f, 0.0f));
  }
}

TEST(LockedModelTest, RejectsCustomActivationFactory) {
  Rng rng(4);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(19);
  auto cfg = small_cfg();
  cfg.activation = models::plain_relu_factory();
  EXPECT_THROW(
      LockedModel(models::Architecture::kCnn1, cfg, key, sched),
      InvariantError);
}

TEST(LockedModelTest, ForwardShape) {
  Rng rng(5);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(23);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  const Tensor x = Tensor::normal(Shape{3, 1, 16, 16}, rng);
  EXPECT_EQ(model.network().forward(x).shape(), Shape({3, 10}));
}

TEST(LockedModelTest, RemoveLocksChangesOutputs) {
  Rng rng(6);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(29);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  const Tensor locked_out = model.network().forward(x);
  model.remove_locks();
  const Tensor unlocked_out = model.network().forward(x);
  EXPECT_FALSE(locked_out.allclose(unlocked_out, 1e-3f, 1e-3f));
  for (const auto* act : model.activations()) {
    EXPECT_EQ(act->lock().min(), 1.0f);
  }
}

TEST(LockedModelTest, ApplyKeyRestoresOriginalBehaviour) {
  Rng rng(7);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(31);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  const Tensor before = model.network().forward(x);
  model.remove_locks();
  model.apply_key(key, sched);
  const Tensor after = model.network().forward(x);
  EXPECT_TRUE(before.allclose(after, 0.0f, 0.0f));
}

TEST(LockedModelTest, WrongKeyGivesDifferentFunction) {
  Rng rng(8);
  const HpnnKey key = HpnnKey::random(rng);
  const HpnnKey wrong = HpnnKey::random(rng);
  Scheduler sched(37);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  const Tensor right_out = model.network().forward(x);
  model.apply_key(wrong, sched);
  const Tensor wrong_out = model.network().forward(x);
  EXPECT_FALSE(right_out.allclose(wrong_out, 1e-3f, 1e-3f));
}

TEST(LockedModelTest, WrongScheduleGivesDifferentFunction) {
  Rng rng(9);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(41);
  Scheduler other_sched(43);
  LockedModel model(models::Architecture::kCnn1, small_cfg(), key, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  const Tensor right_out = model.network().forward(x);
  model.apply_key(key, other_sched);
  const Tensor wrong_out = model.network().forward(x);
  EXPECT_FALSE(right_out.allclose(wrong_out, 1e-3f, 1e-3f));
}

TEST(LockedModelTest, ZeroKeyEqualsBaseline) {
  Rng rng(10);
  Scheduler sched(47);
  HpnnKey zero;
  LockedModel model(models::Architecture::kCnn1, small_cfg(), zero, sched);
  const Tensor x = Tensor::normal(Shape{2, 1, 16, 16}, rng);
  const Tensor locked_out = model.network().forward(x);
  model.remove_locks();
  const Tensor base_out = model.network().forward(x);
  EXPECT_TRUE(locked_out.allclose(base_out, 0.0f, 0.0f));
}

TEST(LockedModelTest, ResNetBuildsLocked) {
  Rng rng(11);
  const HpnnKey key = HpnnKey::random(rng);
  Scheduler sched(53);
  models::ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.image_size = 16;
  cfg.width_mult = 0.125;
  cfg.init_seed = 5;
  LockedModel model(models::Architecture::kResNet18, cfg, key, sched);
  // stem act + 8 blocks x (inner act + post act) = 17 locked layers
  EXPECT_EQ(model.activations().size(), 17u);
  const Tensor x = Tensor::normal(Shape{2, 3, 16, 16}, rng);
  model.network().set_training(true);
  EXPECT_EQ(model.network().forward(x).shape(), Shape({2, 10}));
}

}  // namespace
}  // namespace hpnn::obf
