// Property tests for the paper's theoretical results:
//   Theorem 1 — single-layer FC network, zero-initialized: training with
//     lock factor -1 yields exactly the negated weights of training with +1.
//   Lemma 1 — (w_j, k_j) -> (-w_j, 1-k_j) leaves every network output
//     unchanged, so models locked with different keys have equal capacity.
#include <gtest/gtest.h>

#include "hpnn/locked_activation.hpp"
#include "hpnn/locked_model.hpp"
#include "hpnn/owner.hpp"
#include "nn/layers.hpp"
#include "nn/losses.hpp"
#include "nn/trainer.hpp"

namespace hpnn::obf {
namespace {

/// Builds Linear(in->out, optional bias, ZERO weights) + LockedActivation.
/// Sigmoid activation: Theorem 1 holds for any f, but with ReLU a
/// zero-initialized network has f'(0) = 0 and never trains, so the sigmoid
/// variant is what makes the property observable.
std::unique_ptr<nn::Sequential> single_layer_net(std::int64_t in,
                                                 std::int64_t out, float lock,
                                                 bool bias) {
  Rng rng(1);
  auto net = std::make_unique<nn::Sequential>("single");
  auto fc = std::make_unique<nn::Linear>(in, out, rng, "fc", bias);
  fc->weight().value.zero();  // Theorem 1 precondition: w_init = 0
  if (bias) {
    fc->bias()->value.zero();
  }
  net->add(std::move(fc));
  net->add(std::make_unique<LockedActivation>("act", Tensor(Shape{out}, lock),
                                              ActivationKind::kSigmoid));
  return net;
}

std::pair<Tensor, std::vector<std::int64_t>> toy_batch(std::int64_t n,
                                                       std::int64_t in,
                                                       std::int64_t classes) {
  Rng rng(42);
  Tensor x = Tensor::normal(Shape{n, in}, rng);
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] = i % classes;
  }
  return {std::move(x), std::move(labels)};
}

void train_delta_rule(nn::Sequential& net, const Tensor& x,
                      const std::vector<std::int64_t>& labels,
                      std::int64_t epochs) {
  nn::MseOneHot loss;  // the cost function of Sec. III-C
  nn::Sgd opt(nn::parameters_of(net), {.lr = 0.05});
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = x.dim(0);  // full-batch delta rule
  cfg.shuffle_seed = 7;
  (void)nn::fit(net, loss, opt, x, labels, cfg);
}

class Theorem1Test : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Theorem1Test, WeightsAreExactNegations) {
  const std::int64_t epochs = GetParam();
  auto [x, labels] = toy_batch(12, 6, 4);

  auto plus = single_layer_net(6, 4, +1.0f, /*bias=*/false);
  auto minus = single_layer_net(6, 4, -1.0f, /*bias=*/false);
  train_delta_rule(*plus, x, labels, epochs);
  train_delta_rule(*minus, x, labels, epochs);

  const auto wp = nn::parameters_of(*plus);
  const auto wm = nn::parameters_of(*minus);
  ASSERT_EQ(wp.size(), 1u);
  // w_{j,-1}^N == -w_{j,1}^N, bit for bit.
  EXPECT_TRUE((-wp[0]->value).allclose(wm[0]->value, 0.0f, 0.0f));
  // and the weights are non-trivial (training actually moved them)
  EXPECT_GT(wp[0]->value.squared_norm(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(EpochCounts, Theorem1Test,
                         ::testing::Values(1, 2, 5, 10));

TEST(Theorem1BiasTest, BiasNegatesToo) {
  // The bias is an incoming weight from a constant input, so the theorem
  // extends to it.
  auto [x, labels] = toy_batch(10, 5, 3);
  auto plus = single_layer_net(5, 3, +1.0f, /*bias=*/true);
  auto minus = single_layer_net(5, 3, -1.0f, /*bias=*/true);
  train_delta_rule(*plus, x, labels, 5);
  train_delta_rule(*minus, x, labels, 5);
  const auto wp = nn::parameters_of(*plus);
  const auto wm = nn::parameters_of(*minus);
  ASSERT_EQ(wp.size(), 2u);
  EXPECT_TRUE((-wp[0]->value).allclose(wm[0]->value, 0.0f, 0.0f));
  EXPECT_TRUE((-wp[1]->value).allclose(wm[1]->value, 0.0f, 0.0f));
}

TEST(Theorem1Test, EquivalentOutputsAfterTraining) {
  // Corollary: the two trained networks implement the same function.
  auto [x, labels] = toy_batch(12, 6, 4);
  auto plus = single_layer_net(6, 4, +1.0f, false);
  auto minus = single_layer_net(6, 4, -1.0f, false);
  train_delta_rule(*plus, x, labels, 5);
  train_delta_rule(*minus, x, labels, 5);
  Rng rng(9);
  const Tensor probe = Tensor::normal(Shape{8, 6}, rng);
  EXPECT_TRUE(plus->forward(probe).allclose(minus->forward(probe), 0.0f,
                                            0.0f));
}

TEST(Theorem1Test, NonZeroInitBreaksExactNegation) {
  // The theorem requires w_init = 0; with random init the exact relation
  // disappears (the paper's motivation for Lemma 1).
  auto [x, labels] = toy_batch(12, 6, 4);
  Rng rng(3);
  auto make_net = [&](float lock) {
    auto net = std::make_unique<nn::Sequential>("s");
    Rng init_rng(55);  // same non-zero init for both
    net->add(std::make_unique<nn::Linear>(6, 4, init_rng, "fc", false));
    net->add(std::make_unique<LockedActivation>(
        "act", Tensor(Shape{4}, lock), ActivationKind::kSigmoid));
    return net;
  };
  auto plus = make_net(+1.0f);
  auto minus = make_net(-1.0f);
  train_delta_rule(*plus, x, labels, 5);
  train_delta_rule(*minus, x, labels, 5);
  const auto wp = nn::parameters_of(*plus);
  const auto wm = nn::parameters_of(*minus);
  EXPECT_FALSE((-wp[0]->value).allclose(wm[0]->value, 0.0f, 0.0f));
}

// ---------------------------------------------------------------- Lemma 1

/// Two-layer MLP with a locked hidden activation.
struct Mlp {
  std::unique_ptr<nn::Sequential> net;
  nn::Linear* fc1 = nullptr;
  LockedActivation* act = nullptr;
  nn::Linear* fc2 = nullptr;
};

Mlp make_mlp(const Tensor& mask, std::uint64_t seed) {
  Mlp m;
  m.net = std::make_unique<nn::Sequential>("mlp");
  Rng rng(seed);
  auto fc1 = std::make_unique<nn::Linear>(6, 8, rng, "fc1");
  auto act = std::make_unique<LockedActivation>("act", mask);
  auto fc2 = std::make_unique<nn::Linear>(8, 3, rng, "fc2");
  m.fc1 = fc1.get();
  m.act = act.get();
  m.fc2 = fc2.get();
  m.net->add(std::move(fc1));
  m.net->add(std::move(act));
  m.net->add(std::move(fc2));
  return m;
}

TEST(Lemma1Test, NegatedWeightsCompensateFlippedKeyBits) {
  Rng rng(13);
  Tensor mask(Shape{8});
  for (std::int64_t i = 0; i < 8; ++i) {
    mask.at(i) = rng.bernoulli(0.5) ? -1.0f : 1.0f;
  }
  Mlp locked = make_mlp(mask, 21);

  // Equivalent assignment: flip incoming weights (and bias) of every neuron
  // whose lock factor is -1, and clear the key.
  Mlp baseline = make_mlp(Tensor(Shape{8}, 1.0f), 21);
  for (std::int64_t j = 0; j < 8; ++j) {
    if (mask.at(j) < 0.0f) {
      for (std::int64_t i = 0; i < 6; ++i) {
        baseline.fc1->weight().value.at(j, i) =
            -baseline.fc1->weight().value.at(j, i);
      }
      baseline.fc1->bias()->value.at(j) = -baseline.fc1->bias()->value.at(j);
    }
  }

  const Tensor probe = Tensor::normal(Shape{16, 6}, rng);
  const Tensor y_locked = locked.net->forward(probe);
  const Tensor y_base = baseline.net->forward(probe);
  EXPECT_TRUE(y_locked.allclose(y_base, 0.0f, 0.0f));
}

TEST(Lemma1Test, FlippingOneKeyBitEqualsNegatingOneNeuron) {
  Rng rng(17);
  Tensor mask(Shape{8}, 1.0f);
  Mlp a = make_mlp(mask, 31);
  Tensor flipped = mask;
  flipped.at(3) = -1.0f;
  Mlp b = make_mlp(flipped, 31);
  for (std::int64_t i = 0; i < 6; ++i) {
    b.fc1->weight().value.at(3, i) = -b.fc1->weight().value.at(3, i);
  }
  b.fc1->bias()->value.at(3) = -b.fc1->bias()->value.at(3);

  const Tensor probe = Tensor::normal(Shape{8, 6}, rng);
  EXPECT_TRUE(
      a.net->forward(probe).allclose(b.net->forward(probe), 0.0f, 0.0f));
}

TEST(Lemma1Test, TrainedModelsWithDifferentKeysReachSimilarLoss) {
  // Capacity-equivalence smoke test (the full Fig. 3 experiment lives in
  // bench/bench_fig3_key_equivalence).
  auto [x, labels] = toy_batch(60, 6, 3);
  std::vector<double> final_losses;
  for (const std::uint64_t key_seed : {101u, 202u, 303u}) {
    Rng krng(key_seed);
    Tensor mask(Shape{8});
    for (std::int64_t i = 0; i < 8; ++i) {
      mask.at(i) = krng.bernoulli(0.5) ? -1.0f : 1.0f;
    }
    Mlp m = make_mlp(mask, 77);  // same init for all keys
    nn::SoftmaxCrossEntropy loss;
    nn::Sgd opt(nn::parameters_of(*m.net), {.lr = 0.05, .momentum = 0.9});
    nn::TrainConfig cfg;
    cfg.epochs = 30;
    cfg.batch_size = 20;
    final_losses.push_back(
        nn::fit(*m.net, loss, opt, x, labels, cfg).final_loss);
  }
  const auto [lo, hi] =
      std::minmax_element(final_losses.begin(), final_losses.end());
  EXPECT_LT(*hi - *lo, 0.5);  // all keys train to a comparable optimum
}

}  // namespace
}  // namespace hpnn::obf
