// Finite-difference gradient checks through LockedActivation for every
// lock-sign pattern. The chain rule must carry L_j = (-1)^{k_j} exactly
// (Eq. 4/5: dE/dMAC_j = dE/dout_j * f'(L_j * MAC_j) * L_j) — an attacker
// training without the key gets sign-corrupted gradients, so the owner's
// key-dependent backward has to be bit-for-bit right.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "hpnn/locked_activation.hpp"
#include "nn/gradcheck.hpp"
#include "nn/layers.hpp"
#include "nn/losses.hpp"

namespace hpnn::obf {
namespace {

enum class MaskPattern { kAllPlus, kAllMinus, kMixed };

Tensor make_mask(MaskPattern pattern, std::int64_t n) {
  Tensor mask(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    switch (pattern) {
      case MaskPattern::kAllPlus:
        mask.at(i) = 1.0f;
        break;
      case MaskPattern::kAllMinus:
        mask.at(i) = -1.0f;
        break;
      case MaskPattern::kMixed:
        mask.at(i) = (i % 2 == 0) ? 1.0f : -1.0f;
        break;
    }
  }
  return mask;
}

const char* pattern_name(MaskPattern p) {
  switch (p) {
    case MaskPattern::kAllPlus:
      return "AllPlus";
    case MaskPattern::kAllMinus:
      return "AllMinus";
    default:
      return "Mixed";
  }
}

class LockedActivationGradTest
    : public ::testing::TestWithParam<MaskPattern> {};

TEST_P(LockedActivationGradTest, SigmoidAtZeroCarriesLockSignExactly) {
  // At x = 0 the signed pre-activation is 0 for every L, and
  // sigmoid'(0) = 0.25 exactly in float, so the input gradient must be
  // exactly 0.25 * L_j — any lost or double-applied sign shows up here.
  const std::int64_t n = 5;
  const Tensor mask = make_mask(GetParam(), n);
  LockedActivation act("act", mask, ActivationKind::kSigmoid);
  Tensor x(Shape{2, n}, 0.0f);
  (void)act.forward(x);
  const Tensor gx = act.backward(Tensor(x.shape(), 1.0f));
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_FLOAT_EQ(gx.at(b * n + j), 0.25f * mask.at(j))
          << pattern_name(GetParam()) << " neuron " << j;
    }
  }
}

TEST_P(LockedActivationGradTest, TanhAtZeroCarriesLockSignExactly) {
  // tanh'(0) = 1, so the gradient at zero is the lock mask itself.
  const std::int64_t n = 4;
  const Tensor mask = make_mask(GetParam(), n);
  LockedActivation act("act", mask, ActivationKind::kTanh);
  Tensor x(Shape{1, n}, 0.0f);
  (void)act.forward(x);
  const Tensor gx = act.backward(Tensor(x.shape(), 1.0f));
  for (std::int64_t j = 0; j < n; ++j) {
    EXPECT_FLOAT_EQ(gx.at(j), mask.at(j)) << pattern_name(GetParam());
  }
}

TEST_P(LockedActivationGradTest, ReluBackwardMatchesCentralDifference) {
  const std::int64_t n = 6;
  const Tensor mask = make_mask(GetParam(), n);
  LockedActivation act("act", mask, ActivationKind::kRelu);
  Rng rng(11);
  // Keep inputs away from the kink so central differences are valid.
  Tensor x(Shape{3, n});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    float v = static_cast<float>(rng.uniform(-1.5, 1.5));
    if (std::fabs(v) < 0.15f) {
      v = std::copysign(0.3f, v == 0.0f ? 1.0f : v);
    }
    x.at(i) = v;
  }
  (void)act.forward(x);
  const Tensor analytic = act.backward(Tensor(x.shape(), 1.0f));
  const double eps = 1e-3;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x;
    xp.at(i) += static_cast<float>(eps);
    Tensor xm = x;
    xm.at(i) -= static_cast<float>(eps);
    const double numeric =
        (static_cast<double>(act.forward(xp).sum()) -
         act.forward(xm).sum()) /
        (2 * eps);
    EXPECT_NEAR(analytic.at(i), numeric, 5e-3)
        << pattern_name(GetParam()) << " coord " << i;
  }
}

TEST_P(LockedActivationGradTest, SmoothKindsMatchCentralDifference) {
  // Sigmoid and tanh have no kinks, so the tolerance can be tight.
  for (const auto kind : {ActivationKind::kSigmoid, ActivationKind::kTanh}) {
    const std::int64_t n = 5;
    const Tensor mask = make_mask(GetParam(), n);
    LockedActivation act("act", mask, kind);
    Rng rng(17);
    Tensor x(Shape{2, n});
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x.at(i) = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
    (void)act.forward(x);
    const Tensor analytic = act.backward(Tensor(x.shape(), 1.0f));
    const double eps = 1e-3;
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      Tensor xp = x;
      xp.at(i) += static_cast<float>(eps);
      Tensor xm = x;
      xm.at(i) -= static_cast<float>(eps);
      const double numeric =
          (static_cast<double>(act.forward(xp).sum()) -
           act.forward(xm).sum()) /
          (2 * eps);
      EXPECT_NEAR(analytic.at(i), numeric, 2e-3)
          << pattern_name(GetParam()) << " coord " << i;
    }
  }
}

TEST_P(LockedActivationGradTest, ChainRuleThroughWholeModel) {
  // Model-level check: gradients must flow correctly through
  // Linear -> LockedActivation -> Linear under softmax cross-entropy,
  // i.e. the lock sign composes with both upstream and downstream layers.
  Rng rng(23);
  nn::Sequential net;
  net.add(std::make_unique<nn::Linear>(6, 8, rng, "fc1"));
  net.add(std::make_unique<LockedActivation>("lock", make_mask(GetParam(), 8),
                                             ActivationKind::kSigmoid));
  net.add(std::make_unique<nn::Linear>(8, 4, rng, "fc2"));
  nn::SoftmaxCrossEntropy loss;
  const Tensor x = Tensor::normal(Shape{3, 6}, rng);
  std::vector<std::int64_t> labels;
  for (std::int64_t i = 0; i < 3; ++i) {
    labels.push_back(i % 4);
  }
  // A lost/flipped lock sign yields relative errors near 2.0; 5e-2 rides
  // above float noise on near-zero coordinates while still catching that.
  nn::GradCheckOptions opts;
  opts.tolerance = 5e-2;
  EXPECT_TRUE(nn::check_input_gradient(net, loss, x, labels, opts).ok)
      << pattern_name(GetParam());
  EXPECT_TRUE(nn::check_parameter_gradients(net, loss, x, labels, opts).ok)
      << pattern_name(GetParam());
}

TEST(LockedActivationGradInvarianceTest, OppositeMasksGiveOppositeGradients) {
  // g(+L) == -g(-L) at symmetric f' — with tanh at arbitrary x, flipping
  // the whole mask flips the signed pre-activation, and tanh' is even, so
  // the input gradients are exact negations of each other.
  const std::int64_t n = 7;
  Rng rng(29);
  Tensor x(Shape{2, n});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x.at(i) = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  LockedActivation plus("p", make_mask(MaskPattern::kAllPlus, n),
                        ActivationKind::kTanh);
  LockedActivation minus("m", make_mask(MaskPattern::kAllMinus, n),
                         ActivationKind::kTanh);
  (void)plus.forward(x);
  (void)minus.forward(x);
  const Tensor gp = plus.backward(Tensor(x.shape(), 1.0f));
  const Tensor gm = minus.backward(Tensor(x.shape(), 1.0f));
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(gp.at(i), -gm.at(i)) << "coord " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, LockedActivationGradTest,
                         ::testing::Values(MaskPattern::kAllPlus,
                                           MaskPattern::kAllMinus,
                                           MaskPattern::kMixed),
                         [](const auto& info) {
                           return pattern_name(info.param);
                         });

}  // namespace
}  // namespace hpnn::obf
