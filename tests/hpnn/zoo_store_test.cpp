#include "hpnn/zoo_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/error.hpp"

namespace hpnn::obf {
namespace {

class ZooStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/zoo_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  LockedModel make_model(std::uint64_t key_seed) {
    Rng rng(key_seed);
    const HpnnKey key = HpnnKey::random(rng);
    Scheduler sched(44);
    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = key_seed;
    return LockedModel(models::Architecture::kCnn1, mc, key, sched);
  }

  std::string dir_;
};

TEST_F(ZooStoreTest, PublishListFetchRoundTrip) {
  ModelZoo zoo(dir_);
  EXPECT_TRUE(zoo.list().empty());
  const LockedModel model = make_model(1);
  zoo.publish("fashion-cnn1", model);
  ASSERT_TRUE(zoo.contains("fashion-cnn1"));
  const auto entries = zoo.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "fashion-cnn1");
  EXPECT_EQ(entries[0].digest_hex.size(), 64u);

  const PublishedModel fetched = zoo.fetch("fashion-cnn1");
  EXPECT_EQ(fetched.arch, models::Architecture::kCnn1);
}

TEST_F(ZooStoreTest, RepublishOverwrites) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  const auto first_digest = zoo.list()[0].digest_hex;
  zoo.publish("m", make_model(2));  // different weights
  const auto entries = zoo.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].digest_hex, first_digest);
}

TEST_F(ZooStoreTest, IndexPersistsAcrossReopen) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("a", make_model(1));
    zoo.publish("b", make_model(2));
  }
  ModelZoo reopened(dir_);
  EXPECT_TRUE(reopened.contains("a"));
  EXPECT_TRUE(reopened.contains("b"));
  EXPECT_EQ(reopened.list().size(), 2u);
  EXPECT_EQ(reopened.fetch("b").arch, models::Architecture::kCnn1);
}

TEST_F(ZooStoreTest, TamperedArtifactDetectedAtFetch) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  // Flip a byte inside the stored artifact file.
  const std::string path = dir_ + "/m.hpnn";
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(100);
  char c = 0;
  f.seekg(100);
  f.get(c);
  f.seekp(100);
  f.put(static_cast<char>(c ^ 1));
  f.close();
  EXPECT_THROW((void)zoo.fetch("m"), SerializationError);
}

TEST_F(ZooStoreTest, UnknownNameThrows) {
  ModelZoo zoo(dir_);
  EXPECT_THROW((void)zoo.fetch("ghost"), SerializationError);
}

TEST_F(ZooStoreTest, InvalidNamesRejected) {
  ModelZoo zoo(dir_);
  const LockedModel model = make_model(1);
  EXPECT_THROW(zoo.publish("", model), InvariantError);
  EXPECT_THROW(zoo.publish("../escape", model), InvariantError);
  EXPECT_THROW(zoo.publish("has space", model), InvariantError);
}

TEST_F(ZooStoreTest, CorruptIndexRejected) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("m", make_model(1));
  }
  std::ofstream os(dir_ + "/zoo_index.tsv", std::ios::trunc);
  os << "broken line without tabs\n";
  os.close();
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

}  // namespace
}  // namespace hpnn::obf
