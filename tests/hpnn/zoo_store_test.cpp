#include "hpnn/zoo_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/error.hpp"

namespace hpnn::obf {
namespace {

namespace fs = std::filesystem;

class ZooStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/zoo_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }

  LockedModel make_model(std::uint64_t key_seed) {
    Rng rng(key_seed);
    const HpnnKey key = HpnnKey::random(rng);
    Scheduler sched(44);
    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = key_seed;
    return LockedModel(models::Architecture::kCnn1, mc, key, sched);
  }

  /// Appends a raw line to the store index (simulating tampering).
  void append_index_line(const std::string& line) {
    std::ofstream os(dir_ + "/zoo_index.tsv", std::ios::app);
    os << line << "\n";
  }

  std::string dir_;
};

TEST_F(ZooStoreTest, PublishListFetchRoundTrip) {
  ModelZoo zoo(dir_);
  EXPECT_TRUE(zoo.list().empty());
  const LockedModel model = make_model(1);
  zoo.publish("fashion-cnn1", model);
  ASSERT_TRUE(zoo.contains("fashion-cnn1"));
  const auto entries = zoo.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "fashion-cnn1");
  EXPECT_EQ(entries[0].digest_hex.size(), 64u);

  const PublishedModel fetched = zoo.fetch("fashion-cnn1");
  EXPECT_EQ(fetched.arch, models::Architecture::kCnn1);
}

TEST_F(ZooStoreTest, ObjectsAreContentAddressed) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  const auto entry = zoo.list()[0];
  // The object lives under objects/<hh>/<digest> and the path is derived
  // from the digest itself.
  EXPECT_EQ(entry.file,
            "objects/" + entry.digest_hex.substr(0, 2) + "/" +
                entry.digest_hex);
  EXPECT_TRUE(fs::exists(fs::path(dir_) / entry.file));
}

TEST_F(ZooStoreTest, RepublishOverwrites) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  const auto first_digest = zoo.list()[0].digest_hex;
  zoo.publish("m", make_model(2));  // different weights
  const auto entries = zoo.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_NE(entries[0].digest_hex, first_digest);
}

TEST_F(ZooStoreTest, IdenticalRepublishDedupsToOneObject) {
  ModelZoo zoo(dir_);
  const LockedModel model = make_model(1);
  zoo.publish("alpha", model);
  zoo.publish("beta", model);
  zoo.publish("gamma", model);
  EXPECT_EQ(zoo.list().size(), 3u);
  EXPECT_EQ(zoo.object_count(), 1u);
  // All three names resolve to the same content object on disk.
  std::size_t objects_on_disk = 0;
  for (const auto& p : fs::recursive_directory_iterator(dir_ + "/objects")) {
    objects_on_disk += p.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(objects_on_disk, 1u);
  EXPECT_EQ(zoo.fetch("alpha").parameters.size(),
            zoo.fetch("gamma").parameters.size());
}

TEST_F(ZooStoreTest, IndexPersistsAcrossReopen) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("a", make_model(1));
    zoo.publish("b", make_model(2));
  }
  ModelZoo reopened(dir_);
  EXPECT_TRUE(reopened.contains("a"));
  EXPECT_TRUE(reopened.contains("b"));
  EXPECT_EQ(reopened.list().size(), 2u);
  EXPECT_EQ(reopened.fetch("b").arch, models::Architecture::kCnn1);
}

TEST_F(ZooStoreTest, TamperedArtifactDetectedAtFetch) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  // Flip a byte inside the stored content object.
  const std::string path = dir_ + "/" + zoo.list()[0].file;
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekp(100);
  char c = 0;
  f.seekg(100);
  f.get(c);
  f.seekp(100);
  f.put(static_cast<char>(c ^ 1));
  f.close();
  EXPECT_THROW((void)zoo.fetch("m"), SerializationError);
  EXPECT_THROW((void)zoo.fetch_view("m"), SerializationError);
}

TEST_F(ZooStoreTest, UnknownNameThrows) {
  ModelZoo zoo(dir_);
  EXPECT_THROW((void)zoo.fetch("ghost"), SerializationError);
}

TEST_F(ZooStoreTest, InvalidNamesRejected) {
  ModelZoo zoo(dir_);
  const LockedModel model = make_model(1);
  EXPECT_THROW(zoo.publish("", model), InvariantError);
  EXPECT_THROW(zoo.publish("../escape", model), InvariantError);
  EXPECT_THROW(zoo.publish("has space", model), InvariantError);
}

TEST_F(ZooStoreTest, CorruptIndexRejected) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("m", make_model(1));
  }
  std::ofstream os(dir_ + "/zoo_index.tsv", std::ios::trunc);
  os << "broken line without tabs\n";
  os.close();
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, TraversalIndexEntryRejected) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("m", make_model(1));
  }
  // A tampered row pointing outside the store must be rejected at index
  // load — not followed at fetch time.
  append_index_line("evil\t../../secrets\t" + std::string(64, 'a'));
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, AbsolutePathIndexEntryRejected) {
  { ModelZoo zoo(dir_); }
  append_index_line("evil\t/etc/passwd\t" + std::string(64, 'a'));
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, MismatchedObjectPathRejected) {
  std::string other_digest(64, 'b');
  { ModelZoo zoo(dir_); }
  // An objects/ path must be derived from the row's own digest.
  append_index_line("evil\tobjects/aa/" + std::string(64, 'a') + "\t" +
                    other_digest);
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, DuplicateIndexNameRejected) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("m", make_model(1));
  }
  const std::string digest = ModelZoo(dir_).list()[0].digest_hex;
  append_index_line("m\tobjects/" + digest.substr(0, 2) + "/" + digest +
                    "\t" + digest);
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, BadDigestHexRejected) {
  { ModelZoo zoo(dir_); }
  // Right length, wrong alphabet: uppercase hex and non-hex both fail at
  // load with a clear error instead of surfacing later as a spurious
  // "tampered artifact" at fetch.
  std::string upper(64, 'A');
  append_index_line("m\tm.hpnn\t" + upper);
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);

  std::ofstream os(dir_ + "/zoo_index.tsv", std::ios::trunc);
  os << "m\tm.hpnn\t" << std::string(64, 'z') << "\n";
  os.close();
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);

  std::ofstream os2(dir_ + "/zoo_index.tsv", std::ios::trunc);
  os2 << "m\tm.hpnn\t" << std::string(63, 'a') << "\n";
  os2.close();
  EXPECT_THROW(ModelZoo{dir_}, SerializationError);
}

TEST_F(ZooStoreTest, LegacyFlatArtifactStillFetches) {
  // Stores written by the pre-content-addressed layout kept artifacts as
  // <name>.hpnn next to the index; those rows must keep working.
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  const auto entry = zoo.list()[0];
  fs::copy_file(fs::path(dir_) / entry.file, fs::path(dir_) / "legacy.hpnn");
  std::ofstream os(dir_ + "/zoo_index.tsv", std::ios::trunc);
  os << "legacy\tlegacy.hpnn\t" << entry.digest_hex << "\n";
  os.close();
  ModelZoo reopened(dir_);
  EXPECT_EQ(reopened.fetch("legacy").arch, models::Architecture::kCnn1);
}

TEST_F(ZooStoreTest, CrashBetweenObjectWriteAndIndexCommitIsConsistent) {
  {
    ModelZoo zoo(dir_);
    zoo.publish("kept", make_model(1));
  }
  // Simulate the crash window: a fully written object that no index row
  // references (the index rename never happened), plus a leftover index
  // temp file from the dying process.
  const std::string orphan_dir = dir_ + "/objects/ff";
  fs::create_directories(orphan_dir);
  std::ofstream orphan(orphan_dir + "/" + std::string(64, 'f'),
                       std::ios::binary);
  orphan << "half-published artifact bytes";
  orphan.close();
  std::ofstream tmp(dir_ + "/zoo_index.tsv.tmp", std::ios::binary);
  tmp << "kept\tgarbage-partial";
  tmp.close();

  ModelZoo reopened(dir_);
  EXPECT_EQ(reopened.list().size(), 1u);
  EXPECT_TRUE(reopened.contains("kept"));
  EXPECT_EQ(reopened.fetch("kept").arch, models::Architecture::kCnn1);
  // And the next publish still succeeds (overwrites the stale temp file).
  reopened.publish("next", make_model(2));
  EXPECT_TRUE(ModelZoo(dir_).contains("next"));
}

TEST_F(ZooStoreTest, FailedIndexCommitRollsBackPublish) {
  ModelZoo zoo(dir_);
  zoo.publish("kept", make_model(1));
  // Force the index commit to fail: the temp path is occupied by a
  // directory, so the store cannot create its temp file.
  fs::create_directories(dir_ + "/zoo_index.tsv.tmp");
  EXPECT_THROW(zoo.publish("doomed", make_model(2)), SerializationError);
  // Strong exception safety: the failed publish is not visible in memory…
  EXPECT_FALSE(zoo.contains("doomed"));
  EXPECT_TRUE(zoo.contains("kept"));
  ASSERT_EQ(zoo.list().size(), 1u);
  // …and the on-disk index still reflects the previous commit.
  fs::remove_all(dir_ + "/zoo_index.tsv.tmp");
  ModelZoo reopened(dir_);
  EXPECT_FALSE(reopened.contains("doomed"));
  EXPECT_TRUE(reopened.contains("kept"));
}

TEST_F(ZooStoreTest, FetchViewIsZeroCopyIntoMapping) {
  ModelZoo zoo(dir_);
  zoo.publish("m", make_model(1));
  const ArtifactView view = zoo.fetch_view("m");
  ASSERT_GT(view.parameters.size(), 0u);
  const auto bytes = view.backing_file().bytes();
  ASSERT_GT(bytes.size(), 0u);
  const auto* lo = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const auto* hi = lo + bytes.size();
  for (const auto& t : view.parameters) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(t.values.data());
    EXPECT_GE(p, lo);
    EXPECT_LE(p + t.values.size_bytes(), hi);
    // The v4 padding protocol puts every float panel on a 64-byte file
    // offset; the mapping is page-aligned, so the span is too.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
  }
}

}  // namespace
}  // namespace hpnn::obf
