#include "hpnn/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "hpnn/model_io.hpp"
#include "hw/device.hpp"
#include "tensor/ops.hpp"

namespace hpnn::obf {
namespace {

struct TestSetup {
  HpnnKey key;
  std::uint64_t schedule_seed = 321;
  std::unique_ptr<LockedModel> model;
};

TestSetup make_setup(models::Architecture arch, double width = 1.0,
                     std::int64_t channels = 1) {
  TestSetup s;
  Rng rng(6);
  s.key = HpnnKey::random(rng);
  Scheduler sched(s.schedule_seed);
  models::ModelConfig mc;
  mc.in_channels = channels;
  mc.image_size = 16;
  mc.init_seed = 4;
  mc.width_mult = width;
  s.model = std::make_unique<LockedModel>(arch, mc, s.key, sched);
  return s;
}

TEST(CalibrationTest, OneScalePerMacLayer) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  Rng rng(1);
  const auto scales = calibrate_activation_scales(
      *s.model, Tensor::normal(Shape{8, 1, 16, 16}, rng, 0.0f, 0.25f));
  // CNN1: conv1, conv2, fc1 = 3 MAC layers.
  ASSERT_EQ(scales.size(), 3u);
  for (const float scale : scales) {
    EXPECT_GT(scale, 0.0f);
  }
}

TEST(CalibrationTest, FirstScaleMatchesInputRange) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  Rng rng(2);
  const Tensor batch = Tensor::normal(Shape{4, 1, 16, 16}, rng, 0.0f, 0.3f);
  const auto scales = calibrate_activation_scales(*s.model, batch);
  float max_abs = 0.0f;
  for (const auto v : batch.span()) {
    max_abs = std::max(max_abs, std::fabs(v));
  }
  EXPECT_FLOAT_EQ(scales[0], max_abs / 127.0f);
}

TEST(CalibrationTest, CountsResNetMacLayers) {
  TestSetup s = make_setup(models::Architecture::kResNet18, 0.125, 3);
  Rng rng(3);
  const auto scales = calibrate_activation_scales(
      *s.model, Tensor::normal(Shape{2, 3, 16, 16}, rng, 0.0f, 0.25f));
  // stem conv + 8 blocks x 2 convs + 3 projection convs + final fc = 21.
  EXPECT_EQ(scales.size(), 21u);
}

TEST(CalibrationTest, EmptyBatchThrows) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  EXPECT_THROW(
      calibrate_activation_scales(*s.model, Tensor(Shape{0, 1, 16, 16})),
      InvariantError);
}

TEST(CalibrationTest, ScalesSurviveArtifactRoundTrip) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  Rng rng(4);
  const auto scales = calibrate_activation_scales(
      *s.model, Tensor::normal(Shape{4, 1, 16, 16}, rng, 0.0f, 0.25f));
  std::stringstream ss;
  publish_model(ss, *s.model, scales);
  const PublishedModel artifact = read_published_model(ss);
  ASSERT_EQ(artifact.activation_scales.size(), scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    EXPECT_FLOAT_EQ(artifact.activation_scales[i], scales[i]);
  }
}

TEST(CalibrationTest, ArtifactWithoutScalesIsEmpty) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  std::stringstream ss;
  publish_model(ss, *s.model);
  EXPECT_TRUE(read_published_model(ss).activation_scales.empty());
}

TEST(CalibrationTest, StaticDeviceMatchesDynamicDevice) {
  // The headline contract: a device running on calibrated static scales
  // must agree with the dynamic-quantization device on predictions for
  // in-distribution inputs (same traversal order owner-side and
  // device-side).
  TestSetup s = make_setup(models::Architecture::kCnn1);
  Rng rng(5);
  const Tensor calib = Tensor::normal(Shape{16, 1, 16, 16}, rng, 0.0f, 0.25f);
  const auto scales = calibrate_activation_scales(*s.model, calib);

  std::stringstream with_scales_ss, without_ss;
  publish_model(with_scales_ss, *s.model, scales);
  publish_model(without_ss, *s.model);

  hw::TrustedDevice static_dev(s.key, s.schedule_seed);
  hw::TrustedDevice dynamic_dev(s.key, s.schedule_seed);
  static_dev.load_model(read_published_model(with_scales_ss));
  dynamic_dev.load_model(read_published_model(without_ss));

  const Tensor x = Tensor::normal(Shape{16, 1, 16, 16}, rng, 0.0f, 0.25f);
  const auto sp = static_dev.classify(x);
  const auto dp = dynamic_dev.classify(x);
  const Tensor float_logits = s.model->network().forward(x);
  const auto fp = ops::argmax_rows(float_logits);
  int static_agree = 0;
  for (std::size_t i = 0; i < fp.size(); ++i) {
    static_agree += (sp[i] == fp[i]);
  }
  EXPECT_GE(static_agree, 13) << "static quantization diverged from float";
  (void)dp;
}

TEST(CalibrationTest, CorruptScaleInArtifactRejected) {
  TestSetup s = make_setup(models::Architecture::kCnn1);
  std::stringstream ss;
  publish_model(ss, *s.model, {0.1f, -1.0f, 0.2f});
  EXPECT_THROW(read_published_model(ss), SerializationError);
}

}  // namespace
}  // namespace hpnn::obf
