// Zero-copy artifact loading: mmap-vs-stream equivalence, alignment of the
// in-file float panels, and the digest-over-mapping TOCTOU regression.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/error.hpp"
#include "hpnn/model_io.hpp"

namespace hpnn::obf {
namespace {

namespace fs = std::filesystem;

class ArtifactViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/artifact_view_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = dir_ + "/model.hpnn";

    Rng rng(15);
    const HpnnKey key = HpnnKey::random(rng);
    Scheduler sched(31);
    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 16;
    mc.init_seed = 7;
    LockedModel model(models::Architecture::kCnn1, mc, key, sched);
    std::ofstream os(path_, std::ios::binary);
    publish_model(os, model, {0.5f, 0.25f, 0.125f});
  }

  std::string dir_;
  std::string path_;
};

void expect_same_model(const PublishedModel& a, const PublishedModel& b) {
  EXPECT_EQ(a.arch, b.arch);
  EXPECT_EQ(a.in_channels, b.in_channels);
  EXPECT_EQ(a.image_size, b.image_size);
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_DOUBLE_EQ(a.width_mult, b.width_mult);
  EXPECT_EQ(a.activation_scales, b.activation_scales);
  ASSERT_EQ(a.parameters.size(), b.parameters.size());
  for (std::size_t i = 0; i < a.parameters.size(); ++i) {
    EXPECT_EQ(a.parameters[i].name, b.parameters[i].name);
    EXPECT_TRUE(a.parameters[i].value.allclose(b.parameters[i].value, 0.0f,
                                               0.0f))
        << "parameter " << a.parameters[i].name << " differs bitwise";
  }
  ASSERT_EQ(a.buffers.size(), b.buffers.size());
  for (std::size_t i = 0; i < a.buffers.size(); ++i) {
    EXPECT_EQ(a.buffers[i].name, b.buffers[i].name);
    EXPECT_TRUE(a.buffers[i].value.allclose(b.buffers[i].value, 0.0f, 0.0f));
  }
}

TEST_F(ArtifactViewTest, MappedAndStreamedLoadsAreBitIdentical) {
  std::ifstream is(path_, std::ios::binary);
  const PublishedModel streamed = read_published_model(is);
  const PublishedModel mapped = map_published_model_file(path_).materialize();
  expect_same_model(streamed, mapped);
}

TEST_F(ArtifactViewTest, ViewTensorsAliasTheMapping) {
  const ArtifactView view = map_published_model_file(path_);
  const auto bytes = view.backing_file().bytes();
  ASSERT_GT(bytes.size(), 0u);
  const auto* lo = bytes.data();
  const auto* hi = lo + bytes.size();
  ASSERT_GT(view.parameters.size(), 0u);
  for (const auto& t : view.parameters) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(t.values.data());
    EXPECT_GE(p, lo) << t.name;
    EXPECT_LE(p + t.values.size_bytes(), hi) << t.name;
    EXPECT_EQ(static_cast<std::int64_t>(t.values.size()), t.shape.numel());
  }
  // Scales alias the mapping too.
  ASSERT_EQ(view.activation_scales.size(), 3u);
  const auto* s =
      reinterpret_cast<const std::uint8_t*>(view.activation_scales.data());
  EXPECT_GE(s, lo);
  EXPECT_LE(s + view.activation_scales.size() * sizeof(float), hi);
}

TEST_F(ArtifactViewTest, FloatPanelsLandOn64ByteFileOffsets) {
  const ArtifactView view = map_published_model_file(path_);
  const auto* base = view.backing_file().bytes().data();
  for (const auto& t : view.parameters) {
    const auto off = static_cast<std::size_t>(
        reinterpret_cast<const std::uint8_t*>(t.values.data()) - base);
    EXPECT_EQ(off % 64, 0u) << t.name << " at file offset " << off;
  }
}

TEST_F(ArtifactViewTest, SwapAfterMappingCannotAlterParsedBytes) {
  // The TOCTOU regression: once the artifact is mapped (and its digest
  // verified over those bytes), replacing the file on disk must not change
  // what gets parsed — the mapping pins the original inode.
  const ArtifactView view = map_published_model_file(path_);
  const PublishedModel before = view.materialize();

  // Publish a *different* model over the same path via rename, the same
  // way a concurrent writer would.
  Rng rng(16);
  const HpnnKey key2 = HpnnKey::random(rng);
  Scheduler sched2(32);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 8;
  LockedModel other(models::Architecture::kCnn1, mc, key2, sched2);
  const std::string tmp = path_ + ".new";
  std::ofstream os(tmp, std::ios::binary);
  publish_model(os, other);
  os.close();
  fs::rename(tmp, path_);

  const PublishedModel after = view.materialize();
  expect_same_model(before, after);
  // A fresh load sees the new content — proving the swap really happened.
  const PublishedModel fresh = map_published_model_file(path_).materialize();
  ASSERT_GT(fresh.parameters.size(), 0u);
  EXPECT_FALSE(fresh.parameters[0].value.allclose(
      before.parameters[0].value, 0.0f, 0.0f));
}

TEST_F(ArtifactViewTest, TamperedByteFailsDigestAtView) {
  std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::int64_t>(f.tellg());
  ASSERT_GT(size, 200);
  char c = 0;
  f.seekg(size - 50);
  f.get(c);
  f.seekp(size - 50);
  f.put(static_cast<char>(c ^ 0x40));
  f.close();
  EXPECT_THROW((void)map_published_model_file(path_), SerializationError);
}

TEST_F(ArtifactViewTest, TruncatedFileRejected) {
  fs::resize_file(path_, fs::file_size(path_) / 2);
  EXPECT_THROW((void)map_published_model_file(path_), SerializationError);
}

TEST_F(ArtifactViewTest, ViewOverBorrowedBufferWorks) {
  std::ifstream is(path_, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string bytes = ss.str();
  const ArtifactView view = view_published_model(core::ByteView(
      reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
  // Borrowed views retain no mapping of their own.
  EXPECT_EQ(view.backing_file().size(), 0u);
  std::ifstream is2(path_, std::ios::binary);
  expect_same_model(view.materialize(), read_published_model(is2));
}

TEST_F(ArtifactViewTest, ModelConfigMatchesOwningForm) {
  const ArtifactView view = map_published_model_file(path_);
  const PublishedModel owned = view.materialize();
  const auto a = view.model_config(5);
  const auto b = owned.model_config(5);
  EXPECT_EQ(a.in_channels, b.in_channels);
  EXPECT_EQ(a.image_size, b.image_size);
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_DOUBLE_EQ(a.width_mult, b.width_mult);
  EXPECT_EQ(a.init_seed, b.init_seed);
}

}  // namespace
}  // namespace hpnn::obf
