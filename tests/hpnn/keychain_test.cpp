#include "hpnn/keychain.hpp"

#include <gtest/gtest.h>

namespace hpnn::obf {
namespace {

HpnnKey master() {
  Rng rng(123);
  return HpnnKey::random(rng);
}

TEST(KeychainTest, FingerprintIsStableAndHex) {
  const auto fp = key_fingerprint(master());
  EXPECT_EQ(fp.size(), 64u);
  EXPECT_EQ(fp, key_fingerprint(master()));
}

TEST(KeychainTest, FingerprintDoesNotRevealKey) {
  const HpnnKey key = master();
  EXPECT_EQ(key_fingerprint(key).find(key.to_hex()), std::string::npos);
}

TEST(KeychainTest, DifferentKeysDifferentFingerprints) {
  Rng rng(9);
  EXPECT_NE(key_fingerprint(HpnnKey::random(rng)),
            key_fingerprint(HpnnKey::random(rng)));
}

TEST(KeychainTest, ModelKeyDerivationDeterministic) {
  const HpnnKey m = master();
  EXPECT_EQ(derive_model_key(m, "cnn1-fashion"),
            derive_model_key(m, "cnn1-fashion"));
}

TEST(KeychainTest, ModelKeysAreDiversified) {
  const HpnnKey m = master();
  const HpnnKey a = derive_model_key(m, "model-a");
  const HpnnKey b = derive_model_key(m, "model-b");
  EXPECT_NE(a, b);
  EXPECT_NE(a, m);
  // Derived keys look random: about half the bits differ.
  const auto d = a.hamming_distance(b);
  EXPECT_GT(d, 90u);
  EXPECT_LT(d, 166u);
}

TEST(KeychainTest, ScheduleSeedDiversified) {
  const HpnnKey m = master();
  EXPECT_NE(derive_schedule_seed(m, "model-a"),
            derive_schedule_seed(m, "model-b"));
  EXPECT_EQ(derive_schedule_seed(m, "model-a"),
            derive_schedule_seed(m, "model-a"));
}

TEST(KeychainTest, ScheduleAndKeyDomainsSeparated) {
  // The schedule seed must not simply be a prefix of the model key.
  const HpnnKey m = master();
  const HpnnKey mk = derive_model_key(m, "model-a");
  std::uint64_t key_prefix = 0;
  const std::string hex = mk.to_hex();
  // (coarse check: derive_schedule_seed differs from any 64-bit slice origin)
  EXPECT_NE(std::to_string(derive_schedule_seed(m, "model-a")),
            hex.substr(0, 16));
  (void)key_prefix;
}

TEST(KeychainTest, LicenseRoundTrip) {
  const HpnnKey m = master();
  const License lic = License::issue(m, "resnet18-cifar");
  EXPECT_EQ(lic.model_id, "resnet18-cifar");
  EXPECT_EQ(lic.master_fingerprint, key_fingerprint(m));
  EXPECT_TRUE(
      lic.matches_model_key(derive_model_key(m, "resnet18-cifar")));
  EXPECT_FALSE(lic.matches_model_key(derive_model_key(m, "other-model")));
  EXPECT_FALSE(lic.matches_model_key(m));
}

}  // namespace
}  // namespace hpnn::obf
