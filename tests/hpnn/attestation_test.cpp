#include "hpnn/attestation.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/error.hpp"
#include "core/serialize.hpp"
#include "hpnn/model_io.hpp"
#include "hw/device.hpp"
#include "tensor/ops.hpp"

namespace hpnn::obf {
namespace {

struct TestSetup {
  HpnnKey key;
  std::uint64_t schedule_seed = 77;
  std::unique_ptr<LockedModel> model;
  PublishedModel artifact;
};

TestSetup make_setup() {
  TestSetup s;
  Rng rng(5);
  s.key = HpnnKey::random(rng);
  Scheduler sched(s.schedule_seed);
  models::ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 16;
  mc.init_seed = 3;
  s.model = std::make_unique<LockedModel>(models::Architecture::kCnn1, mc,
                                          s.key, sched);
  std::stringstream ss;
  publish_model(ss, *s.model);
  s.artifact = read_published_model(ss);
  return s;
}

TEST(AttestationTest, CorrectDevicePasses) {
  TestSetup s = make_setup();
  Rng rng(7);
  const auto challenge = make_challenge(*s.model, 32, rng);
  hw::TrustedDevice device(s.key, s.schedule_seed);
  device.load_model(s.artifact);
  const auto result =
      check_response(challenge, device.classify(challenge.probes));
  EXPECT_TRUE(result.passed) << "agreement " << result.agreement;
  EXPECT_GT(result.agreement, 0.9);
}

TEST(AttestationTest, WrongKeyDeviceFails) {
  TestSetup s = make_setup();
  Rng rng(8);
  const auto challenge = make_challenge(*s.model, 32, rng);
  const HpnnKey wrong = HpnnKey::random(rng);
  hw::TrustedDevice device(wrong, s.schedule_seed);
  device.load_model(s.artifact);
  const auto result =
      check_response(challenge, device.classify(challenge.probes));
  EXPECT_FALSE(result.passed) << "agreement " << result.agreement;
}

TEST(AttestationTest, UnlockedBaselineFails) {
  TestSetup s = make_setup();
  Rng rng(9);
  const auto challenge = make_challenge(*s.model, 32, rng);
  auto baseline = instantiate_baseline(s.artifact);
  baseline->set_training(false);
  const auto response =
      ops::argmax_rows(baseline->forward(challenge.probes));
  const auto result = check_response(challenge, response);
  EXPECT_FALSE(result.passed) << "agreement " << result.agreement;
}

TEST(AttestationTest, SelfCheckIsPerfect) {
  TestSetup s = make_setup();
  Rng rng(10);
  const auto challenge = make_challenge(*s.model, 16, rng);
  const auto response = ops::argmax_rows(
      s.model->network().forward(challenge.probes));
  const auto result = check_response(challenge, response);
  EXPECT_DOUBLE_EQ(result.agreement, 1.0);
}

TEST(AttestationTest, ResponseLengthValidated) {
  TestSetup s = make_setup();
  Rng rng(11);
  const auto challenge = make_challenge(*s.model, 8, rng);
  EXPECT_THROW(check_response(challenge, {1, 2}), InvariantError);
}

TEST(AttestationTest, SerializationRoundTrip) {
  TestSetup s = make_setup();
  Rng rng(12);
  const auto challenge = make_challenge(*s.model, 8, rng);
  std::stringstream ss;
  write_challenge(ss, challenge);
  const auto loaded = read_challenge(ss);
  EXPECT_TRUE(loaded.probes.allclose(challenge.probes, 0.0f, 0.0f));
  EXPECT_EQ(loaded.expected, challenge.expected);
  EXPECT_DOUBLE_EQ(loaded.min_agreement, challenge.min_agreement);
}

TEST(AttestationTest, CorruptChallengeRejected) {
  std::stringstream ss("this is not a challenge");
  EXPECT_THROW(read_challenge(ss), SerializationError);
}

TEST(AttestationTest, TruncatedChallengeRejectedAtEveryLength) {
  TestSetup s = make_setup();
  Rng rng(13);
  const auto challenge = make_challenge(*s.model, 4, rng);
  std::stringstream full;
  write_challenge(full, challenge);
  const std::string bytes = full.str();
  for (std::size_t len = 0; len < bytes.size(); len += 16) {
    std::stringstream ss(bytes.substr(0, len));
    EXPECT_THROW(read_challenge(ss), SerializationError)
        << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(AttestationTest, HostileProbeDimsRejected) {
  // Negative and absurdly large probe extents must surface as
  // SerializationError (untrusted input), not as Shape's InvariantError
  // (programmer error) or an attempted multi-GiB allocation.
  const auto craft = [](const std::vector<std::int64_t>& dims) {
    std::stringstream ss;
    BinaryWriter w(ss);
    w.write_u32(0x4850'4143u);  // challenge magic
    w.write_i64_vector(dims);
    return ss;
  };
  auto negative = craft({1, -1, 8, 8});
  EXPECT_THROW(read_challenge(negative), SerializationError);
  auto huge = craft({1 << 12, 1 << 12, 1 << 12, 1 << 12});
  EXPECT_THROW(read_challenge(huge), SerializationError);
  auto wrong_rank = craft({4, 8, 8});
  EXPECT_THROW(read_challenge(wrong_rank), SerializationError);
}

TEST(AttestationTest, NonFiniteAgreementThresholdRejected) {
  TestSetup s = make_setup();
  Rng rng(14);
  auto challenge = make_challenge(*s.model, 4, rng);
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(), 0.0, -1.0, 2.0}) {
    challenge.min_agreement = bad;
    std::stringstream ss;
    write_challenge(ss, challenge);
    EXPECT_THROW(read_challenge(ss), SerializationError)
        << "threshold " << bad << " accepted";
  }
}

}  // namespace
}  // namespace hpnn::obf
