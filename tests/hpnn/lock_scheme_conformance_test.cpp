// Scheme-conformance kit: every registered LockScheme must satisfy the
// contracts documented in hpnn/lock_scheme.hpp —
//   1. correct-key inference matches the trainable model (bit-identical
//      when the scheme claims exact_under_correct_key);
//   2. wrong-key inference degrades toward chance accuracy;
//   3. protected artifacts round-trip byte-identically;
//   4. provisioning is deterministic at any HPNN_THREADS setting;
//   5. the trusted device agrees with the scheme's own evaluator.
// The suite is parameterized over registered_scheme_tags(), so a scheme
// registered tomorrow is tested tomorrow. A deliberately broken scheme at
// the bottom proves the wrong-key check actually rejects violators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>

#include "core/error.hpp"
#include "core/threadpool.hpp"
#include "data/synthetic.hpp"
#include "hpnn/lock_scheme.hpp"
#include "hpnn/model_io.hpp"
#include "hpnn/owner.hpp"
#include "hpnn/schemes/sign_lock.hpp"
#include "hw/device.hpp"
#include "nn/trainer.hpp"
#include "tensor/ops.hpp"

namespace hpnn::obf {
namespace {

const data::SplitDataset& shared_split() {
  static const data::SplitDataset split = [] {
    data::SyntheticConfig dc;
    dc.train_per_class = 60;
    dc.test_per_class = 15;
    dc.image_size = 16;
    // Family-default noise/jitter: the calibrated task difficulty. An
    // artificially easy split would let a sign-corrupted network keep
    // separating classes and mask real wrong-key leakage.
    dc.seed = 21;
    return data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);
  }();
  return split;
}

/// One trained-and-published world per scheme, built once and shared by all
/// parameterized tests (training dominates the suite's runtime).
struct SchemeWorld {
  SchemeSecrets secrets;
  std::unique_ptr<LockedModel> trainable;
  std::string artifact_bytes;
  PublishedModel artifact;
  double trained_accuracy = 0.0;
};

SchemeWorld build_world(const LockScheme& scheme) {
  SchemeWorld w;
  Rng rng(404);
  const HpnnKey master = HpnnKey::random(rng);
  w.secrets =
      derive_scheme_secrets(master, "conformance:" + scheme.tag());

  const data::SplitDataset& split = shared_split();
  models::ModelConfig mc;
  mc.in_channels = split.train.channels();
  mc.image_size = split.train.height();
  mc.init_seed = 6;
  // MLP: dense sign-locking corrupts every hidden unit, so wrong-key
  // degradation is decisive even at this miniature scale (tiny CNNs keep
  // residual accuracy through conv weight sharing + BatchNorm).
  w.trainable = scheme.make_trainable(models::Architecture::kMlp, mc,
                                      w.secrets);

  OwnerTrainOptions opt;
  opt.epochs = 12;
  opt.sgd = {0.01, 0.9, 5e-4};
  const OwnerTrainReport report =
      train_locked_model(*w.trainable, split.train, split.test, opt);
  w.trained_accuracy = report.test_accuracy;

  std::stringstream ss;
  publish_protected_model(ss, scheme, *w.trainable, w.secrets);
  w.artifact_bytes = ss.str();
  w.artifact = read_published_model(ss);
  return w;
}

SchemeWorld& world_for(const std::string& tag) {
  static std::map<std::string, SchemeWorld> worlds;
  auto it = worlds.find(tag);
  if (it == worlds.end()) {
    it = worlds.emplace(tag, build_world(scheme_by_tag(tag))).first;
  }
  return it->second;
}

Tensor probe_batch(std::int64_t n = 16) {
  Rng rng(3);
  return Tensor::normal(Shape{n, 1, 16, 16}, rng, 0.0f, 0.25f);
}

/// The wrong-key-degradation contract as a reusable predicate: averaged
/// over several uniformly random trial keys, the evaluator must sit near
/// chance, far below the correct-key accuracy. (Averaging matters: one
/// lucky key can share enough schedule bits with the truth to retain some
/// accuracy, but the mean over random keys must not.) Returned as an
/// AssertionResult so the broken-scheme test below can assert the
/// predicate *fails*.
::testing::AssertionResult wrong_key_contract_holds(
    const LockScheme& scheme, const PublishedModel& artifact,
    const SchemeSecrets& correct, double correct_accuracy) {
  const data::SplitDataset& split = shared_split();
  Rng rng(99);
  double mean = 0.0;
  std::string per_key;
  constexpr int kTrialKeys = 5;
  for (int t = 0; t < kTrialKeys; ++t) {
    SchemeSecrets trial = correct;
    trial.key = HpnnKey::random(rng);
    auto evaluator = scheme.make_evaluator(artifact, trial);
    const double acc = nn::evaluate_accuracy(
        evaluator->network(), split.test.images, split.test.labels);
    per_key += " " + std::to_string(acc);
    mean += acc;
  }
  mean /= kTrialKeys;
  const double chance =
      1.0 / static_cast<double>(split.test.num_classes);
  // At this miniature scale a random wrong key shares ~half the lock bits
  // with the truth, so "at chance" is stated relative to the gap: the mean
  // must close less than half of the chance -> correct-key distance, and
  // sit well below correct-key accuracy. A scheme whose wrong-key accuracy
  // tracks its correct-key accuracy (the no-op below) fails both bounds.
  if (mean > chance + 0.5 * (correct_accuracy - chance)) {
    return ::testing::AssertionFailure()
           << scheme.tag() << ": mean wrong-key accuracy " << mean
           << " over " << kTrialKeys << " random keys (" << per_key
           << " ) closes more than half the gap from chance " << chance
           << " to correct-key " << correct_accuracy;
  }
  if (mean > correct_accuracy - 0.25) {
    return ::testing::AssertionFailure()
           << scheme.tag() << ": mean wrong-key accuracy " << mean
           << " does not degrade from correct-key " << correct_accuracy;
  }
  return ::testing::AssertionSuccess();
}

class LockSchemeConformance
    : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSchemes, LockSchemeConformance,
    ::testing::ValuesIn(registered_scheme_tags()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(LockSchemeConformance, TrainsAboveChance) {
  const SchemeWorld& w = world_for(GetParam());
  EXPECT_GT(w.trained_accuracy, 0.6)
      << GetParam() << " trainable failed to learn the task";
}

TEST_P(LockSchemeConformance, CorrectKeyMatchesTrainableBitIdentically) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  SchemeWorld& w = world_for(GetParam());
  ASSERT_TRUE(scheme.exact_under_correct_key())
      << "update this test if a lossy scheme is ever registered";

  auto evaluator = scheme.make_evaluator(w.artifact, w.secrets);
  const Tensor x = probe_batch();
  w.trainable->network().set_training(false);
  const Tensor expected = w.trainable->network().forward(x);
  const Tensor actual = evaluator->network().forward(x);
  ASSERT_EQ(actual.shape(), expected.shape());
  ASSERT_EQ(0, std::memcmp(actual.data(), expected.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(actual.numel())))
      << GetParam()
      << ": correct-key logits are not bit-identical to the trainable";
}

TEST_P(LockSchemeConformance, SetKeyRestoresCorrectKeyExactly) {
  // Re-keying through the evaluator hook (wrong then correct) must land
  // back on the exact correct-key function — key recovery depends on this.
  const LockScheme& scheme = scheme_by_tag(GetParam());
  SchemeWorld& w = world_for(GetParam());
  auto evaluator = scheme.make_evaluator(w.artifact, w.secrets);
  const Tensor x = probe_batch();
  const Tensor before = evaluator->network().forward(x);

  Rng rng(55);
  evaluator->set_key(HpnnKey::random(rng));
  evaluator->set_key(w.secrets.key);
  const Tensor after = evaluator->network().forward(x);
  ASSERT_EQ(0, std::memcmp(before.data(), after.data(),
                           sizeof(float) *
                               static_cast<std::size_t>(before.numel())));
}

TEST_P(LockSchemeConformance, WrongKeyDegradesToChance) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  SchemeWorld& w = world_for(GetParam());
  auto evaluator = scheme.make_evaluator(w.artifact, w.secrets);
  const data::SplitDataset& split = shared_split();
  const double correct = nn::evaluate_accuracy(
      evaluator->network(), split.test.images, split.test.labels);
  EXPECT_GT(correct, 0.6);
  EXPECT_TRUE(
      wrong_key_contract_holds(scheme, w.artifact, w.secrets, correct));
}

TEST_P(LockSchemeConformance, AttackerViewIsNearChance) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  SchemeWorld& w = world_for(GetParam());
  auto stolen = scheme.attacker_view(w.artifact);
  const data::SplitDataset& split = shared_split();
  const double no_key = nn::evaluate_accuracy(*stolen, split.test.images,
                                              split.test.labels);
  EXPECT_LT(no_key, 0.35)
      << GetParam() << " leaks accuracy through the no-key view";
}

TEST_P(LockSchemeConformance, ArtifactRoundTripsByteIdentically) {
  const SchemeWorld& w = world_for(GetParam());
  // serialize(read(serialize(model))) == serialize(model): nothing in the
  // scheme tag, payload, or tensor encoding is lossy or reordered.
  std::ostringstream again;
  publish_artifact(again, w.artifact);
  EXPECT_EQ(again.str(), w.artifact_bytes);
  EXPECT_EQ(w.artifact.scheme_tag, GetParam());
}

TEST_P(LockSchemeConformance, PayloadValidationIsStrict) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  const SchemeWorld& w = world_for(GetParam());
  // The scheme accepts its own payload and rejects a plausible-but-wrong
  // one (right tag, wrong payload shape).
  scheme.validate_payload(w.artifact.scheme_payload);
  std::vector<std::uint8_t> wrong(w.artifact.scheme_payload);
  wrong.push_back(0xAB);
  EXPECT_THROW(scheme.validate_payload(wrong), SerializationError);
}

TEST_P(LockSchemeConformance, ProvisionIsDeterministicAcrossThreadCounts) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  Rng rng(77);
  const HpnnKey master = HpnnKey::random(rng);
  const SchemeSecrets secrets =
      derive_scheme_secrets(master, "threads:" + scheme.tag());

  data::SyntheticConfig dc;
  dc.train_per_class = 8;
  dc.test_per_class = 4;
  dc.image_size = 12;
  dc.seed = 5;
  const data::SplitDataset split =
      data::make_dataset(data::SyntheticFamily::kFashionSynth, dc);

  auto provision = [&](int threads) {
    core::set_thread_count(threads);
    models::ModelConfig mc;
    mc.in_channels = 1;
    mc.image_size = 12;
    mc.init_seed = 9;
    auto model =
        scheme.make_trainable(models::Architecture::kMlp, mc, secrets);
    OwnerTrainOptions opt;
    opt.epochs = 2;
    (void)train_locked_model(*model, split.train, split.test, opt);
    std::ostringstream os;
    publish_protected_model(os, scheme, *model, secrets);
    return os.str();
  };
  const std::string serial = provision(1);
  const std::string parallel = provision(4);
  core::set_thread_count(0);
  EXPECT_EQ(serial, parallel)
      << GetParam() << " provisioning depends on HPNN_THREADS";
}

TEST_P(LockSchemeConformance, TrustedDeviceAgreesWithEvaluator) {
  const LockScheme& scheme = scheme_by_tag(GetParam());
  SchemeWorld& w = world_for(GetParam());
  hw::TrustedDevice device(w.secrets.key, w.secrets.schedule_seed);
  device.load_model(w.artifact);

  auto evaluator = scheme.make_evaluator(w.artifact, w.secrets);
  const Tensor x = probe_batch();
  const auto expected = ops::argmax_rows(evaluator->network().forward(x));
  const auto actual = ops::argmax_rows(device.infer(x));
  int agree = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    agree += (expected[i] == actual[i]);
  }
  // int8 dynamic quantization on device: classes agree on a large majority.
  EXPECT_GE(agree, 14)
      << GetParam() << " device datapath diverged from the evaluator";
}

TEST(LockSchemeRegistryTest, BuiltInsAreRegistered) {
  const auto tags = registered_scheme_tags();
  EXPECT_NE(std::find(tags.begin(), tags.end(), kSignLockTag), tags.end());
  EXPECT_NE(std::find(tags.begin(), tags.end(), kWeightStreamTag),
            tags.end());
  EXPECT_EQ(find_scheme(kSignLockTag)->tag(), kSignLockTag);
}

TEST(LockSchemeRegistryTest, UnknownTagFailsClosed) {
  EXPECT_EQ(find_scheme("quantum-lock"), nullptr);
  EXPECT_THROW(scheme_by_tag("quantum-lock"), SerializationError);
}

TEST(LockSchemeRegistryTest, DuplicateRegistrationRejected) {
  EXPECT_THROW(register_scheme(std::make_unique<SignLockScheme>()),
               InvariantError);
}

/// A deliberately broken scheme: the "protection" does nothing, so a wrong
/// key decodes to the owner's exact model. It is constructed locally and
/// never registered (the registry must stay clean for the campaign-coverage
/// test); its only job is proving the conformance predicate rejects it.
class NoOpScheme : public LockScheme {
 public:
  std::string tag() const override { return "no-op"; }
  std::string description() const override { return "broken: no defense"; }
  bool exact_under_correct_key() const override { return true; }
  bool uses_activation_locks() const override { return false; }
  bool transforms_weights() const override { return false; }
  void validate_payload(
      std::span<const std::uint8_t> payload) const override {
    if (!payload.empty()) {
      throw SerializationError("no-op scheme expects an empty payload");
    }
  }
  std::unique_ptr<LockedModel> make_trainable(
      models::Architecture arch, const models::ModelConfig& config,
      const SchemeSecrets& /*secrets*/) const override {
    // Trains in the clear, like weight-stream — but never protects.
    return std::make_unique<LockedModel>(arch, config, HpnnKey{},
                                         Scheduler(0));
  }
  void lock_payload(PublishedModel&,
                    const SchemeSecrets&) const override {}
  void unlock_payload(PublishedModel&,
                      const SchemeSecrets&) const override {}
  std::unique_ptr<KeyedEvaluator> make_evaluator(
      const PublishedModel& artifact,
      const SchemeSecrets&) const override {
    class Ignorant : public KeyedEvaluator {
     public:
      explicit Ignorant(const PublishedModel& artifact)
          : net_(instantiate_baseline(artifact)) {
        net_->set_training(false);
      }
      nn::Sequential& network() override { return *net_; }
      void set_key(const HpnnKey&) override {}  // the bug: key is ignored
     private:
      std::unique_ptr<nn::Sequential> net_;
    };
    return std::make_unique<Ignorant>(artifact);
  }
  std::unique_ptr<nn::Sequential> attacker_view(
      const PublishedModel& artifact) const override {
    auto net = instantiate_baseline(artifact);
    net->set_training(false);
    return net;
  }
};

TEST(LockSchemeContractTest, BrokenSchemeFailsWrongKeyCheck) {
  const NoOpScheme broken;
  // Reuse the weight-stream world's cleartext-trained weights: the no-op
  // "protected" artifact is that model published with no protection at all.
  SchemeWorld& donor = world_for(kWeightStreamTag);
  const PublishedModel artifact =
      make_protected_artifact(broken, *donor.trainable, donor.secrets);
  EXPECT_EQ(artifact.scheme_tag, "no-op");

  const data::SplitDataset& split = shared_split();
  auto evaluator = broken.make_evaluator(artifact, donor.secrets);
  const double correct = nn::evaluate_accuracy(
      evaluator->network(), split.test.images, split.test.labels);
  EXPECT_GT(correct, 0.6);
  // The same predicate that passes for every registered scheme must fail
  // here: a wrong key recovers full accuracy, so nothing was defended.
  EXPECT_FALSE(
      wrong_key_contract_holds(broken, artifact, donor.secrets, correct));
}

TEST(LockSchemeContractTest, UnregisteredTagCannotBeDeserialized) {
  // Even if a broken/unknown scheme's artifact is crafted and serialized,
  // no read path in this build will accept it: unknown tags fail closed.
  const NoOpScheme broken;
  SchemeWorld& donor = world_for(kWeightStreamTag);
  const PublishedModel artifact =
      make_protected_artifact(broken, *donor.trainable, donor.secrets);
  std::stringstream ss;
  publish_artifact(ss, artifact);
  EXPECT_THROW((void)read_published_model(ss), SerializationError);
}

}  // namespace
}  // namespace hpnn::obf
