#include "hpnn/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"

namespace hpnn::obf {
namespace {

TEST(SchedulerTest, DeterministicForSeed) {
  Scheduler a(42);
  Scheduler b(42);
  EXPECT_EQ(a.assign_units(0, 1000), b.assign_units(0, 1000));
  EXPECT_EQ(a.assign_units(3, 17), b.assign_units(3, 17));
}

TEST(SchedulerTest, DifferentSeedsDiffer) {
  Scheduler a(1);
  Scheduler b(2);
  EXPECT_NE(a.assign_units(0, 256), b.assign_units(0, 256));
}

TEST(SchedulerTest, DifferentLayersDiffer) {
  Scheduler s(7);
  EXPECT_NE(s.assign_units(0, 256), s.assign_units(1, 256));
}

TEST(SchedulerTest, UnitsAreInRange) {
  Scheduler s(5);
  for (const auto u : s.assign_units(2, 5000)) {
    EXPECT_LT(u, Scheduler::kUnits);
  }
}

TEST(SchedulerTest, RoundRobinCoversAllUnits) {
  Scheduler s(9);
  const auto units = s.assign_units(0, 256);
  std::set<std::uint16_t> seen(units.begin(), units.end());
  EXPECT_EQ(seen.size(), 256u);  // a full tile touches every accumulator
}

TEST(SchedulerTest, LoadIsBalanced) {
  Scheduler s(11);
  const auto units = s.assign_units(1, 2560);
  std::vector<int> counts(256, 0);
  for (const auto u : units) {
    ++counts[u];
  }
  for (const auto c : counts) {
    EXPECT_EQ(c, 10);  // perfect balance for multiples of 256
  }
}

TEST(SchedulerTest, PeriodicityMatchesUnitCount) {
  Scheduler s(13);
  const auto units = s.assign_units(0, 512);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(units[i], units[i + 256]);  // neuron i and i+256 share a unit
  }
}

TEST(SchedulerTest, InvalidQueryThrows) {
  Scheduler s(1);
  EXPECT_THROW(s.assign_units(-1, 10), InvariantError);
  EXPECT_THROW(s.assign_units(0, -5), InvariantError);
}

TEST(SchedulerTest, LockMaskValuesAreSigns) {
  Scheduler s(17);
  Rng rng(3);
  const HpnnKey key = HpnnKey::random(rng);
  LockSpec spec{"act1", 0, Shape{4, 5, 5}};
  const Tensor mask = s.lock_mask(spec, key);
  EXPECT_EQ(mask.shape(), Shape({4, 5, 5}));
  for (const auto v : mask.span()) {
    EXPECT_TRUE(v == 1.0f || v == -1.0f);
  }
}

TEST(SchedulerTest, LockMaskConsistentWithUnits) {
  Scheduler s(19);
  Rng rng(4);
  const HpnnKey key = HpnnKey::random(rng);
  LockSpec spec{"act2", 5, Shape{100}};
  const Tensor mask = s.lock_mask(spec, key);
  const auto units = s.assign_units(5, 100);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(mask.at(i),
              key.lock_factor(units[static_cast<std::size_t>(i)]));
  }
}

TEST(SchedulerTest, ZeroKeyGivesAllPositiveMask) {
  Scheduler s(23);
  HpnnKey zero;
  LockSpec spec{"act", 0, Shape{64}};
  const Tensor mask = s.lock_mask(spec, zero);
  EXPECT_EQ(mask.min(), 1.0f);
}

TEST(SchedulerTest, RandomKeyMaskIsBalanced) {
  Scheduler s(29);
  Rng rng(5);
  const HpnnKey key = HpnnKey::random(rng);
  LockSpec spec{"act", 0, Shape{2560}};
  const Tensor mask = s.lock_mask(spec, key);
  std::int64_t negatives = 0;
  for (const auto v : mask.span()) {
    negatives += (v < 0.0f);
  }
  // about half the neurons land on k=1 units
  EXPECT_GT(negatives, 2560 / 4);
  EXPECT_LT(negatives, 3 * 2560 / 4);
}

TEST(SchedulerTest, EqualityBySeedAndPolicy) {
  EXPECT_EQ(Scheduler(5), Scheduler(5));
  EXPECT_FALSE(Scheduler(5) == Scheduler(6));
  EXPECT_FALSE(Scheduler(5, SchedulePolicy::kInterleaved) ==
               Scheduler(5, SchedulePolicy::kBlocked));
}

TEST(SchedulerTest, BlockedPolicyGroupsContiguousNeurons) {
  Scheduler s(7, SchedulePolicy::kBlocked);
  const auto units = s.assign_units(0, 512);  // block size 2
  for (std::size_t i = 0; i + 1 < units.size(); i += 2) {
    EXPECT_EQ(units[i], units[i + 1]);  // pairs share a unit
  }
}

TEST(SchedulerTest, BlockedPolicyIsBalanced) {
  Scheduler s(11, SchedulePolicy::kBlocked);
  const auto units = s.assign_units(2, 2560);  // 10 per unit
  std::vector<int> counts(256, 0);
  for (const auto u : units) {
    ++counts[u];
  }
  for (const auto c : counts) {
    EXPECT_EQ(c, 10);
  }
}

TEST(SchedulerTest, PoliciesProduceDifferentAssignments) {
  Scheduler a(13, SchedulePolicy::kInterleaved);
  Scheduler b(13, SchedulePolicy::kBlocked);
  EXPECT_NE(a.assign_units(0, 1024), b.assign_units(0, 1024));
}

TEST(SchedulerTest, BlockedSmallLayerStillInRange) {
  Scheduler s(17, SchedulePolicy::kBlocked);
  for (const auto u : s.assign_units(1, 10)) {  // fewer neurons than units
    EXPECT_LT(u, Scheduler::kUnits);
  }
}

}  // namespace
}  // namespace hpnn::obf
